/**
 * @file
 * End-to-end SC conformance verification: full workloads run with
 * every value tracked; committed chunks are replayed serially in
 * commit order and every load's observed value is checked against the
 * serial-replay state. This is the strongest correctness statement in
 * the suite — the speculative, overlapped, squash-and-retry execution
 * must be indistinguishable from a serial execution of chunks.
 */

#include <gtest/gtest.h>

#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Results
runVerified(Model m, AppProfile app, unsigned procs,
            std::uint64_t instrs, std::uint64_t salt = 0,
            const MachineConfig *base = nullptr)
{
    app.trackAllValues = true;
    MachineConfig cfg = base ? *base : MachineConfig{};
    cfg.model = m;
    cfg.numProcs = procs;
    auto traces = generateTraces(app, procs, instrs, salt);
    System sys(std::move(cfg), std::move(traces));
    sys.enableScVerification();
    Results r = sys.run(400'000'000);
    EXPECT_TRUE(r.completed);
    if (sys.scVerifier() && !sys.scVerifier()->verified()) {
        for (const std::string &e : sys.scVerifier()->errors())
            ADD_FAILURE() << e;
    }
    return r;
}

class VerifiedModels : public ::testing::TestWithParam<Model>
{};

TEST_P(VerifiedModels, WorkloadExecutionIsSerializable)
{
    for (const char *app : {"barnes", "ocean", "radiosity", "radix"}) {
        Results r = runVerified(GetParam(), profileByName(app), 4,
                                10'000);
        EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0) << app;
        EXPECT_GT(r.stats.get("sc_verifier.chunks"), 0.0) << app;
        EXPECT_GT(r.stats.get("sc_verifier.reads"), 0.0) << app;
    }
}

INSTANTIATE_TEST_SUITE_P(Models, VerifiedModels,
                         ::testing::Values(Model::BSCbase,
                                           Model::BSCdypvt,
                                           Model::BSCstpvt,
                                           Model::BSCexact),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(ScVerifierIntegration, AllThirteenWorkloadsSerializable)
{
    // Every evaluation workload, end to end, under the preferred
    // configuration.
    for (const AppProfile &p : allProfiles()) {
        Results r = runVerified(Model::BSCdypvt, p, 4, 6'000);
        EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0) << p.name;
    }
}

TEST(ScVerifierIntegration, ContendedWorkloadStaysSerializable)
{
    // High-contention profile: frequent locks on few locks, heavy hot
    // sharing — lots of squashes, yet the committed execution must
    // remain serializable.
    AppProfile hot = profileByName("raytrace");
    hot.locksPer1k = 2.0;
    hot.numLocks = 4;
    hot.hotFrac = 0.3;
    hot.hotLines = 64;
    Results r = runVerified(Model::BSCdypvt, hot, 8, 12'000);
    EXPECT_GT(r.stats.get("cpu.squashes"), 0.0);
    EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0);
}

TEST(ScVerifierIntegration, SeedSweepStaysSerializable)
{
    for (std::uint64_t salt = 1; salt <= 4; ++salt) {
        Results r = runVerified(Model::BSCdypvt, profileByName("fft"),
                                4, 8'000, salt);
        EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0)
            << "salt " << salt;
    }
}

TEST(ScVerifierIntegration, DistributedArbiterStaysSerializable)
{
    MachineConfig cfg;
    cfg.numArbiters = 4;
    cfg.mem.numDirectories = 4;
    Results r = runVerified(Model::BSCdypvt, profileByName("ocean"), 8,
                            10'000, 0, &cfg);
    EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0);
}

TEST(ScVerifierIntegration, SmallChunksStaySerializable)
{
    MachineConfig cfg;
    cfg.bulk.chunkSize = 100;
    Results r = runVerified(Model::BSCdypvt, profileByName("sjbb2k"),
                            4, 8'000, 0, &cfg);
    EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0);
}

// --- the checker itself must catch violations ---

TEST(ScVerifierUnit, AcceptsConsistentLogs)
{
    ScVerifier v;
    v.chunkCommitted(0, {{0x10, 7, true}, {0x10, 7, false}});
    v.chunkCommitted(1, {{0x10, 7, false}, {0x20, 9, true}});
    v.chunkCommitted(0, {{0x20, 9, false}});
    EXPECT_TRUE(v.verified());
    EXPECT_EQ(v.chunksChecked(), 3u);
    EXPECT_EQ(v.readsChecked(), 3u);
    EXPECT_EQ(v.writesApplied(), 2u);
}

TEST(ScVerifierUnit, UnwrittenAddressesReadZero)
{
    ScVerifier v;
    v.chunkCommitted(0, {{0x1234, 0, false}});
    EXPECT_TRUE(v.verified());
}

TEST(ScVerifierUnit, DetectsStaleRead)
{
    ScVerifier v;
    v.chunkCommitted(0, {{0x10, 1, true}});
    // This chunk committed after the write but observed the old value:
    // not serializable in commit order.
    v.chunkCommitted(1, {{0x10, 0, false}});
    EXPECT_FALSE(v.verified());
    ASSERT_EQ(v.errors().size(), 1u);
    EXPECT_NE(v.errors()[0].find("observed"), std::string::npos);
}

TEST(ScVerifierUnit, DetectsNonAtomicChunk)
{
    ScVerifier v;
    // A chunk that read x both before and after another chunk's
    // write would log two different values — impossible if the chunk
    // were atomic, and flagged by the replay.
    v.chunkCommitted(0, {{0x10, 5, true}});
    v.chunkCommitted(1, {{0x10, 5, false}, {0x10, 6, false}});
    EXPECT_FALSE(v.verified());
}

TEST(ScVerifierUnit, DetectsLostUpdate)
{
    ScVerifier v;
    // Classic lost update: both chunks read 0 and wrote their own
    // increment; the second chunk's read of 0 is stale.
    v.chunkCommitted(0, {{0x40, 0, false}, {0x40, 1, true}});
    v.chunkCommitted(1, {{0x40, 0, false}, {0x40, 1, true}});
    EXPECT_FALSE(v.verified());
}

} // namespace
} // namespace bulksc
