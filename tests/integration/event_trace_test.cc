/**
 * @file
 * Integration tests for chunk-lifecycle event tracing: a full workload
 * runs with the sink enabled, and the recorded per-type event counts
 * must agree with the statistics counters collected independently by
 * the processors and the arbiter. Also checks the squash-attribution
 * table and the exported Chrome trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_trace.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

class EventTraceIntegration : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        EventTrace::instance().disable();
        EventTrace::instance().clear();
    }
};

TEST_F(EventTraceIntegration, EventCountsMatchStats)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});

    Results res = runWorkload(Model::BSCdypvt, profileByName("ocean"),
                              4, 20'000);
    et.disable();
    ASSERT_TRUE(res.completed);

    // Chunk lifecycle closes: every started chunk either committed or
    // was squashed (no chunk is live after a completed run).
    EXPECT_EQ(et.count(TraceEventType::ChunkStart),
              et.count(TraceEventType::ChunkCommit) +
                  et.count(TraceEventType::ChunkSquash));

    // One ChunkCommit per committed chunk.
    EXPECT_EQ(et.count(TraceEventType::ChunkCommit),
              static_cast<std::uint64_t>(
                  res.stats.get("bulk.commits")));

    // Grants/denials observed at the processors match the arbiter's
    // own counters, and every reply pairs with a request.
    EXPECT_EQ(et.count(TraceEventType::ArbGrant),
              static_cast<std::uint64_t>(res.stats.get("arb.grants")));
    EXPECT_EQ(et.count(TraceEventType::ArbDeny),
              static_cast<std::uint64_t>(res.stats.get("arb.denials")));
    EXPECT_EQ(et.count(TraceEventType::ArbRequest),
              static_cast<std::uint64_t>(
                  res.stats.get("arb.requests")));
    EXPECT_EQ(et.count(TraceEventType::ArbDecision),
              et.count(TraceEventType::ArbGrant) +
                  et.count(TraceEventType::ArbDeny));

    // One Squash instant per squash; per-chunk squash events cover at
    // least that many chunks.
    EXPECT_EQ(et.count(TraceEventType::Squash),
              static_cast<std::uint64_t>(
                  res.stats.get("cpu.squashes")));
    EXPECT_GE(et.count(TraceEventType::ChunkSquash),
              et.count(TraceEventType::Squash));

    // Directory bounces mirror the memory-system counter.
    EXPECT_EQ(et.count(TraceEventType::DirBounce),
              static_cast<std::uint64_t>(
                  res.stats.get("mem.bounced_reads")));

    // Commit begin/end pair up (non-empty W commits only).
    EXPECT_EQ(et.count(TraceEventType::CommitBegin),
              et.count(TraceEventType::CommitEnd));
    EXPECT_LE(et.count(TraceEventType::CommitBegin),
              et.count(TraceEventType::ChunkCommit));

    // Bulk invalidations: one per processor that was sent W. The
    // default full-mapped directory never displaces entries, so no
    // displacement-driven signatures muddy the count.
    EXPECT_DOUBLE_EQ(res.stats.get("mem.dir_displacements"), 0.0);
    EXPECT_EQ(et.count(TraceEventType::BulkInval),
              static_cast<std::uint64_t>(
                  res.stats.get("bulk.inval_nodes_total")));
}

TEST_F(EventTraceIntegration, SquashAttributionSumsToTotal)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    // High-contention app to actually provoke squashes.
    Results res = runWorkload(Model::BSCdypvt, profileByName("ocean"),
                              4, 20'000);
    et.disable();
    ASSERT_TRUE(res.completed);

    double squashes = res.stats.get("cpu.squashes");
    EXPECT_DOUBLE_EQ(res.stats.get("bulk.squash.true_conflict") +
                         res.stats.get("bulk.squash.false_positive"),
                     squashes);

    // The latency histograms got their samples.
    EXPECT_DOUBLE_EQ(res.stats.get("bulk.arb_latency.samples"),
                     res.stats.get("bulk.commits"));
    if (squashes > 0) {
        EXPECT_GT(res.stats.get("bulk.squash_chunk_size.samples"),
                  0.0);
        EXPECT_GT(res.stats.get("bulk.squash_restart.samples"), 0.0);
    }
    EXPECT_LE(res.stats.get("bulk.arb_latency.p50"),
              res.stats.get("bulk.arb_latency.p99"));
    EXPECT_GT(res.stats.get("arb.commit_occupancy.samples"), 0.0);
    EXPECT_GT(res.stats.get("mem.dir_commit_service.samples"), 0.0);
}

TEST_F(EventTraceIntegration, ExactSignaturesNeverFalsePositive)
{
    // BSCexact uses alias-free signatures: every squash must be
    // attributed to a true conflict.
    Results res = runWorkload(Model::BSCexact, profileByName("ocean"),
                              4, 20'000);
    ASSERT_TRUE(res.completed);
    EXPECT_DOUBLE_EQ(res.stats.get("bulk.squash.false_positive"), 0.0);
    EXPECT_DOUBLE_EQ(res.stats.get("bulk.squash.true_conflict"),
                     res.stats.get("cpu.squashes"));
}

TEST_F(EventTraceIntegration, ChromeExportFromWorkloadIsWellFormed)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    Results res = runWorkload(Model::BSCdypvt, profileByName("ocean"),
                              4, 20'000);
    et.disable();
    ASSERT_TRUE(res.completed);

    std::ostringstream os;
    et.writeChromeTrace(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"cpu0\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"cpu3\""), std::string::npos);
    EXPECT_NE(out.find("\"outcome\":\"commit\""), std::string::npos);
    EXPECT_NE(out.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    // Balanced braces/brackets as a cheap well-formedness check.
    long brace = 0, bracket = 0;
    bool in_str = false, esc = false;
    for (char c : out) {
        if (esc) {
            esc = false;
            continue;
        }
        if (in_str) {
            if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '[')
            ++bracket;
        else if (c == ']')
            --bracket;
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
    EXPECT_FALSE(in_str);
}

TEST_F(EventTraceIntegration, DistributedArbiterDecisionsCounted)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    MachineConfig cfg;
    cfg.numArbiters = 4;
    cfg.mem.numDirectories = 4;
    Results res = runWorkload(Model::BSCdypvt, profileByName("ocean"),
                              4, 20'000, &cfg);
    et.disable();
    ASSERT_TRUE(res.completed);

    EXPECT_EQ(et.count(TraceEventType::ArbGrant),
              static_cast<std::uint64_t>(res.stats.get("arb.grants")));
    EXPECT_EQ(et.count(TraceEventType::ArbDeny),
              static_cast<std::uint64_t>(res.stats.get("arb.denials")));
    EXPECT_EQ(et.count(TraceEventType::ArbDecision),
              et.count(TraceEventType::ArbGrant) +
                  et.count(TraceEventType::ArbDeny));
}

} // namespace
} // namespace bulksc
