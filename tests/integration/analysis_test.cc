/**
 * @file
 * End-to-end tests of the analysis engine: the axiomatic SC checker
 * passes on correct executions of full workloads and litmus programs,
 * agrees with the serial-replay verifier, catches the arbiter
 * fault-injection knob with a reported po ∪ rf ∪ co ∪ fr cycle, and
 * the happens-before race detector separates synchronized from
 * unsynchronized sharing.
 */

#include <gtest/gtest.h>

#include <string>

#include "system/system.hh"
#include "workload/generator.hh"
#include "workload/litmus.hh"

namespace bulksc {
namespace {

class BulkModels : public ::testing::TestWithParam<Model>
{};

TEST_P(BulkModels, DefaultWorkloadsPassTheAxiomaticChecker)
{
    for (const char *app : {"barnes", "ocean", "radiosity", "radix"}) {
        MachineConfig cfg;
        cfg.model = GetParam();
        cfg.numProcs = 4;
        auto traces =
            generateTraces(profileByName(app), 4, 10'000);
        System sys(std::move(cfg), std::move(traces));
        sys.enableAnalysis();
        Results r = sys.run(400'000'000);
        ASSERT_TRUE(r.completed) << app;
        const AnalysisEngine *eng = sys.analysis();
        ASSERT_NE(eng, nullptr);
        EXPECT_TRUE(eng->scOk()) << app;
        EXPECT_GT(eng->chunksObserved(), 0u) << app;
        EXPECT_EQ(eng->graph()->unmatchedReads(), 0u) << app;
        // The run exercised real communication: rf edges exist.
        EXPECT_GT(eng->graph()->edgeCount(
                      MemOrderGraph::EdgeKind::Rf),
                  0u)
            << app;
        EXPECT_EQ(r.stats.get("analysis.sc_ok"), 1.0) << app;
        EXPECT_EQ(r.stats.get("analysis.sc_cycles"), 0.0) << app;
    }
}

TEST_P(BulkModels, AxiomaticCheckerAgreesWithReplayVerifier)
{
    AppProfile app = profileByName("radiosity");
    app.trackAllValues = true;
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 4;
    auto traces = generateTraces(app, 4, 10'000);
    System sys(std::move(cfg), std::move(traces));
    sys.enableScVerification();
    sys.enableAnalysis();
    Results r = sys.run(400'000'000);
    ASSERT_TRUE(r.completed);
    // Both checkers observe the same committed chunks and agree the
    // execution is SC.
    ASSERT_NE(sys.scVerifier(), nullptr);
    ASSERT_NE(sys.analysis(), nullptr);
    EXPECT_TRUE(sys.scVerifier()->verified());
    EXPECT_TRUE(sys.analysis()->scOk());
    EXPECT_EQ(sys.scVerifier()->chunksChecked(),
              sys.analysis()->chunksObserved());
}

INSTANTIATE_TEST_SUITE_P(Models, BulkModels,
                         ::testing::Values(Model::BSCbase,
                                           Model::BSCdypvt,
                                           Model::BSCstpvt,
                                           Model::BSCexact),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

/**
 * The negative test the whole subsystem exists for: disable the
 * arbiter's disambiguation (every colliding request is granted) and
 * run store buffering with upfront R signatures so the colliding
 * window is actually exercised. The machine then commits the
 * forbidden Dekker outcome — and the checker must catch it as a
 * po ∪ rf ∪ co ∪ fr cycle with full attribution.
 */
TEST(FaultInjection, SkippedDisambiguationIsCaughtAsACycle)
{
    LitmusTest lt = makeStoreBuffering(0);
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.bulk.rsigOpt = false;
    cfg.faultSkipArbEvery = 1;
    System sys(cfg, lt.traces);
    sys.enableAnalysis();
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);

    // The knob actually fired.
    EXPECT_GT(r.stats.get("arb.fault_injected_grants"), 0.0);

    // The outcome is SC-forbidden...
    EXPECT_FALSE(lt.allowedSC(r.loadResults));

    // ...and the checker reports the cycle.
    const AnalysisEngine *eng = sys.analysis();
    ASSERT_NE(eng, nullptr);
    EXPECT_FALSE(eng->scOk());
    EXPECT_GE(eng->scCycles(), 1u);
    ASSERT_FALSE(eng->graph()->violations().empty());
    const MemOrderGraph::Violation &v =
        eng->graph()->violations().front();
    ASSERT_GE(v.edges.size(), 2u);
    // Store buffering escapes as two fr edges (each reader observed
    // initial memory that the other processor's committed store had
    // overwritten).
    for (const auto &e : v.edges) {
        EXPECT_EQ(e.kind, MemOrderGraph::EdgeKind::Fr);
        EXPECT_NE(e.addr, 0u);
    }
    std::string desc = eng->graph()->describe(v);
    EXPECT_NE(desc.find("-fr(0x"), std::string::npos) << desc;
    EXPECT_EQ(r.stats.get("analysis.sc_ok"), 0.0);
    EXPECT_GE(r.stats.get("analysis.sc_cycles"), 1.0);
}

TEST(FaultInjection, SameConfigurationIsCleanWithoutTheKnob)
{
    LitmusTest lt = makeStoreBuffering(0);
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.bulk.rsigOpt = false;
    System sys(cfg, lt.traces);
    sys.enableAnalysis();
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.stats.get("arb.fault_injected_grants"), 0.0);
    EXPECT_TRUE(lt.allowedSC(r.loadResults));
    EXPECT_TRUE(sys.analysis()->scOk());
}

TEST(RaceDetection, UnsynchronizedLitmusSharingRaces)
{
    // Store buffering is a deliberate data race: conflicting accesses
    // to x and y with no synchronization at all.
    LitmusTest lt = makeStoreBuffering(0);
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, lt.traces);
    sys.enableAnalysis(true, true);
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);
    const AnalysisEngine *eng = sys.analysis();
    EXPECT_GE(eng->raceCount(), 1u);
    EXPECT_FALSE(eng->races()->reports().empty());
    EXPECT_GE(r.stats.get("analysis.races"), 1.0);
    // Chunk atomicity still makes the *execution* SC — the race
    // detector flags the program, not the machine.
    EXPECT_TRUE(eng->scOk());
}

TEST(RaceDetection, LockProtectedSharingIsRaceFree)
{
    // All cross-processor write sharing goes through critical
    // sections: plenty of contended locks, no unsynchronized shared
    // writes, no barriers.
    AppProfile app = profileByName("raytrace");
    app.name = "locked-only";
    app.sharedWritesPer1k = 0;
    app.hotFrac = 0; // hot-line writes bypass locks by design
    app.locksPer1k = 3.0;
    app.numLocks = 8;
    app.barriersPer100k = 0;
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    auto traces = generateTraces(app, 4, 20'000);
    System sys(std::move(cfg), std::move(traces));
    sys.enableAnalysis(true, true);
    Results r = sys.run(400'000'000);
    ASSERT_TRUE(r.completed);
    const AnalysisEngine *eng = sys.analysis();
    // The synchronization edges were really exercised...
    EXPECT_GT(eng->races()->syncOps(), 0u);
    EXPECT_GT(eng->races()->checkedAccesses(), 0u);
    // ...and order every conflicting data access.
    EXPECT_EQ(eng->raceCount(), 0u)
        << eng->races()->describe(eng->races()->reports().front());
    EXPECT_EQ(r.stats.get("analysis.races"), 0.0);
}

TEST(RaceDetection, HotLineSharingIsFlagged)
{
    // The same profile with unsynchronized hot-line writes restored
    // must produce races — the clean result above is not vacuous.
    AppProfile app = profileByName("raytrace");
    app.name = "hot-unsynchronized";
    app.locksPer1k = 0;
    app.hotFrac = 0.9;
    app.hotLines = 4;
    app.sharedWritesPer1k = 20;
    app.barriersPer100k = 0;
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    auto traces = generateTraces(app, 4, 20'000);
    System sys(std::move(cfg), std::move(traces));
    sys.enableAnalysis(true, true);
    Results r = sys.run(400'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(sys.analysis()->raceCount(), 1u);
    EXPECT_GE(sys.analysis()->races()->racyAddrs(), 1u);
}

TEST(AnalysisStats, AllCountersAreExported)
{
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    auto traces =
        generateTraces(profileByName("ocean"), 4, 10'000);
    System sys(std::move(cfg), std::move(traces));
    sys.enableAnalysis(true, true);
    Results r = sys.run(400'000'000);
    ASSERT_TRUE(r.completed);
    for (const char *key :
         {"analysis.chunks", "analysis.sc_ok", "analysis.sc_cycles",
          "analysis.graph_nodes", "analysis.graph_edges",
          "analysis.edges_po", "analysis.edges_rf",
          "analysis.edges_co", "analysis.edges_fr",
          "analysis.unmatched_reads", "analysis.races",
          "analysis.racy_addrs", "analysis.sync_ops",
          "analysis.checked_accesses"}) {
        EXPECT_TRUE(r.stats.has(key)) << key;
    }
    EXPECT_EQ(r.stats.get("analysis.chunks"),
              r.stats.get("analysis.graph_nodes"));
    EXPECT_GT(r.stats.get("analysis.edges_po"), 0.0);
}

} // namespace
} // namespace bulksc
