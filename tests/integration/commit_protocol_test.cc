/**
 * @file
 * Message-level validation of the commit transaction of the paper's
 * Figure 7(b) (combined arbiter + directory): permission-to-commit,
 * grant, W forwarding to sharer caches, acknowledgements, and the
 * traffic classes each leg uses.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

TEST(CommitProtocol, SingleCommitMessageBudget)
{
    // One writer chunk, one sharer to invalidate. The transaction of
    // Figure 7(b): request (1), grant (2), W forward (2'), done/acks
    // (3-4). Plus the fills that set the scene.
    const Addr x = 0x9000'0000;
    std::vector<Op> p0 = {store(x, 1, 10)};
    std::vector<Op> p1 = {load(x, 5)};

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);

    // Exactly one non-empty-W commit; W travelled to the arbiter and
    // then to the one sharer.
    EXPECT_GT(r.stats.get("net.bits.WrSig"), 0.0);
    EXPECT_EQ(r.stats.get("bulk.inval_nodes_total"), 1.0);
    EXPECT_EQ(r.stats.get("mem.invalidations"), 0.0)
        << "bulk invalidation must not use point invalidations";
    // The sharer's copy is gone, the committer owns the line.
    EXPECT_FALSE(sys.memory().l1Contains(1, lineOf(x)));
    EXPECT_TRUE(sys.memory().l1Contains(0, lineOf(x), true));
}

TEST(CommitProtocol, EmptyWCommitSkipsDirectoriesEntirely)
{
    // A read-only chunk's commit must not produce any WrSig traffic
    // to directories beyond the permission-to-commit request itself,
    // and no invalidations at all.
    std::vector<Op> ops;
    for (int i = 0; i < 300; ++i)
        ops.push_back(load(0x1000 + (i % 8) * 64, 2));
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_DOUBLE_EQ(r.stats.get("mem.dir_lookups"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("mem.invalidations"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("bulk.inval_nodes_total"), 0.0);
}

TEST(CommitProtocol, CommitLatencyIsAmortized)
{
    // Chunk commits overlap with execution (Section 4.1.4): a private
    // workload under BSCdypvt costs within a few percent of RC even
    // though every ~1000 instructions a commit transaction runs.
    std::vector<Op> ops;
    for (int i = 0; i < 3000; ++i)
        ops.push_back(i % 3 ? load(0x4000'0000 + (i % 64) * 64, 2)
                            : store(0x4000'0000 + (i % 16) * 64, i, 2));
    MachineConfig cfg;
    cfg.numProcs = 1;
    cfg.model = Model::BSCdypvt;
    System bulk(cfg, {makeTrace(ops)});
    Results rb = bulk.run(10'000'000);
    cfg.model = Model::RC;
    System rc(cfg, {makeTrace(ops)});
    Results rr = rc.run(10'000'000);
    ASSERT_TRUE(rb.completed);
    ASSERT_TRUE(rr.completed);
    EXPECT_LT(static_cast<double>(rb.execTime),
              static_cast<double>(rr.execTime) * 1.10);
}

TEST(CommitProtocol, ConcurrentDisjointCommitsOverlap)
{
    // Two processors committing disjoint W signatures concurrently:
    // the arbiter grants both without serializing them (max
    // simultaneous commits, Table 2).
    auto mk = [&](unsigned p) {
        std::vector<Op> ops;
        for (int i = 0; i < 600; ++i)
            ops.push_back(store(
                0x9000'0000 + Addr{p} * 0x10'0000 + (i % 32) * 64, i,
                2));
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System sys(cfg, {mk(0), mk(1), mk(2), mk(3)});
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_DOUBLE_EQ(r.stats.get("arb.denials"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("cpu.squashes"), 0.0);
}

TEST(CommitProtocol, MaxSimultaneousCommitsThrottles)
{
    // With the simultaneous-commit cap at 1, concurrent disjoint
    // commits serialize: denials appear and execution is slower than
    // with the default cap of 8.
    auto mk = [&](unsigned p) {
        std::vector<Op> ops;
        for (int i = 0; i < 800; ++i)
            ops.push_back(store(
                0x9000'0000 + Addr{p} * 0x10'0000 + (i % 128) * 64, i,
                2));
        return makeTrace(ops);
    };
    MachineConfig one;
    one.model = Model::BSCdypvt;
    one.numProcs = 4;
    one.maxSimulCommits = 1;
    System a(one, {mk(0), mk(1), mk(2), mk(3)});
    Results ra = a.run(50'000'000);

    MachineConfig eight = one;
    eight.maxSimulCommits = 8;
    System b(eight, {mk(0), mk(1), mk(2), mk(3)});
    Results rb = b.run(50'000'000);

    ASSERT_TRUE(ra.completed);
    ASSERT_TRUE(rb.completed);
    EXPECT_GT(ra.stats.get("arb.denials"),
              rb.stats.get("arb.denials"));
}

} // namespace
} // namespace bulksc
