/**
 * @file
 * End-to-end system tests: whole workloads under every model, the
 * paper's qualitative performance ordering, traffic accounting, the
 * distributed arbiter, directory caches, and determinism.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

constexpr std::uint64_t kInstrs = 12'000;

Results
runApp(Model m, const char *app, unsigned procs = 8,
       const MachineConfig *base = nullptr)
{
    return runWorkload(m, profileByName(app), procs, kInstrs, base);
}

TEST(SystemIntegration, AllModelsCompleteAllWorkloads)
{
    for (const AppProfile &p : allProfiles()) {
        for (Model m : {Model::SC, Model::RC, Model::SCpp,
                        Model::BSCbase, Model::BSCdypvt,
                        Model::BSCstpvt, Model::BSCexact}) {
            Results r = runWorkload(m, p, 4, 6'000);
            EXPECT_TRUE(r.completed)
                << p.name << " under " << modelName(m);
            EXPECT_GT(r.stats.get("cpu.retired_instrs"), 0.0);
        }
    }
}

TEST(SystemIntegration, PerformanceOrderingMatchesPaper)
{
    // Figure 9's qualitative shape on a representative app:
    // SC slower than RC; SC++ close to RC; BSCdypvt close to RC and
    // better than BSCbase; BSCexact at least as good as BSCdypvt.
    Results sc = runApp(Model::SC, "ocean");
    Results rc = runApp(Model::RC, "ocean");
    Results scpp = runApp(Model::SCpp, "ocean");
    Results base = runApp(Model::BSCbase, "ocean");
    Results dypvt = runApp(Model::BSCdypvt, "ocean");
    Results exact = runApp(Model::BSCexact, "ocean");

    EXPECT_GT(sc.execTime, rc.execTime * 5 / 4);
    EXPECT_LT(scpp.execTime, rc.execTime * 11 / 10);
    EXPECT_LE(dypvt.execTime, base.execTime);
    EXPECT_LE(exact.execTime, dypvt.execTime * 21 / 20);
    EXPECT_LT(dypvt.execTime, sc.execTime);
}

TEST(SystemIntegration, BulkTrafficOverheadIsModest)
{
    // The paper: BSCdypvt costs ~5-13% more interconnect traffic
    // than RC. Allow a generous envelope but catch regressions.
    for (const char *app : {"barnes", "lu", "water-sp"}) {
        Results rc = runApp(Model::RC, app);
        Results dy = runApp(Model::BSCdypvt, app);
        double ratio = dy.stats.get("net.bits.total") /
                       rc.stats.get("net.bits.total");
        EXPECT_GT(ratio, 1.0) << app;
        EXPECT_LT(ratio, 1.35) << app;
    }
}

TEST(SystemIntegration, RsigOptimizationRemovesRdSigTraffic)
{
    MachineConfig with;
    with.bulk.rsigOpt = true;
    MachineConfig without;
    without.bulk.rsigOpt = false;
    Results a = runApp(Model::BSCdypvt, "barnes", 8, &with);
    Results b = runApp(Model::BSCdypvt, "barnes", 8, &without);
    EXPECT_LT(a.stats.get("net.bits.RdSig"),
              b.stats.get("net.bits.RdSig") / 2);
}

TEST(SystemIntegration, ExactSignatureReducesSquashes)
{
    Results dy = runApp(Model::BSCdypvt, "radix");
    Results ex = runApp(Model::BSCexact, "radix");
    EXPECT_LE(ex.stats.get("cpu.squashed_instr_pct"),
              dy.stats.get("cpu.squashed_instr_pct"));
}

TEST(SystemIntegration, DypvtShrinksWriteSignature)
{
    Results base = runApp(Model::BSCbase, "water-ns");
    Results dy = runApp(Model::BSCdypvt, "water-ns");
    EXPECT_LT(dy.stats.get("bulk.avg_write_set"),
              base.stats.get("bulk.avg_write_set") / 2);
    EXPECT_GT(dy.stats.get("bulk.empty_w_pct"),
              base.stats.get("bulk.empty_w_pct"));
}

TEST(SystemIntegration, DistributedArbiterWorks)
{
    MachineConfig cfg;
    cfg.numArbiters = 4;
    cfg.mem.numDirectories = 4;
    Results r = runApp(Model::BSCdypvt, "ocean", 8, &cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("bulk.commits"), 0.0);
    // Performance stays in the same ballpark as the single arbiter.
    Results single = runApp(Model::BSCdypvt, "ocean");
    EXPECT_LT(r.execTime, single.execTime * 3 / 2);
}

TEST(SystemIntegration, DirectoryCacheDisplacementsHandled)
{
    MachineConfig cfg;
    cfg.mem.dirCacheEntries = 512; // small: forces displacements
    Results r = runApp(Model::BSCdypvt, "ocean", 4, &cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("mem.dir_displacements"), 0.0);
}

TEST(SystemIntegration, ExactMirrorIsTimingInvisible)
{
    // The exact mirror sets exist for statistics and verification
    // only: switching them off must not move a single simulated cycle.
    MachineConfig on;
    on.bulk.sigCfg.trackExact = true;
    MachineConfig off;
    off.bulk.sigCfg.trackExact = false;
    Results a = runApp(Model::BSCdypvt, "ocean", 4, &on);
    Results b = runApp(Model::BSCdypvt, "ocean", 4, &off);
    EXPECT_TRUE(a.completed);
    EXPECT_TRUE(b.completed);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_DOUBLE_EQ(a.stats.get("bulk.commits"),
                     b.stats.get("bulk.commits"));
    EXPECT_DOUBLE_EQ(a.stats.get("cpu.squashes"),
                     b.stats.get("cpu.squashes"));
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    Results a = runApp(Model::BSCdypvt, "fft", 4);
    Results b = runApp(Model::BSCdypvt, "fft", 4);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_DOUBLE_EQ(a.stats.get("cpu.squashes"),
                     b.stats.get("cpu.squashes"));
    EXPECT_DOUBLE_EQ(a.stats.get("net.bits.total"),
                     b.stats.get("net.bits.total"));
}

TEST(SystemIntegration, ChunkSizeSweepCompletes)
{
    // Figure 10's sweep must run for all sizes.
    for (unsigned size : {500u, 1000u, 2000u, 4000u}) {
        MachineConfig cfg;
        cfg.bulk.chunkSize = size;
        Results r = runApp(Model::BSCdypvt, "lu", 4, &cfg);
        EXPECT_TRUE(r.completed) << "chunk size " << size;
    }
}

TEST(SystemIntegration, LargerChunksAliasMore)
{
    MachineConfig small;
    small.bulk.chunkSize = 1000;
    MachineConfig big;
    big.bulk.chunkSize = 4000;
    Results s = runApp(Model::BSCdypvt, "sjbb2k", 8, &small);
    Results b = runApp(Model::BSCdypvt, "sjbb2k", 8, &big);
    // Bigger chunks -> denser signatures -> at least as much
    // squashing (usually much more).
    EXPECT_GE(b.stats.get("cpu.squashed_instr_pct") + 0.5,
              s.stats.get("cpu.squashed_instr_pct"));
}

TEST(SystemIntegration, SmallMachineScalesDown)
{
    for (unsigned procs : {1u, 2u, 4u}) {
        Results r = runApp(Model::BSCdypvt, "barnes", procs);
        EXPECT_TRUE(r.completed) << procs << " procs";
    }
}

TEST(SystemIntegration, StatsContainEveryTableColumn)
{
    Results r = runApp(Model::BSCdypvt, "cholesky", 4);
    // Table 3 columns.
    EXPECT_TRUE(r.stats.has("cpu.squashed_instr_pct"));
    EXPECT_TRUE(r.stats.has("bulk.avg_read_set"));
    EXPECT_TRUE(r.stats.has("bulk.avg_write_set"));
    EXPECT_TRUE(r.stats.has("bulk.avg_priv_write_set"));
    EXPECT_TRUE(r.stats.has("bulk.spec_read_displacements"));
    EXPECT_TRUE(r.stats.has("bulk.priv_buffer_supplies"));
    EXPECT_TRUE(r.stats.has("mem.extra_invals"));
    // Table 4 columns.
    EXPECT_TRUE(r.stats.has("mem.dir_lookups"));
    EXPECT_TRUE(r.stats.has("mem.dir_alias_lookups"));
    EXPECT_TRUE(r.stats.has("mem.dir_alias_updates"));
    EXPECT_TRUE(r.stats.has("bulk.nodes_per_wsig"));
    EXPECT_TRUE(r.stats.has("arb.avg_pending_w"));
    EXPECT_TRUE(r.stats.has("arb.non_empty_pct"));
    EXPECT_TRUE(r.stats.has("arb.rsig_required_pct"));
    EXPECT_TRUE(r.stats.has("arb.empty_w_pct"));
    // Figure 11 categories.
    for (const char *k : {"net.bits.RdWr", "net.bits.RdSig",
                          "net.bits.WrSig", "net.bits.Inv",
                          "net.bits.Other"}) {
        EXPECT_TRUE(r.stats.has(k)) << k;
    }
}

} // namespace
} // namespace bulksc
