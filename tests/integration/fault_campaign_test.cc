/**
 * @file
 * Fault-campaign integration tests: the hardened protocol must keep
 * every SC guarantee under a lossy, duplicating, delaying network,
 * and the whole campaign must be bit-for-bit deterministic — same
 * fault seed, same run, regardless of batch worker count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/analysis_engine.hh"
#include "system/sweep_runner.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"
#include "workload/litmus.hh"

namespace bulksc {
namespace {

/** A hostile but survivable mix of every recoverable fault kind. */
const char *kFaultMix =
    "net.drop=0.05,net.dup=0.02,net.delay=0.2:1:50,"
    "arb.req_loss=0.02,arb.grant_loss=0.02,dir.nack=0.05,"
    "dir.commit_loss=0.02";

TEST(FaultCampaign, LitmusStaysSequentiallyConsistentUnderFaults)
{
    // The paper's central claim must survive message loss: every
    // litmus outcome SC-allowed, every committed execution acyclic.
    for (const LitmusTest &lt : allLitmusTests(3)) {
        for (std::uint64_t seed : {1u, 99u}) {
            MachineConfig cfg;
            cfg.model = Model::BSCdypvt;
            cfg.numProcs = static_cast<unsigned>(lt.traces.size());
            cfg.faults = kFaultMix;
            cfg.faultSeed = seed;
            cfg.watchdog.enabled = true;
            System sys(cfg, lt.traces);
            sys.enableAnalysis();
            Results r = sys.run(200'000'000);
            ASSERT_TRUE(r.completed)
                << lt.name << " seed " << seed << ": "
                << r.watchdogReport;
            EXPECT_EQ(r.watchdogVerdict, WatchdogVerdict::None)
                << lt.name;
            ASSERT_NE(sys.analysis(), nullptr);
            EXPECT_TRUE(sys.analysis()->scOk())
                << lt.name << " seed " << seed << ": "
                << sys.analysis()->scCycles()
                << " memory-order cycles under faults";
            EXPECT_TRUE(lt.allowedSC(r.loadResults))
                << lt.name << " seed " << seed;
        }
    }
}

Results
runApp(const char *app, std::uint64_t fault_seed, bool &sc_ok,
       std::uint64_t &races)
{
    const AppProfile *prof = nullptr;
    for (const AppProfile &p : allProfiles()) {
        if (p.name == app)
            prof = &p;
    }
    EXPECT_NE(prof, nullptr);
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    cfg.faults = kFaultMix;
    cfg.faultSeed = fault_seed;
    cfg.watchdog.enabled = true;
    std::vector<Trace> traces =
        generateTraces(*prof, cfg.numProcs, 20'000, /*salt=*/7);
    System sys(cfg, std::move(traces));
    sys.enableAnalysis(true, true);
    Results r = sys.run(500'000'000);
    sc_ok = sys.analysis()->scOk();
    races = sys.analysis()->raceCount();
    return r;
}

TEST(FaultCampaign, AppWorkloadCleanUnderFaults)
{
    bool sc_ok = false;
    std::uint64_t races = ~0ull;
    Results r = runApp("fft", 42, sc_ok, races);
    ASSERT_TRUE(r.completed) << r.watchdogReport;
    EXPECT_EQ(r.watchdogVerdict, WatchdogVerdict::None);
    EXPECT_TRUE(sc_ok);
    EXPECT_EQ(races, 0u);
    // The campaign actually exercised the recovery machinery: delays
    // landed, protocol messages were lost and resent, and nothing had
    // to give up.
    EXPECT_EQ(r.stats.get("faults.harden"), 1.0);
    EXPECT_GT(r.stats.get("faults.net.delay.injected"), 0.0);
    EXPECT_GT(r.stats.get("bulk.resends"), 0.0);
    EXPECT_EQ(r.stats.get("bulk.resend_give_ups"), 0.0);
}

TEST(FaultCampaign, SameFaultSeedSameRun)
{
    bool sc1 = false, sc2 = false;
    std::uint64_t races1 = 0, races2 = 0;
    Results a = runApp("lu", 7, sc1, races1);
    Results b = runApp("lu", 7, sc2, races2);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_TRUE(a.stats.entries() == b.stats.entries());
}

/** Read a whole temporary file back as a string. */
std::string
slurp(std::FILE *f)
{
    std::string out;
    std::rewind(f);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    return out;
}

TEST(FaultCampaign, BatchOutputByteIdenticalAcrossWorkerCounts)
{
    // A faulty sweep must stream the exact same JSONL no matter how
    // many workers race through the grid: per-point fault seeds are
    // derived from the point index, never from scheduling.
    SimOptions base;
    base.app = "fft";
    base.instrs = 1'500;
    base.cfg.faults = "net.drop=0.03,net.dup=0.01,arb.grant_loss=0.01";
    std::vector<SweepAxis> axes = {
        {"app", {"fft", "lu"}},
        {"procs", {"2", "4"}},
    };

    auto run = [&](unsigned workers) {
        SweepRunner runner(base, axes);
        std::string err;
        EXPECT_TRUE(runner.validateGrid(err)) << err;
        std::FILE *f = std::tmpfile();
        EXPECT_EQ(runner.run(workers, f), 0u);
        std::string out = slurp(f);
        std::fclose(f);
        return out;
    };
    std::string serial = run(1);
    std::string parallel = run(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // Every record carries its derived fault seed and a clean
    // watchdog verdict.
    EXPECT_NE(serial.find("\"fault_seed\""), std::string::npos);
    EXPECT_NE(serial.find("\"watchdog\": \"none\""),
              std::string::npos);
}

} // namespace
} // namespace bulksc
