/**
 * @file
 * Integration tests: litmus programs checked against the SC-allowed
 * outcome set.
 *
 * Every BulkSC variant must produce ONLY SC-allowed outcomes across
 * all litmus tests and timing variants — this is the paper's central
 * claim, verified end to end through chunks, signatures, the arbiter,
 * directory bulk operations, and squash/re-execution. SC and SC++ are
 * also SC. RC without fences is demonstrably NOT SC: at least one
 * forbidden outcome must appear across the suite (the traces carry no
 * fences, mirroring the paper's point that BulkSC needs none).
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/litmus.hh"

namespace bulksc {
namespace {

/**
 * Run one litmus test under a model; @return SC-allowed?
 *
 * Bulk models additionally run the axiomatic checker: beyond the
 * outcome predicate, the committed execution itself must have an
 * acyclic po ∪ rf ∪ co ∪ fr.
 */
bool
runLitmus(Model m, const LitmusTest &lt)
{
    MachineConfig cfg;
    cfg.model = m;
    cfg.numProcs = static_cast<unsigned>(lt.traces.size());
    System sys(cfg, lt.traces);
    if (isBulk(m))
        sys.enableAnalysis();
    Results r = sys.run(50'000'000);
    EXPECT_TRUE(r.completed) << lt.name;
    if (const AnalysisEngine *eng = sys.analysis()) {
        EXPECT_TRUE(eng->scOk())
            << lt.name << ": " << eng->scCycles()
            << " memory-order cycles";
        EXPECT_EQ(eng->graph()->unmatchedReads(), 0u) << lt.name;
    }
    return lt.allowedSC(r.loadResults);
}

class ScModels : public ::testing::TestWithParam<Model>
{};

TEST_P(ScModels, AllLitmusOutcomesAreSequentiallyConsistent)
{
    for (const LitmusTest &lt : allLitmusTests(6)) {
        EXPECT_TRUE(runLitmus(GetParam(), lt))
            << modelName(GetParam()) << " violated SC on " << lt.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Models, ScModels,
                         ::testing::Values(Model::SC, Model::BSCbase,
                                           Model::BSCdypvt,
                                           Model::BSCstpvt,
                                           Model::BSCexact),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(RcWithoutFences, ExhibitsNonScOutcomes)
{
    // RC with no fences must show at least one forbidden outcome
    // somewhere in the suite — otherwise the litmus tests would not
    // be discriminating and the BulkSC result above would be vacuous.
    unsigned violations = 0;
    for (const LitmusTest &lt : allLitmusTests(6)) {
        if (!runLitmus(Model::RC, lt))
            ++violations;
    }
    EXPECT_GT(violations, 0u);
}

TEST(Litmus, StoreBufferingForbiddenOutcomeBlockedByChunks)
{
    // The classic Dekker pattern, run many timing variants: BulkSC
    // must never let both processors read 0.
    for (unsigned v = 0; v < 12; ++v) {
        LitmusTest lt = makeStoreBuffering(v);
        MachineConfig cfg;
        cfg.model = Model::BSCdypvt;
        cfg.numProcs = 2;
        System sys(cfg, lt.traces);
        Results r = sys.run(50'000'000);
        ASSERT_TRUE(r.completed);
        EXPECT_FALSE(r.loadResults[0][0] == 0 &&
                     r.loadResults[1][0] == 0)
            << "variant " << v;
    }
}

TEST(Litmus, MessagePassingNeverTearsUnderBulkSC)
{
    for (unsigned v = 0; v < 12; ++v) {
        LitmusTest lt = makeMessagePassing(v);
        MachineConfig cfg;
        cfg.model = Model::BSCdypvt;
        cfg.numProcs = 2;
        System sys(cfg, lt.traces);
        Results r = sys.run(50'000'000);
        ASSERT_TRUE(r.completed);
        EXPECT_FALSE(r.loadResults[1][0] == 1 &&
                     r.loadResults[1][1] == 0)
            << "variant " << v;
    }
}

TEST(Litmus, IriwWriteSerializationUnderBulkSC)
{
    for (unsigned v = 0; v < 8; ++v) {
        LitmusTest lt = makeIriw(v);
        EXPECT_TRUE(runLitmus(Model::BSCdypvt, lt))
            << "variant " << v;
    }
}

} // namespace
} // namespace bulksc
