/**
 * @file
 * Multi-directory-module integration: line interleaving across
 * modules, W signatures fanning out to multiple directories, per-
 * module read bouncing, and the gradual re-enable property the paper
 * highlights ("different directory modules re-enable access at
 * different times", Section 3.2.2).
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

TEST(MultiDirectory, LinesInterleaveAcrossModules)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    MemParams p;
    p.numDirectories = 4;
    MemorySystem mem(eq, net, p);
    EXPECT_EQ(mem.numDirs(), 4u);
    // 32 KB (1024-line) granules interleave across the modules.
    EXPECT_EQ(mem.dirOf(0), 0u);
    EXPECT_EQ(mem.dirOf(1023), 0u);
    EXPECT_EQ(mem.dirOf(1024), 1u);
    EXPECT_EQ(mem.dirOf(7 * 1024), 3u);
}

TEST(MultiDirectory, CommitSpanningModulesCompletes)
{
    // One chunk writes lines homed at all four modules; commit must
    // fan W out to each and still complete, and a sharer at each
    // module must be invalidated.
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.mem.numDirectories = 4;

    std::vector<Op> p0;
    std::vector<Op> p1;
    for (unsigned d = 0; d < 4; ++d) {
        // One line per 32 KB granule => one per directory module.
        Addr a = 0x9000'0000 + Addr{d} * 1024 * 32;
        p1.push_back(load(a, 2)); // sharer copies
    }
    p1.push_back(load(0x1000, 6000));
    for (unsigned d = 0; d < 4; ++d)
        p0.push_back(store(0x9000'0000 + Addr{d} * 1024 * 32, d, 50));

    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);
    // W fanned out through every module: the sharer was sent W once
    // per module (and then squashed, re-reading the new values).
    EXPECT_GE(r.stats.get("bulk.inval_nodes_total"), 4.0);
    EXPECT_GE(sys.processor(1).squashes(), 1u);
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_EQ(sys.memory().readValue(0x9000'0000 + Addr{d} * 1024 * 32),
                  d);
}

TEST(MultiDirectory, WorkloadsRunOnTwoAndFourModules)
{
    for (unsigned dirs : {2u, 4u}) {
        MachineConfig cfg;
        cfg.mem.numDirectories = dirs;
        Results r = runWorkload(Model::BSCdypvt,
                                profileByName("ocean"), 8, 10'000,
                                &cfg);
        EXPECT_TRUE(r.completed) << dirs << " dirs";
        EXPECT_GT(r.stats.get("bulk.commits"), 0.0);
    }
}

TEST(MultiDirectory, VerifiedSerializableAcrossModules)
{
    AppProfile app = profileByName("sjbb2k");
    app.trackAllValues = true;
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 8;
    cfg.mem.numDirectories = 4;
    cfg.numArbiters = 4;
    auto traces = generateTraces(app, 8, 10'000);
    System sys(std::move(cfg), std::move(traces));
    sys.enableScVerification();
    Results r = sys.run(200'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0);
    if (sys.scVerifier() && !sys.scVerifier()->verified()) {
        for (const std::string &e : sys.scVerifier()->errors())
            ADD_FAILURE() << e;
    }
}

TEST(MultiDirectory, BaselinesUnaffectedByModuleCount)
{
    // RC behaviour must be identical no matter how the directory is
    // partitioned (the modules only shard state).
    MachineConfig one;
    one.mem.numDirectories = 1;
    MachineConfig four;
    four.mem.numDirectories = 4;
    Results a = runWorkload(Model::RC, profileByName("lu"), 4, 8'000,
                            &one);
    Results b = runWorkload(Model::RC, profileByName("lu"), 4, 8'000,
                            &four);
    EXPECT_EQ(a.execTime, b.execTime);
}

} // namespace
} // namespace bulksc
