/**
 * @file
 * Robustness tests: degenerate traces, tiny machines, stress-level
 * event interleavings — the inputs a downstream user will eventually
 * feed the library.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Trace
emptyTrace()
{
    Trace t;
    t.finalize();
    return t;
}

Trace
singleOpTrace(OpType type)
{
    Trace t;
    Op op;
    op.type = type;
    op.addr = 0x9000'0000;
    op.gap = 1;
    op.tracked = true;
    op.storeValue = 1;
    if (type == OpType::BarrierArrive || type == OpType::BarrierWait)
        op.aux = 0;
    if (type == OpType::Acquire || type == OpType::Release)
        op.addr = layout::lockAddr(0);
    if (type == OpType::BarrierArrive || type == OpType::BarrierWait)
        op.addr = layout::kBarrierBase;
    t.ops.push_back(op);
    t.finalize();
    return t;
}

class RobustModels : public ::testing::TestWithParam<Model>
{};

TEST_P(RobustModels, EmptyTraceFinishesImmediately)
{
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 2;
    System sys(cfg, {emptyTrace(), emptyTrace()});
    Results r = sys.run(1'000'000);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.stats.get("cpu.retired_instrs"), 0.0);
}

TEST_P(RobustModels, SingleOpTracesComplete)
{
    for (OpType t : {OpType::Load, OpType::Store, OpType::Io}) {
        MachineConfig cfg;
        cfg.model = GetParam();
        cfg.numProcs = 1;
        System sys(cfg, {singleOpTrace(t)});
        Results r = sys.run(10'000'000);
        EXPECT_TRUE(r.completed)
            << modelName(GetParam()) << " op "
            << static_cast<int>(t);
    }
}

TEST_P(RobustModels, UncontendedLockPairCompletes)
{
    Trace t;
    Op acq;
    acq.type = OpType::Acquire;
    acq.addr = layout::lockAddr(0);
    acq.gap = 1;
    t.ops.push_back(acq);
    Op rel = acq;
    rel.type = OpType::Release;
    t.ops.push_back(rel);
    t.finalize();
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 1;
    System sys(cfg, {t});
    Results r = sys.run(10'000'000);
    EXPECT_TRUE(r.completed);
}

TEST_P(RobustModels, SingleProcessorBarrierPassesTrivially)
{
    Trace t;
    Op arrive;
    arrive.type = OpType::BarrierArrive;
    arrive.addr = layout::kBarrierBase;
    arrive.gap = 1;
    arrive.aux = 0;
    t.ops.push_back(arrive);
    Op wait = arrive;
    wait.type = OpType::BarrierWait;
    t.ops.push_back(wait);
    t.finalize();
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 1;
    cfg.cpu.numBarrierProcs = 1;
    System sys(cfg, {t});
    Results r = sys.run(10'000'000);
    EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Models, RobustModels,
                         ::testing::Values(Model::SC, Model::TSO,
                                           Model::RC, Model::SCpp,
                                           Model::BSCbase,
                                           Model::BSCdypvt,
                                           Model::BSCexact),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(Robustness, MismatchedProcCountIsClamped)
{
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 8; // only 2 traces supplied
    auto traces = generateTraces(profileByName("lu"), 2, 3000);
    System sys(cfg, std::move(traces));
    EXPECT_EQ(sys.numProcs(), 2u);
    Results r = sys.run(50'000'000);
    EXPECT_TRUE(r.completed);
}

TEST(Robustness, TinyChunksStillCorrect)
{
    MachineConfig cfg;
    cfg.bulk.chunkSize = 16;
    cfg.bulk.minChunkSize = 4;
    Results r = runWorkload(Model::BSCdypvt, profileByName("barnes"),
                            4, 6'000, &cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("bulk.commits"), 100.0);
}

TEST(Robustness, ManySmallRunsDoNotInterfere)
{
    // Systems are fully self-contained: interleaved constructions and
    // runs must be deterministic.
    Tick first = 0;
    for (int i = 0; i < 5; ++i) {
        Results r = runWorkload(Model::BSCdypvt,
                                profileByName("water-sp"), 2, 4'000);
        ASSERT_TRUE(r.completed);
        if (i == 0)
            first = r.execTime;
        else
            EXPECT_EQ(r.execTime, first);
    }
}

} // namespace
} // namespace bulksc
