/**
 * @file
 * Characterization regression tests: the qualitative relationships of
 * the paper's Tables 3-4 and Figures 9-11, pinned as assertions so
 * regressions in any subsystem (signatures, arbiter, directory,
 * workloads) surface immediately.
 *
 * These run on reduced instruction counts; they check *shapes*
 * (orderings, bands), never absolute cycle counts.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

constexpr std::uint64_t kInstrs = 20'000;

Results
runApp(Model m, const char *app)
{
    return runWorkload(m, profileByName(app), 8, kInstrs);
}

TEST(Characterization, SquashOrderingExactLeDypvtLeBase)
{
    // Table 3: squashed instructions grow from BSCexact (true sharing
    // only) through BSCdypvt (plus some aliasing) to BSCbase (full W
    // pollution). Allow small-noise slack.
    for (const char *app : {"ocean", "radiosity", "sjbb2k"}) {
        double ex = runApp(Model::BSCexact, app)
                        .stats.get("cpu.squashed_instr_pct");
        double dy = runApp(Model::BSCdypvt, app)
                        .stats.get("cpu.squashed_instr_pct");
        double ba = runApp(Model::BSCbase, app)
                        .stats.get("cpu.squashed_instr_pct");
        EXPECT_LE(ex, dy + 1.0) << app;
        EXPECT_LE(dy, ba + 1.0) << app;
    }
}

TEST(Characterization, RadixAliasingPathology)
{
    // Table 3's signature story: radix's squashes under BSCdypvt are
    // almost entirely signature aliasing — near zero with the exact
    // signature.
    Results dy = runApp(Model::BSCdypvt, "radix");
    Results ex = runApp(Model::BSCexact, "radix");
    EXPECT_LT(ex.stats.get("cpu.squashed_instr_pct"), 1.0);
    EXPECT_GT(dy.stats.get("cpu.squashed_instr_pct"),
              ex.stats.get("cpu.squashed_instr_pct") + 1.0);
}

TEST(Characterization, PrivWriteSetsExceedSharedWriteSets)
{
    // Table 3: Priv. Write has many more addresses than Write for
    // every application.
    for (const char *app : {"barnes", "lu", "water-sp", "sweb2005"}) {
        Results r = runApp(Model::BSCdypvt, app);
        EXPECT_GT(r.stats.get("bulk.avg_priv_write_set"),
                  r.stats.get("bulk.avg_write_set"))
            << app;
    }
}

TEST(Characterization, ReadSetsInPaperBand)
{
    // Table 3 reports 15-61 lines per 1000-instruction chunk.
    for (const AppProfile &p : allProfiles()) {
        Results r = runWorkload(Model::BSCdypvt, p, 8, kInstrs);
        double rs = r.stats.get("bulk.avg_read_set");
        EXPECT_GT(rs, 10.0) << p.name;
        EXPECT_LT(rs, 90.0) << p.name;
    }
}

TEST(Characterization, NodesPerWSigBelowOneOrSo)
{
    // Table 4: on average a commit sends W to at most about one node.
    for (const char *app : {"barnes", "fft", "lu", "sjbb2k"}) {
        Results r = runApp(Model::BSCdypvt, app);
        EXPECT_LT(r.stats.get("bulk.nodes_per_wsig"), 1.6) << app;
    }
}

TEST(Characterization, ArbiterIsNotABottleneck)
{
    // Table 4: the arbiter's pending-W count stays well below one on
    // average; its list is non-empty a minority of the time.
    for (const char *app : {"barnes", "ocean", "sweb2005"}) {
        Results r = runApp(Model::BSCdypvt, app);
        EXPECT_LT(r.stats.get("arb.avg_pending_w"), 1.5) << app;
        EXPECT_LT(r.stats.get("arb.non_empty_pct"), 70.0) << app;
    }
}

TEST(Characterization, CommercialAppsShareMoreThanSplash)
{
    // Table 4: the commercial codes have fewer empty-W commits than
    // the quiet SPLASH-2 applications.
    double quiet = runApp(Model::BSCdypvt, "water-sp")
                       .stats.get("arb.empty_w_pct");
    double busy = runApp(Model::BSCdypvt, "sweb2005")
                      .stats.get("arb.empty_w_pct");
    EXPECT_GT(quiet, busy);
}

TEST(Characterization, TrafficBreakdownShape)
{
    // Figure 11: data dominates; signature traffic exists but is a
    // small slice; invalidations are minor.
    Results r = runApp(Model::BSCdypvt, "ocean");
    double total = r.stats.get("net.bits.total");
    EXPECT_GT(r.stats.get("net.bits.RdWr") / total, 0.5);
    EXPECT_GT(r.stats.get("net.bits.WrSig"), 0.0);
    EXPECT_LT(r.stats.get("net.bits.WrSig") / total, 0.25);
    EXPECT_LT(r.stats.get("net.bits.Inv") / total, 0.10);
}

TEST(Characterization, ScClearlySlowerEverywhere)
{
    // Figure 9: the SC-vs-RC gap is large across the board.
    for (const char *app : {"barnes", "lu", "radix", "sweb2005"}) {
        Results sc = runApp(Model::SC, app);
        Results rc = runApp(Model::RC, app);
        double ratio = static_cast<double>(rc.execTime) /
                       static_cast<double>(sc.execTime);
        EXPECT_LT(ratio, 0.9) << app;
        EXPECT_GT(ratio, 0.3) << app;
    }
}

TEST(Characterization, BulkDypvtWithinPaperBandOfRc)
{
    // Figure 9: BSCdypvt performs about as well as RC.
    std::vector<double> ratios;
    for (const char *app : {"barnes", "fmm", "lu", "water-ns"}) {
        Results rc = runApp(Model::RC, app);
        Results dy = runApp(Model::BSCdypvt, app);
        ratios.push_back(static_cast<double>(rc.execTime) /
                         static_cast<double>(dy.execTime));
    }
    double gm = geoMean(ratios);
    EXPECT_GT(gm, 0.85);
    EXPECT_LE(gm, 1.05);
}

} // namespace
} // namespace bulksc
