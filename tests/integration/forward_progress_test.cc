/**
 * @file
 * Forward-progress tests for the pathological synchronization
 * scenarios of Section 3.3: write-spinning waiters that repeatedly
 * squash the key processor, chunk-size shrinking, and the
 * pre-arbitration guarantee.
 */

#include <gtest/gtest.h>

#include "core/bulk_processor.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

TEST(ForwardProgress, WriteSpinnersCannotStarveTheKeyProcessor)
{
    // The paper's worst case: several processors "spin" with writes
    // to a line the key processor also accesses. Without the
    // forward-progress measures the key processor could be squashed
    // forever; with chunk shrinking and pre-arbitration everyone
    // finishes.
    const Addr v = 0x9000'0000;
    std::vector<Trace> traces;
    // Key processor: a long run of accesses to v.
    {
        std::vector<Op> ops;
        for (int i = 0; i < 120; ++i) {
            ops.push_back(load(v, 4));
            ops.push_back(store(v, i, 4));
        }
        traces.push_back(makeTrace(ops));
    }
    // Three aggressive write-spinners on the same line.
    for (int p = 1; p < 4; ++p) {
        std::vector<Op> ops;
        for (int i = 0; i < 500; ++i)
            ops.push_back(store(v, i, 2));
        traces.push_back(makeTrace(ops));
    }

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    cfg.bulk.preArbThreshold = 4;
    System sys(cfg, std::move(traces));
    Results r = sys.run(200'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("cpu.squashes"), 0.0);
}

TEST(ForwardProgress, ChunkShrinkingKicksIn)
{
    // Heavy ping-pong: consecutive squashes must shrink retried
    // chunks (observable as far more commits than the instruction
    // count alone would produce).
    const Addr v = 0x9000'0040;
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 600; ++i) {
            ops.push_back(load(v, 2));
            ops.push_back(store(v, i, 2));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System sys(cfg, {mk(), mk(), mk(), mk()});
    Results r = sys.run(200'000'000);
    ASSERT_TRUE(r.completed);
    double instrs = r.stats.get("cpu.retired_instrs");
    double commits = r.stats.get("bulk.commits");
    ASSERT_GT(commits, 0.0);
    // Full-size chunks would give instrs/commits ~= 1000.
    EXPECT_LT(instrs / commits, 900.0);
}

TEST(ForwardProgress, PreArbitrationEventuallyFires)
{
    // Force an extremely low pre-arbitration threshold so the
    // guarantee path itself is exercised end to end.
    const Addr v = 0x9000'0080;
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 400; ++i) {
            ops.push_back(load(v, 1));
            ops.push_back(store(v, i, 1));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 8;
    cfg.bulk.preArbThreshold = 2;
    std::vector<Trace> traces;
    for (int i = 0; i < 8; ++i)
        traces.push_back(mk());
    System sys(cfg, std::move(traces));
    Results r = sys.run(400'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("bulk.pre_arbitrations"), 0.0);
}

TEST(ForwardProgress, ContendedLocksAlwaysComplete)
{
    // All processors hammer one lock (Figure 6's scenarios arise
    // naturally: acquire and release land in the same or different
    // chunks at different times).
    const Addr lock = layout::lockAddr(5);
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 25; ++i) {
            Op acq;
            acq.type = OpType::Acquire;
            acq.addr = lock;
            acq.gap = 10;
            ops.push_back(acq);
            ops.push_back(store(0xB000'0000 + (i % 4) * 64, i, 5));
            Op rel;
            rel.type = OpType::Release;
            rel.addr = lock;
            rel.gap = 10;
            ops.push_back(rel);
        }
        return makeTrace(ops);
    };
    for (Model m : {Model::BSCbase, Model::BSCdypvt, Model::BSCexact}) {
        MachineConfig cfg;
        cfg.model = m;
        cfg.numProcs = 4;
        System sys(cfg, {mk(), mk(), mk(), mk()});
        Results r = sys.run(400'000'000);
        EXPECT_TRUE(r.completed) << modelName(m);
        // The lock must end up free.
        EXPECT_EQ(sys.memory().readValue(lock), 0u) << modelName(m);
    }
}

TEST(ForwardProgress, BarrierStormCompletes)
{
    // Back-to-back barriers with almost no work between them: the
    // arrive/wait machinery must not livelock under any variant.
    auto mk = [&] {
        std::vector<Op> ops;
        for (std::uint32_t b = 0; b < 6; ++b) {
            Op arrive;
            arrive.type = OpType::BarrierArrive;
            arrive.addr = layout::kBarrierBase;
            arrive.gap = 2;
            arrive.aux = b;
            ops.push_back(arrive);
            Op wait = arrive;
            wait.type = OpType::BarrierWait;
            ops.push_back(wait);
        }
        return makeTrace(ops);
    };
    for (Model m : {Model::BSCbase, Model::BSCdypvt}) {
        MachineConfig cfg;
        cfg.model = m;
        cfg.numProcs = 8;
        cfg.cpu.numBarrierProcs = 8;
        std::vector<Trace> traces;
        for (int i = 0; i < 8; ++i)
            traces.push_back(mk());
        System sys(cfg, std::move(traces));
        Results r = sys.run(400'000'000);
        EXPECT_TRUE(r.completed) << modelName(m);
    }
}

} // namespace
} // namespace bulksc
