/**
 * @file
 * Tests for the signature wire codec: round-tripping, size agreement
 * with the traffic model, and behavioural equivalence of decoded
 * signatures.
 */

#include <gtest/gtest.h>

#include "signature/codec.hh"
#include "sim/rng.hh"

namespace bulksc {
namespace {

bool
banksEqual(const Signature &a, const Signature &b)
{
    const SignatureConfig &cfg = a.config();
    for (unsigned bank = 0; bank < cfg.numBanks; ++bank) {
        for (std::uint32_t i = 0; i < cfg.bitsPerBank(); ++i) {
            if (a.bitSet(bank, i) != b.bitSet(bank, i))
                return false;
        }
    }
    return true;
}

TEST(SignatureCodec, EmptySignatureRoundTrips)
{
    Signature s;
    auto bytes = encodeSignature(s);
    Signature d = decodeSignature(bytes, s.config());
    EXPECT_TRUE(d.empty());
    EXPECT_TRUE(banksEqual(s, d));
}

TEST(SignatureCodec, SparseRoundTrip)
{
    Signature s;
    for (LineAddr l : {0x10ul, 0x999ul, 0xABCDEul})
        s.insert(l);
    Signature d = decodeSignature(encodeSignature(s), s.config());
    EXPECT_TRUE(banksEqual(s, d));
    for (LineAddr l : {0x10ul, 0x999ul, 0xABCDEul})
        EXPECT_TRUE(d.contains(l));
}

TEST(SignatureCodec, DenseFallsBackToBitmapAndRoundTrips)
{
    Signature s;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        s.insert(rng.next());
    auto bytes = encodeSignature(s);
    Signature d = decodeSignature(bytes, s.config());
    EXPECT_TRUE(banksEqual(s, d));
    // Dense signatures cost about the bitmap size.
    EXPECT_LE(bytes.size() * 8,
              s.config().totalBits + 8 * s.config().numBanks);
}

TEST(SignatureCodec, EncodedSizeMatchesTrafficModel)
{
    Rng rng(11);
    for (unsigned n : {0u, 1u, 5u, 30u, 120u, 500u}) {
        Signature s;
        for (unsigned i = 0; i < n; ++i)
            s.insert(rng.next());
        auto bytes = encodeSignature(s);
        // The traffic model counts exact bits; the stream rounds up
        // to whole bytes.
        unsigned model = s.compressedBits();
        EXPECT_GE(bytes.size() * 8, model);
        EXPECT_LT(bytes.size() * 8, model + 8);
    }
}

TEST(SignatureCodec, DecodedBehavesIdenticallyForRemoteOps)
{
    // A directory/cache only ever uses membership, intersection, and
    // decode on a received W — a decoded copy must answer all three
    // exactly like the original.
    Rng rng(23);
    Signature w;
    for (int i = 0; i < 40; ++i)
        w.insert(rng.next() & 0xFFFFF);
    Signature d = decodeSignature(encodeSignature(w), w.config());

    for (int i = 0; i < 5000; ++i) {
        LineAddr probe = rng.next() & 0xFFFFF;
        EXPECT_EQ(w.contains(probe), d.contains(probe));
    }
    Signature r;
    for (int i = 0; i < 30; ++i)
        r.insert(rng.next() & 0xFFFFF);
    EXPECT_EQ(w.intersects(r), d.intersects(r));
    EXPECT_EQ(w.decodeBank0(), d.decodeBank0());
}

TEST(SignatureCodec, RandomizedRoundTripSweep)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        Signature s;
        unsigned n = static_cast<unsigned>(rng.below(300));
        for (unsigned i = 0; i < n; ++i)
            s.insert(rng.next());
        Signature d = decodeSignature(encodeSignature(s), s.config());
        ASSERT_TRUE(banksEqual(s, d)) << "trial " << trial;
    }
}

TEST(SignatureCodecDeath, TruncatedStreamIsFatal)
{
    Signature s;
    s.insert(123);
    auto bytes = encodeSignature(s);
    bytes.resize(bytes.size() / 2);
    EXPECT_DEATH(
        { decodeSignature(bytes, s.config()); }, "truncated");
}

} // namespace
} // namespace bulksc
