/**
 * @file
 * Quantitative aliasing properties of the permuted-slice signature:
 * the behaviours the paper's evaluation depends on (structured sets
 * alias far more than random ones, the uncovered-address-bit effect,
 * and bounded false-positive rates for small sets).
 */

#include <gtest/gtest.h>

#include "signature/signature.hh"
#include "sim/rng.hh"

namespace bulksc {
namespace {

double
pairFalsePositiveRate(const std::vector<LineAddr> &wset,
                      const std::vector<LineAddr> &rset, int trials,
                      Rng &rng)
{
    (void)rng;
    int fp = 0;
    for (int t = 0; t < trials; ++t) {
        SignatureConfig cfg;
        cfg.hashSeed = 0xb01d'5c5cULL + t * 977;
        Signature w(cfg), r(cfg);
        for (LineAddr l : wset)
            w.insert(l);
        for (LineAddr l : rset)
            r.insert(l);
        // The sets are disjoint by construction: any intersection is
        // a false positive.
        if (w.intersects(r))
            ++fp;
    }
    return static_cast<double>(fp) / trials;
}

TEST(SignatureAliasing, SmallRandomSetsRarelyCollide)
{
    Rng rng(3);
    std::vector<LineAddr> w, r;
    for (int i = 0; i < 4; ++i)
        w.push_back((rng.next() & 0xFFFFFFF) | 1);
    for (int i = 0; i < 30; ++i)
        r.push_back((rng.next() & 0xFFFFFFF) & ~LineAddr{1});
    // Disjoint by parity of bit 0.
    double fp = pairFalsePositiveRate(w, r, 40, rng);
    EXPECT_LT(fp, 0.25);
}

TEST(SignatureAliasing, UncoveredBitsAliasCompletely)
{
    // Addresses identical in every hashed bit (0..29) but different
    // beyond are indistinguishable: membership must report true.
    Signature s;
    s.insert((LineAddr{3} << 32) | 0x1234);
    EXPECT_TRUE(s.contains((LineAddr{5} << 32) | 0x1234));
    EXPECT_FALSE(s.containsExact((LineAddr{5} << 32) | 0x1234));
}

TEST(SignatureAliasing, StructuredSetsAliasMoreThanRandom)
{
    // Two disjoint sets at the same positions of different "buckets"
    // beyond the hashed range (the radix pattern) vs two random
    // disjoint sets of the same sizes.
    Rng rng(17);
    std::vector<LineAddr> wa, ra, wb, rb;
    for (int i = 0; i < 8; ++i) {
        wa.push_back((LineAddr{1} << 32) + 1000 + i);
        ra.push_back((LineAddr{2} << 32) + 1000 + i);
    }
    for (int i = 0; i < 8; ++i) {
        wb.push_back((rng.next() & 0xFFFFFFF) | 1);
        rb.push_back((rng.next() & 0xFFFFFFF) & ~LineAddr{1});
    }
    double structured = pairFalsePositiveRate(wa, ra, 30, rng);
    double random = pairFalsePositiveRate(wb, rb, 30, rng);
    EXPECT_DOUBLE_EQ(structured, 1.0); // every hashed bit agrees
    EXPECT_LT(random, structured);
}

TEST(SignatureAliasing, ExactModeNeverFalselyIntersects)
{
    SignatureConfig cfg;
    cfg.exact = true;
    Rng rng(29);
    for (int t = 0; t < 50; ++t) {
        Signature w(cfg), r(cfg);
        for (int i = 0; i < 20; ++i) {
            w.insert((rng.next() << 1) | 1);
            r.insert(rng.next() << 1);
        }
        EXPECT_FALSE(w.intersects(r));
    }
}

TEST(SignatureAliasing, OccupancyDrivesMembershipFalsePositives)
{
    // Denser signatures must not have a LOWER false-positive rate.
    Rng rng(31);
    auto fp_rate = [&](unsigned n) {
        Signature s;
        for (unsigned i = 0; i < n; ++i)
            s.insert((rng.next() & 0xFFFFFF) | 1);
        int fp = 0;
        const int probes = 4000;
        for (int i = 0; i < probes; ++i) {
            LineAddr l = (rng.next() & 0xFFFFFF) & ~LineAddr{1};
            if (s.contains(l))
                ++fp;
        }
        return static_cast<double>(fp) / probes;
    };
    double sparse = fp_rate(8);
    double dense = fp_rate(256);
    EXPECT_LE(sparse, dense + 0.01);
    EXPECT_LT(sparse, 0.10);
}

TEST(SignatureAliasing, LargerSignaturesAliasLess)
{
    Rng rng(37);
    auto fp_with_bits = [&](unsigned bits) {
        SignatureConfig cfg;
        cfg.totalBits = bits;
        cfg.numBanks = 4;
        int fp = 0;
        const int trials = 30;
        for (int t = 0; t < trials; ++t) {
            SignatureConfig c = cfg;
            c.hashSeed += t * 131;
            Signature w(c), r(c);
            for (int i = 0; i < 12; ++i)
                w.insert((rng.next() & 0x3FFFFF) | 1);
            for (int i = 0; i < 48; ++i)
                r.insert((rng.next() & 0x3FFFFF) & ~LineAddr{1});
            if (w.intersects(r))
                ++fp;
        }
        return static_cast<double>(fp) / trials;
    };
    double small = fp_with_bits(512);
    double big = fp_with_bits(8192);
    EXPECT_LE(big, small + 0.05);
}

} // namespace
} // namespace bulksc
