/**
 * @file
 * Unit and property tests for Bulk signatures: superset encoding (no
 * false negatives), primitive operations, exact mode, decode, and
 * compression.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "signature/signature.hh"
#include "sim/rng.hh"

namespace bulksc {
namespace {

TEST(Signature, EmptyAfterConstruction)
{
    Signature s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.exactSize(), 0u);
    EXPECT_FALSE(s.contains(0x1234));
}

TEST(Signature, InsertThenContains)
{
    Signature s;
    s.insert(0xABCD);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(s.contains(0xABCD));
    EXPECT_TRUE(s.containsExact(0xABCD));
    EXPECT_EQ(s.exactSize(), 1u);
}

TEST(Signature, ClearEmpties)
{
    Signature s;
    s.insert(1);
    s.insert(2);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(1));
    EXPECT_EQ(s.exactSize(), 0u);
}

/** The exact mirror set is bookkeeping for stats and verification:
 *  switching it off must leave every Bloom-level answer unchanged. */
TEST(SignatureProperty, MirrorOffMatchesMirrorOn)
{
    SignatureConfig mirrored;
    mirrored.trackExact = true;
    SignatureConfig bare;
    bare.trackExact = false;

    Rng rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        Signature am(mirrored), bm(mirrored);
        Signature ab(bare), bb(bare);
        for (int i = 0; i < 80; ++i) {
            LineAddr l = rng.next() & 0xFFFFFF;
            if (i % 3 == 0) {
                bm.insert(l);
                bb.insert(l);
            } else {
                am.insert(l);
                ab.insert(l);
            }
        }
        EXPECT_EQ(ab.intersects(bb), am.intersects(bm));
        EXPECT_EQ(ab.empty(), am.empty());
        EXPECT_EQ(ab.decodeBank0(), am.decodeBank0());
        for (int i = 0; i < 50; ++i) {
            LineAddr probe = rng.next() & 0xFFFFFF;
            EXPECT_EQ(ab.contains(probe), am.contains(probe));
        }
        ab.unionWith(bb);
        am.unionWith(bm);
        EXPECT_EQ(ab.decodeBank0(), am.decodeBank0());
        EXPECT_EQ(ab.tracksExact(), false);
        EXPECT_EQ(am.tracksExact(), true);
    }
}

/** Superset encoding: a member is NEVER reported absent. */
TEST(SignatureProperty, NoFalseNegatives)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        Signature s;
        std::vector<LineAddr> inserted;
        for (int i = 0; i < 100; ++i) {
            LineAddr l = rng.next() & 0xFFFFFFFF;
            s.insert(l);
            inserted.push_back(l);
        }
        for (LineAddr l : inserted)
            EXPECT_TRUE(s.contains(l));
    }
}

/** Intersection never misses a genuinely common address. */
TEST(SignatureProperty, IntersectionIsConservative)
{
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        Signature a, b;
        for (int i = 0; i < 20; ++i)
            a.insert(rng.next() & 0xFFFFFF);
        for (int i = 0; i < 20; ++i)
            b.insert(rng.next() & 0xFFFFFF);
        LineAddr common = rng.next() & 0xFFFFFF;
        a.insert(common);
        b.insert(common);
        EXPECT_TRUE(a.intersects(b));
        EXPECT_TRUE(a.intersectsExact(b));
    }
}

TEST(Signature, DisjointSmallSetsUsuallyDontIntersect)
{
    // With one line each on different cache sets and different high
    // bits, the banked AND must be empty.
    Signature a, b;
    a.insert(0x10);
    b.insert(0x20);
    EXPECT_FALSE(a.intersectsExact(b));
    EXPECT_FALSE(a.intersects(b));
}

TEST(Signature, UnionContainsBoth)
{
    Signature a, b;
    a.insert(1);
    a.insert(2);
    b.insert(3);
    a.unionWith(b);
    EXPECT_TRUE(a.contains(1));
    EXPECT_TRUE(a.contains(2));
    EXPECT_TRUE(a.contains(3));
    EXPECT_EQ(a.exactSize(), 3u);
}

TEST(Signature, ExactModeHasNoAliases)
{
    SignatureConfig cfg;
    cfg.exact = true;
    Rng rng(3);
    Signature s(cfg);
    std::unordered_set<LineAddr> in;
    for (int i = 0; i < 500; ++i) {
        LineAddr l = rng.next() & 0xFFFFF;
        s.insert(l);
        in.insert(l);
    }
    for (int i = 0; i < 5000; ++i) {
        LineAddr l = rng.next() & 0xFFFFF;
        EXPECT_EQ(s.contains(l), in.count(l) != 0);
    }
}

TEST(Signature, ExactIntersectionIsPrecise)
{
    SignatureConfig cfg;
    cfg.exact = true;
    Signature a(cfg), b(cfg);
    for (LineAddr l = 0; l < 100; ++l)
        a.insert(l);
    for (LineAddr l = 100; l < 200; ++l)
        b.insert(l);
    EXPECT_FALSE(a.intersects(b));
    b.insert(50);
    EXPECT_TRUE(a.intersects(b));
}

/** Bloom mode must alias eventually (it is a superset encoding). */
TEST(SignatureProperty, BloomModeAliases)
{
    Signature s;
    Rng rng(23);
    for (int i = 0; i < 400; ++i)
        s.insert(rng.next() & 0x3FFFFF);
    unsigned false_pos = 0;
    for (int i = 0; i < 20000; ++i) {
        LineAddr l = rng.next() & 0x3FFFFF;
        if (s.contains(l) && !s.containsExact(l))
            ++false_pos;
    }
    EXPECT_GT(false_pos, 0u);
}

TEST(Signature, DecodeBank0CoversMembers)
{
    Signature s;
    std::vector<LineAddr> lines = {0x100, 0x3FF, 0x12345, 0x777};
    for (LineAddr l : lines)
        s.insert(l);
    auto decoded = s.decodeBank0();
    std::unordered_set<std::uint32_t> set(decoded.begin(),
                                          decoded.end());
    for (LineAddr l : lines)
        EXPECT_TRUE(set.count(s.bank0Index(l)));
}

TEST(Signature, Bank0IndexIsLowBits)
{
    Signature s;
    // Bank 0 keeps identity low bits so cache-set decode works.
    EXPECT_EQ(s.bank0Index(0x123),
              0x123u & (s.config().bitsPerBank() - 1));
}

TEST(Signature, CompressionSmallerForSparseSigs)
{
    Signature sparse, dense;
    sparse.insert(42);
    Rng rng(5);
    for (int i = 0; i < 600; ++i)
        dense.insert(rng.next());
    EXPECT_LT(sparse.compressedBits(), dense.compressedBits());
    // An almost-empty signature compresses far below the raw 2 Kbit.
    EXPECT_LT(sparse.compressedBits(), 200u);
    // Compression never exceeds bitmap + headers.
    EXPECT_LE(dense.compressedBits(),
              dense.config().totalBits + 8 * dense.config().numBanks);
}

TEST(Signature, PopCountGrowsWithInsertions)
{
    Signature s;
    unsigned prev = s.popCount();
    EXPECT_EQ(prev, 0u);
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        s.insert(rng.next());
    EXPECT_GT(s.popCount(), 0u);
    EXPECT_LE(s.popCount(), 50u * s.config().numBanks);
}

/** Parameterized sweep over signature geometries. */
class SignatureGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(SignatureGeometry, RoundTripMembers)
{
    auto [bits, banks] = GetParam();
    SignatureConfig cfg;
    cfg.totalBits = bits;
    cfg.numBanks = banks;
    Signature s(cfg);
    Rng rng(bits + banks);
    std::vector<LineAddr> lines;
    for (int i = 0; i < 64; ++i) {
        LineAddr l = rng.next() & 0xFFFFFFF;
        lines.push_back(l);
        s.insert(l);
    }
    for (LineAddr l : lines)
        EXPECT_TRUE(s.contains(l));
    s.clear();
    EXPECT_TRUE(s.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SignatureGeometry,
    ::testing::Values(std::make_pair(512u, 2u),
                      std::make_pair(1024u, 4u),
                      std::make_pair(2048u, 4u),
                      std::make_pair(2048u, 8u),
                      std::make_pair(4096u, 4u),
                      std::make_pair(8192u, 8u)));

} // namespace
} // namespace bulksc
