/**
 * @file
 * Unit tests for the directory and DirBDM, including the full Table 1
 * action matrix for signature expansion and the directory-cache
 * displacement protocol of Section 4.3.3.
 */

#include <gtest/gtest.h>

#include "mem/directory.hh"

namespace bulksc {
namespace {

Signature
sigOf(std::initializer_list<LineAddr> lines,
      const SignatureConfig &cfg = SignatureConfig{})
{
    Signature s(cfg);
    for (LineAddr l : lines)
        s.insert(l);
    return s;
}

TEST(Directory, RecordReadAddsSharer)
{
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordRead(100, 3, disp);
    const DirEntry *e = dir.peek(100);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->isSharer(3));
    EXPECT_FALSE(e->dirty);
    EXPECT_TRUE(disp.empty());
}

TEST(Directory, RecordReadExInvalidatesOthers)
{
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordRead(100, 1, disp);
    dir.recordRead(100, 2, disp);
    std::uint32_t inval = dir.recordReadEx(100, 3, disp);
    EXPECT_EQ(inval, (1u << 1) | (1u << 2));
    const DirEntry *e = dir.peek(100);
    EXPECT_TRUE(e->dirty);
    EXPECT_EQ(e->owner, 3u);
    EXPECT_EQ(e->sharers, 1u << 3);
}

TEST(Directory, WritebackClearsDirtyOnlyForOwner)
{
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordReadEx(7, 2, disp);
    dir.recordWriteback(7, 5); // not the owner: ignored
    EXPECT_TRUE(dir.peek(7)->dirty);
    dir.recordWriteback(7, 2);
    EXPECT_FALSE(dir.peek(7)->dirty);
}

TEST(Directory, DropSharerClearsBitAndOwnership)
{
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordReadEx(9, 4, disp);
    dir.dropSharer(9, 4);
    const DirEntry *e = dir.peek(9);
    EXPECT_FALSE(e->isSharer(4));
    EXPECT_FALSE(e->dirty);
}

// --- Table 1: the four states of an entry selected by expansion ---

TEST(DirectoryTable1, Case1FalsePositiveCleanNotSharer)
{
    // Not dirty, committing proc NOT in bit vector: false positive,
    // no action.
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordRead(100, 1, disp); // only proc 1 shares

    ExpansionResult res = dir.expand(sigOf({100}), /*committer=*/2);
    EXPECT_EQ(res.invalidationList, 0u);
    EXPECT_FALSE(dir.peek(100)->dirty);
    EXPECT_TRUE(dir.peek(100)->isSharer(1));
    EXPECT_EQ(res.lookups, 1u);
    // The line is in W's exact mirror, so it is not counted as an
    // aliased lookup even though the directory takes no action.
    EXPECT_EQ(res.aliasLookups, 0u);
}

TEST(DirectoryTable1, Case2CommitterBecomesOwner)
{
    // Not dirty, committing proc in vector: committer becomes owner,
    // other sharers join the Invalidation List.
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordRead(100, 1, disp);
    dir.recordRead(100, 2, disp);
    dir.recordRead(100, 5, disp);

    ExpansionResult res = dir.expand(sigOf({100}), /*committer=*/2);
    EXPECT_EQ(res.invalidationList, (1u << 1) | (1u << 5));
    const DirEntry *e = dir.peek(100);
    EXPECT_TRUE(e->dirty);
    EXPECT_EQ(e->owner, 2u);
    EXPECT_EQ(e->sharers, 1u << 2);
    EXPECT_EQ(res.updates, 1u);
    EXPECT_EQ(res.aliasUpdates, 0u);
}

TEST(DirectoryTable1, Case3FalsePositiveDirtyNotSharer)
{
    // Dirty, committing proc not in vector: false positive, no action.
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordReadEx(100, 6, disp);

    ExpansionResult res = dir.expand(sigOf({100}), /*committer=*/2);
    EXPECT_EQ(res.invalidationList, 0u);
    const DirEntry *e = dir.peek(100);
    EXPECT_TRUE(e->dirty);
    EXPECT_EQ(e->owner, 6u);
}

TEST(DirectoryTable1, Case4CommitterAlreadyOwner)
{
    // Dirty and committing proc is the owner: nothing to do.
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordReadEx(100, 2, disp);

    ExpansionResult res = dir.expand(sigOf({100}), /*committer=*/2);
    EXPECT_EQ(res.invalidationList, 0u);
    EXPECT_TRUE(dir.peek(100)->dirty);
    EXPECT_EQ(dir.peek(100)->owner, 2u);
    EXPECT_EQ(res.updates, 0u);
}

TEST(DirectoryExpansion, EmptySignatureDoesNothing)
{
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordRead(1, 0, disp);
    ExpansionResult res = dir.expand(Signature{}, 0);
    EXPECT_EQ(res.lookups, 0u);
    EXPECT_EQ(res.invalidationList, 0u);
}

TEST(DirectoryExpansion, AliasedLookupsAreCountedAsUnnecessary)
{
    // Insert many directory entries; expand a W of a few lines and
    // verify that any lookup of a line not truly written is counted
    // as an aliased (unnecessary) lookup — Table 4's column.
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    for (LineAddr l = 0; l < 4000; ++l)
        dir.recordRead(l, 1, disp);

    Signature w = sigOf({10, 20, 30});
    ExpansionResult res = dir.expand(w, 1);
    EXPECT_GE(res.lookups, 3u);
    EXPECT_EQ(res.lookups - res.aliasLookups, 3u);
}

TEST(DirectoryExpansion, MultipleLinesAccumulateInvalidations)
{
    Directory dir(SignatureConfig{}, 8);
    std::vector<DirDisplacement> disp;
    dir.recordRead(64, 0, disp);
    dir.recordRead(64, 1, disp);
    dir.recordRead(65, 0, disp);
    dir.recordRead(65, 3, disp);

    ExpansionResult res = dir.expand(sigOf({64, 65}), 0);
    EXPECT_EQ(res.invalidationList, (1u << 1) | (1u << 3));
    EXPECT_TRUE(dir.peek(64)->dirty);
    EXPECT_TRUE(dir.peek(65)->dirty);
}

// --- Directory cache (Section 4.3.3) ---

TEST(DirectoryCache, DisplacesOldestWhenFull)
{
    Directory dir(SignatureConfig{}, 8, /*max_entries=*/4);
    std::vector<DirDisplacement> disp;
    for (LineAddr l = 0; l < 4; ++l)
        dir.recordRead(l, 1, disp);
    EXPECT_TRUE(disp.empty());
    EXPECT_EQ(dir.entryCount(), 4u);

    dir.recordRead(100, 2, disp);
    ASSERT_EQ(disp.size(), 1u);
    EXPECT_EQ(disp[0].line, 0u);
    EXPECT_EQ(disp[0].sharers, 1u << 1);
    EXPECT_EQ(dir.entryCount(), 4u);
    EXPECT_EQ(dir.peek(0), nullptr);
    EXPECT_NE(dir.peek(100), nullptr);
}

TEST(DirectoryCache, DisplacementCarriesDirtyOwner)
{
    Directory dir(SignatureConfig{}, 8, 2);
    std::vector<DirDisplacement> disp;
    dir.recordReadEx(1, 5, disp);
    dir.recordRead(2, 0, disp);
    dir.recordRead(3, 0, disp);
    ASSERT_EQ(disp.size(), 1u);
    EXPECT_EQ(disp[0].line, 1u);
    EXPECT_TRUE(disp[0].dirty);
    EXPECT_EQ(disp[0].owner, 5u);
}

TEST(DirectoryCache, FullMappedNeverDisplaces)
{
    Directory dir(SignatureConfig{}, 8, 0);
    std::vector<DirDisplacement> disp;
    for (LineAddr l = 0; l < 10000; ++l)
        dir.recordRead(l, 0, disp);
    EXPECT_TRUE(disp.empty());
    EXPECT_EQ(dir.entryCount(), 10000u);
}

} // namespace
} // namespace bulksc
