/**
 * @file
 * Edge-path tests for the memory system: the owner-fetch listener
 * hook (the dypvt Wpriv check of Section 5.2), warm-up semantics,
 * MSHR command upgrades, restoreLine's bypass fallback, and
 * directory-cache displacement broadcasts.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

namespace bulksc {
namespace {

struct Harness
{
    explicit Harness(MemParams p = MemParams{})
        : net(eq, NetworkConfig{}), mem(eq, net, p)
    {}

    EventQueue eq;
    Network net;
    MemorySystem mem;
};

struct Recorder : public CacheListener
{
    std::vector<LineAddr> ownerFetches;
    std::vector<LineAddr> wsigLines;
    unsigned wsigs = 0;
    std::vector<LineAddr> vetoed;

    void
    onExternalOwnerFetch(LineAddr l) override
    {
        ownerFetches.push_back(l);
    }
    void onRemoteWSig(const Signature &) override { ++wsigs; }
    bool
    mayVictimize(LineAddr l) override
    {
        for (LineAddr v : vetoed) {
            if (v == l)
                return false;
        }
        return true;
    }
};

TEST(MemorySystemEdge, OwnerFetchHookFires)
{
    Harness h;
    Recorder rec;
    h.mem.setListener(0, &rec);

    // Proc 0 owns the line dirty; proc 1 reads it.
    h.mem.access(0, 0x1000, MemCmd::ReadEx, nullptr);
    h.eq.run();
    h.mem.access(1, 0x1000, MemCmd::Read, nullptr);
    h.eq.run();
    ASSERT_EQ(rec.ownerFetches.size(), 1u);
    EXPECT_EQ(rec.ownerFetches[0], lineOf(0x1000));
}

TEST(MemorySystemEdge, OwnerFetchHookFiresForExclusiveToo)
{
    Harness h;
    Recorder rec;
    h.mem.setListener(0, &rec);
    h.mem.access(0, 0x2000, MemCmd::ReadEx, nullptr);
    h.eq.run();
    h.mem.access(1, 0x2000, MemCmd::ReadEx, nullptr);
    h.eq.run();
    EXPECT_EQ(rec.ownerFetches.size(), 1u);
}

TEST(MemorySystemEdge, WarmL1DirtySetsOwnership)
{
    Harness h;
    h.mem.warmL1(0, lineOf(0x3000), /*dirty=*/true);
    EXPECT_EQ(h.mem.l1State(0, lineOf(0x3000)), LineState::Dirty);
    // A ReadEx from the warmed owner hits immediately.
    EXPECT_TRUE(
        h.mem.access(0, 0x3000, MemCmd::ReadEx, nullptr).has_value());
    // Another processor's read triggers the owner-fetch path.
    Recorder rec;
    h.mem.setListener(0, &rec);
    h.mem.access(1, 0x3000, MemCmd::Read, nullptr);
    h.eq.run();
    EXPECT_EQ(rec.ownerFetches.size(), 1u);
}

TEST(MemorySystemEdge, WarmL1SharedIsNotOwned)
{
    Harness h;
    h.mem.warmL1(0, lineOf(0x4000), /*dirty=*/false);
    EXPECT_EQ(h.mem.l1State(0, lineOf(0x4000)), LineState::Shared);
    EXPECT_FALSE(
        h.mem.access(0, 0x4000, MemCmd::ReadEx, nullptr).has_value());
}

TEST(MemorySystemEdge, MshrUpgradeReadToReadEx)
{
    Harness h;
    // A Read miss is outstanding; a ReadEx to the same line coalesces
    // and upgrades the command, so the fill grants ownership.
    bool read_done = false, write_done = false;
    h.mem.access(0, 0x5000, MemCmd::Read, [&] { read_done = true; });
    h.mem.access(0, 0x5000, MemCmd::ReadEx,
                 [&] { write_done = true; });
    h.eq.run();
    EXPECT_TRUE(read_done);
    EXPECT_TRUE(write_done);
    EXPECT_EQ(h.mem.l1State(0, lineOf(0x5000)), LineState::Dirty);
}

TEST(MemorySystemEdge, RestoreLineFallsBackToL2WhenVetoed)
{
    // All ways of the target set vetoed: restoreLine must park the
    // data in the L2 instead of losing it.
    MemParams p;
    p.l1 = CacheGeometry{4 * 2 * 32, 2, 32}; // 4 sets, 2 ways
    Harness h(p);
    Recorder rec;
    h.mem.setListener(0, &rec);
    h.mem.access(0, 0 * 32, MemCmd::Read, nullptr);
    h.mem.access(0, 4 * 32, MemCmd::Read, nullptr);
    h.eq.run();
    rec.vetoed = {0, 4};

    h.mem.restoreLine(0, 8); // maps to set 0; both ways vetoed
    EXPECT_FALSE(h.mem.l1Contains(0, 8));
    // The data survives in the L2: a later read is an L2 hit.
    Tick start = h.eq.now();
    Tick done = 0;
    rec.vetoed.clear();
    h.mem.access(1, 8 * 32, MemCmd::Read, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_LT(done - start, h.mem.params().memLatency);
}

TEST(MemorySystemEdge, DirCacheDisplacementBroadcastsToSharers)
{
    MemParams p;
    p.dirCacheEntries = 2;
    Harness h(p);
    Recorder rec;
    h.mem.setListener(0, &rec);

    // Proc 0 caches two lines; touching a third displaces the first
    // entry, whose one-line signature must reach proc 0.
    h.mem.access(0, 0 * 32, MemCmd::Read, nullptr);
    h.eq.run();
    h.mem.access(0, 100 * 32, MemCmd::Read, nullptr);
    h.eq.run();
    h.mem.access(1, 200 * 32, MemCmd::Read, nullptr);
    h.eq.run();
    EXPECT_GE(h.mem.dirDisplacements(), 1u);
    EXPECT_GE(rec.wsigs, 1u);
    EXPECT_FALSE(h.mem.l1Contains(0, 0));
}

TEST(MemorySystemEdge, BouncedReadEventuallyCompletes)
{
    Harness h;
    // A commit with a long-ish ack path: a concurrent read bounces
    // but completes after the W retires.
    h.mem.access(1, 0x6000, MemCmd::Read, nullptr);
    h.mem.access(0, 0x6000, MemCmd::Read, nullptr);
    h.eq.run();
    h.mem.markDirty(0, lineOf(0x6000));
    auto w = std::make_shared<Signature>();
    w->insert(lineOf(0x6000));
    bool commit_done = false, read_done = false;
    h.mem.bulkCommit(0, w, [&] { commit_done = true; });
    h.eq.schedule(h.eq.now() + 9, [&] {
        h.mem.access(2, 0x6000, MemCmd::Read, [&] { read_done = true; });
    });
    h.eq.run();
    EXPECT_TRUE(commit_done);
    EXPECT_TRUE(read_done);
}

TEST(MemorySystemEdge, InvalidNumProcsIsFatal)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    MemParams p;
    p.numProcs = 0;
    EXPECT_EXIT({ MemorySystem bad(eq, net, p); },
                ::testing::ExitedWithCode(1), "numProcs");
}

} // namespace
} // namespace bulksc
