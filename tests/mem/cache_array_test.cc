/**
 * @file
 * Unit tests for the set-associative tag array: lookup, LRU
 * replacement, victim filtering (the BDM's speculative-line
 * protection), and set iteration.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

namespace bulksc {
namespace {

CacheGeometry
tinyGeom()
{
    // 4 sets, 2 ways, 32 B lines.
    return CacheGeometry{4 * 2 * 32, 2, 32};
}

TEST(CacheGeometry, DerivedQuantities)
{
    CacheGeometry g{32 * 1024, 4, 32};
    EXPECT_EQ(g.numLines(), 1024u);
    EXPECT_EQ(g.numSets(), 256u);
    EXPECT_EQ(g.setIndex(0x100), 0x100u % 256);
}

TEST(CacheArray, MissThenHit)
{
    CacheArray c(tinyGeom());
    EXPECT_EQ(c.lookup(7), nullptr);
    std::optional<Victim> vic;
    c.insert(7, LineState::Shared, nullptr, vic);
    EXPECT_FALSE(vic.has_value());
    CacheLine *l = c.lookup(7);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, LineState::Shared);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    // Lines 0, 4, 8 all map to set 0 (4 sets); 2 ways.
    c.insert(0, LineState::Shared, nullptr, vic);
    c.insert(4, LineState::Shared, nullptr, vic);
    c.lookup(0); // 0 is now MRU; 4 is LRU
    c.insert(8, LineState::Shared, nullptr, vic);
    ASSERT_TRUE(vic.has_value());
    EXPECT_EQ(vic->line, 4u);
    EXPECT_FALSE(vic->dirty);
    EXPECT_NE(c.peek(0), nullptr);
    EXPECT_EQ(c.peek(4), nullptr);
    EXPECT_NE(c.peek(8), nullptr);
}

TEST(CacheArray, CleanVictimPreferredOverDirty)
{
    // Clean-first LRU: the dirty line survives while a clean line is
    // available, even though the dirty one is least recently used.
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(0, LineState::Dirty, nullptr, vic);
    c.insert(4, LineState::Shared, nullptr, vic);
    c.insert(8, LineState::Shared, nullptr, vic);
    ASSERT_TRUE(vic.has_value());
    EXPECT_EQ(vic->line, 4u);
    EXPECT_FALSE(vic->dirty);
    EXPECT_NE(c.peek(0), nullptr);
}

TEST(CacheArray, DirtyVictimFlaggedWhenSetAllDirty)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(0, LineState::Dirty, nullptr, vic);
    c.insert(4, LineState::Dirty, nullptr, vic);
    c.insert(8, LineState::Shared, nullptr, vic);
    ASSERT_TRUE(vic.has_value());
    EXPECT_EQ(vic->line, 0u);
    EXPECT_TRUE(vic->dirty);
}

TEST(CacheArray, VictimFilterProtectsLines)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(0, LineState::Dirty, nullptr, vic);
    c.insert(4, LineState::Shared, nullptr, vic);
    // Line 0 is "speculative": the filter vetoes it, so 4 is evicted
    // even though 0 is LRU.
    auto filter = [](LineAddr l) { return l != 0; };
    c.insert(8, LineState::Shared, filter, vic);
    ASSERT_TRUE(vic.has_value());
    EXPECT_EQ(vic->line, 4u);
    EXPECT_NE(c.peek(0), nullptr);
}

TEST(CacheArray, InsertFailsWhenAllWaysVetoed)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(0, LineState::Dirty, nullptr, vic);
    c.insert(4, LineState::Dirty, nullptr, vic);
    auto veto_all = [](LineAddr) { return false; };
    CacheLine *l = c.insert(8, LineState::Shared, veto_all, vic);
    EXPECT_EQ(l, nullptr);
    EXPECT_FALSE(vic.has_value());
}

TEST(CacheArray, ReinsertUpdatesInPlace)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(3, LineState::Shared, nullptr, vic);
    c.insert(3, LineState::Dirty, nullptr, vic);
    EXPECT_FALSE(vic.has_value());
    EXPECT_EQ(c.peek(3)->state, LineState::Dirty);
}

TEST(CacheArray, InvalidateReturnsPriorState)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(5, LineState::Dirty, nullptr, vic);
    EXPECT_EQ(c.invalidate(5), LineState::Dirty);
    EXPECT_EQ(c.invalidate(5), LineState::Invalid);
    EXPECT_EQ(c.peek(5), nullptr);
}

TEST(CacheArray, CountVetoedCountsOnlyMatchingSet)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(0, LineState::Dirty, nullptr, vic); // set 0
    c.insert(4, LineState::Dirty, nullptr, vic); // set 0
    c.insert(1, LineState::Dirty, nullptr, vic); // set 1
    auto veto_all = [](LineAddr) { return false; };
    EXPECT_EQ(c.countVetoed(8, veto_all), 2u);
    EXPECT_EQ(c.countVetoed(5, veto_all), 1u);
}

TEST(CacheArray, ForEachInSetVisitsValidLines)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    c.insert(0, LineState::Shared, nullptr, vic);
    c.insert(4, LineState::Dirty, nullptr, vic);
    unsigned n = 0;
    c.forEachInSet(0, [&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 2u);
    n = 0;
    c.forEachInSet(1, [&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 0u);
}

TEST(CacheArray, ForEachVisitsWholeArray)
{
    CacheArray c(tinyGeom());
    std::optional<Victim> vic;
    for (LineAddr l = 0; l < 6; ++l)
        c.insert(l, LineState::Shared, nullptr, vic);
    unsigned n = 0;
    c.forEach([&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 6u);
}

} // namespace
} // namespace bulksc
