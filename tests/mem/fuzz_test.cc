/**
 * @file
 * Randomized differential tests: the cache tag array and the
 * directory are driven with long random operation sequences and
 * checked, step by step, against simple reference models.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>

#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "sim/rng.hh"

namespace bulksc {
namespace {

/** Reference model: per-set LRU list with the clean-first policy. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned assoc) : sets(sets), assoc(assoc)
    {
        data.resize(sets);
    }

    struct Entry
    {
        LineAddr line;
        LineState state;
    };

    const Entry *
    find(LineAddr line) const
    {
        const auto &set = data[line % sets];
        for (const auto &e : set) {
            if (e.line == line)
                return &e;
        }
        return nullptr;
    }

    void
    touch(LineAddr line)
    {
        auto &set = data[line % sets];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->line == line) {
                Entry e = *it;
                set.erase(it);
                set.push_back(e); // back = MRU
                return;
            }
        }
    }

    /** @return displaced line, or kNoLine. */
    static constexpr LineAddr kNoLine = ~LineAddr{0};

    LineAddr
    insert(LineAddr line, LineState st)
    {
        auto &set = data[line % sets];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->line == line) {
                it->state = st;
                touch(line);
                return kNoLine;
            }
        }
        LineAddr victim = kNoLine;
        if (set.size() >= assoc) {
            // Clean-first LRU: oldest clean entry, else oldest dirty.
            auto pick = set.end();
            for (auto it = set.begin(); it != set.end(); ++it) {
                if (it->state != LineState::Dirty) {
                    pick = it;
                    break;
                }
            }
            if (pick == set.end())
                pick = set.begin();
            victim = pick->line;
            set.erase(pick);
        }
        set.push_back({line, st});
        return victim;
    }

    void
    invalidate(LineAddr line)
    {
        auto &set = data[line % sets];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->line == line) {
                set.erase(it);
                return;
            }
        }
    }

  private:
    unsigned sets;
    unsigned assoc;
    std::vector<std::list<Entry>> data;
};

TEST(FuzzCacheArray, MatchesReferenceModel)
{
    const unsigned kSets = 8, kAssoc = 4;
    CacheArray dut(CacheGeometry{kSets * kAssoc * 32, kAssoc, 32});
    RefCache ref(kSets, kAssoc);
    Rng rng(2026);

    for (int step = 0; step < 20000; ++step) {
        LineAddr line = rng.below(64);
        switch (rng.below(4)) {
          case 0: { // lookup
            CacheLine *d = dut.lookup(line);
            const RefCache::Entry *r = ref.find(line);
            ASSERT_EQ(d != nullptr, r != nullptr)
                << "step " << step << " line " << line;
            if (d) {
                ASSERT_EQ(d->state, r->state);
                ref.touch(line);
            }
            break;
          }
          case 1: { // insert shared
            std::optional<Victim> vic;
            dut.insert(line, LineState::Shared, nullptr, vic);
            LineAddr rv = ref.insert(line, LineState::Shared);
            ASSERT_EQ(vic.has_value(), rv != RefCache::kNoLine)
                << "step " << step;
            if (vic) {
                ASSERT_EQ(vic->line, rv) << "step " << step;
            }
            break;
          }
          case 2: { // insert dirty
            std::optional<Victim> vic;
            dut.insert(line, LineState::Dirty, nullptr, vic);
            LineAddr rv = ref.insert(line, LineState::Dirty);
            ASSERT_EQ(vic.has_value(), rv != RefCache::kNoLine);
            if (vic) {
                ASSERT_EQ(vic->line, rv);
            }
            break;
          }
          case 3: // invalidate
            dut.invalidate(line);
            ref.invalidate(line);
            break;
        }
    }
}

/** Reference directory: exact per-line sharer sets. */
struct RefDir
{
    struct E
    {
        std::uint32_t sharers = 0;
        bool dirty = false;
        ProcId owner = 0;
    };
    std::map<LineAddr, E> entries;
};

TEST(FuzzDirectory, MatchesReferenceModel)
{
    const unsigned kProcs = 8;
    // Exact signatures: expansion then touches only the truly written
    // line, so the reference stays in lockstep (aliasing behaviour is
    // covered by the directory and signature unit tests).
    SignatureConfig exact_cfg;
    exact_cfg.exact = true;
    Directory dut(exact_cfg, kProcs);
    RefDir ref;
    Rng rng(777);
    std::vector<DirDisplacement> disp;

    for (int step = 0; step < 20000; ++step) {
        LineAddr line = rng.below(256);
        ProcId p = static_cast<ProcId>(rng.below(kProcs));
        switch (rng.below(5)) {
          case 0: {
            dut.recordRead(line, p, disp);
            auto &e = ref.entries[line];
            e.sharers |= 1u << p;
            break;
          }
          case 1: {
            std::uint32_t inval = dut.recordReadEx(line, p, disp);
            auto &e = ref.entries[line];
            std::uint32_t expect = e.sharers & ~(1u << p);
            ASSERT_EQ(inval, expect) << "step " << step;
            e.sharers = 1u << p;
            e.dirty = true;
            e.owner = p;
            break;
          }
          case 2: {
            dut.recordWriteback(line, p);
            auto it = ref.entries.find(line);
            if (it != ref.entries.end() && it->second.dirty &&
                it->second.owner == p) {
                it->second.dirty = false;
            }
            break;
          }
          case 3: {
            dut.dropSharer(line, p);
            auto it = ref.entries.find(line);
            if (it != ref.entries.end()) {
                it->second.sharers &= ~(1u << p);
                if (it->second.dirty && it->second.owner == p)
                    it->second.dirty = false;
            }
            break;
          }
          case 4: { // expansion of a single-line W
            Signature w(exact_cfg);
            w.insert(line);
            ExpansionResult res = dut.expand(w, p);
            auto it = ref.entries.find(line);
            // Table 1 reference semantics for the truly-written line.
            std::uint32_t expect_inval = 0;
            if (it != ref.entries.end() && !it->second.dirty &&
                (it->second.sharers >> p) & 1) {
                expect_inval = it->second.sharers & ~(1u << p);
                it->second.sharers = 1u << p;
                it->second.dirty = true;
                it->second.owner = p;
            }
            // Aliased candidates can only ADD invalidation targets.
            ASSERT_EQ(res.invalidationList & expect_inval,
                      expect_inval)
                << "step " << step;
            break;
          }
        }

        // Spot-check a random line's state against the reference.
        LineAddr probe = rng.below(256);
        const DirEntry *d = dut.peek(probe);
        auto it = ref.entries.find(probe);
        if (it != ref.entries.end()) {
            ASSERT_NE(d, nullptr);
            ASSERT_EQ(d->sharers, it->second.sharers)
                << "step " << step << " line " << probe;
            ASSERT_EQ(d->dirty, it->second.dirty);
            if (d->dirty) {
                ASSERT_EQ(d->owner, it->second.owner);
            }
        }
    }
}

} // namespace
} // namespace bulksc
