/**
 * @file
 * Unit tests for the timed memory system: hit/miss latencies, MSHR
 * coalescing and queueing, invalidation flows, bulk commit with read
 * bouncing, speculative discard, and value tracking.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

namespace bulksc {
namespace {

struct Harness
{
    Harness(MemParams p = MemParams{})
        : net(eq, NetworkConfig{}), mem(eq, net, p)
    {}

    EventQueue eq;
    Network net;
    MemorySystem mem;
};

/** Listener that records the events it sees. */
struct Recorder : public CacheListener
{
    std::vector<LineAddr> invals;
    std::vector<LineAddr> displaced;
    unsigned wsigs = 0;
    std::vector<LineAddr> vetoed;

    void onExternalInval(LineAddr l) override { invals.push_back(l); }
    void
    onLineDisplaced(LineAddr l, bool) override
    {
        displaced.push_back(l);
    }
    void onRemoteWSig(const Signature &) override { ++wsigs; }
    bool
    mayVictimize(LineAddr l) override
    {
        for (LineAddr v : vetoed) {
            if (v == l)
                return false;
        }
        return true;
    }
};

TEST(MemorySystem, MissThenHit)
{
    Harness h;
    bool filled = false;
    auto lat = h.mem.access(0, 0x1000, MemCmd::Read,
                            [&] { filled = true; });
    EXPECT_FALSE(lat.has_value());
    h.eq.run();
    EXPECT_TRUE(filled);

    auto lat2 = h.mem.access(0, 0x1000, MemCmd::Read, nullptr);
    ASSERT_TRUE(lat2.has_value());
    EXPECT_EQ(*lat2, h.mem.params().l1Latency);
}

TEST(MemorySystem, MemoryMissSlowerThanL2Hit)
{
    Harness h;
    // First access: cold, from memory.
    Tick t_mem = 0;
    h.mem.access(0, 0x2000, MemCmd::Read, [&] { t_mem = h.eq.now(); });
    h.eq.run();
    EXPECT_GE(t_mem, h.mem.params().memLatency);

    // Another processor then misses to the (now warm) L2.
    Tick start = h.eq.now();
    Tick t_l2 = 0;
    h.mem.access(1, 0x2000, MemCmd::Read, [&] { t_l2 = h.eq.now(); });
    h.eq.run();
    EXPECT_LT(t_l2 - start, h.mem.params().memLatency);
}

TEST(MemorySystem, WarmLineMakesL2Hit)
{
    Harness h;
    h.mem.warmLine(lineOf(0x3000));
    Tick t = 0;
    h.mem.access(0, 0x3000, MemCmd::Read, [&] { t = h.eq.now(); });
    h.eq.run();
    EXPECT_LT(t, h.mem.params().memLatency);
}

TEST(MemorySystem, ReadExHitRequiresOwnership)
{
    Harness h;
    h.mem.access(0, 0x4000, MemCmd::Read, nullptr);
    h.eq.run();
    // Shared copy present: a Read hits but a ReadEx does not.
    EXPECT_TRUE(h.mem.access(0, 0x4000, MemCmd::Read, nullptr)
                    .has_value());
    bool owned = false;
    auto lat =
        h.mem.access(0, 0x4000, MemCmd::ReadEx, [&] { owned = true; });
    EXPECT_FALSE(lat.has_value());
    h.eq.run();
    EXPECT_TRUE(owned);
    EXPECT_TRUE(h.mem.l1Contains(0, lineOf(0x4000), true));
}

TEST(MemorySystem, ReadExInvalidatesSharers)
{
    Harness h;
    Recorder rec;
    h.mem.setListener(1, &rec);
    h.mem.access(1, 0x5000, MemCmd::Read, nullptr);
    h.eq.run();
    ASSERT_TRUE(h.mem.l1Contains(1, lineOf(0x5000)));

    h.mem.access(0, 0x5000, MemCmd::ReadEx, nullptr);
    h.eq.run();
    EXPECT_FALSE(h.mem.l1Contains(1, lineOf(0x5000)));
    ASSERT_EQ(rec.invals.size(), 1u);
    EXPECT_EQ(rec.invals[0], lineOf(0x5000));
}

TEST(MemorySystem, DirtyOwnerSuppliesData)
{
    Harness h;
    h.mem.access(0, 0x6000, MemCmd::ReadEx, nullptr);
    h.eq.run();
    ASSERT_TRUE(h.mem.l1Contains(0, lineOf(0x6000), true));

    bool got = false;
    h.mem.access(1, 0x6000, MemCmd::Read, [&] { got = true; });
    h.eq.run();
    EXPECT_TRUE(got);
    // Owner downgraded to Shared.
    EXPECT_EQ(h.mem.l1State(0, lineOf(0x6000)), LineState::Shared);
}

TEST(MemorySystem, MshrCoalescingSingleFetch)
{
    Harness h;
    int fills = 0;
    h.mem.access(0, 0x7000, MemCmd::Read, [&] { ++fills; });
    h.mem.access(0, 0x7008, MemCmd::Read, [&] { ++fills; });
    h.mem.access(0, 0x7010, MemCmd::Read, [&] { ++fills; });
    std::uint64_t msgs_before = h.net.messages();
    h.eq.run();
    EXPECT_EQ(fills, 3);
    // One request + one response (same line), not three.
    EXPECT_LE(h.net.messages() - msgs_before, 2u);
}

TEST(MemorySystem, MshrQueueingBeyondCapacity)
{
    MemParams p;
    p.l1Mshrs = 2;
    Harness h(p);
    int fills = 0;
    for (int i = 0; i < 6; ++i)
        h.mem.access(0, 0x10000 + i * 64, MemCmd::Read,
                     [&] { ++fills; });
    h.eq.run();
    EXPECT_EQ(fills, 6);
}

TEST(MemorySystem, MarkDirtyAndState)
{
    Harness h;
    h.mem.access(0, 0x8000, MemCmd::Read, nullptr);
    h.eq.run();
    EXPECT_EQ(h.mem.l1State(0, lineOf(0x8000)), LineState::Shared);
    h.mem.markDirty(0, lineOf(0x8000));
    EXPECT_EQ(h.mem.l1State(0, lineOf(0x8000)), LineState::Dirty);
}

TEST(MemorySystem, ValueTracking)
{
    Harness h;
    EXPECT_EQ(h.mem.readValue(0x42), 0u);
    h.mem.writeValue(0x42, 1234);
    EXPECT_EQ(h.mem.readValue(0x42), 1234u);
}

TEST(MemorySystem, BulkCommitForwardsWToSharers)
{
    Harness h;
    Recorder rec1;
    h.mem.setListener(1, &rec1);

    // Proc 1 shares the line; proc 0 wrote it speculatively.
    h.mem.access(1, 0x9000, MemCmd::Read, nullptr);
    h.mem.access(0, 0x9000, MemCmd::Read, nullptr);
    h.eq.run();
    h.mem.markDirty(0, lineOf(0x9000));

    auto w = std::make_shared<Signature>();
    w->insert(lineOf(0x9000));
    bool done = false;
    unsigned nodes = 0;
    h.mem.bulkCommit(0, w, [&] { done = true; }, &nodes);
    h.eq.run();

    EXPECT_TRUE(done);
    EXPECT_EQ(nodes, 1u);
    EXPECT_EQ(rec1.wsigs, 1u);
    EXPECT_FALSE(h.mem.l1Contains(1, lineOf(0x9000)));
    // Committer now owns the line per the directory.
    EXPECT_TRUE(h.mem.l1Contains(0, lineOf(0x9000), true));
}

TEST(MemorySystem, EmptyWCommitCompletesImmediately)
{
    Harness h;
    bool done = false;
    h.mem.bulkCommit(0, std::make_shared<Signature>(),
                     [&] { done = true; });
    EXPECT_TRUE(done);
}

TEST(MemorySystem, ReadsBouncedDuringCommit)
{
    Harness h;
    Recorder rec1;
    h.mem.setListener(1, &rec1);
    h.mem.access(1, 0xA000, MemCmd::Read, nullptr);
    h.mem.access(0, 0xA000, MemCmd::Read, nullptr);
    h.eq.run();
    h.mem.markDirty(0, lineOf(0xA000));

    auto w = std::make_shared<Signature>();
    w->insert(lineOf(0xA000));
    h.mem.bulkCommit(0, w, [] {});
    // Issue a read timed to land at the directory while the commit's
    // W is registered there: it must be bounced at least once.
    h.eq.schedule(h.eq.now() + 10, [&] {
        h.mem.access(2, 0xA000, MemCmd::Read, nullptr);
    });
    h.eq.run();
    EXPECT_GE(h.mem.bouncedReads(), 1u);
    // It still completes eventually.
    EXPECT_TRUE(h.mem.l1Contains(2, lineOf(0xA000)));
}

TEST(MemorySystem, DiscardSpeculativeDropsOnlyMembers)
{
    Harness h;
    h.mem.access(0, 0xB000, MemCmd::Read, nullptr);
    h.mem.access(0, 0xB040, MemCmd::Read, nullptr);
    h.eq.run();
    h.mem.markDirty(0, lineOf(0xB000));

    Signature w;
    w.insert(lineOf(0xB000));
    h.mem.l1DiscardSpeculative(0, w);
    EXPECT_FALSE(h.mem.l1Contains(0, lineOf(0xB000)));
    EXPECT_TRUE(h.mem.l1Contains(0, lineOf(0xB040)));
}

TEST(MemorySystem, RestoreLineReinsertsDirty)
{
    Harness h;
    h.mem.restoreLine(0, lineOf(0xC000));
    EXPECT_EQ(h.mem.l1State(0, lineOf(0xC000)), LineState::Dirty);
}

TEST(MemorySystem, WritebackLineKeepsL1Copy)
{
    Harness h;
    h.mem.access(0, 0xD000, MemCmd::ReadEx, nullptr);
    h.eq.run();
    std::uint64_t wb = h.mem.writebacks();
    h.mem.writebackLine(0, lineOf(0xD000));
    EXPECT_EQ(h.mem.writebacks(), wb + 1);
    EXPECT_TRUE(h.mem.l1Contains(0, lineOf(0xD000)));
}

TEST(MemorySystem, VictimFilterPreventsDisplacement)
{
    // Fill one L1 set completely with vetoed lines; the next fill to
    // that set must bypass (fillBypasses counts it).
    MemParams p;
    p.l1 = CacheGeometry{4 * 2 * 32, 2, 32}; // 4 sets, 2 ways
    Harness h(p);
    Recorder rec;
    h.mem.setListener(0, &rec);
    rec.vetoed = {lineOf(Addr{0} * 32), lineOf(Addr{4} * 32)};

    h.mem.access(0, 0 * 32, MemCmd::Read, nullptr);
    h.mem.access(0, 4 * 32, MemCmd::Read, nullptr);
    h.eq.run();
    std::uint64_t before = h.mem.fillBypasses();
    h.mem.access(0, 8 * 32, MemCmd::Read, nullptr);
    h.eq.run();
    EXPECT_EQ(h.mem.fillBypasses(), before + 1);
    EXPECT_TRUE(h.mem.l1Contains(0, 0));
    EXPECT_TRUE(h.mem.l1Contains(0, 4));
}

TEST(MemorySystem, RacingFillDoesNotResurrectInvalidatedLine)
{
    // Regression test for a protocol race: proc 1's read fill is in
    // flight when proc 0's chunk commits a write to the same line.
    // The bulk invalidation arrives before the fill; without fill
    // cancellation the fill would install a copy the directory no
    // longer tracks — and future commits would skip invalidating it
    // (a genuine SC hole, observed as a lost barrier increment).
    Harness h;
    h.mem.warmL1(0, lineOf(0xF100), /*dirty=*/false);
    h.mem.markDirty(0, lineOf(0xF100));

    auto w = std::make_shared<Signature>();
    w->insert(lineOf(0xF100));

    // Issue the read and the commit into the same race window.
    h.mem.access(1, 0xF100, MemCmd::Read, nullptr);
    h.mem.bulkCommit(0, w, [] {});
    h.eq.run();

    // Invariant: any cached copy must be visible to the directory.
    const DirEntry *e = h.mem.peekDir(lineOf(0xF100));
    ASSERT_NE(e, nullptr);
    if (h.mem.l1Contains(1, lineOf(0xF100)))
        EXPECT_TRUE(e->isSharer(1));
    else
        EXPECT_FALSE(e->isSharer(1));
}

TEST(MemorySystem, BaselineInvalRaceAlsoCancelled)
{
    // Same race through the baseline ReadEx invalidation path.
    Harness h;
    h.mem.warmL1(1, lineOf(0xF200), false);
    // Proc 1 refetches after losing the line, while proc 0 upgrades.
    h.mem.access(2, 0xF200, MemCmd::Read, nullptr); // extra sharer
    h.eq.run();
    h.mem.access(1, 0xF200, MemCmd::Read, nullptr);
    h.mem.access(0, 0xF200, MemCmd::ReadEx, nullptr);
    h.eq.run();
    const DirEntry *e = h.mem.peekDir(lineOf(0xF200));
    ASSERT_NE(e, nullptr);
    for (ProcId p = 0; p < 3; ++p) {
        if (h.mem.l1Contains(p, lineOf(0xF200))) {
            EXPECT_TRUE(e->isSharer(p)) << "proc " << p;
        }
    }
}

TEST(MemorySystem, StatsDumpContainsKeys)
{
    Harness h;
    h.mem.access(0, 0xE000, MemCmd::Read, nullptr);
    h.eq.run();
    StatGroup sg;
    h.mem.dumpStats(sg);
    EXPECT_TRUE(sg.has("mem.l1_hits"));
    EXPECT_TRUE(sg.has("mem.l1_misses"));
    EXPECT_TRUE(sg.has("mem.bounced_reads"));
}

} // namespace
} // namespace bulksc
