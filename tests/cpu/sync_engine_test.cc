/**
 * @file
 * Focused tests of the synchronization engine shared by all processor
 * models: lock hand-off latency and fairness, barrier generation
 * arithmetic across repeated barriers, spin accounting, and lock
 * value-state invariants.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
acquire(Addr lock, std::uint32_t gap = 5)
{
    Op op;
    op.type = OpType::Acquire;
    op.addr = lock;
    op.gap = gap;
    return op;
}

Op
release(Addr lock, std::uint32_t gap = 5)
{
    Op op;
    op.type = OpType::Release;
    op.addr = lock;
    op.gap = gap;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

class SyncModels : public ::testing::TestWithParam<Model>
{};

TEST_P(SyncModels, UncontendedAcquireIsFast)
{
    const Addr lock = layout::lockAddr(0);
    std::vector<Op> ops = {load(0x1000, 10), acquire(lock),
                           store(0xB000'0000, 1, 3), release(lock),
                           load(0x1000, 10)};
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    // A single uncontended lock pair costs far less than one spin
    // backoff round would.
    EXPECT_LT(r.execTime, 2000u);
    EXPECT_EQ(sys.memory().readValue(lock), 0u);
}

TEST_P(SyncModels, LockIsHeldExactlyWhileInside)
{
    // The lock word must read 1 between acquire and release and 0
    // after everything commits/drains.
    const Addr lock = layout::lockAddr(1);
    std::vector<Op> ops = {acquire(lock), load(0x1000, 4000),
                           release(lock)};
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(sys.memory().readValue(lock), 0u);
}

TEST_P(SyncModels, RepeatedBarriersAdvanceGenerations)
{
    const unsigned kBarriers = 5;
    auto mk = [&] {
        std::vector<Op> ops;
        for (std::uint32_t b = 0; b < kBarriers; ++b) {
            Op arrive;
            arrive.type = OpType::BarrierArrive;
            arrive.addr = layout::kBarrierBase;
            arrive.gap = 8;
            arrive.aux = b;
            ops.push_back(arrive);
            Op wait = arrive;
            wait.type = OpType::BarrierWait;
            ops.push_back(wait);
            ops.push_back(load(0x3000 + b * 64, 15));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 4;
    cfg.cpu.numBarrierProcs = 4;
    System sys(cfg, {mk(), mk(), mk(), mk()});
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    // Generation counter = number of completed barriers; count reset.
    EXPECT_EQ(sys.memory().readValue(layout::kBarrierBase +
                                     kDefaultLineBytes),
              kBarriers);
    EXPECT_EQ(sys.memory().readValue(layout::kBarrierBase), 0u);
}

TEST_P(SyncModels, ContendedLockSerializesCriticalSections)
{
    // Both processors write the same protected word; because the
    // sections are serialized, the final value is one of the two
    // last-written values and the lock ends free.
    const Addr lock = layout::lockAddr(2);
    const Addr data = 0xB000'0040;
    auto mk = [&](std::uint64_t tag) {
        std::vector<Op> ops;
        for (int i = 0; i < 10; ++i) {
            ops.push_back(acquire(lock));
            ops.push_back(store(data, tag, 3));
            ops.push_back(release(lock));
            ops.push_back(load(0x1000, 30));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = GetParam();
    cfg.numProcs = 2;
    System sys(cfg, {mk(100), mk(200)});
    Results r = sys.run(200'000'000);
    ASSERT_TRUE(r.completed);
    std::uint64_t final = sys.memory().readValue(data);
    EXPECT_TRUE(final == 100 || final == 200);
    EXPECT_EQ(sys.memory().readValue(lock), 0u);
}

INSTANTIATE_TEST_SUITE_P(Models, SyncModels,
                         ::testing::Values(Model::SC, Model::TSO,
                                           Model::RC, Model::SCpp,
                                           Model::BSCbase,
                                           Model::BSCdypvt,
                                           Model::BSCexact),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(SyncEngine, SpinInstructionsAreCharged)
{
    // A waiter that spins on a barrier charges spin instructions.
    auto fast = [&] {
        std::vector<Op> ops;
        Op arrive;
        arrive.type = OpType::BarrierArrive;
        arrive.addr = layout::kBarrierBase;
        arrive.gap = 2;
        arrive.aux = 0;
        ops.push_back(arrive);
        Op wait = arrive;
        wait.type = OpType::BarrierWait;
        ops.push_back(wait);
        return makeTrace(ops);
    };
    auto slow = [&] {
        std::vector<Op> ops;
        ops.push_back(load(0x1000, 5000)); // arrives late
        Op arrive;
        arrive.type = OpType::BarrierArrive;
        arrive.addr = layout::kBarrierBase;
        arrive.gap = 2;
        arrive.aux = 0;
        ops.push_back(arrive);
        Op wait = arrive;
        wait.type = OpType::BarrierWait;
        ops.push_back(wait);
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::RC;
    cfg.numProcs = 2;
    cfg.cpu.numBarrierProcs = 2;
    System sys(cfg, {fast(), slow()});
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(sys.processor(0).spinInstrs(), 0u);
}

} // namespace
} // namespace bulksc
