/**
 * @file
 * Tests for the SC, RC, and SC++ processor models: completion,
 * ordering/overlap properties, value semantics, synchronization, and
 * SC++ violation repair.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

Results
runOne(Model m, std::vector<Trace> traces, bool warm = true)
{
    MachineConfig cfg;
    cfg.model = m;
    cfg.numProcs = static_cast<unsigned>(traces.size());
    cfg.warmCaches = warm;
    System sys(cfg, std::move(traces));
    return sys.run(100'000'000);
}

class AllModels : public ::testing::TestWithParam<Model>
{};

TEST_P(AllModels, CompletesASimpleTrace)
{
    std::vector<Op> ops;
    for (int i = 0; i < 200; ++i)
        ops.push_back(i % 3 ? load(0x1000 + (i % 16) * 64)
                            : store(0x9000'0000 + (i % 8) * 64, i));
    Results r = runOne(GetParam(), {makeTrace(ops)});
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.execTime, 0u);
}

TEST_P(AllModels, StoreThenLoadSameProcSeesOwnValue)
{
    // Program order within one processor must be respected by every
    // model: a later load observes the earlier store.
    std::vector<Op> ops = {store(0x9000'0000, 77, 5),
                           load(0x9000'0000, 50, 0)};
    Results r = runOne(GetParam(), {makeTrace(ops)});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.loadResults[0][0], 77u);
}

TEST_P(AllModels, LocksProvideMutualExclusion)
{
    // Two processors increment a shared counter inside a lock; the
    // final value must be the sum of all increments.
    const Addr lock = layout::lockAddr(0);
    const Addr ctr = 0x9000'1000;
    auto mk = [&](unsigned n) {
        std::vector<Op> ops;
        for (unsigned i = 0; i < n; ++i) {
            Op acq;
            acq.type = OpType::Acquire;
            acq.addr = lock;
            acq.gap = 20;
            ops.push_back(acq);
            // Counter read-modify-write is modelled by the harness
            // below via load+store with tracked values; keep it a
            // plain load+store pair inside the critical section.
            ops.push_back(load(ctr, 2));
            ops.push_back(store(ctr, 0, 2)); // value patched later
            Op rel;
            rel.type = OpType::Release;
            rel.addr = lock;
            rel.gap = 2;
            ops.push_back(rel);
        }
        return ops;
    };
    // Verifying a counter would need data-dependent store values,
    // which traces don't model; instead verify both finish and the
    // lock ends up free.
    Results r = runOne(GetParam(),
                       {makeTrace(mk(5)), makeTrace(mk(5))});
    ASSERT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(Model::SC, Model::RC,
                                           Model::SCpp,
                                           Model::BSCbase,
                                           Model::BSCdypvt,
                                           Model::BSCstpvt,
                                           Model::BSCexact),
                         [](const auto &info) {
                             std::string n = modelName(info.param);
                             for (auto &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(ScProcessor, SerializesMemoryOpsInOrder)
{
    // With all L1 hits, SC pays the full hit latency per op while RC
    // overlaps: the SC run must be measurably slower.
    std::vector<Op> ops;
    for (int i = 0; i < 500; ++i)
        ops.push_back(load(0x1000 + (i % 8) * 64, 0));
    Results sc = runOne(Model::SC, {makeTrace(ops)});
    Results rc = runOne(Model::RC, {makeTrace(ops)});
    ASSERT_TRUE(sc.completed);
    ASSERT_TRUE(rc.completed);
    EXPECT_GT(sc.execTime, rc.execTime * 3 / 2);
}

TEST(RcProcessor, OverlapsIndependentMisses)
{
    // A burst of cold (memory-latency) misses: RC overlaps them, SC
    // serializes what its prefetcher cannot cover.
    std::vector<Op> ops;
    for (int i = 0; i < 16; ++i)
        ops.push_back(load(layout::kStreamBase + Addr(i) * 2048, 1));
    Results rc = runOne(Model::RC, {makeTrace(ops)});
    ASSERT_TRUE(rc.completed);
    // 16 independent 300-cycle misses overlapped via 8 MSHRs must
    // take far less than 16 serial round trips.
    EXPECT_LT(rc.execTime, 16u * 300 / 2);
}

TEST(ScppProcessor, SquashesOnInvalidationOfSpeculativeLoad)
{
    // P0 (SC++): long-latency miss to a cold stream line, then a load
    // of a warm shared line that completes early (speculatively).
    // P1 writes that shared line while P0's miss is outstanding; the
    // invalidation hits the speculatively performed load -> squash.
    std::vector<Op> p0 = {
        load(0x9000'2000, 1),              // warm the line
        load(layout::kStreamBase, 1),      // 300-cycle miss
        load(0x9000'2000, 0, 0),           // speculative early load
        load(0x9000'2000, 2000, 1),
    };
    std::vector<Op> p1 = {
        load(0x9000'2000, 40),
        store(0x9000'2000, 9, 5),
    };
    MachineConfig cfg;
    cfg.model = Model::SCpp;
    cfg.numProcs = 2;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(sys.processor(0).squashes() +
                  sys.processor(1).squashes(),
              1u);
}

TEST(Barrier, AllModelsPassBarriers)
{
    for (Model m : {Model::SC, Model::RC, Model::SCpp, Model::BSCbase,
                    Model::BSCdypvt, Model::BSCexact}) {
        auto mk = [&](std::uint32_t idx_count) {
            std::vector<Op> ops;
            ops.push_back(load(0x1000, 10));
            for (std::uint32_t b = 0; b < idx_count; ++b) {
                Op arrive;
                arrive.type = OpType::BarrierArrive;
                arrive.addr = layout::kBarrierBase;
                arrive.gap = 5;
                arrive.aux = b;
                ops.push_back(arrive);
                Op wait = arrive;
                wait.type = OpType::BarrierWait;
                ops.push_back(wait);
                ops.push_back(load(0x2000 + b * 64, 20));
            }
            return makeTrace(ops);
        };
        MachineConfig cfg;
        cfg.model = m;
        cfg.numProcs = 4;
        cfg.cpu.numBarrierProcs = 4;
        System sys(cfg, {mk(3), mk(3), mk(3), mk(3)});
        Results r = sys.run(50'000'000);
        EXPECT_TRUE(r.completed) << modelName(m);
    }
}

TEST(IoOps, DrainAndComplete)
{
    for (Model m : {Model::SC, Model::RC, Model::BSCdypvt}) {
        std::vector<Op> ops = {store(0x9000'3000, 1, 5)};
        Op io;
        io.type = OpType::Io;
        io.gap = 3;
        ops.push_back(io);
        ops.push_back(load(0x9000'3000, 3, 0));
        Results r = runOne(m, {makeTrace(ops)});
        ASSERT_TRUE(r.completed) << modelName(m);
        EXPECT_EQ(r.loadResults[0][0], 1u) << modelName(m);
    }
}

} // namespace
} // namespace bulksc
