/**
 * @file
 * Unit tests for the trace representation.
 */

#include <gtest/gtest.h>

#include "cpu/op.hh"

namespace bulksc {
namespace {

TEST(Trace, FinalizeBuildsCumulativeIndex)
{
    Trace t;
    Op a;
    a.gap = 4; // 5 instructions total
    Op b;
    b.gap = 0; // 1 instruction
    Op c;
    c.gap = 9; // 10 instructions
    t.ops = {a, b, c};
    t.finalize();

    ASSERT_EQ(t.cum.size(), 4u);
    EXPECT_EQ(t.cum[0], 0u);
    EXPECT_EQ(t.cum[1], 5u);
    EXPECT_EQ(t.cum[2], 6u);
    EXPECT_EQ(t.cum[3], 16u);
    EXPECT_EQ(t.totalInstrs(), 16u);
    EXPECT_EQ(t.instrsBetween(0, 2), 6u);
    EXPECT_EQ(t.instrsBetween(1, 3), 11u);
}

TEST(Trace, NumSlotsFromRecordingLoads)
{
    Trace t;
    Op l1;
    l1.type = OpType::Load;
    l1.aux = 2;
    Op l2;
    l2.type = OpType::Load;
    l2.aux = 0;
    Op st;
    st.type = OpType::Store;
    st.aux = 9; // stores never record
    t.ops = {l1, l2, st};
    t.finalize();
    EXPECT_EQ(t.numSlots, 3u);
}

TEST(Trace, EmptyTrace)
{
    Trace t;
    t.finalize();
    EXPECT_EQ(t.totalInstrs(), 0u);
    EXPECT_EQ(t.numSlots, 0u);
}

} // namespace
} // namespace bulksc
