/**
 * @file
 * Tests for the TSO baseline: store-buffer semantics (store->load
 * reordering allowed, everything else ordered), forwarding, drains,
 * and litmus behaviour against the other models.
 */

#include <gtest/gtest.h>

#include "cpu/tso_processor.hh"
#include "system/system.hh"
#include "workload/generator.hh"
#include "workload/litmus.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

TEST(TsoProcessor, CompletesAndDrainsStores)
{
    std::vector<Op> ops;
    for (int i = 0; i < 120; ++i)
        ops.push_back(i % 2 ? load(0x1000 + (i % 8) * 64)
                            : store(0x9000'0000 + (i % 4) * 64, i));
    MachineConfig cfg;
    cfg.model = Model::TSO;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    auto *tso = dynamic_cast<TsoProcessor *>(&sys.processor(0));
    ASSERT_NE(tso, nullptr);
    EXPECT_EQ(tso->drainedStores(), 60u);
}

TEST(TsoProcessor, StoreToLoadForwarding)
{
    // A load of a buffered (undrained) store's address must see the
    // store's value — TSO forwards from the store buffer.
    std::vector<Op> ops = {
        store(layout::kStreamBase, 42, 1), // slow cold store
        load(layout::kStreamBase, 0, 0),   // immediate reload
    };
    MachineConfig cfg;
    cfg.model = Model::TSO;
    cfg.numProcs = 1;
    cfg.warmCaches = false;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.loadResults[0][0], 42u);
}

TEST(TsoProcessor, StoreBufferingReorderIsAllowedAndObserved)
{
    // TSO's defining litmus outcome: both processors may read 0 in
    // the store-buffering test. Verify it actually occurs across
    // variants (otherwise TSO would be indistinguishable from SC).
    unsigned reorders = 0;
    for (unsigned v = 0; v < 10; ++v) {
        LitmusTest lt = makeStoreBuffering(v);
        MachineConfig cfg;
        cfg.model = Model::TSO;
        cfg.numProcs = 2;
        System sys(cfg, lt.traces);
        Results r = sys.run(50'000'000);
        ASSERT_TRUE(r.completed);
        if (r.loadResults[0][0] == 0 && r.loadResults[1][0] == 0)
            ++reorders;
    }
    EXPECT_GT(reorders, 0u);
}

TEST(TsoProcessor, MessagePassingIsOrdered)
{
    // TSO keeps store->store and load->load order: the message-
    // passing outcome r(flag)=1, r(data)=0 is forbidden.
    for (unsigned v = 0; v < 10; ++v) {
        LitmusTest lt = makeMessagePassing(v);
        MachineConfig cfg;
        cfg.model = Model::TSO;
        cfg.numProcs = 2;
        System sys(cfg, lt.traces);
        Results r = sys.run(50'000'000);
        ASSERT_TRUE(r.completed);
        EXPECT_FALSE(r.loadResults[1][0] == 1 &&
                     r.loadResults[1][1] == 0)
            << "variant " << v;
    }
}

TEST(TsoProcessor, CoherencePerLocationHolds)
{
    for (unsigned v = 0; v < 6; ++v) {
        LitmusTest lt = makeCoRR(v);
        MachineConfig cfg;
        cfg.model = Model::TSO;
        cfg.numProcs = 2;
        System sys(cfg, lt.traces);
        Results r = sys.run(50'000'000);
        ASSERT_TRUE(r.completed);
        EXPECT_TRUE(lt.allowedSC(r.loadResults)) << "variant " << v;
    }
}

TEST(TsoProcessor, PerformanceBetweenScAndRc)
{
    Results sc = runWorkload(Model::SC, profileByName("ocean"), 8,
                             12'000);
    Results tso = runWorkload(Model::TSO, profileByName("ocean"), 8,
                              12'000);
    Results rc = runWorkload(Model::RC, profileByName("ocean"), 8,
                             12'000);
    // Store buffering removes the store stalls SC pays, but the
    // ordered load chain keeps TSO at or behind RC.
    EXPECT_LE(tso.execTime, sc.execTime);
    EXPECT_GE(tso.execTime * 20, rc.execTime * 19);
}

TEST(TsoProcessor, SyncOpsDrainTheBuffer)
{
    const Addr lock = layout::lockAddr(3);
    std::vector<Op> ops = {store(0x9000'0000, 5, 2)};
    Op acq;
    acq.type = OpType::Acquire;
    acq.addr = lock;
    acq.gap = 2;
    ops.push_back(acq);
    Op rel;
    rel.type = OpType::Release;
    rel.addr = lock;
    rel.gap = 2;
    ops.push_back(rel);
    ops.push_back(load(0x9000'0000, 2, 0));

    MachineConfig cfg;
    cfg.model = Model::TSO;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.loadResults[0][0], 5u);
    EXPECT_EQ(sys.memory().readValue(lock), 0u);
}

} // namespace
} // namespace bulksc
