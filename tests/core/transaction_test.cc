/**
 * @file
 * Tests for the transactional-memory extension (Section 8): on BulkSC
 * a transaction is a chunk whose boundaries are pinned to
 * TxBegin/TxEnd, so atomicity, isolation, and conflict resolution
 * come from the existing chunk machinery.
 */

#include <gtest/gtest.h>

#include "core/bulk_processor.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
marker(OpType t, std::uint32_t gap = 1)
{
    Op op;
    op.type = t;
    op.gap = gap;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

TEST(Transactions, WritesPublishAtomically)
{
    // P0 updates two words inside a transaction with a long gap in
    // between; P1 polls both. P1 must never observe the first write
    // without the second once the transaction committed — and because
    // the whole transaction is one chunk, no intermediate state is
    // ever visible.
    const Addr a = 0x9000'0000;
    const Addr b = 0x9000'0040;
    std::vector<Op> p0 = {
        marker(OpType::TxBegin, 5),
        store(a, 1, 1),
        load(0x2000, 2500), // long transaction body
        store(b, 1, 1),
        marker(OpType::TxEnd, 1),
    };
    std::vector<Op> p1;
    for (int i = 0; i < 12; ++i) {
        p1.push_back(load(a, 300, static_cast<std::uint32_t>(2 * i)));
        p1.push_back(
            load(b, 1, static_cast<std::uint32_t>(2 * i + 1)));
    }
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(50'000'000);
    ASSERT_TRUE(r.completed);
    for (int i = 0; i < 12; ++i) {
        std::uint64_t va = r.loadResults[1][2 * i];
        std::uint64_t vb = r.loadResults[1][2 * i + 1];
        // (0,0) before commit; (1,1) after; (1,0) forbidden. (0,1)
        // can appear if the polls straddle the commit.
        EXPECT_FALSE(va == 1 && vb == 0) << "poll " << i;
    }
    EXPECT_EQ(sys.memory().readValue(a), 1u);
    EXPECT_EQ(sys.memory().readValue(b), 1u);
}

TEST(Transactions, TransactionOccupiesItsOwnChunk)
{
    // Work, then a transaction, then work: the transaction must not
    // share a chunk with preceding work (commits >= 3).
    std::vector<Op> ops;
    for (int i = 0; i < 60; ++i)
        ops.push_back(load(0x1000 + (i % 8) * 64, 3));
    ops.push_back(marker(OpType::TxBegin, 2));
    ops.push_back(store(0x9000'0100, 7, 2));
    ops.push_back(marker(OpType::TxEnd, 2));
    for (int i = 0; i < 60; ++i)
        ops.push_back(load(0x1000 + (i % 8) * 64, 3));

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.stats.get("bulk.commits"), 3.0);
}

TEST(Transactions, LongTransactionIsNotSplitBySize)
{
    // A transaction far longer than the chunk size must still commit
    // as a single chunk.
    std::vector<Op> ops;
    ops.push_back(marker(OpType::TxBegin, 2));
    for (int i = 0; i < 40; ++i) {
        ops.push_back(load(0x1000 + (i % 8) * 64, 80));
        ops.push_back(store(0x9000'0200 + (i % 4) * 64, i, 80));
    }
    ops.push_back(marker(OpType::TxEnd, 2));

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    cfg.bulk.chunkSize = 500; // transaction is ~6500 instructions
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.stats.get("bulk.commits"), 2.0);
}

TEST(Transactions, ConflictingTransactionsSerialize)
{
    // Both processors transactionally increment-style update the same
    // word: the loser is squashed and re-executes, so the final value
    // is one of the two written values and both finish.
    const Addr x = 0x9000'0300;
    auto mk = [&](std::uint64_t tag) {
        std::vector<Op> ops;
        for (int i = 0; i < 15; ++i) {
            ops.push_back(marker(OpType::TxBegin, 5));
            ops.push_back(load(x, 2));
            ops.push_back(store(x, tag, 30));
            ops.push_back(marker(OpType::TxEnd, 5));
            ops.push_back(load(0x1000, 40));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, {mk(111), mk(222)});
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    std::uint64_t final = sys.memory().readValue(x);
    EXPECT_TRUE(final == 111 || final == 222);
}

TEST(Transactions, NestedTransactionsFlatten)
{
    std::vector<Op> ops;
    ops.push_back(marker(OpType::TxBegin, 2));
    ops.push_back(store(0x9000'0400, 1, 2));
    ops.push_back(marker(OpType::TxBegin, 2)); // nested
    ops.push_back(store(0x9000'0440, 2, 2));
    ops.push_back(marker(OpType::TxEnd, 2));
    ops.push_back(store(0x9000'0480, 3, 2));
    ops.push_back(marker(OpType::TxEnd, 2));
    ops.push_back(load(0x1000, 50));

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(sys.memory().readValue(0x9000'0480), 3u);
}

TEST(Transactions, SerializableUnderVerification)
{
    // Random transactional workload + the SC conformance checker.
    const Addr base = 0x9000'1000;
    auto mk = [&](unsigned p) {
        std::vector<Op> ops;
        std::uint64_t v = (Addr{p} << 32) + 1;
        for (int i = 0; i < 25; ++i) {
            ops.push_back(marker(OpType::TxBegin, 10));
            ops.push_back(load(base + ((p + i) % 6) * 64, 3));
            ops.push_back(store(base + ((p + i) % 6) * 64, v++, 3));
            ops.push_back(marker(OpType::TxEnd, 3));
            ops.push_back(load(0x1000 + p * 64, 60));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System sys(cfg, {mk(0), mk(1), mk(2), mk(3)});
    sys.enableScVerification();
    Results r = sys.run(200'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.stats.get("sc_verifier.verified"), 1.0);
    if (sys.scVerifier() && !sys.scVerifier()->verified()) {
        for (const std::string &e : sys.scVerifier()->errors())
            ADD_FAILURE() << e;
    }
}

TEST(Transactions, NonTransactionalMachineCanTear)
{
    // The same two-store "transfer" with a long body: an observer
    // under fence-free RC can see the first store without the second,
    // while BulkSC (transaction = chunk) never exposes it.
    const Addr a = 0x9000'0600;
    const Addr b = 0x9000'0640;
    auto writer = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 10; ++i) {
            ops.push_back(marker(OpType::TxBegin, 5));
            ops.push_back(store(a, 1, 2));
            ops.push_back(load(0x2000, 500));
            ops.push_back(store(b, 1, 2));
            ops.push_back(marker(OpType::TxEnd, 2));
            ops.push_back(store(a, 0, 20));
            ops.push_back(store(b, 0, 20));
            ops.push_back(load(0x2000, 200));
        }
        return makeTrace(ops);
    };
    auto observer = [&] {
        std::vector<Op> ops;
        for (std::uint32_t i = 0; i < 80; ++i) {
            ops.push_back(load(a, 25, 2 * i));
            ops.push_back(load(b, 1, 2 * i + 1));
        }
        return makeTrace(ops);
    };
    auto torn = [&](Model m) {
        MachineConfig cfg;
        cfg.model = m;
        cfg.numProcs = 2;
        System sys(cfg, {writer(), observer()});
        Results r = sys.run(100'000'000);
        EXPECT_TRUE(r.completed);
        unsigned n = 0;
        for (std::uint32_t i = 0; i < 80; ++i) {
            if (r.loadResults[1][2 * i] == 1 &&
                r.loadResults[1][2 * i + 1] == 0) {
                ++n;
            }
        }
        return n;
    };
    EXPECT_EQ(torn(Model::BSCdypvt), 0u);
    EXPECT_GT(torn(Model::RC), 0u);
}

TEST(Transactions, BaselinesTreatMarkersAsNoOps)
{
    std::vector<Op> ops = {marker(OpType::TxBegin, 2),
                           store(0x9000'0500, 9, 2),
                           marker(OpType::TxEnd, 2),
                           load(0x9000'0500, 2, 0)};
    for (Model m : {Model::SC, Model::TSO, Model::RC, Model::SCpp}) {
        MachineConfig cfg;
        cfg.model = m;
        cfg.numProcs = 1;
        System sys(cfg, {makeTrace(ops)});
        Results r = sys.run(10'000'000);
        ASSERT_TRUE(r.completed) << modelName(m);
        EXPECT_EQ(r.loadResults[0][0], 9u) << modelName(m);
    }
}

} // namespace
} // namespace bulksc
