/**
 * @file
 * Tests for the BulkSC processor: chunk formation and commit, squash
 * and re-execution semantics, conflict detection through signatures,
 * the dynamically-private data machinery, chunk-size shrinking, and
 * the statistics the paper's tables are built from.
 */

#include <gtest/gtest.h>

#include "core/bulk_processor.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

const BulkStats &
bulkStatsOf(System &sys, unsigned p)
{
    auto *bp = dynamic_cast<BulkProcessor *>(&sys.processor(p));
    EXPECT_NE(bp, nullptr);
    return bp->bulkStats();
}

TEST(BulkProcessor, ChunksCommitByInstructionCount)
{
    // ~4000 instructions with the default 1000-instruction chunks
    // must commit about 4 chunks (plus the final flush).
    std::vector<Op> ops;
    for (int i = 0; i < 800; ++i)
        ops.push_back(load(0x1000 + (i % 32) * 64, 4));
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    double commits = r.stats.get("bulk.commits");
    EXPECT_GE(commits, 4.0);
    EXPECT_LE(commits, 6.0);
}

TEST(BulkProcessor, ReadOnlyChunksCommitWithEmptyW)
{
    std::vector<Op> ops;
    for (int i = 0; i < 600; ++i)
        ops.push_back(load(0x1000 + (i % 16) * 64, 4));
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_DOUBLE_EQ(r.stats.get("bulk.empty_w_pct"), 100.0);
}

TEST(BulkProcessor, ConflictSquashesAndReExecutes)
{
    // P1 reads X early and then dawdles inside its first chunk;
    // P0 writes X and commits. P1's chunk must squash and re-read the
    // committed value — slot 0 ends up with the new value.
    const Addr x = 0x9000'0000;
    std::vector<Op> p0 = {store(x, 55, 10)};
    std::vector<Op> p1 = {
        load(x, 1, 0),
        load(0x2000, 900, kNoSlot), // stay inside the chunk a while
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(sys.processor(1).squashes(), 1u);
    EXPECT_EQ(r.loadResults[1][0], 55u);
}

TEST(BulkProcessor, SpeculativeStoresInvisibleUntilCommit)
{
    // P0 writes X at the START of a long chunk; P1 reads X midway.
    // P1 must see the old value (0) unless P0's chunk already
    // committed — and if it reads early and P0 then commits, P1 gets
    // squashed and re-reads 99. Either way, the final observed value
    // is consistent with chunk atomicity: never a torn intermediate.
    const Addr x = 0x9000'0100;
    std::vector<Op> p0 = {
        store(x, 99, 1),
        load(0x2000, 500),     // keep the chunk open
        store(x, 100, 1),      // second update in the same chunk
        load(0x2000, 2000),
    };
    std::vector<Op> p1 = {load(x, 300, 0)};
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    // 0 (before commit) or 100 (after commit) — never 99 alone,
    // because both stores commit atomically with the chunk.
    EXPECT_TRUE(r.loadResults[1][0] == 0 || r.loadResults[1][0] == 100)
        << "observed " << r.loadResults[1][0];
}

TEST(BulkProcessor, DypvtDivertsRepeatedPrivateWrites)
{
    // Repeatedly write the same private lines across chunks: with the
    // dynamically-private optimization the W signature stays small
    // and most writes land in Wpriv.
    std::vector<Op> ops;
    for (int i = 0; i < 1200; ++i)
        ops.push_back(store(0x4000'0000 + (i % 8) * 64, i, 4));
    MachineConfig cfg;
    cfg.numProcs = 1;

    cfg.model = Model::BSCdypvt;
    System dy(cfg, {makeTrace(ops)});
    Results rdy = dy.run(10'000'000);
    ASSERT_TRUE(rdy.completed);

    cfg.model = Model::BSCbase;
    System base(cfg, {makeTrace(ops)});
    Results rb = base.run(10'000'000);
    ASSERT_TRUE(rb.completed);

    EXPECT_LT(rdy.stats.get("bulk.avg_write_set"),
              rb.stats.get("bulk.avg_write_set"));
    EXPECT_GT(rdy.stats.get("bulk.avg_priv_write_set"), 0.0);
    // The base protocol pays a writeback per first write to a dirty
    // line; dypvt skips them.
    EXPECT_GT(rb.stats.get("bulk.base_writebacks"), 0.0);
    EXPECT_LT(rdy.stats.get("bulk.base_writebacks"),
              rb.stats.get("bulk.base_writebacks"));
}

TEST(BulkProcessor, PrivateBufferSuppliesOldVersionOnExternalRead)
{
    // P0 makes a line dirty (commit), then speculatively rewrites it
    // (dypvt -> Private Buffer); P1 reads it while P0's chunk is
    // live: the external access must hit Wpriv and be counted, and
    // P1 must observe the old (committed) value.
    const Addr x = 0x9000'0200;
    std::vector<Op> p0 = {
        store(x, 1, 1),
        load(0x2000, 1100), // chunk 1 ends; x will be committed dirty
        load(0x2000, 600),  // give chunk 1's commit time to finish
        store(x, 2, 1),     // chunk 2: dirty non-spec -> Wpriv
        load(0x2000, 3000), // keep chunk 2 open
    };
    std::vector<Op> p1 = {load(x, 2400, 0)};
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.warmCaches = false;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    const BulkStats &bs = bulkStatsOf(sys, 0);
    if (bs.privBufferSupplies > 0) {
        // The external read arrived while the rewrite was live.
        EXPECT_EQ(r.loadResults[1][0], 1u);
    }
    EXPECT_GT(bs.wprivSizeSum, 0.0);
}

TEST(BulkProcessor, SquashRestoresPrivateBufferLines)
{
    // P1: chunk 1 commits a dirty private-ish line, chunk 2 rewrites
    // it (Private Buffer) and also reads a shared variable that P0
    // commits -> squash. The buffered line must be restored dirty.
    const Addr shared = 0x9000'0300;
    const Addr priv = 0x4000'0000;
    std::vector<Op> p0 = {store(shared, 7, 1200)};
    std::vector<Op> p1 = {
        store(priv, 1, 1),
        load(0x2000, 1100), // chunk boundary; priv committed dirty
        store(priv, 2, 1),  // dypvt: old version -> Private Buffer
        load(shared, 5, 0), // conflict with P0's commit
        load(0x2000, 3000),
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, {makeTrace(p0), makeTrace(p1)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(sys.processor(1).squashes(), 1u);
    // After the squash + re-execution the line is present and the
    // re-executed store's value is the final one.
    EXPECT_TRUE(sys.memory().l1Contains(1, lineOf(priv)));
    EXPECT_EQ(sys.memory().readValue(priv), 2u);
    EXPECT_EQ(r.loadResults[1][0], 7u);
}

TEST(BulkProcessor, StoresAreStallFree)
{
    // A burst of cold store misses: BulkSC retires them without
    // stalling (writes retire from the ROB head even if the line is
    // not in the cache, Section 6), so the run costs on the order of
    // one overlapped memory round trip plus the commit drain — far
    // from 16 serialized misses.
    std::vector<Op> ops;
    for (int i = 0; i < 16; ++i)
        ops.push_back(
            store(layout::kStreamBase + Addr(i) * 2048, i, 1));
    ops.push_back(load(0x1000, 50));
    MachineConfig cfg;
    cfg.numProcs = 1;
    cfg.model = Model::BSCdypvt;
    System bsc(cfg, {makeTrace(ops)});
    Results rb = bsc.run(10'000'000);
    ASSERT_TRUE(rb.completed);
    EXPECT_LT(rb.execTime, 16u * 300 / 4);
}

TEST(BulkProcessor, RepeatedSquashesShrinkChunks)
{
    // Ping-pong writes to one contended line from all processors:
    // squashes must trigger, and the shrink machinery (plus possibly
    // pre-arbitration) must keep every processor making progress.
    const Addr x = 0x9000'0400;
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 400; ++i) {
            ops.push_back(load(x, 3));
            ops.push_back(store(x, i, 3));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System sys(cfg, {mk(), mk(), mk(), mk()});
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("cpu.squashes"), 0.0);
}

TEST(BulkProcessor, ExactSignatureNeverFalselySquashes)
{
    // Disjoint address streams: with the exact (alias-free)
    // signature there is nothing to conflict on.
    auto mk = [&](unsigned p) {
        std::vector<Op> ops;
        for (int i = 0; i < 600; ++i)
            ops.push_back(
                store(0x4000'0000 + Addr{p} * 0x100'0000 + (i % 64) * 64,
                      i, 3));
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCexact;
    cfg.numProcs = 4;
    System sys(cfg, {mk(0), mk(1), mk(2), mk(3)});
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_DOUBLE_EQ(r.stats.get("cpu.squashes"), 0.0);
}

TEST(BulkProcessor, StpvtKeepsStackOutOfSignatures)
{
    // All accesses are stack references: under BSCstpvt neither R nor
    // W should see them (W stays empty; commits are all empty-W).
    std::vector<Op> ops;
    for (int i = 0; i < 800; ++i) {
        Op op = i % 2 ? load(0x1000'0000 + (i % 16) * 64, 3)
                      : store(0x1000'0000 + (i % 16) * 64, i, 3);
        op.stackRef = true;
        ops.push_back(op);
    }
    MachineConfig cfg;
    cfg.model = Model::BSCstpvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_DOUBLE_EQ(r.stats.get("bulk.empty_w_pct"), 100.0);
    EXPECT_DOUBLE_EQ(r.stats.get("bulk.avg_read_set"), 0.0);
    EXPECT_GT(r.stats.get("bulk.avg_priv_write_set"), 0.0);
}

TEST(BulkProcessor, SetOverflowEndsChunkEarly)
{
    // Write more same-set lines than the L1 associativity within what
    // would be one chunk: the chunk must end early rather than lose
    // speculative data (commits > expected-by-instruction-count).
    std::vector<Op> ops;
    // 256-set L1: lines k*256 all map to set 0.
    for (int i = 0; i < 12; ++i)
        ops.push_back(store(Addr{static_cast<unsigned>(i)} * 256 * 32,
                            i, 2));
    ops.push_back(load(0x2000, 50));
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 1;
    System sys(cfg, {makeTrace(ops)});
    Results r = sys.run(10'000'000);
    ASSERT_TRUE(r.completed);
    // ~90 instructions would be a single chunk; the overflow rule
    // must split it.
    EXPECT_GE(r.stats.get("bulk.commits"), 3.0);
    // Bloom-aliased victim vetoes can occasionally force a fill
    // bypass, but the overflow rule keeps it to stray cases.
    EXPECT_LE(sys.memory().fillBypasses(), 2u);
}

TEST(BulkProcessor, EndChunkOnSyncShortensLockWindows)
{
    // With chunk boundaries at synchronization ops, each critical
    // section starts in a fresh chunk: more commits, and contention
    // windows no wider than the critical section itself.
    const Addr lock = layout::lockAddr(9);
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 20; ++i) {
            ops.push_back(load(0x1000 + (i % 8) * 64, 40));
            Op acq;
            acq.type = OpType::Acquire;
            acq.addr = lock;
            acq.gap = 5;
            ops.push_back(acq);
            ops.push_back(store(0xB000'0100, i, 3));
            Op rel;
            rel.type = OpType::Release;
            rel.addr = lock;
            rel.gap = 3;
            ops.push_back(rel);
        }
        return makeTrace(ops);
    };
    MachineConfig plain;
    plain.model = Model::BSCdypvt;
    plain.numProcs = 2;
    System a(plain, {mk(), mk()});
    Results ra = a.run(100'000'000);

    MachineConfig split = plain;
    split.bulk.endChunkOnSync = true;
    System b(split, {mk(), mk()});
    Results rb = b.run(100'000'000);

    ASSERT_TRUE(ra.completed);
    ASSERT_TRUE(rb.completed);
    EXPECT_GT(rb.stats.get("bulk.commits"),
              ra.stats.get("bulk.commits"));
}

TEST(BulkProcessor, TableStatsArePopulated)
{
    auto traces = generateTraces(profileByName("barnes"), 4, 8000);
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System sys(cfg, std::move(traces));
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.stats.get("bulk.commits"), 0.0);
    EXPECT_GT(r.stats.get("bulk.avg_read_set"), 0.0);
    EXPECT_GT(r.stats.get("arb.requests"), 0.0);
    EXPECT_GE(r.stats.get("arb.empty_w_pct"), 0.0);
    EXPECT_GT(r.stats.get("net.bits.WrSig"), 0.0);
}

} // namespace
} // namespace bulksc
