/**
 * @file
 * Unit tests for the commit arbiter: grant/deny rules, W-list
 * lifetime, the RSig optimization, pre-arbitration, and statistics.
 */

#include <gtest/gtest.h>

#include "core/arbiter.hh"

namespace bulksc {
namespace {

struct Harness
{
    Harness(bool rsig = true, unsigned max_commits = 8)
        : net(eq, NetworkConfig{}),
          arb(eq, net, 9, /*processing=*/5, rsig, max_commits)
    {}

    std::shared_ptr<Signature>
    sig(std::initializer_list<LineAddr> lines)
    {
        auto s = std::make_shared<Signature>();
        for (LineAddr l : lines)
            s->insert(l);
        return s;
    }

    /** Request and run to completion; returns the decision. */
    bool
    request(ProcId p, std::shared_ptr<Signature> r,
            std::shared_ptr<Signature> w)
    {
        bool granted = false;
        bool replied = false;
        arb.requestCommit(
            p, ++txn, std::move(w), [r] { return r; },
            [&](bool ok) {
                granted = ok;
                replied = true;
            });
        eq.run();
        EXPECT_TRUE(replied);
        return granted;
    }

    EventQueue eq;
    Network net;
    Arbiter arb;
    std::uint64_t txn = 0; //!< fresh transaction id per request
};

TEST(Arbiter, GrantsWhenListEmpty)
{
    Harness h;
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({1, 2})));
    EXPECT_EQ(h.arb.stats().grants, 1u);
    EXPECT_EQ(h.arb.pendingW(), 1u);
}

TEST(Arbiter, EmptyWNotAddedToList)
{
    Harness h;
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({})));
    EXPECT_EQ(h.arb.pendingW(), 0u);
    EXPECT_EQ(h.arb.stats().emptyWCommits, 1u);
}

TEST(Arbiter, DeniesOnWWCollision)
{
    Harness h;
    ASSERT_TRUE(h.request(0, h.sig({}), h.sig({100})));
    EXPECT_FALSE(h.request(1, h.sig({50}), h.sig({100})));
    EXPECT_EQ(h.arb.stats().denials, 1u);
}

TEST(Arbiter, DeniesOnRWCollision)
{
    // The corner case of Figure 4(b): a chunk whose R overlaps a
    // committing W must be denied.
    Harness h;
    ASSERT_TRUE(h.request(0, h.sig({}), h.sig({100})));
    EXPECT_FALSE(h.request(1, h.sig({100}), h.sig({200})));
}

TEST(Arbiter, GrantsDisjointConcurrentCommits)
{
    Harness h;
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({100})));
    EXPECT_TRUE(h.request(1, h.sig({300}), h.sig({200})));
    EXPECT_EQ(h.arb.pendingW(), 2u);
}

TEST(Arbiter, CommitDoneReleasesW)
{
    Harness h;
    auto w = h.sig({100});
    ASSERT_TRUE(h.request(0, h.sig({}), w));
    EXPECT_FALSE(h.request(1, h.sig({100}), h.sig({})));
    h.arb.commitDone(w);
    EXPECT_EQ(h.arb.pendingW(), 0u);
    EXPECT_TRUE(h.request(1, h.sig({100}), h.sig({})));
}

TEST(Arbiter, MaxSimultaneousCommitsEnforced)
{
    Harness h(true, 2);
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({1 * 1000})));
    EXPECT_TRUE(h.request(1, h.sig({}), h.sig({2 * 1000})));
    EXPECT_FALSE(h.request(2, h.sig({}), h.sig({3 * 1000})));
}

TEST(Arbiter, RsigOnlyRequestedWhenListNonEmpty)
{
    Harness h;
    ASSERT_TRUE(h.request(0, h.sig({}), h.sig({})));
    EXPECT_EQ(h.arb.stats().rsigRequired, 0u);

    ASSERT_TRUE(h.request(1, h.sig({}), h.sig({100})));
    EXPECT_EQ(h.arb.stats().rsigRequired, 0u);

    // List now non-empty: the next request needs its R signature.
    ASSERT_TRUE(h.request(2, h.sig({500}), h.sig({600})));
    EXPECT_EQ(h.arb.stats().rsigRequired, 1u);
}

TEST(Arbiter, RsigOffSendsRUpfront)
{
    Harness h(false);
    ASSERT_TRUE(h.request(0, h.sig({10}), h.sig({20})));
    EXPECT_EQ(h.arb.stats().rsigRequired, 0u);
    EXPECT_GT(h.net.bitsSent(TrafficClass::RdSig), 0u);
}

TEST(Arbiter, RsigOptimizationSavesRTraffic)
{
    Harness with(true), without(false);
    // Single commit with an empty arbiter list.
    with.request(0, with.sig({1, 2, 3}), with.sig({10}));
    without.request(0, without.sig({1, 2, 3}), without.sig({10}));
    EXPECT_EQ(with.net.bitsSent(TrafficClass::RdSig), 0u);
    EXPECT_GT(without.net.bitsSent(TrafficClass::RdSig), 0u);
}

TEST(Arbiter, SquashedChunkDeniedViaNullR)
{
    Harness h;
    ASSERT_TRUE(h.request(0, h.sig({}), h.sig({100})));
    // Second requester's chunk vanished before R could be supplied.
    bool granted = true;
    h.arb.requestCommit(
        1, ++h.txn, h.sig({200}),
        [] { return std::shared_ptr<Signature>(); },
        [&](bool ok) { granted = ok; });
    h.eq.run();
    EXPECT_FALSE(granted);
}

TEST(Arbiter, PreArbitrationBlocksOthers)
{
    Harness h;
    bool owner_granted = false;
    h.arb.preArbitrate(2, [&] { owner_granted = true; });
    h.eq.run();
    ASSERT_TRUE(owner_granted);

    // Others are denied while the reservation holds...
    EXPECT_FALSE(h.request(0, h.sig({}), h.sig({1})));
    // ...the owner's request is processed and releases the arbiter...
    EXPECT_TRUE(h.request(2, h.sig({}), h.sig({})));
    // ...after which normal operation resumes.
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({1})));
    EXPECT_EQ(h.arb.stats().preArbitrations, 1u);
}

TEST(Arbiter, PreArbitrationWaitsForDrain)
{
    Harness h;
    auto w = h.sig({100});
    ASSERT_TRUE(h.request(0, h.sig({}), w));
    bool owner_granted = false;
    h.arb.preArbitrate(1, [&] { owner_granted = true; });
    h.eq.run();
    EXPECT_FALSE(owner_granted); // a commit is still in flight
    h.arb.commitDone(w);
    h.eq.run();
    EXPECT_TRUE(owner_granted);
}

TEST(Arbiter, RacingRequestsCheckedAtomically)
{
    // Regression test: two requests in flight simultaneously, where
    // the second's R collides with the first's W. A non-atomic
    // implementation that decided "no R needed" at arrival (while the
    // list was still empty) would grant both — an SC hole (this is
    // exactly how the store-buffering litmus can break).
    Harness h;
    bool a_granted = false, b_granted = false;
    auto wa = h.sig({100});
    auto wb = h.sig({200});
    auto rb = h.sig({100}); // collides with A's W
    h.arb.requestCommit(
        0, ++h.txn, wa, [&] { return h.sig({300}); },
        [&](bool ok) { a_granted = ok; });
    h.arb.requestCommit(
        1, ++h.txn, wb, [rb] { return rb; },
        [&](bool ok) { b_granted = ok; });
    h.eq.run();
    EXPECT_TRUE(a_granted);
    EXPECT_FALSE(b_granted);
}

TEST(Arbiter, RacingDisjointRequestsBothGranted)
{
    Harness h;
    bool a = false, b = false;
    h.arb.requestCommit(
        0, ++h.txn, h.sig({100}), [&] { return h.sig({101}); },
        [&](bool ok) { a = ok; });
    h.arb.requestCommit(
        1, ++h.txn, h.sig({200}), [&] { return h.sig({201}); },
        [&](bool ok) { b = ok; });
    h.eq.run();
    EXPECT_TRUE(a);
    EXPECT_TRUE(b);
}

TEST(Arbiter, DuplicateRequestAnsweredFromDecisionCache)
{
    // A retransmitted request (same proc, same txn) must be answered
    // from the cached decision, never re-decided: a granted W is
    // already in the list and would collide with itself.
    Harness h;
    auto w = h.sig({100});
    bool granted = false;
    h.arb.requestCommit(
        0, 1, w, [&] { return h.sig({}); },
        [&](bool ok) { granted = ok; });
    h.eq.run();
    ASSERT_TRUE(granted);
    ASSERT_EQ(h.arb.pendingW(), 1u);

    bool re_granted = false;
    h.arb.requestCommit(
        0, 1, w, [&] { return h.sig({}); },
        [&](bool ok) { re_granted = ok; });
    h.eq.run();
    EXPECT_TRUE(re_granted); // cached grant, not a self-collision
    EXPECT_EQ(h.arb.stats().dupRequests, 1u);
    EXPECT_EQ(h.arb.pendingW(), 1u); // W not inserted twice
    EXPECT_EQ(h.arb.stats().grants, 1u);
}

TEST(Arbiter, DuplicateOfDenialResendsDenial)
{
    Harness h;
    ASSERT_TRUE(h.request(0, h.sig({}), h.sig({100})));
    auto deny_w = h.sig({100});
    bool granted = true;
    h.arb.requestCommit(
        1, 5, deny_w, [&] { return h.sig({}); },
        [&](bool ok) { granted = ok; });
    h.eq.run();
    ASSERT_FALSE(granted);
    // Retransmission of the denied txn: cached denial comes back.
    bool re_granted = true;
    bool replied = false;
    h.arb.requestCommit(
        1, 5, deny_w, [&] { return h.sig({}); },
        [&](bool ok) {
            re_granted = ok;
            replied = true;
        });
    h.eq.run();
    EXPECT_TRUE(replied);
    EXPECT_FALSE(re_granted);
    EXPECT_EQ(h.arb.stats().denials, 1u); // decided exactly once
}

TEST(Arbiter, TimeWeightedStats)
{
    Harness h;
    auto w = h.sig({100});
    ASSERT_TRUE(h.request(0, h.sig({}), w));
    // Advance time with the W pending.
    h.eq.schedule(h.eq.now() + 1000, [] {});
    h.eq.run();
    h.arb.commitDone(w);
    const ArbiterStats &s = h.arb.stats();
    Tick total = h.eq.now();
    EXPECT_GT(s.avgPendingW(total), 0.0);
    EXPECT_GT(s.nonEmptyFrac(total), 0.0);
    EXPECT_LE(s.nonEmptyFrac(total), 1.0);
}

} // namespace
} // namespace bulksc
