/**
 * @file
 * Unit tests for the distributed arbiter with G-arbiter coordination
 * (Section 4.2.3).
 */

#include <gtest/gtest.h>

#include "core/distributed_arbiter.hh"

namespace bulksc {
namespace {

struct Harness
{
    explicit Harness(unsigned modules = 4)
        : net(eq, NetworkConfig{}),
          arb(eq, net, 16, modules, /*processing=*/5, /*rsig=*/true)
    {}

    std::shared_ptr<Signature>
    sig(std::initializer_list<LineAddr> lines)
    {
        auto s = std::make_shared<Signature>();
        for (LineAddr l : lines)
            s->insert(l);
        return s;
    }

    bool
    request(ProcId p, std::shared_ptr<Signature> r,
            std::shared_ptr<Signature> w)
    {
        bool granted = false;
        arb.requestCommit(
            p, ++txn, std::move(w), [r] { return r; },
            [&](bool ok) { granted = ok; });
        eq.run();
        return granted;
    }

    EventQueue eq;
    Network net;
    DistributedArbiter arb;
    std::uint64_t txn = 0; //!< fresh transaction id per request
};

TEST(DistributedArbiter, SingleRangeCommitUsesOneModule)
{
    Harness h;
    // Lines 0, 4, 8 share the first 32 KB granule (range 0).
    EXPECT_TRUE(h.request(0, h.sig({4}), h.sig({0, 8})));
    EXPECT_EQ(h.arb.singleRangeCommits(), 1u);
    EXPECT_EQ(h.arb.multiRangeCommits(), 0u);
}

TEST(DistributedArbiter, MultiRangeCommitGoesThroughGArbiter)
{
    Harness h;
    EXPECT_TRUE(h.request(
        0, h.sig({}), h.sig({0, 1 * 1024, 2 * 1024})));
    EXPECT_EQ(h.arb.multiRangeCommits(), 1u);
}

TEST(DistributedArbiter, CollisionDetectedWithinRange)
{
    Harness h;
    ASSERT_TRUE(h.request(0, h.sig({}), h.sig({100})));
    EXPECT_FALSE(h.request(1, h.sig({100}), h.sig({})));
}

TEST(DistributedArbiter, DisjointRangesCommitConcurrently)
{
    Harness h;
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({0})));
    EXPECT_TRUE(h.request(1, h.sig({}), h.sig({1 * 1024})));
    EXPECT_TRUE(h.request(2, h.sig({}), h.sig({2 * 1024})));
}

TEST(DistributedArbiter, MultiRangeCollisionDenied)
{
    Harness h;
    auto w = h.sig({0, 1 * 1024});
    ASSERT_TRUE(h.request(0, h.sig({}), w)); // holds ranges 0 and 1
    // New multi-range chunk overlapping range 1's W must be denied.
    EXPECT_FALSE(h.request(1, h.sig({1 * 1024}),
                           h.sig({2 * 1024, 3 * 1024})));
    // After the first commit completes, it is granted.
    h.arb.commitDone(w);
    EXPECT_TRUE(h.request(1, h.sig({1 * 1024}),
                          h.sig({2 * 1024, 3 * 1024})));
}

TEST(DistributedArbiter, FailedMultiRangeReleasesReservations)
{
    Harness h;
    auto w0 = h.sig({0});
    ASSERT_TRUE(h.request(0, h.sig({}), w0)); // range 0 busy
    // Multi-range request touching ranges 0 (collides) and 1: denied,
    // and its tentative reservation in range 1 must be released.
    EXPECT_FALSE(h.request(1, h.sig({}), h.sig({0, 1 * 1024})));
    EXPECT_TRUE(h.request(2, h.sig({1 * 1024}), h.sig({5 * 1024})));
}

TEST(DistributedArbiter, CommitDoneReleasesAllRanges)
{
    Harness h;
    auto w = h.sig({0, 1 * 1024, 2 * 1024, 3 * 1024});
    ASSERT_TRUE(h.request(0, h.sig({}), w));
    EXPECT_FALSE(h.request(1, h.sig({2 * 1024}), h.sig({})));
    h.arb.commitDone(w);
    EXPECT_TRUE(h.request(1, h.sig({2 * 1024}), h.sig({})));
}

TEST(DistributedArbiter, EmptySignaturesGrantImmediately)
{
    Harness h;
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({})));
    EXPECT_EQ(h.arb.stats().emptyWCommits, 1u);
}

TEST(DistributedArbiter, PreArbitrationAcrossModules)
{
    Harness h;
    bool granted = false;
    h.arb.preArbitrate(3, [&] { granted = true; });
    h.eq.run();
    ASSERT_TRUE(granted);
    EXPECT_FALSE(h.request(0, h.sig({}), h.sig({0})));
    EXPECT_TRUE(h.request(3, h.sig({}), h.sig({0})));
    EXPECT_TRUE(h.request(0, h.sig({}), h.sig({1})));
}

TEST(DistributedArbiter, MultiRangeGeneratesMoreMessages)
{
    // Figure 8: the G-arbiter path has more messages/latency than the
    // single-arbiter path.
    Harness a, b;
    a.request(0, a.sig({}), a.sig({0, 4}));          // single range
    b.request(0, b.sig({}), b.sig({0, 1 * 1024}));   // two ranges
    EXPECT_GT(b.net.messages(), a.net.messages());
}

} // namespace
} // namespace bulksc
