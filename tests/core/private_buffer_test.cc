/**
 * @file
 * Unit tests for the Private Buffer (Section 5.2) and the chunk
 * descriptor state machine in core/bdm.hh.
 */

#include <gtest/gtest.h>

#include "core/bdm.hh"

namespace bulksc {
namespace {

TEST(PrivateBuffer, CapacityAndMembership)
{
    PrivateBuffer pb(3);
    EXPECT_FALSE(pb.full());
    EXPECT_TRUE(pb.insert(1));
    EXPECT_TRUE(pb.insert(2));
    EXPECT_TRUE(pb.insert(3));
    EXPECT_TRUE(pb.full());
    EXPECT_FALSE(pb.insert(4)); // overflow: caller falls back to W
    EXPECT_TRUE(pb.contains(2));
    EXPECT_FALSE(pb.contains(4));
    EXPECT_EQ(pb.size(), 3u);
}

TEST(PrivateBuffer, ReinsertingExistingLineIsFree)
{
    PrivateBuffer pb(2);
    EXPECT_TRUE(pb.insert(7));
    EXPECT_TRUE(pb.insert(8));
    // Already present: succeeds even though the buffer is full.
    EXPECT_TRUE(pb.insert(7));
    EXPECT_EQ(pb.size(), 2u);
}

TEST(PrivateBuffer, EraseAndClear)
{
    PrivateBuffer pb(4);
    pb.insert(1);
    pb.insert(2);
    pb.erase(1);
    EXPECT_FALSE(pb.contains(1));
    EXPECT_TRUE(pb.contains(2));
    pb.clear();
    EXPECT_EQ(pb.size(), 0u);
    EXPECT_FALSE(pb.full());
}

TEST(PrivateBuffer, HighWatermarkTracksPeak)
{
    PrivateBuffer pb(8);
    for (LineAddr l = 0; l < 5; ++l)
        pb.insert(l);
    pb.erase(0);
    pb.erase(1);
    EXPECT_EQ(pb.highWatermark(), 5u);
    EXPECT_EQ(pb.size(), 3u);
}

TEST(PrivateBuffer, DefaultCapacityMatchesPaper)
{
    // "This buffer can hold ~24 lines" (Section 5.2).
    PrivateBuffer pb;
    for (LineAddr l = 0; l < 24; ++l)
        EXPECT_TRUE(pb.insert(l));
    EXPECT_TRUE(pb.full());
}

TEST(Chunk, InitialStateIsOpen)
{
    Chunk c(7, 123, 1000, SignatureConfig{});
    EXPECT_EQ(c.seq, 7u);
    EXPECT_EQ(c.startPos, 123u);
    EXPECT_EQ(c.targetSize, 1000u);
    EXPECT_FALSE(c.endReached);
    EXPECT_FALSE(c.readyToArbitrate());
    EXPECT_TRUE(c.r.empty());
    EXPECT_TRUE(c.w.empty());
    EXPECT_TRUE(c.wpriv.empty());
}

TEST(Chunk, ReadyToArbitrateRequiresEverythingDrained)
{
    Chunk c(0, 0, 100, SignatureConfig{});
    c.endReached = true;
    EXPECT_TRUE(c.readyToArbitrate());

    c.inflightLoads = 1;
    EXPECT_FALSE(c.readyToArbitrate());
    c.inflightLoads = 0;

    c.outstandingStoreLines.insert(42);
    EXPECT_FALSE(c.readyToArbitrate());
    c.outstandingStoreLines.clear();

    c.pendingFwd = 1;
    EXPECT_FALSE(c.readyToArbitrate());
    c.pendingFwd = 0;

    c.arbitrating = true;
    EXPECT_FALSE(c.readyToArbitrate());
    c.arbitrating = false;

    EXPECT_TRUE(c.readyToArbitrate());
}

TEST(Chunk, SignaturesAreIndependent)
{
    Chunk c(0, 0, 100, SignatureConfig{});
    c.r.insert(1);
    c.w.insert(2);
    c.wpriv.insert(3);
    EXPECT_TRUE(c.r.contains(1));
    EXPECT_FALSE(c.w.containsExact(1));
    EXPECT_FALSE(c.wpriv.containsExact(2));
}

} // namespace
} // namespace bulksc
