/**
 * @file
 * Unit tests for the memory-order graph: po/rf/co/fr edge derivation
 * from committed chunk logs, writer-tag resolution, stale-read
 * violation detection with attribution, and the committed-writer
 * directory the load instrumentation queries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/mem_order_graph.hh"

namespace bulksc {
namespace {

using EdgeKind = MemOrderGraph::EdgeKind;

constexpr Addr kX = 0x1000;
constexpr Addr kY = 0x2000;

LoggedAccess
storeOp(Addr a, std::uint64_t v)
{
    return {a, v, true};
}

LoggedAccess
loadFrom(Addr a, ProcId writer_proc, std::uint64_t writer_seq,
         std::uint32_t writer_idx = 0)
{
    LoggedAccess la{a, 0, false};
    la.writer = {writer_proc, writer_seq, writer_idx};
    return la;
}

LoggedAccess
loadInitial(Addr a)
{
    return {a, 0, false}; // default WriterRef = initial memory
}

TEST(MemOrderGraph, PoChainsChunksOfOneProcessor)
{
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 0, {storeOp(kX, 1)});
    g.chunkCommitted(20, 0, 1, {storeOp(kX, 2)});
    g.chunkCommitted(30, 0, 2, {});
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.edgeCount(EdgeKind::Po), 2u);
    // The co edge between the two writes coincides with the po edge;
    // the graph keeps one edge per node pair (first witness wins).
    EXPECT_EQ(g.edgeCount(EdgeKind::Co), 0u);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(MemOrderGraph, RfEdgeFromTaggedWriter)
{
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 5, {storeOp(kX, 1)});
    g.chunkCommitted(20, 1, 9, {loadFrom(kX, 0, 5)});
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.edgeCount(EdgeKind::Rf), 1u);
    EXPECT_EQ(g.unmatchedReads(), 0u);
}

TEST(MemOrderGraph, CommittedWriterTracksLatestStore)
{
    MemOrderGraph g;
    EXPECT_EQ(g.committedWriter(kX), WriterRef{});
    g.chunkCommitted(10, 0, 0, {storeOp(kX, 1)});
    g.chunkCommitted(20, 1, 4, {storeOp(kX, 2)});
    WriterRef w = g.committedWriter(kX);
    EXPECT_EQ(w.proc, 1u);
    EXPECT_EQ(w.seq, 4u);
    EXPECT_EQ(g.committedWriter(kY), WriterRef{});
}

TEST(MemOrderGraph, FreshReadGetsFrToNextWrite)
{
    // Reader observes the latest write; a later write to the same
    // address puts the reader before it (fr), not a violation.
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 0, {storeOp(kX, 1)});
    g.chunkCommitted(20, 1, 0, {loadFrom(kX, 0, 0)});
    g.chunkCommitted(30, 2, 0, {storeOp(kX, 2)});
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.edgeCount(EdgeKind::Fr), 1u);
    EXPECT_EQ(g.edgeCount(EdgeKind::Co), 1u);
}

TEST(MemOrderGraph, InitialReadBeforeAnyWriteGetsFrToFirstWrite)
{
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 0, {loadInitial(kX)});
    g.chunkCommitted(20, 1, 0, {storeOp(kX, 1)});
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.edgeCount(EdgeKind::Fr), 1u);
}

TEST(MemOrderGraph, StaleReadWriteBackCycleIsDetected)
{
    // The fault-injection shape: C1 (cpu0) writes x and commits; C2
    // (cpu1) read x *before* C1's commit (stale tag: initial memory)
    // and also writes x, committing after C1. co(C1 -> C2) plus
    // fr(C2 -> C1) is a 2-cycle: no serial chunk order exists.
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 1, {storeOp(kX, 1)});
    g.chunkCommitted(20, 1, 2, {loadInitial(kX), storeOp(kX, 2)});
    EXPECT_FALSE(g.ok());
    EXPECT_EQ(g.cyclesDetected(), 1u);
    ASSERT_EQ(g.violations().size(), 1u);
    const MemOrderGraph::Violation &v = g.violations()[0];
    EXPECT_EQ(v.tick, 20u);
    ASSERT_EQ(v.edges.size(), 2u);
    // Attribution: both edges name x, the pair {co, fr}.
    bool saw_co = false, saw_fr = false;
    for (const auto &e : v.edges) {
        EXPECT_EQ(e.addr, kX);
        saw_co |= e.kind == EdgeKind::Co;
        saw_fr |= e.kind == EdgeKind::Fr;
    }
    EXPECT_TRUE(saw_co);
    EXPECT_TRUE(saw_fr);
    std::string desc = g.describe(v);
    EXPECT_NE(desc.find("cpu0#1"), std::string::npos) << desc;
    EXPECT_NE(desc.find("cpu1#2"), std::string::npos) << desc;
}

TEST(MemOrderGraph, StoreBufferingEscapeIsDetected)
{
    // Dekker under a broken arbiter: both chunks read the other's
    // variable as initial memory yet both commit. fr(C0 -> C1) on y
    // and fr(C1 -> C0) on x close a 2-cycle.
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 0, {storeOp(kX, 1), loadInitial(kY)});
    g.chunkCommitted(20, 1, 0, {storeOp(kY, 1), loadInitial(kX)});
    EXPECT_FALSE(g.ok());
    EXPECT_EQ(g.cyclesDetected(), 1u);
    ASSERT_EQ(g.violations().size(), 1u);
    for (const auto &e : g.violations()[0].edges)
        EXPECT_EQ(e.kind, EdgeKind::Fr);
}

TEST(MemOrderGraph, CheckingContinuesAfterAViolation)
{
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 1, {storeOp(kX, 1)});
    g.chunkCommitted(20, 1, 2, {loadInitial(kX), storeOp(kX, 2)});
    ASSERT_FALSE(g.ok());
    // Later well-formed commits still work and add no violations.
    // (The tag names the store at log index 1 of cpu1's chunk 2.)
    g.chunkCommitted(30, 0, 3, {loadFrom(kX, 1, 2, 1)});
    g.chunkCommitted(40, 1, 4, {storeOp(kY, 1)});
    EXPECT_EQ(g.cyclesDetected(), 1u);
    EXPECT_EQ(g.numNodes(), 4u);
}

TEST(MemOrderGraph, ViolationCapBoundsStorageNotCounting)
{
    MemOrderGraph g(1);
    // Two independent stale-read cycles on different addresses.
    g.chunkCommitted(10, 0, 0, {storeOp(kX, 1)});
    g.chunkCommitted(20, 1, 0, {loadInitial(kX), storeOp(kX, 2)});
    g.chunkCommitted(30, 0, 1, {storeOp(kY, 1)});
    g.chunkCommitted(40, 1, 1, {loadInitial(kY), storeOp(kY, 2)});
    EXPECT_EQ(g.cyclesDetected(), 2u);
    EXPECT_EQ(g.violations().size(), 1u);
}

TEST(MemOrderGraph, UnmatchedWriterTagIsCountedNotFatal)
{
    MemOrderGraph g;
    g.chunkCommitted(10, 0, 0, {storeOp(kX, 1)});
    // Tag references a writer that never existed.
    g.chunkCommitted(20, 1, 0, {loadFrom(kX, 5, 99)});
    EXPECT_EQ(g.unmatchedReads(), 1u);
    EXPECT_TRUE(g.ok());
}

} // namespace
} // namespace bulksc
