/**
 * @file
 * Unit tests for the incremental (Pearce-Kelly) cycle detector: edge
 * insertion outcomes, topological-order maintenance under back-edge
 * reordering, minimal-cycle extraction, and a randomized DAG stress
 * test cross-checked against a from-scratch reachability oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/cycle_detector.hh"
#include "sim/rng.hh"

namespace bulksc {
namespace {

using NodeId = CycleDetector::NodeId;
using Outcome = CycleDetector::EdgeOutcome;

TEST(CycleDetector, ChainInsertsAreAccepted)
{
    CycleDetector d;
    for (int i = 0; i < 5; ++i)
        d.addNode();
    for (NodeId i = 0; i < 4; ++i)
        EXPECT_EQ(d.addEdge(i, i + 1), Outcome::Inserted);
    EXPECT_EQ(d.numNodes(), 5u);
    EXPECT_EQ(d.numEdges(), 4u);
    EXPECT_TRUE(d.hasEdge(0, 1));
    EXPECT_FALSE(d.hasEdge(1, 0));
    // Forward chain in creation order: no reordering needed.
    EXPECT_EQ(d.reorders(), 0u);
}

TEST(CycleDetector, DuplicateEdgeIsANoOp)
{
    CycleDetector d;
    d.addNode();
    d.addNode();
    EXPECT_EQ(d.addEdge(0, 1), Outcome::Inserted);
    EXPECT_EQ(d.addEdge(0, 1), Outcome::Duplicate);
    EXPECT_EQ(d.numEdges(), 1u);
}

TEST(CycleDetector, TwoCycleIsRejectedWithPath)
{
    CycleDetector d;
    d.addNode();
    d.addNode();
    ASSERT_EQ(d.addEdge(0, 1), Outcome::Inserted);
    std::vector<NodeId> path;
    EXPECT_EQ(d.addEdge(1, 0, &path), Outcome::Cycle);
    // Path is the existing 0 -> 1 route, closed by the rejected edge.
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 1u);
    // The cycle-closing edge was not inserted.
    EXPECT_FALSE(d.hasEdge(1, 0));
    EXPECT_EQ(d.numEdges(), 1u);
}

TEST(CycleDetector, SelfLoopIsACycle)
{
    CycleDetector d;
    d.addNode();
    std::vector<NodeId> path;
    EXPECT_EQ(d.addEdge(0, 0, &path), Outcome::Cycle);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], 0u);
}

TEST(CycleDetector, ReportsShortestCycle)
{
    // Two v -> u paths of different lengths; BFS must return the
    // short one.
    CycleDetector d;
    for (int i = 0; i < 5; ++i)
        d.addNode();
    // Long path 0 -> 1 -> 2 -> 3, short path 0 -> 3.
    ASSERT_EQ(d.addEdge(0, 1), Outcome::Inserted);
    ASSERT_EQ(d.addEdge(1, 2), Outcome::Inserted);
    ASSERT_EQ(d.addEdge(2, 3), Outcome::Inserted);
    ASSERT_EQ(d.addEdge(0, 3), Outcome::Inserted);
    std::vector<NodeId> path;
    EXPECT_EQ(d.addEdge(3, 0, &path), Outcome::Cycle);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
}

TEST(CycleDetector, BackEdgeReordersAndKeepsChecking)
{
    // Insert nodes in an order that forces back edges (edge from a
    // later-created node to an earlier one that is still legal).
    CycleDetector d;
    for (int i = 0; i < 4; ++i)
        d.addNode();
    ASSERT_EQ(d.addEdge(2, 3), Outcome::Inserted);
    // 3 -> 0 goes against creation order: needs a reorder, no cycle.
    ASSERT_EQ(d.addEdge(3, 0), Outcome::Inserted);
    EXPECT_GE(d.reorders(), 1u);
    // Order must now satisfy 2 < 3 < 0.
    EXPECT_LT(d.orderOf(2), d.orderOf(3));
    EXPECT_LT(d.orderOf(3), d.orderOf(0));
    // And a genuine cycle through the reordered region is caught.
    ASSERT_EQ(d.addEdge(0, 1), Outcome::Inserted);
    std::vector<NodeId> path;
    EXPECT_EQ(d.addEdge(1, 2, &path), Outcome::Cycle);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 2u);
    EXPECT_EQ(path.back(), 1u);
}

// From-scratch reachability oracle (DFS on an explicit edge list).
bool
reaches(const std::vector<std::vector<NodeId>> &adj, NodeId from,
        NodeId to)
{
    std::vector<NodeId> stack{from};
    std::vector<bool> seen(adj.size(), false);
    seen[from] = true;
    while (!stack.empty()) {
        NodeId n = stack.back();
        stack.pop_back();
        if (n == to)
            return true;
        for (NodeId m : adj[n]) {
            if (!seen[m]) {
                seen[m] = true;
                stack.push_back(m);
            }
        }
    }
    return false;
}

TEST(CycleDetector, RandomizedAgainstReachabilityOracle)
{
    const unsigned kNodes = 64;
    Rng rng(12345);
    CycleDetector d;
    std::vector<std::vector<NodeId>> adj(kNodes);
    for (unsigned i = 0; i < kNodes; ++i)
        d.addNode();

    unsigned inserted = 0, cycles = 0;
    for (unsigned trial = 0; trial < 2000; ++trial) {
        NodeId u = static_cast<NodeId>(rng.below(kNodes));
        NodeId v = static_cast<NodeId>(rng.below(kNodes));
        bool would_cycle = u == v || reaches(adj, v, u);
        bool dup = std::find(adj[u].begin(), adj[u].end(), v) !=
                   adj[u].end();
        std::vector<NodeId> path;
        Outcome o = d.addEdge(u, v, &path);
        if (dup) {
            EXPECT_EQ(o, Outcome::Duplicate);
        } else if (would_cycle) {
            EXPECT_EQ(o, Outcome::Cycle) << u << "->" << v;
            ++cycles;
            // The reported path must be a real v -> u path.
            ASSERT_GE(path.size(), 1u);
            EXPECT_EQ(path.front(), v);
            EXPECT_EQ(path.back(), u);
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                EXPECT_TRUE(d.hasEdge(path[i], path[i + 1]));
        } else {
            EXPECT_EQ(o, Outcome::Inserted) << u << "->" << v;
            adj[u].push_back(v);
            ++inserted;
            // Topological order invariant over every inserted edge.
            EXPECT_LT(d.orderOf(u), d.orderOf(v));
        }
    }
    EXPECT_EQ(d.numEdges(), inserted);
    EXPECT_GT(cycles, 0u); // the stress actually exercised rejection
    // Full invariant sweep at the end.
    for (NodeId u = 0; u < kNodes; ++u)
        for (NodeId v : adj[u])
            EXPECT_LT(d.orderOf(u), d.orderOf(v));
}

} // namespace
} // namespace bulksc
