/**
 * @file
 * Unit tests for the vector clock and the happens-before race
 * detector: join/comparison algebra, unsynchronized conflicting
 * accesses racing, release/acquire chains ordering them, and the
 * failed-test-and-set case (a sync *read* must not publish the
 * reader's prior writes).
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/race_detector.hh"
#include "analysis/vector_clock.hh"

namespace bulksc {
namespace {

constexpr Addr kSyncLo = 0x1000;
constexpr Addr kSyncHi = 0x2000;
constexpr Addr kLock = 0x1008;
constexpr Addr kData = 0x40;

RaceDetector::Config
cfg(unsigned procs)
{
    return {procs, kSyncLo, kSyncHi, 32};
}

LoggedAccess
load(Addr a)
{
    return {a, 0, false};
}

LoggedAccess
store(Addr a)
{
    return {a, 0, true};
}

TEST(VectorClock, JoinIsPointwiseMax)
{
    VectorClock a(3), b(3);
    a[0] = 5;
    a[2] = 1;
    b[1] = 7;
    b[2] = 4;
    a.join(b);
    EXPECT_EQ(a[0], 5u);
    EXPECT_EQ(a[1], 7u);
    EXPECT_EQ(a[2], 4u);
    // Join is idempotent.
    VectorClock before = a;
    a.join(b);
    EXPECT_TRUE(a == before);
}

TEST(VectorClock, LeqIsComponentwise)
{
    VectorClock a(2), b(2);
    a[0] = 1;
    b[0] = 2;
    b[1] = 3;
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    // Incomparable pair: neither direction holds.
    VectorClock x(2), y(2);
    x[0] = 1;
    y[1] = 1;
    EXPECT_FALSE(x.leq(y));
    EXPECT_FALSE(y.leq(x));
    EXPECT_TRUE(x.leq(x));
}

TEST(RaceDetector, UnsynchronizedWriteWriteRaces)
{
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 0, {store(kData)});
    rd.chunkCommitted(20, 1, 0, {store(kData)});
    EXPECT_EQ(rd.racesFound(), 1u);
    EXPECT_EQ(rd.racyAddrs(), 1u);
    ASSERT_EQ(rd.reports().size(), 1u);
    const RaceDetector::Report &r = rd.reports()[0];
    EXPECT_EQ(r.addr, kData);
    EXPECT_EQ(r.priorProc, 0u);
    EXPECT_TRUE(r.priorIsWrite);
    EXPECT_EQ(r.proc, 1u);
    EXPECT_TRUE(r.isWrite);
}

TEST(RaceDetector, UnsynchronizedReadWriteRaces)
{
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 0, {load(kData)});
    rd.chunkCommitted(20, 1, 0, {store(kData)});
    EXPECT_EQ(rd.racesFound(), 1u);

    // And the mirror: write then unordered read.
    RaceDetector rd2(cfg(2));
    rd2.chunkCommitted(10, 0, 0, {store(kData)});
    rd2.chunkCommitted(20, 1, 0, {load(kData)});
    EXPECT_EQ(rd2.racesFound(), 1u);
}

TEST(RaceDetector, ConcurrentReadsDoNotRace)
{
    RaceDetector rd(cfg(3));
    rd.chunkCommitted(10, 0, 0, {load(kData)});
    rd.chunkCommitted(20, 1, 0, {load(kData)});
    rd.chunkCommitted(30, 2, 0, {load(kData)});
    EXPECT_EQ(rd.racesFound(), 0u);
    EXPECT_EQ(rd.checkedAccesses(), 3u);
}

TEST(RaceDetector, SameProcessorAccessesAreProgramOrdered)
{
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 0, {store(kData)});
    rd.chunkCommitted(20, 0, 1, {store(kData), load(kData)});
    EXPECT_EQ(rd.racesFound(), 0u);
}

TEST(RaceDetector, ReleaseAcquireOrdersConflictingAccesses)
{
    // P0: x = 1; unlock(L).  P1: lock(L); x = 2.  Properly
    // synchronized: the release/acquire pair on L orders the writes.
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 0, {store(kData), store(kLock)});
    rd.chunkCommitted(20, 1, 0, {load(kLock), store(kData)});
    EXPECT_EQ(rd.racesFound(), 0u);
    EXPECT_EQ(rd.syncOps(), 2u);
    EXPECT_EQ(rd.checkedAccesses(), 2u);
}

TEST(RaceDetector, TransitiveReleaseAcquireChain)
{
    // P0 writes and releases; P1 acquires, releases; P2 acquires and
    // writes. Ordering is transitive through P1.
    RaceDetector rd(cfg(3));
    rd.chunkCommitted(10, 0, 0, {store(kData), store(kLock)});
    rd.chunkCommitted(20, 1, 0, {load(kLock), store(kLock)});
    rd.chunkCommitted(30, 2, 0, {load(kLock), store(kData)});
    EXPECT_EQ(rd.racesFound(), 0u);
}

TEST(RaceDetector, FailedTasDoesNotPublishThroughTheReader)
{
    // P0 writes x, then merely *reads* the lock word (a failed
    // test-and-set). P1 acquires the same word and writes x. The
    // acquire must not pick up P0's clock from its failed TAS — the
    // write to x is unordered and must race.
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 0, {store(kData), load(kLock)});
    rd.chunkCommitted(20, 1, 0, {load(kLock), store(kData)});
    EXPECT_EQ(rd.racesFound(), 1u);
}

TEST(RaceDetector, ReleaseOnOneVariableDoesNotCoverAnother)
{
    // Release on L1, acquire on a different sync word L2: no ordering.
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 0, {store(kData), store(kLock)});
    rd.chunkCommitted(20, 1, 0,
                      {load(kSyncLo + 0x100), store(kData)});
    EXPECT_EQ(rd.racesFound(), 1u);
}

TEST(RaceDetector, RacesAreCountedBeyondTheReportCap)
{
    RaceDetector::Config c = cfg(2);
    c.reportCap = 2;
    RaceDetector rd(c);
    std::vector<LoggedAccess> log0, log1;
    for (Addr a = 0; a < 5; ++a)
        log0.push_back(store(0x100 + a * 8));
    for (Addr a = 0; a < 5; ++a)
        log1.push_back(store(0x100 + a * 8));
    rd.chunkCommitted(10, 0, 0, log0);
    rd.chunkCommitted(20, 1, 0, log1);
    EXPECT_EQ(rd.racesFound(), 5u);
    EXPECT_EQ(rd.reports().size(), 2u);
    EXPECT_EQ(rd.racyAddrs(), 5u);
}

TEST(RaceDetector, DescribeNamesBothSides)
{
    RaceDetector rd(cfg(2));
    rd.chunkCommitted(10, 0, 3, {store(kData)});
    rd.chunkCommitted(20, 1, 7, {load(kData)});
    ASSERT_EQ(rd.reports().size(), 1u);
    std::string s = rd.describe(rd.reports()[0]);
    EXPECT_NE(s.find("cpu0#3"), std::string::npos) << s;
    EXPECT_NE(s.find("cpu1#7"), std::string::npos) << s;
    EXPECT_NE(s.find("write"), std::string::npos) << s;
    EXPECT_NE(s.find("read"), std::string::npos) << s;
}

} // namespace
} // namespace bulksc
