/**
 * @file
 * Unit tests for the logging helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace bulksc {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = isQuiet(); }
    void TearDown() override { setQuiet(saved); }

    bool saved = false;
};

TEST_F(LoggingTest, FormatConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::format("x=", 42, " y=", 2.5, " z"),
              "x=42 y=2.5 z");
    EXPECT_EQ(detail::format(), "");
}

TEST_F(LoggingTest, WarnPrintsUnlessQuiet)
{
    setQuiet(false);
    testing::internal::CaptureStderr();
    warn("something ", 7);
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "warn: something 7"),
              std::string::npos);

    setQuiet(true);
    testing::internal::CaptureStderr();
    warn("hidden");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, InformGoesToStdout)
{
    setQuiet(false);
    testing::internal::CaptureStdout();
    inform("status ", 1);
    EXPECT_NE(testing::internal::GetCapturedStdout().find(
                  "info: status 1"),
              std::string::npos);
}

TEST_F(LoggingTest, QuietFlagRoundTrips)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ panic("boom ", 3); }, "panic: boom 3");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ fatal("bad config ", 9); },
                ::testing::ExitedWithCode(1), "fatal: bad config 9");
}

TEST(LoggingDeath, PanicIfOnlyFiresWhenTrue)
{
    panic_if(false, "must not fire");
    EXPECT_DEATH({ panic_if(1 + 1 == 2, "fires"); }, "fires");
}

TEST(LoggingDeath, FatalIfOnlyFiresWhenTrue)
{
    fatal_if(false, "must not fire");
    EXPECT_EXIT({ fatal_if(true, "fires"); },
                ::testing::ExitedWithCode(1), "fires");
}

} // namespace
} // namespace bulksc
