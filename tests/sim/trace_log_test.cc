/**
 * @file
 * Unit tests for the trace-logging subsystem.
 */

#include <gtest/gtest.h>

#include "sim/trace_log.hh"

namespace bulksc {
namespace {

class TraceLogTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved = traceCategories(); }
    void TearDown() override { setTraceCategories(saved); }

    std::uint32_t saved = 0;
};

TEST_F(TraceLogTest, DisabledByDefaultInTests)
{
    setTraceCategories(0);
    EXPECT_FALSE(traceEnabled(TraceCat::Chunk));
    EXPECT_FALSE(traceEnabled(TraceCat::Squash));
}

TEST_F(TraceLogTest, EnableSpecificCategories)
{
    setTraceCategories(static_cast<std::uint32_t>(TraceCat::Commit) |
                       static_cast<std::uint32_t>(TraceCat::Squash));
    EXPECT_TRUE(traceEnabled(TraceCat::Commit));
    EXPECT_TRUE(traceEnabled(TraceCat::Squash));
    EXPECT_FALSE(traceEnabled(TraceCat::Chunk));
    EXPECT_FALSE(traceEnabled(TraceCat::Mem));
}

TEST_F(TraceLogTest, ParseCommaSeparatedList)
{
    std::uint32_t m = parseTraceCategories("chunk,squash");
    EXPECT_TRUE(m & static_cast<std::uint32_t>(TraceCat::Chunk));
    EXPECT_TRUE(m & static_cast<std::uint32_t>(TraceCat::Squash));
    EXPECT_FALSE(m & static_cast<std::uint32_t>(TraceCat::Commit));
}

TEST_F(TraceLogTest, ParseAll)
{
    std::uint32_t m = parseTraceCategories("all");
    for (TraceCat c : {TraceCat::Chunk, TraceCat::Commit,
                       TraceCat::Squash, TraceCat::Coherence,
                       TraceCat::Sync, TraceCat::Mem}) {
        EXPECT_TRUE(m & static_cast<std::uint32_t>(c));
    }
}

TEST_F(TraceLogTest, ParseIgnoresUnknownNames)
{
    detail::resetUnknownTraceCatWarning();
    testing::internal::CaptureStderr();
    EXPECT_EQ(parseTraceCategories("bogus,nothing"), 0u);
    EXPECT_EQ(parseTraceCategories(""), 0u);
    testing::internal::GetCapturedStderr();
}

TEST_F(TraceLogTest, ParseIsCaseInsensitive)
{
    std::uint32_t m = parseTraceCategories("Chunk,SQUASH");
    EXPECT_TRUE(m & static_cast<std::uint32_t>(TraceCat::Chunk));
    EXPECT_TRUE(m & static_cast<std::uint32_t>(TraceCat::Squash));
    EXPECT_EQ(parseTraceCategories("ALL"), parseTraceCategories("all"));
}

TEST_F(TraceLogTest, ParseSkipsEmptyTokens)
{
    std::uint32_t m = parseTraceCategories(",chunk,,squash,");
    EXPECT_TRUE(m & static_cast<std::uint32_t>(TraceCat::Chunk));
    EXPECT_TRUE(m & static_cast<std::uint32_t>(TraceCat::Squash));
}

TEST_F(TraceLogTest, UnknownNameWarnsExactlyOnce)
{
    detail::resetUnknownTraceCatWarning();
    testing::internal::CaptureStderr();
    parseTraceCategories("chunk,frobnicate");
    std::string first = testing::internal::GetCapturedStderr();
    EXPECT_NE(first.find("unknown trace category 'frobnicate'"),
              std::string::npos);
    EXPECT_NE(first.find("chunk,commit,squash"), std::string::npos);

    // Subsequent unknown names stay silent until re-armed.
    testing::internal::CaptureStderr();
    parseTraceCategories("alsobad");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    detail::resetUnknownTraceCatWarning();
    testing::internal::CaptureStderr();
    parseTraceCategories("alsobad");
    EXPECT_NE(testing::internal::GetCapturedStderr().find("alsobad"),
              std::string::npos);
}

TEST_F(TraceLogTest, KnownNamesNeverWarn)
{
    detail::resetUnknownTraceCatWarning();
    testing::internal::CaptureStderr();
    parseTraceCategories("chunk,commit,squash,coherence,sync,mem,all");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(TraceLogTest, NamesRoundTrip)
{
    for (TraceCat c : {TraceCat::Chunk, TraceCat::Commit,
                       TraceCat::Squash, TraceCat::Coherence,
                       TraceCat::Sync, TraceCat::Mem}) {
        std::uint32_t m = parseTraceCategories(traceCatName(c));
        EXPECT_EQ(m, static_cast<std::uint32_t>(c));
    }
}

TEST_F(TraceLogTest, MacroCompilesAndRespectsMask)
{
    setTraceCategories(0);
    // Must not print (and must not evaluate visibly); mainly a
    // compile/behaviour smoke test.
    TRACE_LOG(TraceCat::Chunk, 123, "never shown ", 42);
    setTraceCategories(
        static_cast<std::uint32_t>(TraceCat::Chunk));
    testing::internal::CaptureStderr();
    TRACE_LOG(TraceCat::Chunk, 123, "hello ", 42);
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("hello 42"), std::string::npos);
    EXPECT_NE(out.find("[chunk]"), std::string::npos);
    EXPECT_NE(out.find("123"), std::string::npos);
}

} // namespace
} // namespace bulksc
