/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace bulksc {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.eventsFired(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanCascade)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 9u);
    EXPECT_EQ(eq.eventsFired(), 10u);
}

TEST(EventQueue, StepFiresOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(SimObject, NameAndTick)
{
    EventQueue eq;
    SimObject obj(eq, "thing");
    EXPECT_EQ(obj.name(), "thing");
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(obj.curTick(), 42u);
}

} // namespace
} // namespace bulksc
