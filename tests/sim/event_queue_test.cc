/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace bulksc {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.eventsFired(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanCascade)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 9u);
    EXPECT_EQ(eq.eventsFired(), 10u);
}

TEST(EventQueue, StepFiresOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SameTickRescheduleRunsAfterTickBatch)
{
    // An event firing at tick T that schedules another event at T must
    // see it run after every event already pending at T (global FIFO
    // within the tick) — the regression the wheel's batch drain must
    // not break.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.schedule(5, [&] { order.push_back(2); });
        eq.scheduleAfter(0, [&] { order.push_back(3); });
    });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 5u);
    EXPECT_EQ(eq.eventsFired(), 4u);
}

TEST(EventQueue, BeyondHorizonEventsFireInOrder)
{
    constexpr Tick kFar = EventQueue::kHorizon;
    EventQueue eq;
    std::vector<Tick> at;
    // Interleave wheel-range and far-range targets, scheduled out of
    // order; some far ticks collide so their batches must stay FIFO.
    for (Tick t : {4 * kFar, Tick{2}, 3 * kFar, kFar + 7, Tick{2},
                   3 * kFar})
        eq.schedule(t, [&, t] {
            EXPECT_EQ(eq.now(), t);
            at.push_back(t);
        });
    eq.run();
    EXPECT_EQ(at, (std::vector<Tick>{2, 2, kFar + 7, 3 * kFar,
                                     3 * kFar, 4 * kFar}));
}

TEST(EventQueue, FarBatchPrecedesWheelEventsAtTheSameTick)
{
    // An event landing at tick T from beyond the horizon was
    // necessarily scheduled before any wheel event at T (the wheel
    // only spans kHorizon ticks), so it must fire first.
    constexpr Tick kT = EventQueue::kHorizon + 100;
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(kT, [&] { order.push_back(0); }); // far at schedule time
    eq.schedule(200, [&] {
        order.push_back(-1);
        eq.schedule(kT, [&] { order.push_back(1); }); // now in wheel
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1}));
}

TEST(EventQueue, WheelWrapsAcrossManyLaps)
{
    EventQueue eq;
    constexpr Tick kStep = EventQueue::kHorizon - 1;
    int laps = 0;
    std::function<void()> next = [&] {
        EXPECT_EQ(eq.now(), static_cast<Tick>(laps) * kStep);
        if (++laps < 10)
            eq.scheduleAfter(kStep, next);
    };
    eq.schedule(0, next);
    eq.run();
    EXPECT_EQ(laps, 10);
    EXPECT_EQ(eq.now(), 9 * kStep);
}

TEST(EventQueue, StepAndRunInterleave)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 3; ++i)
        eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(EventQueue::kHorizon + 50, [&] { ++fired; });

    EXPECT_TRUE(eq.step()); // pulls the tick-10 batch, fires one
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    eq.run(15); // drains the rest of the batch, stops before 20
    EXPECT_EQ(fired, 3);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SizeCountsWheelFarAndCurrentBatch)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.schedule(5, [] {});
    eq.schedule(40, [] {});
    eq.schedule(EventQueue::kHorizon + 5, [] {});
    EXPECT_EQ(eq.size(), 4u);
    EXPECT_FALSE(eq.empty());
    EXPECT_TRUE(eq.step()); // one of the tick-5 pair fired
    EXPECT_EQ(eq.size(), 3u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, NextEventTickTracksAllRegions)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), kTickNever);
    eq.schedule(EventQueue::kHorizon + 9, [] {});
    EXPECT_EQ(eq.nextEventTick(), EventQueue::kHorizon + 9);
    eq.schedule(7, [] {});
    EXPECT_EQ(eq.nextEventTick(), 7u);
    eq.schedule(7, [] {});
    EXPECT_TRUE(eq.step()); // mid-batch: next event is still at now()
    EXPECT_EQ(eq.nextEventTick(), 7u);
    eq.run();
    EXPECT_EQ(eq.nextEventTick(), kTickNever);
}

TEST(EventQueue, PendingEventsAreDestroyedWithTheQueue)
{
    auto token = std::make_shared<int>(7);
    {
        EventQueue eq;
        eq.schedule(10, [token] {});
        eq.schedule(EventQueue::kHorizon + 10, [token] {});
        EXPECT_EQ(token.use_count(), 3);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, OversizedCapturesWork)
{
    // Captures beyond the inline budget of the event representation
    // fall back to a heap cell; behaviour must be identical.
    struct Big
    {
        char pad[200];
    } big{};
    big.pad[0] = 42;
    EventQueue eq;
    int seen = 0;
    eq.schedule(3, [big, &seen] { seen = big.pad[0]; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, StopHaltsTheRunLoop)
{
    // stop() from inside a handler makes run() return at the next
    // batch boundary, leaving later events pending.
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] {
        ++fired;
        eq.stop();
    });
    eq.schedule(30, [&] { ++fired; });
    eq.run();
    EXPECT_TRUE(eq.stopped());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.empty());
    // A fresh run() clears the request and drains the rest.
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StopPreservesSameTickFifo)
{
    // Events already in the tick batch being processed still fire —
    // stop is checked only between batches, so same-tick FIFO
    // ordering is never torn.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.stop();
    });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(20, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(SimObject, NameAndTick)
{
    EventQueue eq;
    SimObject obj(eq, "thing");
    EXPECT_EQ(obj.name(), "thing");
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(obj.curTick(), 42u);
}

} // namespace
} // namespace bulksc
