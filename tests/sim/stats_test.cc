/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace bulksc {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOverSamples)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Distribution, TracksMinMaxMean)
{
    Distribution d;
    d.sample(5.0);
    d.sample(-1.0);
    d.sample(2.0);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(StatGroup, SetGetAddMerge)
{
    StatGroup g;
    EXPECT_FALSE(g.has("x"));
    EXPECT_DOUBLE_EQ(g.get("x", -1.0), -1.0);
    g.set("x", 3.0);
    g.add("x", 2.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 5.0);

    StatGroup h;
    h.set("y", 7.0);
    h.set("x", 1.0);
    g.merge(h);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("y"), 7.0);
}

TEST(StatGroup, DumpIsSortedAndPrefixed)
{
    StatGroup g;
    g.set("b", 2);
    g.set("a", 1);
    std::ostringstream os;
    g.dump(os, "pre.");
    EXPECT_EQ(os.str(), "pre.a 1\npre.b 2\n");
}

TEST(GeoMean, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace bulksc
