/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace bulksc {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOverSamples)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Distribution, TracksMinMaxMean)
{
    Distribution d;
    d.sample(5.0);
    d.sample(-1.0);
    d.sample(2.0);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.sample(7.0);
    EXPECT_EQ(d.samples(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 7.0);
    EXPECT_DOUBLE_EQ(d.max(), 7.0);
    EXPECT_DOUBLE_EQ(d.mean(), 7.0);
}

TEST(Distribution, AllNegativeSamples)
{
    Distribution d;
    d.sample(-8.0);
    d.sample(-2.0);
    EXPECT_DOUBLE_EQ(d.min(), -8.0);
    EXPECT_DOUBLE_EQ(d.max(), -2.0);
    EXPECT_DOUBLE_EQ(d.mean(), -5.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, SingleSamplePercentilesCollapse)
{
    Histogram h;
    h.sample(100.0);
    EXPECT_EQ(h.samples(), 1u);
    // With one sample every percentile is clamped to that value.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 100.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, BucketsAreLog2)
{
    Histogram h;
    h.sample(0.0);   // bucket 0 (< 1)
    h.sample(-3.0);  // bucket 0 (negatives)
    h.sample(1.0);   // bucket 1: [1, 2)
    h.sample(2.0);   // bucket 2: [2, 4)
    h.sample(3.0);   // bucket 2
    h.sample(1024.0); // bucket 11: [1024, 2048)
    const auto &b = h.bucketCounts();
    EXPECT_EQ(b[0], 2u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 2u);
    EXPECT_EQ(b[11], 1u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), 1024.0);
}

TEST(Histogram, PercentilesOrderedAndInRange)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));
    double p50 = h.percentile(50.0);
    double p90 = h.percentile(90.0);
    double p99 = h.percentile(99.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p99, h.max());
    // log2 buckets: the p50 estimate lives within the covering
    // power-of-two bucket of the true median (500 -> [256, 1024)).
    EXPECT_GE(p50, 256.0);
    EXPECT_LT(p50, 1024.0);
}

TEST(Histogram, MergeMatchesCombinedStream)
{
    Histogram a, b, both;
    for (double v : {1.0, 5.0, 9.0}) {
        a.sample(v);
        both.sample(v);
    }
    for (double v : {2.0, 100.0}) {
        b.sample(v);
        both.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.samples(), both.samples());
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.total(), both.total());
    EXPECT_DOUBLE_EQ(a.percentile(90.0), both.percentile(90.0));

    Histogram empty;
    a.merge(empty); // no-op
    EXPECT_EQ(a.samples(), both.samples());
}

TEST(Histogram, DumpIntoWritesAllKeys)
{
    Histogram h;
    h.sample(4.0);
    h.sample(16.0);
    StatGroup sg;
    h.dumpInto(sg, "lat.");
    EXPECT_DOUBLE_EQ(sg.get("lat.samples"), 2.0);
    EXPECT_DOUBLE_EQ(sg.get("lat.mean"), 10.0);
    EXPECT_DOUBLE_EQ(sg.get("lat.min"), 4.0);
    EXPECT_DOUBLE_EQ(sg.get("lat.max"), 16.0);
    EXPECT_TRUE(sg.has("lat.p50"));
    EXPECT_TRUE(sg.has("lat.p90"));
    EXPECT_TRUE(sg.has("lat.p99"));
    EXPECT_LE(sg.get("lat.p50"), sg.get("lat.p99"));
}

TEST(StatGroup, SetGetAddMerge)
{
    StatGroup g;
    EXPECT_FALSE(g.has("x"));
    EXPECT_DOUBLE_EQ(g.get("x", -1.0), -1.0);
    g.set("x", 3.0);
    g.add("x", 2.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 5.0);

    StatGroup h;
    h.set("y", 7.0);
    h.set("x", 1.0);
    g.merge(h);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("y"), 7.0);
}

TEST(StatGroup, DumpIsSortedAndPrefixed)
{
    StatGroup g;
    g.set("b", 2);
    g.set("a", 1);
    std::ostringstream os;
    g.dump(os, "pre.");
    EXPECT_EQ(os.str(), "pre.a 1\npre.b 2\n");
}

TEST(StatGroup, DumpJsonEscapesAndHandlesNonFinite)
{
    StatGroup g;
    g.set("plain", 1.5);
    g.set("quote\"back\\slash", 2.0);
    g.set("newline\nkey\ttab", 3.0);
    g.set(std::string("ctrl\x01key"), 4.0);
    g.set("nan", std::nan(""));
    g.set("inf", HUGE_VAL);
    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"quote\\\"back\\\\slash\": 2"),
              std::string::npos);
    EXPECT_NE(out.find("\"newline\\nkey\\ttab\": 3"),
              std::string::npos);
    EXPECT_NE(out.find("\\u0001"), std::string::npos);
    EXPECT_NE(out.find("\"nan\": null"), std::string::npos);
    EXPECT_NE(out.find("\"inf\": null"), std::string::npos);
    // No raw control characters survive in the output.
    for (char c : out)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);
}

TEST(StatGroup, DumpJsonEmptyGroup)
{
    StatGroup g;
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{}");
}

TEST(JsonHelpers, EscapeAndNumber)
{
    EXPECT_EQ(jsonEscape("ok"), "ok");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\b\f\r"), "\\b\\f\\r");
    EXPECT_EQ(jsonNumber(2.0), "2");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(-HUGE_VAL), "null");
}

TEST(GeoMean, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace bulksc
