/**
 * @file
 * Unit tests for the fault-injection plane: spec grammar, canonical
 * round-trip, seeded determinism, traffic-class and tick-window
 * scoping, and the skip-collision period.
 */

#include <gtest/gtest.h>

#include "sim/fault_plane.hh"
#include "sim/stats.hh"

namespace bulksc {
namespace {

std::vector<FaultPoint>
parse(const std::string &spec)
{
    std::vector<FaultPoint> pts;
    std::string err;
    EXPECT_TRUE(FaultPlane::parseSpec(spec, pts, err)) << err;
    return pts;
}

std::string
parseError(const std::string &spec)
{
    std::vector<FaultPoint> pts;
    std::string err;
    EXPECT_FALSE(FaultPlane::parseSpec(spec, pts, err)) << spec;
    return err;
}

TEST(FaultPlane, ParsesEveryKind)
{
    auto pts = parse("net.drop=0.01,net.dup=0.005,net.delay=1:200,"
                     "arb.req_loss=0.1,arb.grant_loss=0.002,"
                     "arb.skip_collision=5,dir.nack=0.3,"
                     "dir.commit_loss=0.4");
    ASSERT_EQ(pts.size(), 8u);
    EXPECT_EQ(pts[0].kind, FaultKind::NetDrop);
    EXPECT_DOUBLE_EQ(pts[0].rate, 0.01);
    EXPECT_EQ(pts[2].kind, FaultKind::NetDelay);
    EXPECT_EQ(pts[2].delayMin, 1u);
    EXPECT_EQ(pts[2].delayMax, 200u);
    EXPECT_DOUBLE_EQ(pts[2].rate, 1.0); // MIN:MAX means p = 1
    EXPECT_EQ(pts[5].kind, FaultKind::ArbSkipCollision);
    EXPECT_EQ(pts[5].everyN, 5u);
}

TEST(FaultPlane, ParsesClassScopeAndWindow)
{
    auto pts = parse("net.drop/WrSig=0.5@100:2000,net.dup=0.1@500:");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].cls, 2); // WrSig
    EXPECT_EQ(pts[0].tickLo, 100u);
    EXPECT_EQ(pts[0].tickHi, 2000u);
    EXPECT_EQ(pts[1].cls, kFaultAnyClass);
    EXPECT_EQ(pts[1].tickLo, 500u);
    EXPECT_EQ(pts[1].tickHi, kTickNever);
}

TEST(FaultPlane, ParsesProbabilisticDelay)
{
    auto pts = parse("net.delay=0.25:10:50");
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_DOUBLE_EQ(pts[0].rate, 0.25);
    EXPECT_EQ(pts[0].delayMin, 10u);
    EXPECT_EQ(pts[0].delayMax, 50u);
}

TEST(FaultPlane, RejectsBadSpecs)
{
    EXPECT_NE(parseError("bogus.kind=0.1"), "");
    EXPECT_NE(parseError("net.drop=1.5"), "");  // rate out of range
    EXPECT_NE(parseError("net.drop=-0.1"), "");
    EXPECT_NE(parseError("net.drop"), "");      // missing value
    EXPECT_NE(parseError("net.drop/NoSuchClass=0.1"), "");
    EXPECT_NE(parseError("arb.skip_collision=0"), "");
    EXPECT_NE(parseError("net.delay=50:10"), ""); // hi < lo
    EXPECT_NE(parseError("net.drop=0.1@200:100"), "");
}

TEST(FaultPlane, CanonicalSpecRoundTrips)
{
    const std::string spec =
        "net.drop/WrSig=0.01@100:2000,net.delay=0.5:1:200,"
        "arb.skip_collision=3";
    auto pts = parse(spec);
    std::string canon = FaultPlane::canonicalSpec(pts);
    auto pts2 = parse(canon);
    EXPECT_EQ(canon, FaultPlane::canonicalSpec(pts2));
    ASSERT_EQ(pts.size(), pts2.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(pts[i].kind, pts2[i].kind);
        EXPECT_DOUBLE_EQ(pts[i].rate, pts2[i].rate);
        EXPECT_EQ(pts[i].cls, pts2[i].cls);
        EXPECT_EQ(pts[i].tickLo, pts2[i].tickLo);
        EXPECT_EQ(pts[i].tickHi, pts2[i].tickHi);
    }
}

TEST(FaultPlane, SameSeedSameSchedule)
{
    auto pts = parse("net.drop=0.3,net.dup=0.2,net.delay=0.5:1:40");
    FaultPlane a, b;
    a.configure(pts, 12345);
    b.configure(pts, 12345);
    for (Tick t = 0; t < 2000; ++t) {
        EXPECT_EQ(a.dropMessage(FaultKind::NetDrop, t, 0),
                  b.dropMessage(FaultKind::NetDrop, t, 0));
        EXPECT_EQ(a.duplicateMessage(t, 1), b.duplicateMessage(t, 1));
        EXPECT_EQ(a.extraDelay(t, 2), b.extraDelay(t, 2));
    }
    EXPECT_EQ(a.injectedCount(FaultKind::NetDrop),
              b.injectedCount(FaultKind::NetDrop));
    EXPECT_GT(a.injectedCount(FaultKind::NetDrop), 0u);
}

TEST(FaultPlane, DifferentSeedDifferentSchedule)
{
    auto pts = parse("net.drop=0.5");
    FaultPlane a, b;
    a.configure(pts, 1);
    b.configure(pts, 2);
    bool differ = false;
    for (Tick t = 0; t < 256 && !differ; ++t) {
        differ = a.dropMessage(FaultKind::NetDrop, t, 0) !=
                 b.dropMessage(FaultKind::NetDrop, t, 0);
    }
    EXPECT_TRUE(differ);
}

TEST(FaultPlane, RateZeroAndOneAreExact)
{
    FaultPlane never, always;
    never.configure(parse("net.drop=0"), 7);
    always.configure(parse("net.drop=1"), 7);
    for (Tick t = 0; t < 500; ++t) {
        EXPECT_FALSE(never.dropMessage(FaultKind::NetDrop, t, 0));
        EXPECT_TRUE(always.dropMessage(FaultKind::NetDrop, t, 0));
    }
}

TEST(FaultPlane, GenericDropCoversProtocolKinds)
{
    FaultPlane fp;
    fp.configure(parse("net.drop=1"), 3);
    EXPECT_TRUE(fp.dropMessage(FaultKind::ArbGrantLoss, 0, 4));
    EXPECT_TRUE(fp.dropMessage(FaultKind::DirCommitLoss, 0, 2));
    // ...but a protocol-specific point does not leak the other way.
    FaultPlane fp2;
    fp2.configure(parse("arb.grant_loss=1"), 3);
    EXPECT_FALSE(fp2.dropMessage(FaultKind::NetDrop, 0, 0));
    EXPECT_TRUE(fp2.dropMessage(FaultKind::ArbGrantLoss, 0, 4));
}

TEST(FaultPlane, ClassScopeFilters)
{
    FaultPlane fp;
    fp.configure(parse("net.drop/WrSig=1"), 9);
    EXPECT_TRUE(fp.dropMessage(FaultKind::NetDrop, 0, 2));  // WrSig
    EXPECT_FALSE(fp.dropMessage(FaultKind::NetDrop, 0, 0)); // RdWr
}

TEST(FaultPlane, TickWindowFilters)
{
    FaultPlane fp;
    fp.configure(parse("net.drop=1@100:200"), 9);
    EXPECT_FALSE(fp.dropMessage(FaultKind::NetDrop, 99, 0));
    EXPECT_TRUE(fp.dropMessage(FaultKind::NetDrop, 100, 0));
    EXPECT_TRUE(fp.dropMessage(FaultKind::NetDrop, 199, 0));
    EXPECT_FALSE(fp.dropMessage(FaultKind::NetDrop, 200, 0));
}

TEST(FaultPlane, DelayStaysWithinBounds)
{
    FaultPlane fp;
    fp.configure(parse("net.delay=10:50"), 11);
    for (Tick t = 0; t < 500; ++t) {
        Tick d = fp.extraDelay(t, 0);
        EXPECT_GE(d, 10u);
        EXPECT_LE(d, 50u);
    }
}

TEST(FaultPlane, SkipCollisionPeriodic)
{
    FaultPlane fp;
    fp.configure(parse("arb.skip_collision=3"), 1);
    unsigned fired = 0;
    for (unsigned i = 0; i < 9; ++i) {
        if (fp.skipCollision())
            ++fired;
    }
    EXPECT_EQ(fired, 3u); // every 3rd opportunity
    // No point configured: never fires.
    FaultPlane none;
    none.configure({}, 1);
    EXPECT_FALSE(none.skipCollision());
}

TEST(FaultPlane, RequiresHardeningOnlyForLossAndDup)
{
    FaultPlane delay_only, lossy, skip_only;
    delay_only.configure(parse("net.delay=1:100"), 1);
    lossy.configure(parse("arb.grant_loss=0.01"), 1);
    skip_only.configure(parse("arb.skip_collision=7"), 1);
    EXPECT_FALSE(delay_only.requiresHardening());
    EXPECT_TRUE(lossy.requiresHardening());
    EXPECT_FALSE(skip_only.requiresHardening());
    EXPECT_TRUE(delay_only.active());
}

TEST(FaultPlane, StatsCountOpportunitiesAndInjections)
{
    FaultPlane fp;
    fp.configure(parse("net.drop=0.5"), 99);
    for (Tick t = 0; t < 100; ++t)
        fp.dropMessage(FaultKind::NetDrop, t, 0);
    StatGroup sg;
    fp.dumpStats(sg, "faults.");
    EXPECT_EQ(sg.get("faults.net.drop.opportunities"), 100.0);
    double inj = sg.get("faults.net.drop.injected");
    EXPECT_GT(inj, 0.0);
    EXPECT_LT(inj, 100.0);
    EXPECT_EQ(inj, static_cast<double>(
                       fp.injectedCount(FaultKind::NetDrop)));
}

} // namespace
} // namespace bulksc
