/**
 * @file
 * Unit tests for the structured event-trace sink and its Chrome
 * trace_event export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_trace.hh"

namespace bulksc {
namespace {

class EventTraceTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        EventTrace::instance().disable();
        EventTrace::instance().clear();
    }
};

TEST_F(EventTraceTest, DisabledByDefault)
{
    EXPECT_FALSE(eventTraceEnabled());
    // The macro must be a no-op while disabled.
    EVENT_TRACE(TraceEventType::ChunkStart, 1, trackProc(0), 0, 0);
    EXPECT_EQ(EventTrace::instance().recorded(), 0u);
}

TEST_F(EventTraceTest, RecordsAndCounts)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    EXPECT_TRUE(eventTraceEnabled());

    EVENT_TRACE(TraceEventType::ChunkStart, 10, trackProc(1), 7, 1000);
    EVENT_TRACE(TraceEventType::ChunkCommit, 25, trackProc(1), 7, 990);
    EVENT_TRACE(TraceEventType::Squash, 30, trackProc(2), 8, 2,
                static_cast<std::uint8_t>(SquashCause::FalsePositive));

    EXPECT_EQ(et.recorded(), 3u);
    EXPECT_EQ(et.count(TraceEventType::ChunkStart), 1u);
    EXPECT_EQ(et.count(TraceEventType::ChunkCommit), 1u);
    EXPECT_EQ(et.count(TraceEventType::Squash), 1u);
    EXPECT_EQ(et.count(TraceEventType::ArbGrant), 0u);
    EXPECT_EQ(et.dropped(), 0u);

    std::vector<TraceEvent> evs = et.snapshot();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].type, TraceEventType::ChunkStart);
    EXPECT_EQ(evs[0].tick, 10u);
    EXPECT_EQ(evs[0].seq, 7u);
    EXPECT_EQ(evs[0].arg, 1000u);
    EXPECT_EQ(evs[2].cause,
              static_cast<std::uint8_t>(SquashCause::FalsePositive));
}

TEST_F(EventTraceTest, RingOverflowKeepsNewestAndCountsDrops)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0}, 4);
    for (Tick t = 0; t < 10; ++t)
        et.record(TraceEventType::DirBounce, t, trackDir(0), t);

    EXPECT_EQ(et.recorded(), 10u);
    EXPECT_EQ(et.dropped(), 6u);
    EXPECT_EQ(et.size(), 4u);
    EXPECT_EQ(et.count(TraceEventType::DirBounce), 10u);

    // Snapshot is chronological and holds the newest events.
    std::vector<TraceEvent> evs = et.snapshot();
    ASSERT_EQ(evs.size(), 4u);
    for (std::size_t i = 0; i < evs.size(); ++i)
        EXPECT_EQ(evs[i].tick, 6 + i);
}

TEST_F(EventTraceTest, CategoryMaskFilters)
{
    EventTrace &et = EventTrace::instance();
    et.enable(static_cast<std::uint32_t>(TraceCat::Squash));

    EVENT_TRACE(TraceEventType::ChunkStart, 1, trackProc(0)); // chunk
    EVENT_TRACE(TraceEventType::ArbGrant, 2, trackProc(0));   // commit
    EVENT_TRACE(TraceEventType::Squash, 3, trackProc(0));     // squash
    EVENT_TRACE(TraceEventType::ChunkSquash, 4, trackProc(0)); // squash

    EXPECT_EQ(et.recorded(), 2u);
    EXPECT_EQ(et.count(TraceEventType::ChunkStart), 0u);
    EXPECT_EQ(et.count(TraceEventType::Squash), 1u);
    EXPECT_EQ(et.count(TraceEventType::ChunkSquash), 1u);
}

TEST_F(EventTraceTest, EnableClearsPreviousContents)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    et.record(TraceEventType::Squash, 1, trackProc(0));
    EXPECT_EQ(et.recorded(), 1u);
    et.enable(~std::uint32_t{0});
    EXPECT_EQ(et.recorded(), 0u);
    EXPECT_EQ(et.size(), 0u);
}

TEST_F(EventTraceTest, TrackNames)
{
    EXPECT_EQ(trackName(trackProc(0)), "cpu0");
    EXPECT_EQ(trackName(trackProc(7)), "cpu7");
    EXPECT_EQ(trackName(trackDir(0)), "dir0");
    EXPECT_EQ(trackName(trackDir(3)), "dir3");
    EXPECT_EQ(trackName(trackArb(0)), "arbiter0");
    EXPECT_EQ(trackName(trackArb(2)), "arbiter2");
}

TEST_F(EventTraceTest, ChromeExportPairsSpansAndInstants)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});

    // Chunk 5 on cpu0: start -> commit. Chunk 6: start -> squash.
    et.record(TraceEventType::ChunkStart, 100, trackProc(0), 5, 1000);
    et.record(TraceEventType::ArbRequest, 180, trackProc(0), 5);
    et.record(TraceEventType::ArbDecision, 190, trackArb(0), 0, 0, 1);
    et.record(TraceEventType::ArbGrant, 200, trackProc(0), 5);
    et.record(TraceEventType::ChunkCommit, 200, trackProc(0), 5, 995);
    et.record(TraceEventType::ChunkStart, 210, trackProc(0), 6, 1000);
    et.record(TraceEventType::Squash, 250, trackProc(0), 6, 1,
              static_cast<std::uint8_t>(SquashCause::TrueConflict));
    et.record(TraceEventType::ChunkSquash, 250, trackProc(0), 6, 40,
              static_cast<std::uint8_t>(SquashCause::TrueConflict));
    et.record(TraceEventType::DirBounce, 260, trackDir(0), 0, 0x42);

    std::ostringstream os;
    et.writeChromeTrace(os);
    std::string out = os.str();

    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(out.find("cpu0"), std::string::npos);
    EXPECT_NE(out.find("arbiter0"), std::string::npos);
    EXPECT_NE(out.find("dir0"), std::string::npos);
    // Chunk 5 became a committed complete span of duration 100.
    EXPECT_NE(out.find("\"name\":\"chunk 5\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":100"), std::string::npos);
    EXPECT_NE(out.find("\"outcome\":\"commit\""), std::string::npos);
    // Chunk 6 closed as a squash span; the squash instants carry the
    // attributed cause.
    EXPECT_NE(out.find("\"outcome\":\"squash\""), std::string::npos);
    EXPECT_NE(out.find("true-conflict"), std::string::npos);
    // Arbitration request/grant paired into a span.
    EXPECT_NE(out.find("\"name\":\"arb 5\""), std::string::npos);
    EXPECT_NE(out.find("arb-decision (grant)"), std::string::npos);
    EXPECT_NE(out.find("\"recorded\": 9"), std::string::npos);
}

TEST_F(EventTraceTest, ChromeExportLeavesUnfinishedSpansOpen)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    et.record(TraceEventType::ChunkStart, 10, trackProc(3), 1, 500);
    et.record(TraceEventType::DirBounce, 90, trackDir(0), 0, 1);

    std::ostringstream os;
    et.writeChromeTrace(os);
    std::string out = os.str();
    // The live chunk extends to the last observed tick (90).
    EXPECT_NE(out.find("\"outcome\":\"open\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":80"), std::string::npos);
}

TEST_F(EventTraceTest, OverlappingChunksGetSeparateRows)
{
    EventTrace &et = EventTrace::instance();
    et.enable(~std::uint32_t{0});
    // Two simultaneously-live chunks on one processor
    // (maxLiveChunks = 2): the export must not stack them on one row.
    et.record(TraceEventType::ChunkStart, 0, trackProc(0), 1, 0);
    et.record(TraceEventType::ChunkStart, 50, trackProc(0), 2, 0);
    et.record(TraceEventType::ChunkCommit, 100, trackProc(0), 1, 0);
    et.record(TraceEventType::ChunkCommit, 150, trackProc(0), 2, 0);

    std::ostringstream os;
    et.writeChromeTrace(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"tid\":0"), std::string::npos);
    EXPECT_NE(out.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(out.find("chunks-0"), std::string::npos);
    EXPECT_NE(out.find("chunks-1"), std::string::npos);
}

} // namespace
} // namespace bulksc
