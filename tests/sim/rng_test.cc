/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace bulksc {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ZipfishIsSkewedTowardSmallIndices)
{
    Rng r(13);
    std::uint64_t low = 0;
    const std::uint64_t n = 1000;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = r.zipfish(n, 0.7);
        EXPECT_LT(v, n);
        if (v < n / 10)
            ++low;
    }
    // Strong skew: far more than 10% of samples in the first decile.
    EXPECT_GT(low, 20000u / 4);
}

TEST(Rng, ZipfishHandlesDegenerateSizes)
{
    Rng r(15);
    EXPECT_EQ(r.zipfish(0, 0.5), 0u);
    EXPECT_EQ(r.zipfish(1, 0.5), 0u);
}

TEST(Mix64, IsStableAndMixing)
{
    // Stable across calls (pure function)...
    EXPECT_EQ(mix64(12345), mix64(12345));
    // ...and adjacent inputs produce very different outputs.
    std::uint64_t d = mix64(1) ^ mix64(2);
    int bits = 0;
    while (d) {
        bits += d & 1;
        d >>= 1;
    }
    EXPECT_GT(bits, 16);
}

} // namespace
} // namespace bulksc
