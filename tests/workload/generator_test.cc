/**
 * @file
 * Tests for workload generation: determinism, composition, barrier
 * alignment, and the per-app profile registry.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/generator.hh"
#include "workload/litmus.hh"

namespace bulksc {
namespace {

TEST(AppProfiles, RegistryContainsAllThirteenWorkloads)
{
    EXPECT_EQ(splash2Profiles().size(), 11u);
    EXPECT_EQ(commercialProfiles().size(), 2u);
    EXPECT_EQ(allProfiles().size(), 13u);
    for (const char *name :
         {"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
          "radiosity", "radix", "raytrace", "water-ns", "water-sp",
          "sjbb2k", "sweb2005"}) {
        EXPECT_EQ(profileByName(name).name, name);
    }
}

TEST(Generator, DeterministicForSameSeed)
{
    const AppProfile &p = profileByName("ocean");
    auto a = generateTraces(p, 4, 5000);
    auto b = generateTraces(p, 4, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ops.size(), b[i].ops.size());
        for (std::size_t j = 0; j < a[i].ops.size(); ++j) {
            EXPECT_EQ(a[i].ops[j].addr, b[i].ops[j].addr);
            EXPECT_EQ(a[i].ops[j].type, b[i].ops[j].type);
            EXPECT_EQ(a[i].ops[j].gap, b[i].ops[j].gap);
        }
    }
}

TEST(Generator, SaltChangesTheTraces)
{
    const AppProfile &p = profileByName("lu");
    auto a = generateTraces(p, 1, 5000, 0);
    auto b = generateTraces(p, 1, 5000, 1);
    bool differ = a[0].ops.size() != b[0].ops.size();
    for (std::size_t j = 0;
         !differ && j < a[0].ops.size() && j < b[0].ops.size(); ++j) {
        differ = a[0].ops[j].addr != b[0].ops[j].addr;
    }
    EXPECT_TRUE(differ);
}

TEST(Generator, InstructionBudgetHonored)
{
    const AppProfile &p = profileByName("barnes");
    auto t = generateTraces(p, 2, 20000);
    for (const Trace &tr : t) {
        EXPECT_GE(tr.totalInstrs(), 20000u);
        EXPECT_LT(tr.totalInstrs(), 22000u);
    }
}

TEST(Generator, MemFracRoughlyHonored)
{
    const AppProfile &p = profileByName("fmm"); // memFrac 0.30
    auto t = generateTraces(p, 1, 50000);
    double frac = static_cast<double>(t[0].ops.size()) /
                  static_cast<double>(t[0].totalInstrs());
    // Streaming bursts and critical sections add memory ops beyond
    // the base rate, so allow some headroom above the profile value.
    EXPECT_NEAR(frac, 0.32, 0.07);
}

TEST(Generator, BarrierSequencesAlignAcrossProcessors)
{
    const AppProfile &p = profileByName("ocean"); // has barriers
    auto t = generateTraces(p, 4, 60000);
    std::vector<std::vector<std::uint32_t>> seqs(4);
    for (unsigned q = 0; q < 4; ++q) {
        for (const Op &op : t[q].ops) {
            if (op.type == OpType::BarrierArrive)
                seqs[q].push_back(op.aux);
        }
    }
    EXPECT_GT(seqs[0].size(), 0u);
    for (unsigned q = 1; q < 4; ++q)
        EXPECT_EQ(seqs[q], seqs[0]);
}

TEST(Generator, AcquireReleaseProperlyNested)
{
    const AppProfile &p = profileByName("radiosity");
    auto t = generateTraces(p, 2, 60000);
    for (const Trace &tr : t) {
        Addr held = 0;
        bool holding = false;
        unsigned pairs = 0;
        for (const Op &op : tr.ops) {
            if (op.type == OpType::Acquire) {
                EXPECT_FALSE(holding);
                holding = true;
                held = op.addr;
            } else if (op.type == OpType::Release) {
                EXPECT_TRUE(holding);
                EXPECT_EQ(op.addr, held);
                holding = false;
                ++pairs;
            }
        }
        EXPECT_FALSE(holding);
        EXPECT_GT(pairs, 0u);
    }
}

TEST(Generator, StackRefsAreFlagged)
{
    const AppProfile &p = profileByName("barnes");
    auto t = generateTraces(p, 1, 30000);
    unsigned stack = 0;
    for (const Op &op : t[0].ops) {
        if (op.stackRef) {
            ++stack;
            EXPECT_GE(op.addr, layout::kStackBase);
            EXPECT_LT(op.addr, layout::kPrivBase);
        }
    }
    EXPECT_GT(stack, 0u);
}

TEST(Generator, PrivateRegionsDisjointAcrossProcessors)
{
    const AppProfile &p = profileByName("lu");
    auto t = generateTraces(p, 2, 30000);
    std::unordered_set<LineAddr> priv0;
    for (const Op &op : t[0].ops) {
        if (op.addr >= layout::kPrivBase &&
            op.addr < layout::kSharedBase) {
            priv0.insert(lineOf(op.addr));
        }
    }
    for (const Op &op : t[1].ops) {
        if (op.addr >= layout::kPrivBase &&
            op.addr < layout::kSharedBase) {
            EXPECT_EQ(priv0.count(lineOf(op.addr)), 0u);
        }
    }
}

TEST(Generator, RadixWritesAreDisjointAcrossProcessors)
{
    const AppProfile &p = profileByName("radix");
    auto t = generateTraces(p, 4, 40000);
    std::vector<std::unordered_set<LineAddr>> writes(4);
    for (unsigned q = 0; q < 4; ++q) {
        for (const Op &op : t[q].ops) {
            if (op.type == OpType::Store &&
                op.addr >= layout::kSharedBase &&
                lineOf(op.addr - layout::kSharedBase) >=
                    (Addr{1} << 30)) {
                writes[q].insert(lineOf(op.addr));
            }
        }
    }
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = a + 1; b < 4; ++b) {
            for (LineAddr l : writes[a])
                EXPECT_EQ(writes[b].count(l), 0u);
        }
    }
}

TEST(Litmus, SuitesAreWellFormed)
{
    auto tests = allLitmusTests(3);
    // 7 tests (sb, mp, iriw, corr, 2+2w, wrc, isa2) x 3 variants.
    EXPECT_EQ(tests.size(), 21u);
    for (const auto &lt : tests) {
        EXPECT_GE(lt.traces.size(), 2u);
        for (const auto &t : lt.traces)
            EXPECT_GT(t.ops.size(), 0u);
        ASSERT_TRUE(lt.allowedSC != nullptr);
    }
}

} // namespace
} // namespace bulksc
