/**
 * @file
 * Tests for trace bundle save/load: round-tripping, format
 * robustness, and replay equivalence (a reloaded bundle produces a
 * bit-identical simulation).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "system/system.hh"
#include "workload/generator.hh"
#include "workload/litmus.hh"
#include "workload/trace_io.hh"

namespace bulksc {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "bulksc_traces_" +
               std::to_string(::getpid()) + ".bin";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceIoTest, RoundTripPreservesEveryField)
{
    AppProfile app = profileByName("radiosity");
    app.trackAllValues = true;
    auto traces = generateTraces(app, 3, 8000);
    ASSERT_TRUE(saveTraces(path, traces));

    auto loaded = loadTraces(path);
    ASSERT_EQ(loaded.size(), traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        ASSERT_EQ(loaded[i].ops.size(), traces[i].ops.size());
        EXPECT_EQ(loaded[i].totalInstrs(), traces[i].totalInstrs());
        for (std::size_t j = 0; j < traces[i].ops.size(); ++j) {
            const Op &a = traces[i].ops[j];
            const Op &b = loaded[i].ops[j];
            ASSERT_EQ(a.addr, b.addr);
            ASSERT_EQ(a.gap, b.gap);
            ASSERT_EQ(a.aux, b.aux);
            ASSERT_EQ(a.storeValue, b.storeValue);
            ASSERT_EQ(a.type, b.type);
            ASSERT_EQ(a.stackRef, b.stackRef);
            ASSERT_EQ(a.tracked, b.tracked);
        }
    }
}

TEST_F(TraceIoTest, ReplayIsBitIdentical)
{
    auto traces = generateTraces(profileByName("lu"), 4, 10000);
    ASSERT_TRUE(saveTraces(path, traces));
    auto loaded = loadTraces(path);
    ASSERT_EQ(loaded.size(), 4u);

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System a(cfg, std::move(traces));
    Results ra = a.run();
    System b(cfg, std::move(loaded));
    Results rb = b.run();
    EXPECT_EQ(ra.execTime, rb.execTime);
    EXPECT_DOUBLE_EQ(ra.stats.get("net.bits.total"),
                     rb.stats.get("net.bits.total"));
    EXPECT_DOUBLE_EQ(ra.stats.get("cpu.squashes"),
                     rb.stats.get("cpu.squashes"));
}

TEST_F(TraceIoTest, DoubleRoundTripIsByteIdentical)
{
    auto traces = generateTraces(profileByName("ocean"), 2, 5000);
    ASSERT_TRUE(saveTraces(path, traces));
    auto loaded = loadTraces(path);
    ASSERT_FALSE(loaded.empty());

    std::string path2 = path + ".2";
    ASSERT_TRUE(saveTraces(path2, loaded));
    auto slurp = [](const std::string &p) {
        std::FILE *f = std::fopen(p.c_str(), "rb");
        std::string out;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            out.append(buf, n);
        std::fclose(f);
        return out;
    };
    EXPECT_EQ(slurp(path), slurp(path2));
    std::remove(path2.c_str());
}

TEST_F(TraceIoTest, LitmusTracesRoundTrip)
{
    // Litmus traces exercise the corners profile-generated ones
    // rarely do: tiny op counts, tracked loads, explicit store
    // values, and zero-gap sequences.
    LitmusTest lt;
    ASSERT_TRUE(litmusByName("wrc", 0, lt));
    ASSERT_TRUE(saveTraces(path, lt.traces));
    auto loaded = loadTraces(path);
    ASSERT_EQ(loaded.size(), lt.traces.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        ASSERT_EQ(loaded[i].ops.size(), lt.traces[i].ops.size());
        for (std::size_t j = 0; j < loaded[i].ops.size(); ++j) {
            const Op &a = lt.traces[i].ops[j];
            const Op &b = loaded[i].ops[j];
            ASSERT_EQ(a.addr, b.addr);
            ASSERT_EQ(a.type, b.type);
            ASSERT_EQ(a.storeValue, b.storeValue);
            ASSERT_EQ(a.tracked, b.tracked);
            ASSERT_EQ(a.aux, b.aux);
        }
    }
}

TEST_F(TraceIoTest, EmptyTraceListRoundTrips)
{
    setQuiet(true);
    std::vector<Trace> none;
    ASSERT_TRUE(saveTraces(path, none));
    EXPECT_TRUE(loadTraces(path).empty());
}

TEST_F(TraceIoTest, MissingFileIsEmpty)
{
    setQuiet(true);
    EXPECT_TRUE(loadTraces("/nonexistent/nope.bin").empty());
}

TEST_F(TraceIoTest, GarbageFileIsRejected)
{
    setQuiet(true);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace bundle at all", f);
    std::fclose(f);
    EXPECT_TRUE(loadTraces(path).empty());
}

TEST_F(TraceIoTest, TruncatedBundleIsRejected)
{
    setQuiet(true);
    auto traces = generateTraces(profileByName("barnes"), 2, 4000);
    ASSERT_TRUE(saveTraces(path, traces));
    // Chop the file in half.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    EXPECT_TRUE(loadTraces(path).empty());
}

} // namespace
} // namespace bulksc
