/**
 * @file
 * Unit tests for the interconnect model: latency, delivery, and the
 * per-class traffic accounting behind Figure 11.
 */

#include <gtest/gtest.h>

#include "network/network.hh"

namespace bulksc {
namespace {

TEST(Network, DeliversAfterLatency)
{
    EventQueue eq;
    NetworkConfig cfg;
    cfg.hopLatency = 3;
    cfg.linkBitsPerCycle = 128;
    Network net(eq, cfg);

    Tick delivered = 0;
    net.send(0, 1, TrafficClass::DataRdWr, 64,
             [&] { delivered = eq.now(); });
    eq.run();
    // 64 payload + 64 header = 128 bits = 1 cycle + 3 hop cycles.
    EXPECT_EQ(delivered, 4u);
}

TEST(Network, SerializationDelayGrowsWithSize)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    EXPECT_LT(net.latencyFor(8), net.latencyFor(2048));
}

TEST(Network, AccountsTrafficByClass)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    net.send(0, 1, TrafficClass::WrSig, 300, [] {});
    net.send(1, 0, TrafficClass::WrSig, 300, [] {});
    net.send(0, 1, TrafficClass::Inval, 16, [] {});
    eq.run();
    EXPECT_EQ(net.bitsSent(TrafficClass::WrSig), 2u * (300 + 64));
    EXPECT_EQ(net.bitsSent(TrafficClass::Inval), 16u + 64);
    EXPECT_EQ(net.bitsSent(TrafficClass::RdSig), 0u);
    EXPECT_EQ(net.totalBits(),
              net.bitsSent(TrafficClass::WrSig) +
                  net.bitsSent(TrafficClass::Inval));
    EXPECT_EQ(net.messages(), 3u);
}

TEST(Network, ResetStatsClears)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    net.send(0, 1, TrafficClass::Other, 8, [] {});
    eq.run();
    EXPECT_GT(net.totalBits(), 0u);
    net.resetStats();
    EXPECT_EQ(net.totalBits(), 0u);
    EXPECT_EQ(net.messages(), 0u);
}

TEST(Network, SameTickMessagesPreserveSendOrder)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        net.send(0, 1, TrafficClass::Other, 8,
                 [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Network, ContentionSerializesSameDestination)
{
    EventQueue eq;
    NetworkConfig cfg;
    cfg.modelContention = true;
    cfg.hopLatency = 3;
    cfg.linkBitsPerCycle = 128;
    Network net(eq, cfg);

    std::vector<Tick> arrivals;
    // Three 192-bit (128+64 header -> wait, 192+64=256 bits = 2 cyc)
    // messages to the same node: they serialize 2 cycles apart.
    for (int i = 0; i < 3; ++i)
        net.send(0, 7, TrafficClass::DataRdWr, 192,
                 [&] { arrivals.push_back(eq.now()); });
    // One message to a different node is unaffected.
    Tick other = 0;
    net.send(0, 8, TrafficClass::DataRdWr, 192,
             [&] { other = eq.now(); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], 5u);
    EXPECT_EQ(arrivals[1], 7u);
    EXPECT_EQ(arrivals[2], 9u);
    EXPECT_EQ(other, 5u);
    EXPECT_EQ(net.queueingCycles(), 2u + 4u);
}

TEST(Network, ContentionOffDeliversConcurrently)
{
    EventQueue eq;
    Network net(eq, NetworkConfig{});
    std::vector<Tick> arrivals;
    for (int i = 0; i < 3; ++i)
        net.send(0, 7, TrafficClass::DataRdWr, 192,
                 [&] { arrivals.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(arrivals[0], arrivals[2]);
    EXPECT_EQ(net.queueingCycles(), 0u);
}

TEST(TrafficClassNames, AreStable)
{
    EXPECT_STREQ(trafficClassName(TrafficClass::DataRdWr), "RdWr");
    EXPECT_STREQ(trafficClassName(TrafficClass::RdSig), "RdSig");
    EXPECT_STREQ(trafficClassName(TrafficClass::WrSig), "WrSig");
    EXPECT_STREQ(trafficClassName(TrafficClass::Inval), "Inv");
    EXPECT_STREQ(trafficClassName(TrafficClass::Other), "Other");
}

} // namespace
} // namespace bulksc
