/**
 * @file
 * Tests for the schedule-exploration subsystem: schedule file
 * round-tripping, the signature-based independence relation, clean
 * litmus explorations, POR effectiveness, and the full counterexample
 * workflow (find, minimize, replay byte-identically).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "explore/explorer.hh"
#include "explore/run_controller.hh"
#include "explore/schedule.hh"
#include "signature/signature.hh"

namespace bulksc {
namespace {

// ---------------------------------------------------------------- //
// Schedule files                                                   //
// ---------------------------------------------------------------- //

TEST(Schedule, SaveLoadRoundTrip)
{
    Schedule s;
    s.choices.push_back(Choice{ChoiceKind::Order, 1, 3});
    s.choices.push_back(Choice{ChoiceKind::Delay, 2, 3});
    s.choices.push_back(Choice{ChoiceKind::Order, 0, 2});

    std::string path = ::testing::TempDir() + "sched_rt_" +
                       std::to_string(::getpid()) + ".txt";
    ASSERT_TRUE(s.save(path));

    Schedule t;
    std::string err;
    ASSERT_TRUE(t.load(path, err)) << err;
    EXPECT_EQ(s, t);

    // The canonical form is stable: re-saving the loaded schedule
    // produces byte-identical text.
    std::string path2 = path + ".2";
    ASSERT_TRUE(t.save(path2));
    auto slurp = [](const std::string &p) {
        std::FILE *f = std::fopen(p.c_str(), "rb");
        std::string out;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            out.append(buf, n);
        std::fclose(f);
        return out;
    };
    EXPECT_EQ(slurp(path), slurp(path2));
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(Schedule, ParseRejectsMalformedInput)
{
    Schedule s;
    std::string err;
    EXPECT_FALSE(s.parse("O 1/3\n", err)); // missing header
    EXPECT_FALSE(
        s.parse("# bulksc schedule v1\nX 1/3\n", err)); // bad kind
    EXPECT_FALSE(
        s.parse("# bulksc schedule v1\nO 3/3\n", err)); // out of range
    EXPECT_FALSE(
        s.parse("# bulksc schedule v1\nO nope\n", err)); // garbage
}

TEST(Schedule, ParseToleratesCommentsAndBlankLines)
{
    Schedule s;
    std::string err;
    ASSERT_TRUE(s.parse("# bulksc schedule v1\n"
                        "\n"
                        "# a comment\n"
                        "O 1/2\r\n"
                        "D 0/3\n",
                        err))
        << err;
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.choices[0].kind, ChoiceKind::Order);
    EXPECT_EQ(s.choices[0].chosen, 1u);
    EXPECT_EQ(s.choices[1].kind, ChoiceKind::Delay);
}

TEST(Schedule, PrefixTruncates)
{
    Schedule s;
    s.choices.push_back(Choice{ChoiceKind::Order, 1, 2});
    s.choices.push_back(Choice{ChoiceKind::Delay, 0, 3});
    EXPECT_EQ(s.prefix(1).size(), 1u);
    EXPECT_EQ(s.prefix(5).size(), 2u);
    EXPECT_TRUE(s.prefix(0).empty());
}

// ---------------------------------------------------------------- //
// Independence relation                                            //
// ---------------------------------------------------------------- //

class DependenceTest : public ::testing::Test
{
  protected:
    EventFootprint
    lineEvent(int dst, LineAddr line)
    {
        EventFootprint f;
        f.dst = dst;
        f.hasLine = true;
        f.line = line;
        return f;
    }

    EventFootprint
    sigEvent(int dst, std::initializer_list<LineAddr> reads,
             std::initializer_list<LineAddr> writes)
    {
        EventFootprint f;
        f.dst = dst;
        if (reads.size()) {
            auto r = std::make_shared<Signature>();
            for (LineAddr l : reads)
                r->insert(l);
            f.rsig = r;
        }
        if (writes.size()) {
            auto w = std::make_shared<Signature>();
            for (LineAddr l : writes)
                w->insert(l);
            f.wsig = w;
        }
        return f;
    }
};

TEST_F(DependenceTest, SameDestinationIsAlwaysDependent)
{
    EXPECT_TRUE(RunController::dependent(lineEvent(3, 0x10),
                                         lineEvent(3, 0x999)));
}

TEST_F(DependenceTest, UnknownFootprintIsDependent)
{
    EventFootprint unknown;
    unknown.dst = 1;
    EXPECT_TRUE(
        RunController::dependent(unknown, lineEvent(2, 0x10)));
}

TEST_F(DependenceTest, DistinctLinesAreIndependent)
{
    EXPECT_FALSE(RunController::dependent(lineEvent(1, 0x10),
                                          lineEvent(2, 0x20)));
    EXPECT_TRUE(RunController::dependent(lineEvent(1, 0x10),
                                         lineEvent(2, 0x10)));
}

TEST_F(DependenceTest, LineInSignatureIsDependent)
{
    EventFootprint sig = sigEvent(1, {}, {0x10, 0x30});
    EXPECT_TRUE(RunController::dependent(lineEvent(2, 0x10), sig));
    EXPECT_FALSE(RunController::dependent(lineEvent(2, 0x777), sig));
}

TEST_F(DependenceTest, DisjointSignaturesAreIndependent)
{
    EventFootprint a = sigEvent(1, {}, {0x10});
    EventFootprint b = sigEvent(2, {}, {0x20});
    EXPECT_FALSE(RunController::dependent(a, b));

    EventFootprint c = sigEvent(3, {0x10}, {});
    EXPECT_TRUE(RunController::dependent(a, c)); // W ∩ R ≠ ∅
}

// ---------------------------------------------------------------- //
// Exploration                                                      //
// ---------------------------------------------------------------- //

ExploreConfig
litmusConfig(const std::string &name)
{
    ExploreConfig ec;
    ec.litmusName = name;
    ec.machine.watchdog.enabled = true;
    ec.maxSchedules = 5000;
    return ec;
}

TEST(Explorer, CleanSbExplorationIsViolationFree)
{
    Explorer ex(litmusConfig("sb"));
    ExploreResult r = ex.explore();
    EXPECT_TRUE(r.exhaustive);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_FALSE(r.found);
    EXPECT_GE(r.schedulesRun, 2u);
}

TEST(Explorer, CleanMpExplorationIsViolationFree)
{
    Explorer ex(litmusConfig("mp"));
    ExploreResult r = ex.explore();
    EXPECT_TRUE(r.exhaustive);
    EXPECT_EQ(r.violations, 0u);
}

TEST(Explorer, ReplayIsDeterministic)
{
    Explorer ex(litmusConfig("sb"));
    RunOutcome a = ex.runOne(Schedule{});
    RunOutcome b = ex.runOne(Schedule{});
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].chosen, b.trace[i].chosen);
        EXPECT_EQ(a.trace[i].numOptions, b.trace[i].numOptions);
        EXPECT_EQ(a.trace[i].fingerprint, b.trace[i].fingerprint);
    }
    EXPECT_EQ(a.execTime, b.execTime);
}

TEST(Explorer, SignaturePorPrunesAtLeastThirtyPercent)
{
    // The acceptance bar: on 2-proc store-buffering, POR must cut the
    // schedule count by >= 30% versus naive enumeration (fingerprint
    // pruning off in both, so only POR differs).
    ExploreConfig on = litmusConfig("sb");
    on.fpPrune = false;
    on.por = true;
    ExploreResult ron = Explorer(on).explore();
    ASSERT_TRUE(ron.exhaustive);

    ExploreConfig off = litmusConfig("sb");
    off.fpPrune = false;
    off.por = false;
    ExploreResult roff = Explorer(off).explore();
    ASSERT_TRUE(roff.exhaustive);

    EXPECT_GT(ron.prunedPor, 0u);
    EXPECT_LE(ron.schedulesRun * 10, roff.schedulesRun * 7)
        << "POR ran " << ron.schedulesRun << " of "
        << roff.schedulesRun << " naive schedules";
}

TEST(Explorer, WaveParallelismPreservesEnumeration)
{
    ExploreConfig seq = litmusConfig("sb");
    ExploreResult rs = Explorer(seq).explore();

    ExploreConfig par = litmusConfig("sb");
    par.jobs = 4;
    ExploreResult rp = Explorer(par).explore();

    EXPECT_EQ(rs.schedulesRun, rp.schedulesRun);
    EXPECT_EQ(rs.decisionsTotal, rp.decisionsTotal);
    EXPECT_EQ(rs.prunedPor, rp.prunedPor);
    EXPECT_EQ(rs.violations, rp.violations);
}

TEST(Explorer, FingerprintPruningShrinksTheSearch)
{
    ExploreConfig with = litmusConfig("sb");
    ExploreResult rw = Explorer(with).explore();
    ASSERT_TRUE(rw.exhaustive);

    ExploreConfig without = litmusConfig("sb");
    without.fpPrune = false;
    ExploreResult ro = Explorer(without).explore();
    ASSERT_TRUE(ro.exhaustive);

    EXPECT_GT(rw.prunedFingerprint, 0u);
    EXPECT_LE(rw.schedulesRun, ro.schedulesRun);
    EXPECT_EQ(rw.violations, ro.violations);
}

// The end-to-end acceptance path: a fault that breaks the arbiter's
// collision check must yield an SC-violation counterexample that
// minimizes and replays to the identical verdict and schedule.
TEST(Explorer, FaultedArbiterYieldsMinimizedReplayableCex)
{
    ExploreConfig ec = litmusConfig("sb");
    ec.machine.faults = "arb.skip_collision=1,net.delay=0:40";
    ec.maxSchedules = 2000;
    Explorer ex(ec);

    ExploreResult r = ex.explore();
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.verdict, ExploreVerdict::ScViolation);
    EXPECT_LE(r.minimizedPrefixLen, r.counterexample.size());

    // Replaying the counterexample reproduces the violation, and
    // re-recording it yields the identical schedule (byte-identical
    // once serialized).
    RunOutcome replay = ex.runOne(r.counterexample);
    EXPECT_EQ(replay.verdict, ExploreVerdict::ScViolation);
    EXPECT_EQ(replay.mismatches, 0u);
    Schedule rerec;
    for (const DecisionRecord &d : replay.trace)
        rerec.choices.push_back(d.choice());
    EXPECT_EQ(rerec, r.counterexample);
    EXPECT_EQ(rerec.str(), r.counterexample.str());

    // The minimized prefix alone (defaults beyond it) also
    // reproduces the violation.
    RunOutcome min =
        ex.runOne(r.counterexample.prefix(r.minimizedPrefixLen));
    EXPECT_EQ(min.verdict, ExploreVerdict::ScViolation);
}

TEST(Explorer, StopAtFirstOffCountsEveryViolation)
{
    ExploreConfig ec = litmusConfig("sb");
    ec.machine.faults = "arb.skip_collision=1,net.delay=0:40";
    ec.maxSchedules = 200;
    ec.stopAtFirst = false;
    ec.minimize = false;
    ExploreResult r = Explorer(ec).explore();
    ASSERT_TRUE(r.found);
    EXPECT_GE(r.violations, 1u);
    EXPECT_EQ(r.minimizeRuns, 0u);
}

TEST(Explorer, ScheduleBudgetIsRespected)
{
    ExploreConfig ec = litmusConfig("sb");
    ec.machine.faults = "net.delay=0:40"; // plenty of branching
    ec.maxSchedules = 7;
    ExploreResult r = Explorer(ec).explore();
    EXPECT_EQ(r.schedulesRun, 7u);
    EXPECT_TRUE(r.budgetExhausted);
    EXPECT_FALSE(r.exhaustive);
}

TEST(Explorer, OnScheduleSeesDeterministicIndices)
{
    ExploreConfig ec = litmusConfig("sb");
    Explorer ex(ec);
    std::uint64_t next = 0;
    bool ordered = true;
    ex.onSchedule = [&](std::uint64_t idx, const Schedule &,
                        const RunOutcome &) {
        if (idx != next++)
            ordered = false;
    };
    ExploreResult r = ex.explore();
    EXPECT_TRUE(ordered);
    EXPECT_EQ(next, r.schedulesRun);
}

} // namespace
} // namespace bulksc
