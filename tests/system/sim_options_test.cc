/**
 * @file
 * Unit tests for the unified option registry: CLI parsing, group
 * scoping, config-file precedence, and the JSON config round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "system/sim_options.hh"

namespace bulksc {
namespace {

bool
parseArgs(std::vector<const char *> argv, SimOptions &opts,
          std::string &err, OptionGroup group = OptionGroup::Sim)
{
    const OptionRegistry &reg = OptionRegistry::instance();
    return reg.parse(static_cast<int>(argv.size()), argv.data(), opts,
                     group, err);
}

/** Every config-persistable option of @p opts as name->value. */
std::vector<std::pair<std::string, std::string>>
configState(const SimOptions &opts)
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const OptionDesc &d : OptionRegistry::instance().options()) {
        if (d.inConfig)
            out.emplace_back(d.name, d.get(opts));
    }
    return out;
}

class TempFile
{
  public:
    TempFile()
    {
        char name[] = "/tmp/bulksc_opts_XXXXXX";
        int fd = mkstemp(name);
        EXPECT_GE(fd, 0);
        path_ = name;
        close(fd);
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

    void
    write(const std::string &text) const
    {
        std::FILE *f = std::fopen(path_.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs(text.c_str(), f);
        std::fclose(f);
    }

  private:
    std::string path_;
};

TEST(SimOptions, ParsesValuesAndEqualsForm)
{
    SimOptions opts;
    std::string err;
    ASSERT_TRUE(parseArgs({"--procs", "4", "--model", "SC",
                           "--instrs=5000", "--chunk", "750"},
                          opts, err))
        << err;
    EXPECT_EQ(opts.cfg.numProcs, 4u);
    EXPECT_EQ(opts.cfg.model, Model::SC);
    EXPECT_EQ(opts.instrs, 5000u);
    EXPECT_EQ(opts.cfg.bulk.chunkSize, 750u);
}

TEST(SimOptions, FlagNegation)
{
    SimOptions opts;
    std::string err;
    ASSERT_TRUE(opts.cfg.warmCaches);
    ASSERT_TRUE(parseArgs({"--no-warm"}, opts, err)) << err;
    EXPECT_FALSE(opts.cfg.warmCaches);
    ASSERT_TRUE(parseArgs({"--warm"}, opts, err)) << err;
    EXPECT_TRUE(opts.cfg.warmCaches);
}

TEST(SimOptions, UnknownFlagNamesTheFlag)
{
    SimOptions opts;
    std::string err;
    EXPECT_FALSE(parseArgs({"--no-such-option"}, opts, err));
    EXPECT_NE(err.find("no-such-option"), std::string::npos) << err;
}

TEST(SimOptions, MalformedNumberFails)
{
    SimOptions opts;
    std::string err;
    EXPECT_FALSE(parseArgs({"--procs", "banana"}, opts, err));
    EXPECT_NE(err.find("procs"), std::string::npos) << err;
}

TEST(SimOptions, MissingValueFails)
{
    SimOptions opts;
    std::string err;
    EXPECT_FALSE(parseArgs({"--procs"}, opts, err));
    EXPECT_NE(err.find("requires a value"), std::string::npos) << err;
}

TEST(SimOptions, FlagRejectsAttachedValue)
{
    SimOptions opts;
    std::string err;
    EXPECT_FALSE(parseArgs({"--warm=yes"}, opts, err));
    EXPECT_NE(err.find("takes no value"), std::string::npos) << err;
}

TEST(SimOptions, GroupScopingRejectsForeignFlags)
{
    // --litmus belongs to bulksc_sim; the batch runner must reject it
    // with a message instead of silently eating it.
    SimOptions opts;
    std::string err;
    EXPECT_FALSE(parseArgs({"--litmus", "mp"}, opts, err,
                           OptionGroup::Batch));
    EXPECT_NE(err.find("litmus"), std::string::npos) << err;
    EXPECT_TRUE(parseArgs({"--litmus", "mp"}, opts, err,
                          OptionGroup::Sim))
        << err;
    EXPECT_EQ(opts.litmus, "mp");
}

TEST(SimOptions, CliOverridesConfigFileRegardlessOfOrder)
{
    TempFile file;
    file.write("{\"procs\": 4, \"chunk\": 500}\n");

    // Flag before --config: the file is still applied first.
    SimOptions a;
    std::string err;
    ASSERT_TRUE(parseArgs({"--procs", "16", "--config",
                           file.path().c_str()},
                          a, err))
        << err;
    EXPECT_EQ(a.cfg.numProcs, 16u);
    EXPECT_EQ(a.cfg.bulk.chunkSize, 500u);

    // Flag after --config.
    SimOptions b;
    ASSERT_TRUE(parseArgs({"--config", file.path().c_str(), "--procs",
                           "16"},
                          b, err))
        << err;
    EXPECT_EQ(b.cfg.numProcs, 16u);
    EXPECT_EQ(b.cfg.bulk.chunkSize, 500u);
}

TEST(SimOptions, ApplyKeyValue)
{
    const OptionRegistry &reg = OptionRegistry::instance();
    SimOptions opts;
    std::string err;
    ASSERT_TRUE(reg.applyKeyValue(opts, "sig-bits", "1024", err))
        << err;
    EXPECT_EQ(opts.cfg.bulk.sigCfg.totalBits, 1024u);
    ASSERT_TRUE(reg.applyKeyValue(opts, "warm", "false", err)) << err;
    EXPECT_FALSE(opts.cfg.warmCaches);
    EXPECT_FALSE(reg.applyKeyValue(opts, "bogus-key", "1", err));
    EXPECT_NE(err.find("bogus-key"), std::string::npos) << err;
}

TEST(SimOptions, ParseFlatJson)
{
    std::vector<std::pair<std::string, std::string>> kv;
    std::string err;
    ASSERT_TRUE(parseFlatJson(
        "{\"a\": 3, \"b\": \"str\", \"c\": true, \"d\": false}", kv,
        err))
        << err;
    ASSERT_EQ(kv.size(), 4u);
    EXPECT_EQ(kv[0], (std::pair<std::string, std::string>{"a", "3"}));
    EXPECT_EQ(kv[1],
              (std::pair<std::string, std::string>{"b", "str"}));
    EXPECT_EQ(kv[2], (std::pair<std::string, std::string>{"c", "1"}));
    EXPECT_EQ(kv[3], (std::pair<std::string, std::string>{"d", "0"}));

    EXPECT_FALSE(parseFlatJson("{\"a\": {\"nested\": 1}}", kv, err));
    EXPECT_FALSE(parseFlatJson("{\"a\": [1, 2]}", kv, err));
    EXPECT_FALSE(parseFlatJson("not json", kv, err));
}

TEST(SimOptions, DumpConfigRoundTripIsLossless)
{
    // A dumped config, loaded into a fresh SimOptions, must reproduce
    // every config-persistable option — including non-defaults.
    SimOptions src;
    std::string err;
    ASSERT_TRUE(parseArgs({"--procs", "4", "--model", "BSCstpvt",
                           "--chunk", "2000", "--sig-bits", "1024",
                           "--no-warm", "--seed-salt", "9",
                           "--arbiters", "4", "--app", "radix"},
                          src, err))
        << err;

    TempFile file;
    std::FILE *f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    OptionRegistry::instance().dumpConfigJson(f, src);
    std::fclose(f);

    SimOptions dst;
    ASSERT_TRUE(OptionRegistry::instance().loadConfigFile(file.path(),
                                                          dst, err))
        << err;
    EXPECT_EQ(configState(dst), configState(src));
}

TEST(SimOptions, CheckListParsing)
{
    SimOptions opts;
    std::string err;
    ASSERT_TRUE(parseArgs({"--check", "axiomatic,race"}, opts, err))
        << err;
    EXPECT_TRUE(opts.checks.axiomatic);
    EXPECT_TRUE(opts.checks.race);
    EXPECT_FALSE(opts.checks.replay);
    EXPECT_TRUE(opts.checks.any());
    EXPECT_EQ(opts.checks.str(), "axiomatic,race");

    EXPECT_FALSE(parseArgs({"--check", "axiomatic,wat"}, opts, err));
    EXPECT_NE(err.find("wat"), std::string::npos) << err;
}

} // namespace
} // namespace bulksc
