/**
 * @file
 * Unit tests for machine-configuration resolution (Table 2 defaults
 * and the per-model knobs).
 */

#include <gtest/gtest.h>

#include "system/machine_config.hh"

namespace bulksc {
namespace {

TEST(MachineConfig, Table2Defaults)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.numProcs, 8u);
    EXPECT_EQ(cfg.mem.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.mem.l1.assoc, 4u);
    EXPECT_EQ(cfg.mem.l1.lineBytes, 32u);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.mem.l2.assoc, 8u);
    EXPECT_EQ(cfg.mem.l1Mshrs, 8u);
    EXPECT_EQ(cfg.mem.l1Latency, 2u);
    EXPECT_EQ(cfg.mem.l2Latency, 13u);
    EXPECT_EQ(cfg.mem.memLatency, 300u);
    EXPECT_EQ(cfg.bulk.chunkSize, 1000u);
    EXPECT_EQ(cfg.bulk.maxLiveChunks, 2u);
    EXPECT_EQ(cfg.bulk.sigCfg.totalBits, 2048u);
    EXPECT_EQ(cfg.maxSimulCommits, 8u);
    EXPECT_EQ(cfg.numArbiters, 1u);
    EXPECT_EQ(cfg.shiqEntries, 2048u);
    EXPECT_EQ(cfg.cpu.windowOps, 56u);
    EXPECT_EQ(cfg.cpu.robInstrs, 176u);
    EXPECT_EQ(cfg.cpu.issueWidth, 4u);
}

TEST(MachineConfig, ResolveSetsModelKnobs)
{
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.resolve();
    EXPECT_TRUE(cfg.mem.bulkMode);
    EXPECT_TRUE(cfg.bulk.dynPrivOpt);
    EXPECT_FALSE(cfg.bulk.statPrivOpt);
    EXPECT_FALSE(cfg.bulk.sigCfg.exact);

    cfg.model = Model::BSCexact;
    cfg.resolve();
    EXPECT_TRUE(cfg.bulk.dynPrivOpt); // BSCexact = BSCdypvt + magic sig
    EXPECT_TRUE(cfg.bulk.sigCfg.exact);
    EXPECT_TRUE(cfg.mem.sigCfg.exact);

    cfg.model = Model::BSCstpvt;
    cfg.resolve();
    EXPECT_TRUE(cfg.bulk.statPrivOpt);
    EXPECT_FALSE(cfg.bulk.dynPrivOpt);

    cfg.model = Model::RC;
    cfg.resolve();
    EXPECT_FALSE(cfg.mem.bulkMode);
}

TEST(MachineConfig, ModelNamesRoundTrip)
{
    for (Model m : {Model::SC, Model::RC, Model::SCpp, Model::BSCbase,
                    Model::BSCdypvt, Model::BSCstpvt,
                    Model::BSCexact}) {
        EXPECT_EQ(modelByName(modelName(m)), m);
    }
    EXPECT_TRUE(isBulk(Model::BSCbase));
    EXPECT_TRUE(isBulk(Model::BSCexact));
    EXPECT_FALSE(isBulk(Model::SC));
    EXPECT_FALSE(isBulk(Model::SCpp));
}

TEST(MachineConfig, ResolvePropagatesProcCount)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.resolve();
    EXPECT_EQ(cfg.mem.numProcs, 4u);
    EXPECT_EQ(cfg.cpu.numBarrierProcs, 4u);
}

} // namespace
} // namespace bulksc
