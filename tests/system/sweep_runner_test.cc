/**
 * @file
 * Unit tests for the parameter-sweep runner: grid enumeration,
 * validation, per-point seed derivation, and the byte-identical
 * output guarantee across worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "system/sweep_runner.hh"

namespace bulksc {
namespace {

SimOptions
tinyBase()
{
    SimOptions base;
    base.instrs = 1200; // keep each grid point fast
    return base;
}

/** Run the grid with @p workers and return the JSONL output. */
std::string
runToString(SweepRunner &runner, unsigned workers,
            std::size_t *failed = nullptr)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    std::size_t nfail = runner.run(workers, f);
    if (failed)
        *failed = nfail;
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::rewind(f);
    std::string out(static_cast<std::size_t>(len), '\0');
    EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
    return out;
}

TEST(SweepRunner, GridIsRowMajorLastAxisFastest)
{
    SweepRunner runner(tinyBase(),
                       {{"procs", {"2", "4"}}, {"chunk", {"100",
                                                          "200"}}});
    ASSERT_EQ(runner.numPoints(), 4u);
    using KV = std::vector<std::pair<std::string, std::string>>;
    EXPECT_EQ(runner.pointSettings(0),
              (KV{{"procs", "2"}, {"chunk", "100"}}));
    EXPECT_EQ(runner.pointSettings(1),
              (KV{{"procs", "2"}, {"chunk", "200"}}));
    EXPECT_EQ(runner.pointSettings(2),
              (KV{{"procs", "4"}, {"chunk", "100"}}));
    EXPECT_EQ(runner.pointSettings(3),
              (KV{{"procs", "4"}, {"chunk", "200"}}));
}

TEST(SweepRunner, ValidateRejectsUnknownAxis)
{
    SweepRunner runner(tinyBase(), {{"frobnicate", {"1"}}});
    std::string err;
    EXPECT_FALSE(runner.validateGrid(err));
    EXPECT_NE(err.find("frobnicate"), std::string::npos) << err;
}

TEST(SweepRunner, ValidateRejectsEmptyAxis)
{
    SweepRunner runner(tinyBase(), {{"procs", {}}});
    std::string err;
    EXPECT_FALSE(runner.validateGrid(err));
    EXPECT_NE(err.find("procs"), std::string::npos) << err;
}

TEST(SweepRunner, ValidateRejectsInvalidPoint)
{
    SweepRunner runner(tinyBase(), {{"procs", {"2", "0"}}});
    std::string err;
    EXPECT_FALSE(runner.validateGrid(err));
    EXPECT_NE(err.find("point"), std::string::npos) << err;
}

TEST(SweepRunner, PointsGetDistinctStableSeeds)
{
    SweepRunner runner(tinyBase(), {{"chunk", {"100", "200"}}});
    SimOptions p0, p1, p0again;
    std::string err;
    ASSERT_TRUE(runner.pointOptions(0, p0, err)) << err;
    ASSERT_TRUE(runner.pointOptions(1, p1, err)) << err;
    ASSERT_TRUE(runner.pointOptions(0, p0again, err)) << err;
    EXPECT_NE(p0.seedSalt, p1.seedSalt);
    EXPECT_EQ(p0.seedSalt, p0again.seedSalt);
}

TEST(SweepRunner, ExplicitSeedSaltAxisIsNotRederived)
{
    SweepRunner runner(tinyBase(), {{"seed-salt", {"3", "8"}}});
    SimOptions p0, p1;
    std::string err;
    ASSERT_TRUE(runner.pointOptions(0, p0, err)) << err;
    ASSERT_TRUE(runner.pointOptions(1, p1, err)) << err;
    EXPECT_EQ(p0.seedSalt, 3u);
    EXPECT_EQ(p1.seedSalt, 8u);
}

TEST(SweepRunner, OutputIsByteIdenticalAcrossWorkerCounts)
{
    std::vector<SweepAxis> axes{{"procs", {"2", "4"}},
                                {"chunk", {"400", "800"}}};
    std::string err;
    SweepRunner serial(tinyBase(), axes);
    ASSERT_TRUE(serial.validateGrid(err)) << err;
    std::size_t fail1 = 0, fail8 = 0;
    std::string out1 = runToString(serial, 1, &fail1);
    SweepRunner parallel(tinyBase(), axes);
    std::string out8 = runToString(parallel, 8, &fail8);
    EXPECT_EQ(fail1, 0u);
    EXPECT_EQ(fail8, 0u);
    EXPECT_FALSE(out1.empty());
    EXPECT_EQ(out1, out8);
    // One record per point, point index leading.
    EXPECT_EQ(std::count(out1.begin(), out1.end(), '\n'), 4);
    EXPECT_EQ(out1.rfind("{\"point\": 0", 0), 0u);
}

TEST(SweepRunner, FailedPointEmitsErrorRecordAndCounts)
{
    SimOptions base = tinyBase();
    base.app = "nosuchapp";
    SweepRunner runner(base, {{"chunk", {"100"}}});
    std::size_t failed = 0;
    std::string out = runToString(runner, 1, &failed);
    EXPECT_EQ(failed, 1u);
    EXPECT_NE(out.find("\"error\""), std::string::npos) << out;
    EXPECT_NE(out.find("nosuchapp"), std::string::npos) << out;
}

} // namespace
} // namespace bulksc
