/**
 * @file
 * Tests for the forward-progress watchdog: each detector (deadlock,
 * livelock, starvation) against a synthetic fixture that provokes it,
 * the rescue path, and the guarantee that an armed watchdog never
 * perturbs a healthy run.
 */

#include <gtest/gtest.h>

#include "core/bulk_processor.hh"
#include "system/sim_options.hh"
#include "system/system.hh"
#include "workload/generator.hh"

namespace bulksc {
namespace {

Op
load(Addr a, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

/** Plain two-processor workload on disjoint lines: always healthy. */
std::vector<Trace>
healthyTraces()
{
    std::vector<Trace> traces;
    for (int p = 0; p < 2; ++p) {
        std::vector<Op> ops;
        const Addr base = 0xA000'0000 + p * 0x1000;
        for (int i = 0; i < 200; ++i) {
            ops.push_back(store(base + (i % 8) * 64, i, 2));
            ops.push_back(load(base + (i % 8) * 64, 2));
        }
        traces.push_back(makeTrace(ops));
    }
    return traces;
}

TEST(Watchdog, HealthyRunPassesCleanly)
{
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 1'000;
    System sys(cfg, healthyTraces());
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.watchdogVerdict, WatchdogVerdict::None);
    EXPECT_TRUE(r.watchdogReport.empty());
    EXPECT_GT(r.stats.get("watchdog.checks"), 0.0);
    EXPECT_EQ(r.stats.get("watchdog.rescues"), 0.0);
}

TEST(Watchdog, ObservationDoesNotPerturbTheSimulation)
{
    // The watchdog only reads machine state; an armed-but-untripped
    // run must retire, commit, and squash exactly like an unwatched
    // one.
    auto run = [&](bool enabled) {
        MachineConfig cfg;
        cfg.model = Model::BSCdypvt;
        cfg.numProcs = 2;
        cfg.watchdog.enabled = enabled;
        cfg.watchdog.interval = 500;
        System sys(cfg, healthyTraces());
        return sys.run(100'000'000);
    };
    Results with = run(true);
    Results without = run(false);
    ASSERT_TRUE(with.completed);
    ASSERT_TRUE(without.completed);
    EXPECT_EQ(with.stats.get("cpu.retired_instrs"),
              without.stats.get("cpu.retired_instrs"));
    EXPECT_EQ(with.stats.get("bulk.commits"),
              without.stats.get("bulk.commits"));
    EXPECT_EQ(with.stats.get("cpu.squashes"),
              without.stats.get("cpu.squashes"));
}

TEST(Watchdog, DeadlockDetectedWhenProtocolWedges)
{
    // Lose every arbiter reply and give up resending quickly: the
    // machine wedges with chunks waiting on grants that will never
    // arrive. The no-progress detector must convert the wedge into a
    // Deadlock verdict with a diagnostic dump instead of a silent
    // tick-limit timeout.
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.faults = "arb.grant_loss=1.0";
    cfg.bulk.maxResend = 2;
    cfg.bulk.resendTimeout = 64;
    cfg.mem.maxResend = 2;
    cfg.mem.resendTimeout = 64;
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 2'000;
    System sys(cfg, healthyTraces());
    Results r = sys.run(100'000'000);
    EXPECT_FALSE(r.completed);
    ASSERT_EQ(r.watchdogVerdict, WatchdogVerdict::Deadlock);
    // The report must name the verdict and dump per-processor chunk
    // state for post-mortem debugging.
    EXPECT_NE(r.watchdogReport.find("deadlock"), std::string::npos);
    EXPECT_NE(r.watchdogReport.find("cpu0"), std::string::npos);
    EXPECT_NE(r.watchdogReport.find("cpu1"), std::string::npos);
    EXPECT_NE(r.watchdogReport.find("chunk"), std::string::npos);
}

TEST(Watchdog, TickCeilingTripsEvenWithProgress)
{
    // A hard wall-clock budget: the run is healthy but slow, and the
    // ceiling converts it into a Deadlock verdict at a known tick.
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 100;
    cfg.watchdog.tickCeiling = 100;
    System sys(cfg, healthyTraces());
    Results r = sys.run(100'000'000);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.watchdogVerdict, WatchdogVerdict::Deadlock);
    EXPECT_NE(r.watchdogReport.find("tick ceiling"),
              std::string::npos);
}

TEST(Watchdog, LivelockDetectedOnSquashStorm)
{
    // Four processors ping-pong on one line with chunks already at
    // the minimum size: shrinking has no room left, so a tiny
    // livelock threshold must trip while the storm rages.
    const Addr v = 0x9100'0000;
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 2'000; ++i) {
            ops.push_back(load(v, 2));
            ops.push_back(store(v, i, 2));
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    cfg.bulk.chunkSize = 16;
    cfg.bulk.minChunkSize = 16;
    cfg.bulk.preArbThreshold = 1'000'000; // keep pre-arb out of the way
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 200;
    cfg.watchdog.livelockSquashes = 2;
    System sys(cfg, {mk(), mk(), mk(), mk()});
    Results r = sys.run(200'000'000);
    EXPECT_FALSE(r.completed);
    ASSERT_EQ(r.watchdogVerdict, WatchdogVerdict::Livelock);
    EXPECT_NE(r.watchdogReport.find("livelock"), std::string::npos);
}

/**
 * Starvation fixture: each of processor 0's memory ops is preceded
 * by thousands of non-memory instructions, so every chunk takes
 * ~1000 ticks to fill and its commits are far apart, while the other
 * processors commit every few dozen ticks. No contention — the gap
 * is purely one of commit cadence.
 */
std::vector<Trace>
starvationTraces()
{
    std::vector<Trace> traces;
    {
        std::vector<Op> ops;
        for (int i = 0; i < 100; ++i)
            ops.push_back(store(0xD000'0000 + (i % 4) * 64, i, 4'000));
        traces.push_back(makeTrace(ops));
    }
    for (int p = 1; p < 4; ++p) {
        std::vector<Op> ops;
        const Addr base = 0xA200'0000 + p * 0x1000;
        for (int i = 0; i < 30'000; ++i)
            ops.push_back(store(base + (i % 8) * 64, i, 0));
        traces.push_back(makeTrace(ops));
    }
    return traces;
}

TEST(Watchdog, StarvationTripsWithRescueDisabled)
{
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    cfg.bulk.chunkSize = 200;
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 200;
    cfg.watchdog.starvationGap = 400;
    cfg.watchdog.rescue = false;
    System sys(cfg, starvationTraces());
    Results r = sys.run(200'000'000);
    EXPECT_FALSE(r.completed);
    ASSERT_EQ(r.watchdogVerdict, WatchdogVerdict::Starvation);
    EXPECT_NE(r.watchdogReport.find("starvation"), std::string::npos);
    EXPECT_NE(r.watchdogReport.find("cpu0"), std::string::npos);
}

TEST(Watchdog, RescueBoostsTheStarvedProcessor)
{
    // Same fixture with graceful degradation on: the lagging
    // processor gets its chunks clamped to the minimum size plus
    // pre-arbitration priority before the trip threshold.
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    cfg.bulk.chunkSize = 200;
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 200;
    cfg.watchdog.starvationGap = 400;
    cfg.watchdog.rescue = true;
    System sys(cfg, starvationTraces());
    Results r = sys.run(200'000'000);
    EXPECT_GT(r.stats.get("watchdog.rescues"), 0.0);
    ASSERT_NE(sys.watchdog(), nullptr);
    EXPECT_GT(sys.watchdog()->rescues(), 0u);
}

TEST(Watchdog, DisabledByDefaultForLibraryUse)
{
    // Embedders constructing a MachineConfig directly get no
    // watchdog; the command-line tools opt in via SimOptions.
    MachineConfig raw;
    EXPECT_FALSE(raw.watchdog.enabled);
    SimOptions opts;
    EXPECT_TRUE(opts.cfg.watchdog.enabled);

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 2;
    System sys(cfg, healthyTraces());
    EXPECT_EQ(sys.watchdog(), nullptr);
    Results r = sys.run(100'000'000);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.stats.get("watchdog.checks"), 0.0);
}

TEST(Watchdog, ValidateRejectsZeroInterval)
{
    MachineConfig cfg;
    cfg.watchdog.enabled = true;
    cfg.watchdog.interval = 0;
    std::string err;
    EXPECT_FALSE(cfg.validate(err));
    EXPECT_NE(err.find("watchdog"), std::string::npos);
}

} // namespace
} // namespace bulksc
