#include "system/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"

namespace bulksc {

namespace {

const AppProfile *
findProfile(const std::string &name)
{
    for (const AppProfile &p : allProfiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

} // namespace

SweepRunner::SweepRunner(SimOptions base_, std::vector<SweepAxis> axes_)
    : base(std::move(base_)), axes(std::move(axes_))
{
    nPoints = 1;
    sweepsSeedSalt = false;
    sweepsFaultSeed = false;
    for (const SweepAxis &a : axes) {
        nPoints *= a.values.size();
        if (a.name == "seed-salt")
            sweepsSeedSalt = true;
        if (a.name == "fault-seed")
            sweepsFaultSeed = true;
    }
}

std::vector<std::pair<std::string, std::string>>
SweepRunner::pointSettings(std::size_t idx) const
{
    // Row-major: the last axis varies fastest.
    std::vector<std::pair<std::string, std::string>> out(axes.size());
    for (std::size_t a = axes.size(); a-- > 0;) {
        const SweepAxis &ax = axes[a];
        out[a] = {ax.name, ax.values[idx % ax.values.size()]};
        idx /= ax.values.size();
    }
    return out;
}

bool
SweepRunner::pointOptions(std::size_t idx, SimOptions &out,
                          std::string &err) const
{
    const OptionRegistry &reg = OptionRegistry::instance();
    out = base;
    for (const auto &[name, value] : pointSettings(idx)) {
        if (!reg.applyKeyValue(out, name, value, err))
            return false;
    }
    // Same point index, same trace and same fault schedule —
    // regardless of which worker runs it or how many there are.
    if (!sweepsSeedSalt)
        out.seedSalt = deriveSeed(base.seedSalt, idx);
    if (!sweepsFaultSeed)
        out.cfg.faultSeed = deriveSeed(base.cfg.faultSeed, idx);
    return true;
}

bool
SweepRunner::validateGrid(std::string &err) const
{
    const OptionRegistry &reg = OptionRegistry::instance();
    for (const SweepAxis &a : axes) {
        const OptionDesc *d = reg.find(a.name);
        if (!d || !d->inConfig) {
            err = "unknown sweep axis '" + a.name + "'";
            return false;
        }
        if (a.values.empty()) {
            err = "sweep axis '" + a.name + "' has no values";
            return false;
        }
    }
    for (std::size_t i = 0; i < nPoints; ++i) {
        SimOptions o;
        std::string perr;
        if (!pointOptions(i, o, perr) || !o.cfg.validate(perr)) {
            err = "point " + std::to_string(i) + ": " + perr;
            return false;
        }
        if (!findProfile(o.app)) {
            err = "point " + std::to_string(i) + ": unknown app '" +
                  o.app + "'";
            return false;
        }
    }
    return true;
}

std::string
SweepRunner::runPoint(std::size_t idx, bool &ok) const
{
    std::ostringstream os;
    os << "{\"point\": " << idx;
    SimOptions o;
    std::string err;
    const OptionRegistry &reg = OptionRegistry::instance();
    os << ", \"settings\": {";
    bool first_s = true;
    for (const auto &[name, value] : pointSettings(idx)) {
        const OptionDesc *d = reg.find(name);
        os << (first_s ? "" : ", ") << '"' << jsonEscape(name)
           << "\": ";
        first_s = false;
        if (d && d->kind == OptionDesc::Kind::UInt)
            os << value;
        else if (d && d->kind == OptionDesc::Kind::Flag)
            os << (value == "1" || value == "true" ? "true" : "false");
        else
            os << '"' << jsonEscape(value) << '"';
    }
    os << '}';
    if (!pointOptions(idx, o, err) || !o.cfg.validate(err)) {
        os << ", \"error\": \"" << jsonEscape(err) << "\"}";
        ok = false;
        return os.str();
    }
    const AppProfile *app = findProfile(o.app);
    if (!app) {
        os << ", \"error\": \"unknown app '" << jsonEscape(o.app)
           << "'\"}";
        ok = false;
        return os.str();
    }

    std::vector<Trace> traces = generateTraces(
        *app, o.cfg.numProcs, o.instrs, o.seedSalt);
    System sys(o.cfg, std::move(traces));
    Results res = sys.run();

    os << ", \"model\": \"" << modelName(o.cfg.model) << '"';
    os << ", \"app\": \"" << jsonEscape(o.app) << '"';
    os << ", \"procs\": " << o.cfg.numProcs;
    os << ", \"instrs\": " << o.instrs;
    os << ", \"seed_salt\": " << o.seedSalt;
    if (!o.cfg.faults.empty())
        os << ", \"fault_seed\": " << o.cfg.faultSeed;
    os << ", \"completed\": " << (res.completed ? "true" : "false");
    os << ", \"watchdog\": \""
       << watchdogVerdictName(res.watchdogVerdict) << '"';
    os << ", \"stats\": {";
    bool first = true;
    for (const auto &[k, v] : res.stats.entries()) {
        os << (first ? "" : ", ") << '"' << jsonEscape(k)
           << "\": " << jsonNumber(v);
        first = false;
    }
    os << "}}";
    ok = res.completed &&
         res.watchdogVerdict == WatchdogVerdict::None;
    return os.str();
}

std::size_t
SweepRunner::run(unsigned workers, std::FILE *out, bool progress)
{
    if (workers == 0)
        workers = 1;
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, std::max<std::size_t>(
                                           nPoints, 1)));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failed{0};

    std::mutex mtx;
    std::condition_variable cv;
    std::map<std::size_t, std::string> ready;

    auto worker = [&] {
        while (true) {
            std::size_t idx = next.fetch_add(1);
            if (idx >= nPoints)
                return;
            bool ok = true;
            std::string rec = runPoint(idx, ok);
            if (!ok)
                failed.fetch_add(1);
            {
                std::lock_guard<std::mutex> lk(mtx);
                ready.emplace(idx, std::move(rec));
            }
            cv.notify_one();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);

    // Stream records strictly in point order: emit a record as soon as
    // it and every predecessor are available.
    std::size_t emitted = 0;
    {
        std::unique_lock<std::mutex> lk(mtx);
        while (emitted < nPoints) {
            cv.wait(lk, [&] { return ready.count(emitted) != 0; });
            while (true) {
                auto it = ready.find(emitted);
                if (it == ready.end())
                    break;
                std::fprintf(out, "%s\n", it->second.c_str());
                ready.erase(it);
                ++emitted;
                if (progress) {
                    std::fprintf(stderr, "\r%zu/%zu points", emitted,
                                 nPoints);
                }
            }
            std::fflush(out);
        }
    }
    if (progress)
        std::fprintf(stderr, "\n");

    for (std::thread &t : pool)
        t.join();
    return failed.load();
}

} // namespace bulksc
