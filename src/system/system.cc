#include "system/system.hh"

#include "cpu/rc_processor.hh"
#include "cpu/sc_processor.hh"
#include "cpu/scpp_processor.hh"
#include "cpu/tso_processor.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/generator.hh"

namespace bulksc {

System::System(MachineConfig cfg_, std::vector<Trace> traces_)
    : cfg(std::move(cfg_)), traces(std::move(traces_))
{
    fatal_if(traces.empty(), "system needs at least one trace");
    if (cfg.numProcs > traces.size())
        cfg.numProcs = static_cast<unsigned>(traces.size());
    cfg.resolve();

    // Fault plane: parse the spec, fold in the deprecated
    // inject-skip-arb alias, and derive whether the hardened
    // (sequence numbers + timeout/resend) protocol is needed.
    {
        std::vector<FaultPoint> pts;
        if (!cfg.faults.empty()) {
            std::string err;
            fatal_if(!FaultPlane::parseSpec(cfg.faults, pts, err),
                     "faults: ", err);
        }
        if (cfg.faultSkipArbEvery) {
            FaultPoint pt;
            pt.kind = FaultKind::ArbSkipCollision;
            pt.everyN = cfg.faultSkipArbEvery;
            pts.push_back(pt);
        }
        faults.configure(std::move(pts), cfg.faultSeed);
    }
    if (faults.requiresHardening())
        cfg.harden = true;
    cfg.bulk.harden = cfg.harden;
    cfg.mem.harden = cfg.harden;

    const unsigned np = cfg.numProcs;
    const unsigned nd = cfg.mem.numDirectories;

    net = std::make_unique<Network>(eq, cfg.net);
    memSys = std::make_unique<MemorySystem>(eq, *net, cfg.mem);
    if (faults.active()) {
        net->setFaultPlane(&faults);
        memSys->setFaultPlane(&faults);
    }

    if (isBulk(cfg.model)) {
        if (cfg.numArbiters <= 1) {
            auto a = std::make_unique<Arbiter>(
                eq, *net, np + nd, cfg.arbProcessing, cfg.bulk.rsigOpt,
                cfg.maxSimulCommits);
            if (faults.active())
                a->setFaultPlane(&faults);
            arb = std::move(a);
        } else {
            fatal_if(faults.has(FaultKind::ArbSkipCollision),
                     "arb.skip_collision injection needs the central "
                     "arbiter (numArbiters <= 1)");
            auto a = std::make_unique<DistributedArbiter>(
                eq, *net, np + nd, cfg.numArbiters, cfg.arbProcessing,
                cfg.bulk.rsigOpt);
            if (faults.active())
                a->setFaultPlane(&faults);
            arb = std::move(a);
        }
    }

    for (unsigned p = 0; p < np; ++p) {
        std::string name = "cpu" + std::to_string(p);
        switch (cfg.model) {
          case Model::SC:
            procs.push_back(std::make_unique<ScProcessor>(
                eq, name, p, *memSys, traces[p], cfg.cpu));
            break;
          case Model::TSO:
            procs.push_back(std::make_unique<TsoProcessor>(
                eq, name, p, *memSys, traces[p], cfg.cpu));
            break;
          case Model::RC:
            procs.push_back(std::make_unique<RcProcessor>(
                eq, name, p, *memSys, traces[p], cfg.cpu));
            break;
          case Model::SCpp:
            procs.push_back(std::make_unique<ScppProcessor>(
                eq, name, p, *memSys, traces[p], cfg.cpu,
                cfg.shiqEntries));
            break;
          default:
            procs.push_back(std::make_unique<BulkProcessor>(
                eq, name, p, *memSys, traces[p], cfg.cpu, cfg.bulk,
                *arb));
            break;
        }
    }

    if (cfg.watchdog.enabled && isBulk(cfg.model)) {
        std::vector<BulkProcessor *> bps;
        for (auto &p : procs) {
            if (auto *bp = dynamic_cast<BulkProcessor *>(p.get()))
                bps.push_back(bp);
        }
        if (!bps.empty()) {
            dog = std::make_unique<Watchdog>(eq, cfg.watchdog,
                                             std::move(bps), *net);
        }
    }
}

System::~System() = default;

void
System::enableScVerification()
{
    fatal_if(!isBulk(cfg.model),
             "SC verification is defined over chunked executions "
             "(BulkSC models)");
    verifier = std::make_unique<ScVerifier>();
    for (auto &p : procs) {
        if (auto *bp = dynamic_cast<BulkProcessor *>(p.get()))
            bp->setVerifier(verifier.get());
    }
}

void
System::enableAnalysis(bool axiomatic, bool race)
{
    fatal_if(!isBulk(cfg.model),
             "the analysis engine observes chunk commits (BulkSC "
             "models)");
    AnalysisConfig acfg;
    acfg.axiomatic = axiomatic;
    acfg.race = race;
    acfg.numProcs = cfg.numProcs;
    // The workload generator keeps every synchronization variable
    // (locks, barrier words) in this dedicated range.
    acfg.syncLo = layout::kLockBase;
    acfg.syncHi = layout::kStreamBase;
    engine = std::make_unique<AnalysisEngine>(acfg);
    for (auto &p : procs) {
        if (auto *bp = dynamic_cast<BulkProcessor *>(p.get()))
            bp->setAnalysis(engine.get());
    }
}

void
System::setScheduleController(ScheduleController *c)
{
    eq.setController(c);
    net->setScheduleController(c);
}

std::uint64_t
System::stateFingerprint() const
{
    std::uint64_t h = mix64(0x535953ULL); // "SYS"
    for (const auto &p : procs)
        h = mix64(h ^ p->fingerprint());
    if (arb)
        h = mix64(h ^ arb->fingerprint());
    return mix64(h ^ memSys->fingerprint());
}

Results
System::run(Tick limit)
{
    if (cfg.warmCaches) {
        // Warm everything except the streaming region (whose whole
        // point is to expose memory latency). Per processor, the
        // first-touched lines also warm the L1 — earliest-touched
        // most-recently-used — and per-processor-private lines whose
        // first access is a store start out dirty-owned, seeding the
        // steady-state pattern the dypvt optimization captures.
        for (unsigned p = 0; p < procs.size(); ++p) {
            const Trace &t = traces[p];
            std::unordered_map<LineAddr, bool> first; // line -> dirty
            std::vector<LineAddr> order;
            for (const Op &op : t.ops) {
                if (op.addr >= layout::kStreamBase)
                    continue;
                LineAddr line = lineOf(op.addr, cfg.mem.l1.lineBytes);
                memSys->warmLine(line);
                if (first.count(line))
                    continue;
                bool priv =
                    (op.addr >= layout::kStackBase &&
                     op.addr < layout::kSharedBase) ||
                    op.addr >= layout::kLockBase;
                first[line] = op.type == OpType::Store && priv &&
                              op.addr < layout::kLockBase;
                order.push_back(line);
            }
            // The earliest-touched lines should be resident (and most
            // recently used) at simulation start: take the first
            // L1-sized prefix of the touch order and insert it
            // back-to-front.
            std::size_t count = order.size();
            if (count > cfg.mem.l1.numLines())
                count = cfg.mem.l1.numLines();
            for (std::size_t i = count; i-- > 0;)
                memSys->warmL1(p, order[i], first[order[i]]);
        }
    }
    for (auto &p : procs)
        p->start();
    if (dog)
        dog->start();
    eq.run(limit);

    Results res;
    res.completed = true;
    for (auto &p : procs) {
        if (!p->finished()) {
            res.completed = false;
            continue;
        }
        if (p->finishTick() > res.execTime)
            res.execTime = p->finishTick();
    }
    if (dog) {
        res.watchdogVerdict = dog->verdict();
        res.watchdogReport = dog->report();
    }
    if (!res.completed) {
        if (res.watchdogVerdict == WatchdogVerdict::None)
            warn("run hit the tick limit before all processors "
                 "finished");
        res.execTime = eq.now();
    }
    for (auto &p : procs)
        res.loadResults.push_back(p->loadResults());
    collectStats(res);
    return res;
}

void
System::collectStats(Results &res) const
{
    StatGroup &sg = res.stats;
    sg.set("exec_time", static_cast<double>(res.execTime));
    sg.set("model_is_bulk", isBulk(cfg.model) ? 1 : 0);

    // Network traffic by class (Figure 11), both absolute bits and
    // each class's share of the total.
    double totalBits = static_cast<double>(net->totalBits());
    for (unsigned c = 0;
         c < static_cast<unsigned>(TrafficClass::NumClasses); ++c) {
        auto cls = static_cast<TrafficClass>(c);
        double bits = static_cast<double>(net->bitsSent(cls));
        sg.set(std::string("net.bits.") + trafficClassName(cls), bits);
        sg.set(std::string("net.share.") + trafficClassName(cls),
               totalBits > 0 ? 100.0 * bits / totalBits : 0.0);
    }
    sg.set("net.bits.total", totalBits);
    sg.set("net.messages", static_cast<double>(net->messages()));
    sg.set("net.queueing_cycles",
           static_cast<double>(net->queueingCycles()));

    memSys->dumpStats(sg);

    // Processor aggregates.
    double retired = 0, wasted = 0, squashes = 0, spin = 0;
    for (const auto &p : procs) {
        retired += static_cast<double>(p->retiredInstrs());
        wasted += static_cast<double>(p->wastedInstrs());
        squashes += static_cast<double>(p->squashes());
        spin += static_cast<double>(p->spinInstrs());
    }
    sg.set("cpu.retired_instrs", retired);
    sg.set("cpu.wasted_instrs", wasted);
    sg.set("cpu.squashes", squashes);
    sg.set("cpu.spin_instrs", spin);
    sg.set("cpu.squashed_instr_pct",
           retired + wasted > 0 ? 100.0 * wasted / (retired + wasted)
                                : 0.0);

    if (faults.active()) {
        sg.set("faults.harden", cfg.harden ? 1 : 0);
        faults.dumpStats(sg, "faults.");
    }
    if (dog) {
        sg.set("watchdog.verdict",
               static_cast<double>(res.watchdogVerdict));
        sg.set("watchdog.checks", static_cast<double>(dog->checks()));
        sg.set("watchdog.rescues",
               static_cast<double>(dog->rescues()));
    }

    if (!isBulk(cfg.model))
        return;

    // BulkSC aggregates (Tables 3 and 4).
    BulkStats agg;
    for (const auto &p : procs) {
        const auto *bp = dynamic_cast<const BulkProcessor *>(p.get());
        if (!bp)
            continue;
        const BulkStats &b = bp->bulkStats();
        agg.commits += b.commits;
        agg.emptyWCommits += b.emptyWCommits;
        agg.deniedCommits += b.deniedCommits;
        agg.abortedGrants += b.abortedGrants;
        agg.rSizeSum += b.rSizeSum;
        agg.wSizeSum += b.wSizeSum;
        agg.wprivSizeSum += b.wprivSizeSum;
        agg.specReadDisplacements += b.specReadDisplacements;
        agg.specWriteDisplacements += b.specWriteDisplacements;
        agg.privBufferSupplies += b.privBufferSupplies;
        agg.privBufferOverflows += b.privBufferOverflows;
        agg.baseWritebacks += b.baseWritebacks;
        agg.invalNodes += b.invalNodes;
        agg.preArbRequests += b.preArbRequests;
        agg.trueConflictSquashes += b.trueConflictSquashes;
        agg.falsePositiveSquashes += b.falsePositiveSquashes;
        agg.unattributedSquashes += b.unattributedSquashes;
        agg.resends += b.resends;
        agg.resendGiveUps += b.resendGiveUps;
        agg.arbLatency.merge(b.arbLatency);
        agg.squashRestart.merge(b.squashRestart);
        agg.squashChunkSize.merge(b.squashChunkSize);
        agg.resendAttempts.merge(b.resendAttempts);
    }
    double commits = static_cast<double>(agg.commits);
    sg.set("bulk.commits", commits);
    sg.set("bulk.empty_w_pct",
           commits ? 100.0 * static_cast<double>(agg.emptyWCommits) /
                         commits
                   : 0.0);
    sg.set("bulk.denied_commits",
           static_cast<double>(agg.deniedCommits));
    sg.set("bulk.aborted_grants",
           static_cast<double>(agg.abortedGrants));
    sg.set("bulk.avg_read_set", commits ? agg.rSizeSum / commits : 0.0);
    sg.set("bulk.avg_write_set",
           commits ? agg.wSizeSum / commits : 0.0);
    sg.set("bulk.avg_priv_write_set",
           commits ? agg.wprivSizeSum / commits : 0.0);
    sg.set("bulk.spec_read_displacements",
           static_cast<double>(agg.specReadDisplacements));
    sg.set("bulk.spec_write_displacements",
           static_cast<double>(agg.specWriteDisplacements));
    sg.set("bulk.priv_buffer_supplies",
           static_cast<double>(agg.privBufferSupplies));
    sg.set("bulk.priv_buffer_overflows",
           static_cast<double>(agg.privBufferOverflows));
    sg.set("bulk.base_writebacks",
           static_cast<double>(agg.baseWritebacks));
    sg.set("bulk.inval_nodes_total",
           static_cast<double>(agg.invalNodes));
    sg.set("bulk.nodes_per_wsig",
           commits ? static_cast<double>(agg.invalNodes) / commits
                   : 0.0);
    sg.set("bulk.pre_arbitrations",
           static_cast<double>(agg.preArbRequests));

    // Squash attribution (exact address sets vs Bloom aliasing).
    sg.set("bulk.squash.true_conflict",
           static_cast<double>(agg.trueConflictSquashes));
    sg.set("bulk.squash.false_positive",
           static_cast<double>(agg.falsePositiveSquashes));
    sg.set("bulk.squash.unattributed",
           static_cast<double>(agg.unattributedSquashes));
    agg.arbLatency.dumpInto(sg, "bulk.arb_latency.");
    agg.squashRestart.dumpInto(sg, "bulk.squash_restart.");
    agg.squashChunkSize.dumpInto(sg, "bulk.squash_chunk_size.");
    if (cfg.harden) {
        sg.set("bulk.resends", static_cast<double>(agg.resends));
        sg.set("bulk.resend_give_ups",
               static_cast<double>(agg.resendGiveUps));
        agg.resendAttempts.dumpInto(sg, "bulk.resend_attempts.");
    }

    if (verifier) {
        sg.set("sc_verifier.verified", verifier->verified() ? 1 : 0);
        sg.set("sc_verifier.chunks",
               static_cast<double>(verifier->chunksChecked()));
        sg.set("sc_verifier.reads",
               static_cast<double>(verifier->readsChecked()));
        sg.set("sc_verifier.errors",
               static_cast<double>(verifier->errors().size()));
    }

    if (engine)
        engine->dumpStats(sg);

    if (arb) {
        const ArbiterStats &as = arb->stats();
        sg.set("arb.fault_injected_grants",
               static_cast<double>(as.faultInjectedGrants));
        sg.set("arb.requests", static_cast<double>(as.requests));
        sg.set("arb.grants", static_cast<double>(as.grants));
        sg.set("arb.denials", static_cast<double>(as.denials));
        sg.set("arb.rsig_required_pct",
               as.requests ? 100.0 *
                                 static_cast<double>(as.rsigRequired) /
                                 static_cast<double>(as.requests)
                           : 0.0);
        sg.set("arb.empty_w_pct",
               as.grants ? 100.0 *
                               static_cast<double>(as.emptyWCommits) /
                               static_cast<double>(as.grants)
                         : 0.0);
        sg.set("arb.avg_pending_w", as.avgPendingW(res.execTime));
        sg.set("arb.non_empty_pct",
               100.0 * as.nonEmptyFrac(res.execTime));
        sg.set("arb.pre_arbitrations",
               static_cast<double>(as.preArbitrations));
        as.occupancy.dumpInto(sg, "arb.commit_occupancy.");
        if (faults.active()) {
            sg.set("arb.dup_requests",
                   static_cast<double>(as.dupRequests));
            sg.set("arb.lost_requests",
                   static_cast<double>(as.lostRequests));
            sg.set("arb.lost_replies",
                   static_cast<double>(as.lostReplies));
        }
    }
}

Results
runWorkload(Model model, const AppProfile &profile, unsigned num_procs,
            std::uint64_t instrs_per_proc, const MachineConfig *cfg_in)
{
    MachineConfig cfg = cfg_in ? *cfg_in : MachineConfig{};
    cfg.model = model;
    cfg.numProcs = num_procs;
    auto traces = generateTraces(profile, num_procs, instrs_per_proc);
    System sys(std::move(cfg), std::move(traces));
    return sys.run();
}

} // namespace bulksc
