/**
 * @file
 * Forward-progress watchdog.
 *
 * A periodic self-rescheduling check that watches the machine for the
 * three ways a chunked-execution protocol can stop making progress:
 *
 *  - **Deadlock / quiescence**: the global progress signature
 *    (instructions executed + squashes + network messages) is
 *    unchanged for several consecutive intervals, or the configured
 *    tick ceiling is exceeded. Because the watchdog event itself keeps
 *    the event queue non-empty, a fully wedged machine (e.g. a commit
 *    request abandoned after maxResend attempts) is converted into a
 *    clean Deadlock verdict instead of a silently drained queue.
 *
 *  - **Livelock**: one processor's leading chunk keeps squashing even
 *    after chunk shrinking has bottomed out at minChunkSize.
 *
 *  - **Starvation**: a processor's last chunk commit is far in the
 *    past while the rest of the machine keeps progressing. The
 *    watchdog first attempts graceful degradation — force the starved
 *    processor's chunk to the minimum size and queue it for
 *    pre-arbitration priority (BulkProcessor::rescueBoost, the
 *    Section 3.3 forward-progress mechanism) — and only trips if the
 *    gap keeps growing afterwards.
 *
 * On a trip the watchdog freezes a per-processor diagnostic report
 * (chunk states, retry counters), optionally flushes the event-trace
 * ring to disk, and stops the event queue. The embedding tool maps the
 * verdict to a distinct process exit code.
 */

#ifndef BULKSC_SYSTEM_WATCHDOG_HH
#define BULKSC_SYSTEM_WATCHDOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "system/machine_config.hh"

namespace bulksc {

class BulkProcessor;
class Network;

class Watchdog : public SimObject
{
  public:
    /**
     * @param eq The system event queue (stopped on a trip).
     * @param cfg Detection thresholds; cfg.enabled is not consulted
     *            here — the System only constructs a watchdog when
     *            it is on.
     * @param procs The machine's bulk processors (non-owning).
     * @param net The interconnect, for the progress signature.
     */
    Watchdog(EventQueue &eq, const WatchdogConfig &cfg,
             std::vector<BulkProcessor *> procs, Network &net);

    /** Arm the first check. Call once, before EventQueue::run(). */
    void start();

    /** What the watchdog concluded (None while the run is healthy). */
    WatchdogVerdict verdict() const { return verdict_; }

    /** Multi-line diagnostic report ("" until a trip). */
    const std::string &report() const { return report_; }

    /** Graceful-degradation rescues attempted. */
    std::uint64_t rescues() const { return nRescues; }

    /** Progress checks executed. */
    std::uint64_t checks() const { return nChecks; }

  private:
    void check();

    /** Monotone counter over everything that counts as progress. */
    std::uint64_t progressSignature() const;

    void trip(WatchdogVerdict v, const std::string &why);

    std::string diagnosticDump(const std::string &why) const;

    WatchdogConfig cfg;
    std::vector<BulkProcessor *> procs;
    Network &net;

    WatchdogVerdict verdict_ = WatchdogVerdict::None;
    std::string report_;

    std::uint64_t lastSignature = 0;
    unsigned stalledChecks = 0;
    std::vector<bool> rescued; //!< per-proc: rescue already attempted
    std::uint64_t nRescues = 0;
    std::uint64_t nChecks = 0;
};

} // namespace bulksc

#endif // BULKSC_SYSTEM_WATCHDOG_HH
