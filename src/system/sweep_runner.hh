/**
 * @file
 * Parameter-sweep runner: executes one fully-isolated simulator
 * instance per grid point on a pool of worker threads and streams one
 * JSONL record per point, in point order, independent of worker count.
 *
 * Isolation is structural: a point's System owns its EventQueue,
 * MemorySystem, processors, and statistics, so workers share nothing
 * but the read-only option registry and workload profiles. The global
 * EventTrace stays disabled — tracing a batch run is meaningless and
 * its ring buffer is not thread-safe.
 *
 * Determinism: point @c i always simulates with the same derived seed
 * salt (a mix64 of the base salt and @c i), so the emitted JSONL is
 * byte-identical for any -j. Sweeping the seed-salt axis explicitly
 * disables the derivation for that axis's values.
 */

#ifndef BULKSC_SYSTEM_SWEEP_RUNNER_HH
#define BULKSC_SYSTEM_SWEEP_RUNNER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "system/sim_options.hh"

namespace bulksc {

/** One sweep dimension: an option name and the values it takes. */
struct SweepAxis
{
    std::string name;                //!< registry option name
    std::vector<std::string> values; //!< one grid column per value
};

/**
 * Cross-product sweep over a base configuration.
 *
 * The grid is the cross product of the axes in declaration order, the
 * last axis varying fastest (row-major).
 */
class SweepRunner
{
  public:
    /**
     * @param base Options every point starts from.
     * @param axes Sweep dimensions; empty means a single point.
     */
    SweepRunner(SimOptions base, std::vector<SweepAxis> axes);

    /** Total grid points. */
    std::size_t numPoints() const { return nPoints; }

    /**
     * Validate the whole grid without simulating: axis names must be
     * config-persistable registry options, every point's configuration
     * must pass MachineConfig::validate(), and app names must exist.
     * On failure @p err names the point and the offending option.
     */
    bool validateGrid(std::string &err) const;

    /**
     * Run every point on @p workers threads, writing one JSON record
     * per line to @p out in point order (streamed: a record is written
     * as soon as it and all its predecessors are done).
     *
     * @param progress When true, reports completed points on stderr.
     * @return the number of failed points (their records carry an
     *         "error" field instead of statistics).
     */
    std::size_t run(unsigned workers, std::FILE *out,
                    bool progress = false);

    /** The option settings of grid point @p idx (axis name, value). */
    std::vector<std::pair<std::string, std::string>>
    pointSettings(std::size_t idx) const;

    /**
     * The options point @p idx simulates with: base + axis settings +
     * the derived per-point seed salt. False + @p err if a setting
     * does not apply cleanly.
     */
    bool pointOptions(std::size_t idx, SimOptions &out,
                      std::string &err) const;

  private:
    std::string runPoint(std::size_t idx, bool &ok) const;

    SimOptions base;
    std::vector<SweepAxis> axes;
    std::size_t nPoints;
    bool sweepsSeedSalt;
    bool sweepsFaultSeed;
};

} // namespace bulksc

#endif // BULKSC_SYSTEM_SWEEP_RUNNER_HH
