/**
 * @file
 * System assembly: wires processors, caches, directory, network, and
 * arbiter into a runnable machine for a given consistency model — the
 * library's primary public entry point.
 *
 * Typical use:
 * @code
 *   MachineConfig cfg;
 *   cfg.model = Model::BSCdypvt;
 *   auto traces = generateTraces(profileByName("ocean"), 8, 100000);
 *   System sys(cfg, std::move(traces));
 *   Results res = sys.run();
 * @endcode
 */

#ifndef BULKSC_SYSTEM_SYSTEM_HH
#define BULKSC_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "analysis/analysis_engine.hh"
#include "core/arbiter.hh"
#include "core/bulk_processor.hh"
#include "core/sc_verifier.hh"
#include "core/distributed_arbiter.hh"
#include "cpu/processor_base.hh"
#include "mem/memory_system.hh"
#include "network/network.hh"
#include "sim/event_queue.hh"
#include "sim/fault_plane.hh"
#include "sim/stats.hh"
#include "system/machine_config.hh"
#include "system/watchdog.hh"

namespace bulksc {

/** Output of a simulation run. */
struct Results
{
    /** Parallel execution time: the last processor's finish tick. */
    Tick execTime = 0;

    /** True iff every processor completed within the run limit. */
    bool completed = false;

    /** What the forward-progress watchdog concluded (None when it is
     *  disabled or the run was healthy). */
    WatchdogVerdict watchdogVerdict = WatchdogVerdict::None;

    /** The watchdog's diagnostic report ("" unless it tripped):
     *  verdict, cause, and per-processor chunk state. */
    std::string watchdogReport;

    /** Aggregated statistics from every component. */
    StatGroup stats;

    /** Per-processor recorded load values (litmus tests). */
    std::vector<std::vector<std::uint64_t>> loadResults;
};

/**
 * A complete simulated machine.
 */
class System
{
  public:
    /**
     * Build a machine. @p cfg is resolved internally; the number of
     * processors is clamped to the number of traces.
     */
    System(MachineConfig cfg, std::vector<Trace> traces);

    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run to completion (or until @p limit ticks).
     */
    Results run(Tick limit = kTickNever);

    /**
     * Attach an SC conformance checker (BulkSC models only): every
     * committed chunk's access log is replayed serially in commit
     * order and each load's observed value is checked. Call before
     * run(); results land in stats ("sc_verifier.*") and via
     * scVerifier(). Needs value tracking on the workload's ops.
     */
    void enableScVerification();

    /** The attached checker, or nullptr. */
    const ScVerifier *scVerifier() const { return verifier.get(); }

    /**
     * Attach the analysis engine (BulkSC models only): committed
     * chunks feed the axiomatic SC checker (po ∪ rf ∪ co ∪ fr
     * acyclicity) and/or the happens-before race detector. Works on
     * any workload — no value tracking needed. Call before run();
     * results land in stats ("analysis.*") and via analysis().
     */
    void enableAnalysis(bool axiomatic = true, bool race = false);

    /** The attached analysis engine, or nullptr. */
    const AnalysisEngine *analysis() const { return engine.get(); }

    /**
     * Attach a schedule controller (exploration mode): the event
     * queue consults it for same-tick delivery ordering and the
     * network for message-delay choices. Call before run(), with the
     * event queue still empty. Pass nullptr to detach.
     */
    void setScheduleController(ScheduleController *c);

    /**
     * Digest of the machine's protocol state (processors, arbiter,
     * memory system) for explorer revisit pruning. Timing state is
     * deliberately excluded — see the component fingerprints.
     */
    std::uint64_t stateFingerprint() const;

    // --- component access for tests and benches ---
    MemorySystem &memory() { return *memSys; }
    Network &network() { return *net; }
    ArbiterIface *arbiter() { return arb.get(); }
    FaultPlane &faultPlane() { return faults; }
    const Watchdog *watchdog() const { return dog.get(); }
    ProcessorBase &processor(unsigned i) { return *procs.at(i); }
    const MachineConfig &config() const { return cfg; }
    EventQueue &eventQueue() { return eq; }
    unsigned numProcs() const
    {
        return static_cast<unsigned>(procs.size());
    }

  private:
    void collectStats(Results &res) const;

    MachineConfig cfg;
    std::vector<Trace> traces;

    EventQueue eq;
    FaultPlane faults;
    std::unique_ptr<Network> net;
    std::unique_ptr<MemorySystem> memSys;
    std::unique_ptr<ArbiterIface> arb;
    std::vector<std::unique_ptr<ProcessorBase>> procs;
    std::unique_ptr<Watchdog> dog;
    std::unique_ptr<ScVerifier> verifier;
    std::unique_ptr<AnalysisEngine> engine;
};

/**
 * Convenience: run one application profile under one model.
 *
 * @param model Consistency model.
 * @param profile Application profile.
 * @param num_procs Processors.
 * @param instrs_per_proc Dynamic instructions per processor.
 * @param cfg_in Optional base configuration to start from.
 */
Results runWorkload(Model model, const struct AppProfile &profile,
                    unsigned num_procs, std::uint64_t instrs_per_proc,
                    const MachineConfig *cfg_in = nullptr);

} // namespace bulksc

#endif // BULKSC_SYSTEM_SYSTEM_HH
