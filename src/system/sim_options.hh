/**
 * @file
 * The unified simulator option registry: every tool and bench builds
 * its command line, usage text, and JSON config round-trip from one
 * table of option descriptors bound into a SimOptions struct.
 *
 * An option has a canonical name ("sig-bits"), which is simultaneously
 *  - the CLI flag  --sig-bits N  (also --sig-bits=N),
 *  - the JSON key  "sig-bits": N  in --config / --dump-config files,
 *  - the sweep-axis name in bulksc_batch grids.
 *
 * Boolean options additionally accept a --no-<name> negation, which is
 * how the historical spellings --no-rsig / --no-warm keep working.
 *
 * Options are tagged with the tools they apply to (OptionGroup); each
 * tool parses with its own group so e.g. --litmus is rejected by the
 * batch runner with a proper message instead of being silently eaten.
 */

#ifndef BULKSC_SYSTEM_SIM_OPTIONS_HH
#define BULKSC_SYSTEM_SIM_OPTIONS_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "system/machine_config.hh"

namespace bulksc {

/** Correctness checkers selected with --check (and --verify). */
struct CheckSet
{
    bool axiomatic = false; //!< SC as acyclicity of po∪rf∪co∪fr
    bool race = false;      //!< happens-before data races
    bool replay = false;    //!< serial-replay value check

    bool any() const { return axiomatic || race || replay; }

    /** Canonical comma-separated form ("" when none). */
    std::string str() const;
};

/**
 * Everything a simulator invocation is configured by: the machine
 * itself plus the workload selection and the driver-level switches.
 * Defaults here are the single source of truth — usage text and
 * --dump-config both read them.
 */
struct SimOptions
{
    /** Tools run with the forward-progress watchdog armed; library
     *  embedders constructing MachineConfig directly keep it off. */
    SimOptions() { cfg.watchdog.enabled = true; }

    MachineConfig cfg;

    std::string app = "ocean";   //!< workload profile name
    std::string litmus;          //!< litmus test name ("" = profile)
    std::uint64_t instrs = 100'000; //!< instructions per processor
    std::uint64_t seedSalt = 0;     //!< trace-generation variant

    CheckSet checks;

    std::string saveTraces; //!< write generated trace bundle here
    std::string loadTraces; //!< replay a saved trace bundle instead

    bool dumpAll = false; //!< --stats: dump every statistic
    bool jsonOut = false; //!< --json: stats as a JSON object

    std::string traceOut;          //!< Chrome trace_event output path
    std::string traceCats = "all"; //!< event categories to record

    bool dumpConfig = false; //!< print effective config JSON and exit

    /** bulksc_explore driver settings (OptionGroup::Explore). */
    struct ExploreOpts
    {
        std::uint64_t maxSchedules = 1000; //!< schedule budget
        std::uint64_t maxDecisions = 64;   //!< branching depth cap
        std::uint64_t tickLimit = 5'000'000; //!< per-run tick budget
        std::uint64_t wallMs = 0;  //!< wall-clock budget (0 = off)
        std::uint64_t jobs = 1;    //!< parallel wave width
        /** Install a net.delay=0:N window on every message, turning
         *  each delivery latency into an explored choice (0 = off). */
        std::uint64_t delayChoices = 0;
        bool por = true;     //!< signature-based POR
        bool fpPrune = true; //!< fingerprint revisit pruning
        bool bfs = false;    //!< breadth-first search order
        bool stopAtFirst = true; //!< stop at the first violation
        bool minimize = true;    //!< minimize the counterexample
        std::string schedule;    //!< replay this schedule file only
        std::string scheduleOut; //!< write the counterexample here
        std::string resultsOut;  //!< per-schedule JSONL stream
    } explore;
};

/** Which tool an option belongs to (bitmask values). */
enum class OptionGroup : unsigned
{
    Sim = 1,     //!< bulksc_sim
    Batch = 2,   //!< bulksc_batch
    Bench = 4,   //!< micro/figure benches
    Explore = 8, //!< bulksc_explore
};

/** One entry of the option table. */
struct OptionDesc
{
    enum class Kind
    {
        Flag, //!< boolean; accepts --name and --no-name
        UInt, //!< unsigned integer value
        Str,  //!< string value
    };

    std::string name;      //!< canonical name (CLI flag, JSON key)
    std::string valueName; //!< metavariable for usage ("N", "NAME")
    std::string help;      //!< one-line description
    Kind kind;
    unsigned groups;   //!< OptionGroup bitmask
    bool inConfig;     //!< participates in --config / --dump-config

    /** Parse @p value into @p opts; false + @p err on bad input.
     *  Flags receive "1" / "0". */
    std::function<bool(SimOptions &, const std::string &value,
                       std::string &err)>
        set;

    /** Current value of @p opts as a string (flags: "1" / "0"). */
    std::function<std::string(const SimOptions &)> get;
};

/**
 * The option table plus the operations every tool shares: CLI parsing,
 * usage text, config-file round-trip, and key=value application (the
 * sweep runner's interface to grid axes).
 */
class OptionRegistry
{
  public:
    static const OptionRegistry &instance();

    /**
     * Parse @p argc strings (no program name) into @p opts.
     *
     * A `--config FILE` anywhere on the line is applied first, so
     * explicit flags always override file values regardless of their
     * relative order. Unknown flags, flags of another tool, missing
     * and malformed values all fail with an actionable @p err.
     */
    bool parse(int argc, const char *const *argv, SimOptions &opts,
               OptionGroup group, std::string &err) const;

    /** Print the option summary for @p group (one line each). */
    void printUsage(std::FILE *out, OptionGroup group) const;

    /**
     * Apply one canonical key=value pair (config file entry or sweep
     * axis). Flags accept 0/1/true/false. Fails on unknown keys.
     */
    bool applyKeyValue(SimOptions &opts, const std::string &key,
                       const std::string &value,
                       std::string &err) const;

    /** Load a flat JSON config file into @p opts. */
    bool loadConfigFile(const std::string &path, SimOptions &opts,
                        std::string &err) const;

    /** Emit the effective config of @p opts as flat JSON (all
     *  config-persistable options, canonical order). */
    void dumpConfigJson(std::FILE *out, const SimOptions &opts) const;

    /** Descriptor for @p name, or null. */
    const OptionDesc *find(const std::string &name) const;

    const std::vector<OptionDesc> &options() const { return opts_; }

  private:
    OptionRegistry();

    std::vector<OptionDesc> opts_;
};

/**
 * Parse a flat JSON object of string/number/boolean values into
 * key->value strings (booleans become "1"/"0"). The whole grammar a
 * BulkSC config file needs — nested objects and arrays are rejected.
 */
bool parseFlatJson(const std::string &text,
                   std::vector<std::pair<std::string, std::string>> &kv,
                   std::string &err);

} // namespace bulksc

#endif // BULKSC_SYSTEM_SIM_OPTIONS_HH
