#include "system/watchdog.hh"

#include <sstream>

#include "core/bulk_processor.hh"
#include "network/network.hh"
#include "sim/event_trace.hh"
#include "sim/logging.hh"

namespace bulksc {

Watchdog::Watchdog(EventQueue &eq, const WatchdogConfig &cfg_,
                   std::vector<BulkProcessor *> procs_, Network &net_)
    : SimObject(eq, "watchdog"), cfg(cfg_), procs(std::move(procs_)),
      net(net_), rescued(procs.size(), false)
{
    fatal_if(procs.empty(), "the watchdog needs processors to watch");
}

void
Watchdog::start()
{
    lastSignature = progressSignature();
    eventq.scheduleAfter(cfg.interval, [this] { check(); });
}

std::uint64_t
Watchdog::progressSignature() const
{
    // Anything that counts as the machine doing work. Squashes are
    // included deliberately: a livelocked machine is *busy*, not
    // quiescent, and must be caught by the livelock detector (which
    // can name the culprit), not the deadlock one.
    std::uint64_t sig = net.messages();
    for (const BulkProcessor *p : procs) {
        sig += p->retiredInstrs() + p->wastedInstrs() +
               p->spinInstrs() + p->squashes();
    }
    return sig;
}

void
Watchdog::check()
{
    ++nChecks;

    bool allDone = true;
    for (const BulkProcessor *p : procs) {
        if (!p->finished()) {
            allDone = false;
            break;
        }
    }
    if (allDone)
        return; // run complete; let the queue drain

    if (cfg.tickCeiling && curTick() >= cfg.tickCeiling) {
        trip(WatchdogVerdict::Deadlock,
             "tick ceiling " + std::to_string(cfg.tickCeiling) +
                 " exceeded before completion");
        return;
    }

    // Deadlock / quiescence: nothing at all happened since the last
    // check(s). The watchdog's own event keeps the queue alive, so a
    // machine wedged by an abandoned commit request lands here rather
    // than draining the queue and timing out.
    std::uint64_t sig = progressSignature();
    if (sig == lastSignature) {
        if (++stalledChecks >= cfg.deadlockChecks) {
            trip(WatchdogVerdict::Deadlock,
                 "no progress for " + std::to_string(stalledChecks) +
                     " consecutive checks (" +
                     std::to_string(stalledChecks * cfg.interval) +
                     " ticks)");
            return;
        }
    } else {
        stalledChecks = 0;
        lastSignature = sig;
    }

    // Livelock: squash storm that chunk shrinking cannot break.
    for (const BulkProcessor *p : procs) {
        if (p->finished())
            continue;
        if (p->consecutiveSquashCount() >= cfg.livelockSquashes &&
            p->nextTarget() <= p->minChunkSize()) {
            trip(WatchdogVerdict::Livelock,
                 "proc " + std::to_string(p->procId()) + " squashed " +
                     std::to_string(p->consecutiveSquashCount()) +
                     " consecutive chunks at the minimum chunk size");
            return;
        }
    }

    // Starvation: one processor stopped committing while the machine
    // as a whole keeps moving (a globally-stuck machine is a deadlock
    // and is handled above). Graceful degradation first: shrink the
    // starved processor's chunk and give it pre-arbitration priority;
    // trip only if the gap keeps growing afterwards.
    Tick now = curTick();
    Tick youngest = kTickNever;
    for (const BulkProcessor *p : procs) {
        Tick age = now - p->lastCommitTick();
        if (age < youngest)
            youngest = age;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        BulkProcessor *p = procs[i];
        if (p->finished())
            continue;
        Tick age = now - p->lastCommitTick();
        if (age < cfg.starvationGap || youngest >= cfg.starvationGap)
            continue;
        if (cfg.rescue && !rescued[i]) {
            rescued[i] = true;
            ++nRescues;
            TRACE_LOG(TraceCat::Watchdog, now, "watchdog: rescuing "
                      "starved proc ", p->procId(), " (no commit for ",
                      age, " ticks)");
            p->rescueBoost();
            continue;
        }
        if (age >= 2 * cfg.starvationGap) {
            trip(WatchdogVerdict::Starvation,
                 "proc " + std::to_string(p->procId()) +
                     " has not committed a chunk for " +
                     std::to_string(age) + " ticks" +
                     (rescued[i] ? " despite a rescue boost" : ""));
            return;
        }
    }

    eventq.scheduleAfter(cfg.interval, [this] { check(); });
}

void
Watchdog::trip(WatchdogVerdict v, const std::string &why)
{
    verdict_ = v;
    report_ = diagnosticDump(why);
    EVENT_TRACE(TraceEventType::WatchdogTrip, curTick(), trackProc(0),
                0, static_cast<std::uint64_t>(v));
    TRACE_LOG(TraceCat::Watchdog, curTick(), "watchdog: ",
              watchdogVerdictName(v), " — ", why);
    if (!cfg.dumpPath.empty() && eventTraceEnabled()) {
        if (!EventTrace::instance().exportChromeTrace(cfg.dumpPath))
            warn("watchdog: cannot write trace dump to ", cfg.dumpPath);
    }
    eventq.stop();
}

std::string
Watchdog::diagnosticDump(const std::string &why) const
{
    std::ostringstream os;
    os << "watchdog: " << watchdogVerdictName(verdict_) << " at tick "
       << curTick() << ": " << why << "\n";
    os << "  checks=" << nChecks << " rescues=" << nRescues
       << " net_messages=" << net.messages() << "\n";
    for (const BulkProcessor *p : procs)
        os << p->chunkStateDump();
    return os.str();
}

} // namespace bulksc
