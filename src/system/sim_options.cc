#include "system/sim_options.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/fault_plane.hh"
#include "sim/stats.hh"

namespace bulksc {

std::string
CheckSet::str() const
{
    std::string s;
    auto add = [&](const char *name) {
        if (!s.empty())
            s += ',';
        s += name;
    };
    if (axiomatic)
        add("axiomatic");
    if (race)
        add("race");
    if (replay)
        add("replay");
    return s;
}

namespace {

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end != v.c_str() + v.size())
        return false;
    out = x;
    return true;
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "1" || v == "true") {
        out = true;
        return true;
    }
    if (v == "0" || v == "false") {
        out = false;
        return true;
    }
    return false;
}

/** Option builder: binds a name/help to setter+getter lambdas. */
struct Builder
{
    std::vector<OptionDesc> &table;

    void
    flag(const char *name, const char *help, unsigned groups,
         bool in_config, std::function<void(SimOptions &, bool)> set,
         std::function<bool(const SimOptions &)> get)
    {
        OptionDesc d;
        d.name = name;
        d.help = help;
        d.kind = OptionDesc::Kind::Flag;
        d.groups = groups;
        d.inConfig = in_config;
        d.set = [name = d.name, set](SimOptions &o,
                                     const std::string &v,
                                     std::string &err) {
            bool b;
            if (!parseBool(v, b)) {
                err = "--" + name + ": expected a boolean, got '" + v +
                      "'";
                return false;
            }
            set(o, b);
            return true;
        };
        d.get = [get](const SimOptions &o) {
            return std::string(get(o) ? "1" : "0");
        };
        table.push_back(std::move(d));
    }

    template <typename T>
    void
    uint(const char *name, const char *value_name, const char *help,
         unsigned groups, bool in_config, T SimOptions::*field)
    {
        uintSet(name, value_name, help, groups, in_config,
                [field](SimOptions &o, std::uint64_t v) {
                    o.*field = static_cast<T>(v);
                },
                [field](const SimOptions &o) {
                    return static_cast<std::uint64_t>(o.*field);
                });
    }

    void
    uintSet(const char *name, const char *value_name, const char *help,
            unsigned groups, bool in_config,
            std::function<void(SimOptions &, std::uint64_t)> set,
            std::function<std::uint64_t(const SimOptions &)> get)
    {
        OptionDesc d;
        d.name = name;
        d.valueName = value_name;
        d.help = help;
        d.kind = OptionDesc::Kind::UInt;
        d.groups = groups;
        d.inConfig = in_config;
        d.set = [name = d.name, set](SimOptions &o,
                                     const std::string &v,
                                     std::string &err) {
            std::uint64_t x;
            if (!parseU64(v, x)) {
                err = "--" + name + ": expected a non-negative "
                      "integer, got '" + v + "'";
                return false;
            }
            set(o, x);
            return true;
        };
        d.get = [get](const SimOptions &o) {
            return std::to_string(get(o));
        };
        table.push_back(std::move(d));
    }

    void
    str(const char *name, const char *value_name, const char *help,
        unsigned groups, bool in_config, std::string SimOptions::*field)
    {
        strSet(name, value_name, help, groups, in_config,
               [field](SimOptions &o, const std::string &v,
                       std::string &) {
                   o.*field = v;
                   return true;
               },
               [field](const SimOptions &o) { return o.*field; });
    }

    void
    strSet(const char *name, const char *value_name, const char *help,
           unsigned groups, bool in_config,
           std::function<bool(SimOptions &, const std::string &,
                              std::string &)>
               set,
           std::function<std::string(const SimOptions &)> get)
    {
        OptionDesc d;
        d.name = name;
        d.valueName = value_name;
        d.help = help;
        d.kind = OptionDesc::Kind::Str;
        d.groups = groups;
        d.inConfig = in_config;
        d.set = std::move(set);
        d.get = std::move(get);
        table.push_back(std::move(d));
    }
};

constexpr unsigned kSim = static_cast<unsigned>(OptionGroup::Sim);
constexpr unsigned kBatch = static_cast<unsigned>(OptionGroup::Batch);
constexpr unsigned kBench = static_cast<unsigned>(OptionGroup::Bench);
constexpr unsigned kExplore =
    static_cast<unsigned>(OptionGroup::Explore);
constexpr unsigned kAll = kSim | kBatch | kBench | kExplore;

} // namespace

OptionRegistry::OptionRegistry()
{
    Builder b{opts_};

    b.strSet(
        "model", "NAME",
        "consistency model: SC | TSO | RC | SC++ | BSCbase | "
        "BSCdypvt | BSCstpvt | BSCexact",
        kAll, true,
        [](SimOptions &o, const std::string &v, std::string &err) {
            for (Model m :
                 {Model::SC, Model::TSO, Model::RC, Model::SCpp,
                  Model::BSCbase, Model::BSCdypvt, Model::BSCstpvt,
                  Model::BSCexact}) {
                if (v == modelName(m)) {
                    o.cfg.model = m;
                    return true;
                }
            }
            err = "--model: unknown model '" + v +
                  "' (known: SC, TSO, RC, SC++, BSCbase, BSCdypvt, "
                  "BSCstpvt, BSCexact)";
            return false;
        },
        [](const SimOptions &o) {
            return std::string(modelName(o.cfg.model));
        });

    b.str("app", "NAME",
          "workload profile, one of the 13 apps (or \"list\")", kAll,
          true, &SimOptions::app);

    b.str("litmus", "NAME",
          "run a litmus test instead of a profile: sb | mp | iriw | "
          "corr | 2+2w | wrc | isa2 (--seed-salt picks the timing "
          "variant)",
          kSim | kExplore, true, &SimOptions::litmus);

    b.uintSet("procs", "N", "processor count", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.numProcs = static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.numProcs};
              });

    b.uint("instrs", "N", "instructions per processor", kAll, true,
           &SimOptions::instrs);

    b.uintSet("chunk", "N", "chunk size in instructions", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.bulk.chunkSize = static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.bulk.chunkSize};
              });

    b.uintSet("sig-bits", "N", "signature size in bits", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.bulk.sigCfg.totalBits =
                      static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.bulk.sigCfg.totalBits};
              });

    b.uintSet("sig-banks", "N", "signature banks", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.bulk.sigCfg.numBanks =
                      static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.bulk.sigCfg.numBanks};
              });

    b.uintSet("arbiters", "N", "arbiter modules (1 = central)", kAll,
              true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.numArbiters = static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.numArbiters};
              });

    b.uintSet("dirs", "N", "directory modules", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.mem.numDirectories = static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.mem.numDirectories};
              });

    b.uintSet("dir-cache", "N",
              "directory-cache entries (0 = full map)", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.mem.dirCacheEntries = v;
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.mem.dirCacheEntries};
              });

    b.flag("rsig",
           "RSig commit bandwidth optimization (--no-rsig disables)",
           kAll, true,
           [](SimOptions &o, bool v) { o.cfg.bulk.rsigOpt = v; },
           [](const SimOptions &o) { return o.cfg.bulk.rsigOpt; });

    b.flag("warm",
           "functional cache warming before the run (--no-warm skips)",
           kAll, true,
           [](SimOptions &o, bool v) { o.cfg.warmCaches = v; },
           [](const SimOptions &o) { return o.cfg.warmCaches; });

    b.flag("contention", "model destination-link contention", kAll,
           true,
           [](SimOptions &o, bool v) {
               o.cfg.net.modelContention = v;
           },
           [](const SimOptions &o) {
               return o.cfg.net.modelContention;
           });

    b.flag("exact-stats",
           "maintain the signatures' exact mirror sets (set-size and "
           "aliasing statistics, squash attribution; forced on for "
           "BSCexact and multi-module arbiters)",
           kAll, true,
           [](SimOptions &o, bool v) {
               o.cfg.bulk.sigCfg.trackExact = v;
           },
           [](const SimOptions &o) {
               return o.cfg.bulk.sigCfg.trackExact;
           });

    b.uint("seed-salt", "N", "vary the generated traces", kAll, true,
           &SimOptions::seedSalt);

    b.strSet(
        "faults", "SPEC",
        "fault-injection plane, e.g. net.drop=0.01,net.delay=1:200,"
        "arb.grant_loss=0.002 (NAME[/CLASS]=VALUE[@LO:HI], "
        "comma-separated)",
        kAll, true,
        [](SimOptions &o, const std::string &v, std::string &err) {
            std::vector<FaultPoint> pts;
            if (!v.empty() &&
                !FaultPlane::parseSpec(v, pts, err)) {
                err = "--faults: " + err;
                return false;
            }
            // Store the canonical form so --dump-config round-trips
            // byte-identically.
            o.cfg.faults = FaultPlane::canonicalSpec(pts);
            return true;
        },
        [](const SimOptions &o) { return o.cfg.faults; });

    b.uintSet("fault-seed", "N",
              "seed for the fault plane's deterministic decisions",
              kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.faultSeed = v;
              },
              [](const SimOptions &o) { return o.cfg.faultSeed; });

    b.flag("harden",
           "force the hardened protocol (sequence numbers, timeout/"
           "resend) even when the fault plane cannot lose messages",
           kAll, true,
           [](SimOptions &o, bool v) { o.cfg.harden = v; },
           [](const SimOptions &o) { return o.cfg.harden; });

    b.uintSet("max-resend", "N",
              "hardened protocol: give up a request after N "
              "retransmissions",
              kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.bulk.maxResend = static_cast<unsigned>(v);
                  o.cfg.mem.maxResend = static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.bulk.maxResend};
              });

    b.uintSet("resend-timeout", "N",
              "hardened protocol: base retransmission timeout in "
              "ticks (doubles per attempt)",
              kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.bulk.resendTimeout = v;
                  o.cfg.mem.resendTimeout = v;
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.bulk.resendTimeout};
              });

    b.flag("watchdog",
           "forward-progress watchdog: detect livelock, starvation, "
           "and deadlock (--no-watchdog disables)",
           kAll, true,
           [](SimOptions &o, bool v) { o.cfg.watchdog.enabled = v; },
           [](const SimOptions &o) { return o.cfg.watchdog.enabled; });

    b.uintSet("watchdog-interval", "N",
              "ticks between watchdog progress checks", kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.watchdog.interval = v;
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.watchdog.interval};
              });

    b.uintSet("watchdog-livelock", "N",
              "livelock: consecutive squashes at the minimum chunk "
              "size before tripping",
              kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.watchdog.livelockSquashes =
                      static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.watchdog.livelockSquashes};
              });

    b.uintSet("watchdog-starvation", "N",
              "starvation: commit-age gap in ticks before rescuing "
              "(tripping at twice the gap)",
              kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.watchdog.starvationGap = v;
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.watchdog.starvationGap};
              });

    b.uintSet("watchdog-ceiling", "N",
              "absolute tick ceiling reported as a deadlock (0 = "
              "none)",
              kAll, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.watchdog.tickCeiling = v;
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.watchdog.tickCeiling};
              });

    b.flag("watchdog-rescue",
           "graceful degradation: shrink a starved processor's chunk "
           "with pre-arbitration priority before tripping",
           kAll, true,
           [](SimOptions &o, bool v) { o.cfg.watchdog.rescue = v; },
           [](const SimOptions &o) { return o.cfg.watchdog.rescue; });

    b.strSet("watchdog-dump", "FILE",
             "flush the event-trace ring as Chrome JSON here when "
             "the watchdog trips",
             kSim, false,
             [](SimOptions &o, const std::string &v, std::string &) {
                 o.cfg.watchdog.dumpPath = v;
                 return true;
             },
             [](const SimOptions &o) {
                 return o.cfg.watchdog.dumpPath;
             });

    b.uintSet("inject-skip-arb", "N",
              "deprecated alias for --faults arb.skip_collision=N: "
              "grant every Nth colliding commit request (0 = off)",
              kSim, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.cfg.faultSkipArbEvery = static_cast<unsigned>(v);
              },
              [](const SimOptions &o) {
                  return std::uint64_t{o.cfg.faultSkipArbEvery};
              });

    b.strSet(
        "check", "LIST",
        "correctness checkers, comma-separated: axiomatic | race | "
        "replay",
        kSim | kExplore, false,
        [](SimOptions &o, const std::string &v, std::string &err) {
            std::size_t pos = 0;
            while (pos <= v.size()) {
                std::size_t comma = v.find(',', pos);
                if (comma == std::string::npos)
                    comma = v.size();
                std::string name = v.substr(pos, comma - pos);
                pos = comma + 1;
                if (name.empty())
                    continue;
                if (name == "axiomatic") {
                    o.checks.axiomatic = true;
                } else if (name == "race") {
                    o.checks.race = true;
                } else if (name == "replay") {
                    o.checks.replay = true;
                } else {
                    err = "--check: unknown checker '" + name +
                          "' (known: axiomatic, race, replay)";
                    return false;
                }
            }
            return true;
        },
        [](const SimOptions &o) { return o.checks.str(); });

    b.flag("verify", "alias for --check replay", kSim, false,
           [](SimOptions &o, bool v) {
               if (v)
                   o.checks.replay = true;
           },
           [](const SimOptions &o) { return o.checks.replay; });

    b.str("save-traces", "FILE",
          "write the generated trace bundle to FILE", kSim, false,
          &SimOptions::saveTraces);

    b.str("load-traces", "FILE",
          "replay a saved trace bundle instead of generating",
          kSim | kExplore, false, &SimOptions::loadTraces);

    b.flag("stats", "dump every statistic (default: summary)", kSim,
           false, [](SimOptions &o, bool v) { o.dumpAll = v; },
           [](const SimOptions &o) { return o.dumpAll; });

    b.flag("json", "dump every statistic as a JSON object",
           kSim | kExplore, false,
           [](SimOptions &o, bool v) { o.jsonOut = v; },
           [](const SimOptions &o) { return o.jsonOut; });

    b.str("trace-out", "FILE",
          "export chunk-lifecycle events as Chrome trace_event JSON",
          kSim, false, &SimOptions::traceOut);

    b.str("trace-cats", "LIST",
          "event categories to record: chunk,commit,squash,"
          "coherence,all",
          kSim, false, &SimOptions::traceCats);

    // --config is recognized by parse() itself (it must be applied
    // before the other flags); this entry provides usage text and
    // name reservation only.
    b.strSet("config", "FILE",
             "load options from a JSON config file (explicit flags "
             "override it)",
             kAll, false,
             [](SimOptions &, const std::string &, std::string &) {
                 return true;
             },
             [](const SimOptions &) { return std::string(); });

    b.flag("dump-config",
           "print the effective configuration as JSON and exit",
           kSim | kBatch | kExplore, false,
           [](SimOptions &o, bool v) { o.dumpConfig = v; },
           [](const SimOptions &o) { return o.dumpConfig; });

    // --- bulksc_explore: systematic schedule exploration ------------

    b.uintSet("explore-schedules", "N",
              "schedule budget: stop after running N schedules",
              kExplore, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.explore.maxSchedules = v;
              },
              [](const SimOptions &o) { return o.explore.maxSchedules; });

    b.uintSet("explore-depth", "N",
              "branch only on the first N decisions of each run",
              kExplore, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.explore.maxDecisions = v;
              },
              [](const SimOptions &o) { return o.explore.maxDecisions; });

    b.uintSet("explore-ticks", "N", "per-schedule tick budget",
              kExplore, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.explore.tickLimit = v;
              },
              [](const SimOptions &o) { return o.explore.tickLimit; });

    b.uintSet("explore-wall-ms", "N",
              "wall-clock budget in milliseconds (0 = unlimited)",
              kExplore, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.explore.wallMs = v;
              },
              [](const SimOptions &o) { return o.explore.wallMs; });

    b.uintSet("explore-jobs", "N",
              "run up to N schedules concurrently (enumeration order "
              "is identical for any N)",
              kExplore, false,
              [](SimOptions &o, std::uint64_t v) { o.explore.jobs = v; },
              [](const SimOptions &o) { return o.explore.jobs; });

    b.uintSet("explore-delay", "N",
              "explore message delivery delays in [0,N] as choice "
              "points (0 = deliveries keep their nominal latency)",
              kExplore, true,
              [](SimOptions &o, std::uint64_t v) {
                  o.explore.delayChoices = v;
              },
              [](const SimOptions &o) { return o.explore.delayChoices; });

    b.flag("explore-por",
           "signature-based partial-order reduction (--no-explore-por "
           "enumerates naively)",
           kExplore, true,
           [](SimOptions &o, bool v) { o.explore.por = v; },
           [](const SimOptions &o) { return o.explore.por; });

    b.flag("explore-fp-prune",
           "prune schedules that revisit an already-expanded state "
           "fingerprint",
           kExplore, true,
           [](SimOptions &o, bool v) { o.explore.fpPrune = v; },
           [](const SimOptions &o) { return o.explore.fpPrune; });

    b.flag("explore-bfs",
           "breadth-first search order (default: depth-first)",
           kExplore, true,
           [](SimOptions &o, bool v) { o.explore.bfs = v; },
           [](const SimOptions &o) { return o.explore.bfs; });

    b.flag("explore-all",
           "keep exploring after the first violation instead of "
           "stopping",
           kExplore, true,
           [](SimOptions &o, bool v) { o.explore.stopAtFirst = !v; },
           [](const SimOptions &o) { return !o.explore.stopAtFirst; });

    b.flag("explore-minimize",
           "minimize the first counterexample to its shortest "
           "reproducing prefix",
           kExplore, true,
           [](SimOptions &o, bool v) { o.explore.minimize = v; },
           [](const SimOptions &o) { return o.explore.minimize; });

    b.strSet("schedule", "FILE",
             "replay the schedule recorded in FILE (single run, no "
             "search)",
             kExplore, false,
             [](SimOptions &o, const std::string &v, std::string &) {
                 o.explore.schedule = v;
                 return true;
             },
             [](const SimOptions &o) { return o.explore.schedule; });

    b.strSet("schedule-out", "FILE",
             "write the (minimized) counterexample schedule to FILE",
             kExplore, false,
             [](SimOptions &o, const std::string &v, std::string &) {
                 o.explore.scheduleOut = v;
                 return true;
             },
             [](const SimOptions &o) { return o.explore.scheduleOut; });

    b.strSet("results-out", "FILE",
             "stream one JSON object per explored schedule to FILE",
             kExplore, false,
             [](SimOptions &o, const std::string &v, std::string &) {
                 o.explore.resultsOut = v;
                 return true;
             },
             [](const SimOptions &o) { return o.explore.resultsOut; });
}

const OptionRegistry &
OptionRegistry::instance()
{
    static const OptionRegistry reg;
    return reg;
}

const OptionDesc *
OptionRegistry::find(const std::string &name) const
{
    for (const OptionDesc &d : opts_) {
        if (d.name == name)
            return &d;
    }
    return nullptr;
}

bool
OptionRegistry::applyKeyValue(SimOptions &opts, const std::string &key,
                              const std::string &value,
                              std::string &err) const
{
    const OptionDesc *d = find(key);
    if (!d) {
        err = "unknown option '" + key + "'";
        return false;
    }
    return d->set(opts, value, err);
}

bool
OptionRegistry::parse(int argc, const char *const *argv,
                      SimOptions &opts, OptionGroup group,
                      std::string &err) const
{
    const unsigned gbit = static_cast<unsigned>(group);

    // Split every token into (name, value?, have_value).
    struct Tok
    {
        std::string name;
        std::string value;
        bool haveValue;
    };
    std::vector<Tok> toks;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a.size() < 3 || a.compare(0, 2, "--") != 0) {
            err = "unexpected argument '" + a + "'";
            return false;
        }
        std::size_t eq = a.find('=');
        Tok t;
        t.haveValue = eq != std::string::npos;
        t.name = a.substr(2, t.haveValue ? eq - 2 : std::string::npos);
        if (t.haveValue)
            t.value = a.substr(eq + 1);

        const OptionDesc *d = find(t.name);
        bool negated = false;
        if (!d && t.name.compare(0, 3, "no-") == 0) {
            d = find(t.name.substr(3));
            negated = d && d->kind == OptionDesc::Kind::Flag;
            if (!negated)
                d = nullptr;
        }
        if (!d) {
            err = "unknown option '--" + t.name + "'";
            return false;
        }
        if (!(d->groups & gbit)) {
            err = "option '--" + t.name +
                  "' does not apply to this tool";
            return false;
        }
        if (d->kind == OptionDesc::Kind::Flag) {
            if (t.haveValue) {
                err = "--" + t.name + " takes no value";
                return false;
            }
            t.name = d->name;
            t.value = negated ? "0" : "1";
            t.haveValue = true;
        } else if (!t.haveValue) {
            if (i + 1 >= argc) {
                err = "--" + t.name + " requires a value";
                return false;
            }
            t.value = argv[++i];
            t.haveValue = true;
        }
        toks.push_back(std::move(t));
    }

    // Config file first: explicit flags override it no matter where
    // --config sits on the command line.
    for (const Tok &t : toks) {
        if (t.name == "config" &&
            !loadConfigFile(t.value, opts, err)) {
            return false;
        }
    }
    for (const Tok &t : toks) {
        if (t.name == "config")
            continue;
        const OptionDesc *d = find(t.name);
        if (!d->set(opts, t.value, err))
            return false;
    }
    return true;
}

void
OptionRegistry::printUsage(std::FILE *out, OptionGroup group) const
{
    const unsigned gbit = static_cast<unsigned>(group);
    const SimOptions dflt;
    std::fprintf(out, "options:\n");
    for (const OptionDesc &d : opts_) {
        if (!(d.groups & gbit))
            continue;
        std::string lhs = "--" + d.name;
        if (d.kind != OptionDesc::Kind::Flag)
            lhs += " " + d.valueName;
        std::string help = d.help;
        if (d.kind == OptionDesc::Kind::Flag) {
            if (d.get(dflt) == "1")
                help += " (default on)";
        } else {
            std::string v = d.get(dflt);
            if (!v.empty())
                help += " (default " + v + ")";
        }
        std::fprintf(out, "  %-22s %s\n", lhs.c_str(), help.c_str());
    }
}

bool
OptionRegistry::loadConfigFile(const std::string &path,
                               SimOptions &opts,
                               std::string &err) const
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open config file '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<std::pair<std::string, std::string>> kv;
    if (!parseFlatJson(ss.str(), kv, err)) {
        err = path + ": " + err;
        return false;
    }
    for (const auto &[k, v] : kv) {
        const OptionDesc *d = find(k);
        if (!d) {
            err = path + ": unknown option '" + k + "'";
            return false;
        }
        if (!d->inConfig) {
            err = path + ": option '" + k +
                  "' cannot be set from a config file";
            return false;
        }
        if (!d->set(opts, v, err)) {
            err = path + ": " + err;
            return false;
        }
    }
    return true;
}

void
OptionRegistry::dumpConfigJson(std::FILE *out,
                               const SimOptions &opts) const
{
    std::fprintf(out, "{\n");
    bool first = true;
    for (const OptionDesc &d : opts_) {
        if (!d.inConfig)
            continue;
        std::string v = d.get(opts);
        std::fprintf(out, "%s  \"%s\": ", first ? "" : ",\n",
                     d.name.c_str());
        switch (d.kind) {
          case OptionDesc::Kind::Flag:
            std::fprintf(out, "%s", v == "1" ? "true" : "false");
            break;
          case OptionDesc::Kind::UInt:
            std::fprintf(out, "%s", v.c_str());
            break;
          case OptionDesc::Kind::Str:
            std::fprintf(out, "\"%s\"", jsonEscape(v).c_str());
            break;
        }
        first = false;
    }
    std::fprintf(out, "\n}\n");
}

// --- flat JSON ----------------------------------------------------------

namespace {

struct JsonCursor
{
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }

    bool done() const { return pos >= s.size(); }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }
};

bool
parseJsonString(JsonCursor &c, std::string &out, std::string &err)
{
    if (c.peek() != '"') {
        err = "expected '\"' at offset " + std::to_string(c.pos);
        return false;
    }
    ++c.pos;
    out.clear();
    while (!c.done() && c.peek() != '"') {
        char ch = c.s[c.pos++];
        if (ch == '\\') {
            if (c.done()) {
                err = "unterminated escape";
                return false;
            }
            char esc = c.s[c.pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              default:
                err = std::string("unsupported escape '\\") + esc +
                      "'";
                return false;
            }
        } else {
            out += ch;
        }
    }
    if (c.done()) {
        err = "unterminated string";
        return false;
    }
    ++c.pos; // closing quote
    return true;
}

} // namespace

bool
parseFlatJson(const std::string &text,
              std::vector<std::pair<std::string, std::string>> &kv,
              std::string &err)
{
    JsonCursor c{text};
    c.skipWs();
    if (c.peek() != '{') {
        err = "config must be a JSON object";
        return false;
    }
    ++c.pos;
    c.skipWs();
    if (c.peek() == '}')
        return true;
    while (true) {
        c.skipWs();
        std::string key;
        if (!parseJsonString(c, key, err))
            return false;
        c.skipWs();
        if (c.peek() != ':') {
            err = "expected ':' after key '" + key + "'";
            return false;
        }
        ++c.pos;
        c.skipWs();
        std::string val;
        char ch = c.peek();
        if (ch == '"') {
            if (!parseJsonString(c, val, err))
                return false;
        } else if (ch == '{' || ch == '[') {
            err = "key '" + key +
                  "': nested objects/arrays are not supported "
                  "(configs are flat)";
            return false;
        } else {
            std::size_t start = c.pos;
            while (!c.done() && c.peek() != ',' && c.peek() != '}' &&
                   !std::isspace(
                       static_cast<unsigned char>(c.peek()))) {
                ++c.pos;
            }
            val = text.substr(start, c.pos - start);
            if (val == "true") {
                val = "1";
            } else if (val == "false") {
                val = "0";
            } else if (val.empty()) {
                err = "key '" + key + "': missing value";
                return false;
            }
        }
        kv.emplace_back(key, val);
        c.skipWs();
        if (c.peek() == ',') {
            ++c.pos;
            continue;
        }
        if (c.peek() == '}') {
            ++c.pos;
            c.skipWs();
            if (!c.done()) {
                err = "trailing content after the config object";
                return false;
            }
            return true;
        }
        err = "expected ',' or '}' at offset " + std::to_string(c.pos);
        return false;
    }
}

} // namespace bulksc
