/**
 * @file
 * Top-level machine configuration: the paper's Table 2 as defaults,
 * plus the consistency model selector.
 */

#ifndef BULKSC_SYSTEM_MACHINE_CONFIG_HH
#define BULKSC_SYSTEM_MACHINE_CONFIG_HH

#include <string>

#include "core/bulk_processor.hh"
#include "cpu/processor_base.hh"
#include "mem/memory_system.hh"
#include "network/network.hh"

namespace bulksc {

/** The consistency models compared in the paper's evaluation. */
enum class Model
{
    SC,       //!< in-order SC + read/exclusive prefetching [12]
    TSO,      //!< total store order (extension beyond the paper)
    RC,       //!< release consistency, speculation across fences
    SCpp,     //!< SC++ with a 2K-entry SHiQ [15]
    BSCbase,  //!< basic BulkSC (Section 4)
    BSCdypvt, //!< + dynamically-private data optimization (5.2)
    BSCstpvt, //!< + statically-private data optimization (5.1)
    BSCexact, //!< BSCdypvt with a "magic" alias-free signature
};

/** @return the paper's name for a model. */
const char *modelName(Model m);

/** Parse a model name (fatal on unknown). */
Model modelByName(const std::string &name);

/** True for the four BulkSC variants. */
bool isBulk(Model m);

/** Complete machine configuration (defaults follow Table 2). */
struct MachineConfig
{
    Model model = Model::BSCdypvt;

    unsigned numProcs = 8;

    CpuParams cpu;
    MemParams mem;
    NetworkConfig net;
    BulkParams bulk;

    /** Arbiter signature-check latency; with the network hops this
     *  yields the paper's ~30-cycle commit arbitration latency. */
    Tick arbProcessing = 24;

    /** Maximum simultaneously-committing chunks. */
    unsigned maxSimulCommits = 8;

    /** Arbiter modules; > 1 selects the distributed arbiter with a
     *  G-arbiter (Section 4.2.3). */
    unsigned numArbiters = 1;

    /** SC++ SHiQ entries. */
    unsigned shiqEntries = 2048;

    /** Pre-load non-streaming lines into the L2 before the run so
     *  short simulations measure steady state, not cold misses. */
    bool warmCaches = true;

    /**
     * Fault injection for negative-testing the analysis subsystem:
     * the central arbiter grants every Nth commit request that should
     * have been denied for a signature collision (0 = off, the
     * default). Only supported with the central arbiter
     * (numArbiters <= 1).
     */
    unsigned faultSkipArbEvery = 0;

    /**
     * Check the configuration for inconsistent geometry. On failure
     * @p err receives an actionable message naming the offending
     * option(s). Call before resolve().
     *
     * @return true iff the configuration can build a System.
     */
    bool validate(std::string &err) const;

    /**
     * Resolve per-model knobs (bulk mode, private-data options, exact
     * signatures) into the sub-configs. Call before building a System.
     */
    void resolve();
};

} // namespace bulksc

#endif // BULKSC_SYSTEM_MACHINE_CONFIG_HH
