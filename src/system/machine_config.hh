/**
 * @file
 * Top-level machine configuration: the paper's Table 2 as defaults,
 * plus the consistency model selector.
 */

#ifndef BULKSC_SYSTEM_MACHINE_CONFIG_HH
#define BULKSC_SYSTEM_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/bulk_processor.hh"
#include "cpu/processor_base.hh"
#include "mem/memory_system.hh"
#include "network/network.hh"

namespace bulksc {

/** The consistency models compared in the paper's evaluation. */
enum class Model
{
    SC,       //!< in-order SC + read/exclusive prefetching [12]
    TSO,      //!< total store order (extension beyond the paper)
    RC,       //!< release consistency, speculation across fences
    SCpp,     //!< SC++ with a 2K-entry SHiQ [15]
    BSCbase,  //!< basic BulkSC (Section 4)
    BSCdypvt, //!< + dynamically-private data optimization (5.2)
    BSCstpvt, //!< + statically-private data optimization (5.1)
    BSCexact, //!< BSCdypvt with a "magic" alias-free signature
};

/** @return the paper's name for a model. */
const char *modelName(Model m);

/** Parse a model name (fatal on unknown). */
Model modelByName(const std::string &name);

/** True for the four BulkSC variants. */
bool isBulk(Model m);

/** What the forward-progress watchdog concluded about a run. */
enum class WatchdogVerdict
{
    None,       //!< no progress pathology detected
    Livelock,   //!< a chunk kept squashing at the minimum size
    Starvation, //!< a processor stopped committing (others continued)
    Deadlock,   //!< no global progress at all (or tick ceiling hit)
};

/** Short printable verdict name ("livelock", ...). */
const char *watchdogVerdictName(WatchdogVerdict v);

/**
 * Forward-progress watchdog knobs. Disabled by default so library
 * embedders (tests, benches) see no behaviour change; the CLI tools
 * turn it on.
 */
struct WatchdogConfig
{
    bool enabled = false;

    /** Ticks between progress checks. */
    Tick interval = 50'000;

    /** Livelock: consecutive squashes of one processor's leading
     *  chunk after shrinking has already bottomed out at
     *  minChunkSize. */
    unsigned livelockSquashes = 64;

    /** Starvation: a processor whose last chunk commit is this many
     *  ticks old while the machine as a whole keeps progressing is
     *  first rescued, then (at twice the gap) reported. */
    Tick starvationGap = 1'000'000;

    /** Deadlock: consecutive checks with an unchanged global progress
     *  signature before tripping. */
    unsigned deadlockChecks = 3;

    /** Attempt graceful degradation (force a starved processor's
     *  chunk to the minimum size with pre-arbitration priority)
     *  before declaring starvation. */
    bool rescue = true;

    /** Absolute tick ceiling (0 = none); exceeding it is reported as
     *  a deadlock. */
    Tick tickCeiling = 0;

    /** Flush the event-trace ring as Chrome JSON here on a trip
     *  ("" = no flush). */
    std::string dumpPath;
};

/** Complete machine configuration (defaults follow Table 2). */
struct MachineConfig
{
    Model model = Model::BSCdypvt;

    unsigned numProcs = 8;

    CpuParams cpu;
    MemParams mem;
    NetworkConfig net;
    BulkParams bulk;

    /** Arbiter signature-check latency; with the network hops this
     *  yields the paper's ~30-cycle commit arbitration latency. */
    Tick arbProcessing = 24;

    /** Maximum simultaneously-committing chunks. */
    unsigned maxSimulCommits = 8;

    /** Arbiter modules; > 1 selects the distributed arbiter with a
     *  G-arbiter (Section 4.2.3). */
    unsigned numArbiters = 1;

    /** SC++ SHiQ entries. */
    unsigned shiqEntries = 2048;

    /** Pre-load non-streaming lines into the L2 before the run so
     *  short simulations measure steady state, not cold misses. */
    bool warmCaches = true;

    /**
     * Fault-plane specification, e.g.
     * "net.drop=0.01,net.delay=1:200,arb.grant_loss=0.002" — see
     * FaultPlane::parseSpec for the grammar. Empty = no injection.
     */
    std::string faults;

    /** Seed for the fault plane's deterministic decisions. */
    std::uint64_t faultSeed = 1;

    /** Force the hardened (sequence numbers + timeout/resend)
     *  protocol even when the fault plane cannot lose messages. */
    bool harden = false;

    /** Forward-progress watchdog (off by default; tools enable it). */
    WatchdogConfig watchdog;

    /**
     * Deprecated alias for "arb.skip_collision=N" in @ref faults:
     * grant every Nth commit request that should have been denied for
     * a signature collision (0 = off). Folded into the fault plane by
     * System. Only supported with the central arbiter
     * (numArbiters <= 1).
     */
    unsigned faultSkipArbEvery = 0;

    /**
     * Check the configuration for inconsistent geometry. On failure
     * @p err receives an actionable message naming the offending
     * option(s). Call before resolve().
     *
     * @return true iff the configuration can build a System.
     */
    bool validate(std::string &err) const;

    /**
     * Resolve per-model knobs (bulk mode, private-data options, exact
     * signatures) into the sub-configs. Call before building a System.
     */
    void resolve();
};

} // namespace bulksc

#endif // BULKSC_SYSTEM_MACHINE_CONFIG_HH
