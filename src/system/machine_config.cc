#include "system/machine_config.hh"

#include <vector>

#include "sim/fault_plane.hh"
#include "sim/logging.hh"

namespace bulksc {

const char *
watchdogVerdictName(WatchdogVerdict v)
{
    switch (v) {
      case WatchdogVerdict::None:
        return "none";
      case WatchdogVerdict::Livelock:
        return "livelock";
      case WatchdogVerdict::Starvation:
        return "starvation";
      case WatchdogVerdict::Deadlock:
        return "deadlock";
      default:
        return "?";
    }
}

const char *
modelName(Model m)
{
    switch (m) {
      case Model::SC:
        return "SC";
      case Model::TSO:
        return "TSO";
      case Model::RC:
        return "RC";
      case Model::SCpp:
        return "SC++";
      case Model::BSCbase:
        return "BSCbase";
      case Model::BSCdypvt:
        return "BSCdypvt";
      case Model::BSCstpvt:
        return "BSCstpvt";
      case Model::BSCexact:
        return "BSCexact";
      default:
        return "?";
    }
}

Model
modelByName(const std::string &name)
{
    for (Model m : {Model::SC, Model::TSO, Model::RC, Model::SCpp,
                    Model::BSCbase,
                    Model::BSCdypvt, Model::BSCstpvt, Model::BSCexact}) {
        if (name == modelName(m))
            return m;
    }
    fatal("unknown model name: ", name);
}

bool
isBulk(Model m)
{
    return m == Model::BSCbase || m == Model::BSCdypvt ||
           m == Model::BSCstpvt || m == Model::BSCexact;
}

bool
MachineConfig::validate(std::string &err) const
{
    auto fail = [&](std::string msg) {
        err = std::move(msg);
        return false;
    };

    if (numProcs < 1 || numProcs > 32) {
        return fail("procs must be between 1 and 32 (directory "
                    "sharer vectors are 32 bits wide), got " +
                    std::to_string(numProcs));
    }

    const SignatureConfig &sc = bulk.sigCfg;
    if (sc.numBanks == 0)
        return fail("sig-banks must be at least 1");
    if (sc.totalBits == 0 || sc.totalBits % sc.numBanks != 0) {
        return fail("sig-bits (" + std::to_string(sc.totalBits) +
                    ") must be a positive multiple of sig-banks (" +
                    std::to_string(sc.numBanks) + ")");
    }
    if (!isPowerOf2(sc.bitsPerBank())) {
        return fail("sig-bits / sig-banks (" +
                    std::to_string(sc.bitsPerBank()) +
                    ") must be a power of two — each bank is indexed "
                    "by an address-bit slice");
    }

    if (bulk.chunkSize == 0)
        return fail("chunk must be at least 1 instruction");
    if (bulk.minChunkSize > bulk.chunkSize) {
        return fail("chunk (" + std::to_string(bulk.chunkSize) +
                    ") must be at least the squash-shrink floor of " +
                    std::to_string(bulk.minChunkSize) +
                    " instructions");
    }
    if (bulk.maxLiveChunks == 0)
        return fail("a processor needs at least one live chunk");

    if (mem.numDirectories == 0)
        return fail("dirs must be at least 1");
    if (numArbiters == 0)
        return fail("arbiters must be at least 1");
    if (faultSkipArbEvery != 0 && numArbiters > 1) {
        return fail("inject-skip-arb requires the central arbiter "
                    "(arbiters 1), got arbiters " +
                    std::to_string(numArbiters));
    }
    if (!faults.empty()) {
        std::vector<FaultPoint> pts;
        std::string ferr;
        if (!FaultPlane::parseSpec(faults, pts, ferr))
            return fail("faults: " + ferr);
        for (const FaultPoint &pt : pts) {
            if (pt.kind == FaultKind::ArbSkipCollision &&
                numArbiters > 1) {
                return fail("faults: arb.skip_collision requires the "
                            "central arbiter (arbiters 1), got "
                            "arbiters " + std::to_string(numArbiters));
            }
        }
    }
    if (watchdog.enabled && watchdog.interval == 0)
        return fail("watchdog-interval must be at least 1 tick");

    for (const CacheGeometry *g : {&mem.l1, &mem.l2}) {
        const char *name = g == &mem.l1 ? "l1" : "l2";
        if (g->lineBytes == 0 || g->assoc == 0 || g->sizeBytes == 0)
            return fail(std::string(name) +
                        " geometry must be non-zero");
        if (g->sizeBytes %
                (std::uint64_t{g->assoc} * g->lineBytes) !=
            0) {
            return fail(std::string(name) + " size (" +
                        std::to_string(g->sizeBytes) +
                        ") must be a multiple of assoc * line bytes");
        }
    }
    if (mem.l1.lineBytes != mem.l2.lineBytes) {
        return fail("l1 and l2 line sizes differ (" +
                    std::to_string(mem.l1.lineBytes) + " vs " +
                    std::to_string(mem.l2.lineBytes) +
                    ") — coherence is line-grained");
    }
    return true;
}

void
MachineConfig::resolve()
{
    mem.numProcs = numProcs;
    cpu.numBarrierProcs = numProcs;
    cpu.lineBytes = mem.l1.lineBytes;
    mem.bulkMode = isBulk(model);

    switch (model) {
      case Model::BSCbase:
        bulk.dynPrivOpt = false;
        bulk.statPrivOpt = false;
        bulk.sigCfg.exact = false;
        break;
      case Model::BSCdypvt:
        bulk.dynPrivOpt = true;
        bulk.statPrivOpt = false;
        bulk.sigCfg.exact = false;
        break;
      case Model::BSCstpvt:
        bulk.dynPrivOpt = false;
        bulk.statPrivOpt = true;
        bulk.sigCfg.exact = false;
        break;
      case Model::BSCexact:
        // The paper's BSCexact is BSCdypvt with an alias-free
        // signature.
        bulk.dynPrivOpt = true;
        bulk.statPrivOpt = false;
        bulk.sigCfg.exact = true;
        break;
      default:
        break;
    }
    // The distributed arbiter range-partitions chunks by their exact
    // address sets (Section 4.2.3) — Bloom bits alone cannot be
    // classified into ranges — so it needs the mirror regardless of
    // the stats setting. In exact mode the mirror IS the signature.
    if (numArbiters > 1 || bulk.sigCfg.exact)
        bulk.sigCfg.trackExact = true;
    mem.sigCfg = bulk.sigCfg;
}

} // namespace bulksc
