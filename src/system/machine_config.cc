#include "system/machine_config.hh"

#include "sim/logging.hh"

namespace bulksc {

const char *
modelName(Model m)
{
    switch (m) {
      case Model::SC:
        return "SC";
      case Model::TSO:
        return "TSO";
      case Model::RC:
        return "RC";
      case Model::SCpp:
        return "SC++";
      case Model::BSCbase:
        return "BSCbase";
      case Model::BSCdypvt:
        return "BSCdypvt";
      case Model::BSCstpvt:
        return "BSCstpvt";
      case Model::BSCexact:
        return "BSCexact";
      default:
        return "?";
    }
}

Model
modelByName(const std::string &name)
{
    for (Model m : {Model::SC, Model::TSO, Model::RC, Model::SCpp,
                    Model::BSCbase,
                    Model::BSCdypvt, Model::BSCstpvt, Model::BSCexact}) {
        if (name == modelName(m))
            return m;
    }
    fatal("unknown model name: ", name);
}

bool
isBulk(Model m)
{
    return m == Model::BSCbase || m == Model::BSCdypvt ||
           m == Model::BSCstpvt || m == Model::BSCexact;
}

void
MachineConfig::resolve()
{
    mem.numProcs = numProcs;
    cpu.numBarrierProcs = numProcs;
    cpu.lineBytes = mem.l1.lineBytes;
    mem.bulkMode = isBulk(model);

    switch (model) {
      case Model::BSCbase:
        bulk.dynPrivOpt = false;
        bulk.statPrivOpt = false;
        bulk.sigCfg.exact = false;
        break;
      case Model::BSCdypvt:
        bulk.dynPrivOpt = true;
        bulk.statPrivOpt = false;
        bulk.sigCfg.exact = false;
        break;
      case Model::BSCstpvt:
        bulk.dynPrivOpt = false;
        bulk.statPrivOpt = true;
        bulk.sigCfg.exact = false;
        break;
      case Model::BSCexact:
        // The paper's BSCexact is BSCdypvt with an alias-free
        // signature.
        bulk.dynPrivOpt = true;
        bulk.statPrivOpt = false;
        bulk.sigCfg.exact = true;
        break;
      default:
        break;
    }
    mem.sigCfg = bulk.sigCfg;
}

} // namespace bulksc
