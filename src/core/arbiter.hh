/**
 * @file
 * The commit arbiter (Section 4.2): a simple state machine enforcing
 * the minimum serialization requirements of chunk commit.
 *
 * The arbiter stores the W signatures of all currently-committing
 * chunks. A permission-to-commit request is granted iff every stored W
 * has an empty intersection with the incoming (R, W) pair; the granted
 * W (if non-empty) joins the list until the commit's acknowledgements
 * arrive (commitDone).
 *
 * The RSig commit-bandwidth optimization (Section 4.2.2) is modelled
 * faithfully: requests carry only W; when the arbiter's list is
 * non-empty it fetches R from the processor with an extra round trip.
 *
 * Pre-arbitration (Section 3.3) provides the forward-progress
 * guarantee: a repeatedly squashed processor reserves the arbiter,
 * which then rejects commit requests from all other processors until
 * the reserving processor's next commit request is processed.
 */

#ifndef BULKSC_CORE_ARBITER_HH
#define BULKSC_CORE_ARBITER_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "network/network.hh"
#include "signature/signature.hh"
#include "sim/event_queue.hh"
#include "sim/fault_plane.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bulksc {

/** Aggregate arbiter statistics (Table 4 columns). */
struct ArbiterStats
{
    std::uint64_t requests = 0;
    std::uint64_t grants = 0;
    std::uint64_t denials = 0;
    std::uint64_t emptyWCommits = 0; //!< grants whose W was empty
    std::uint64_t rsigRequired = 0;  //!< requests needing the R sig
    std::uint64_t preArbitrations = 0;
    std::uint64_t abortedGrants = 0; //!< grants to already-squashed chunks

    /** Colliding requests granted anyway by the fault-injection knob
     *  (negative testing of the SC checkers; 0 in normal operation). */
    std::uint64_t faultInjectedGrants = 0;

    /** Duplicate or retransmitted requests absorbed by the dedup
     *  cache (decided ones get their cached decision re-sent). */
    std::uint64_t dupRequests = 0;

    /** Requests lost to fault injection before reaching the arbiter. */
    std::uint64_t lostRequests = 0;

    /** Decision replies lost to fault injection. */
    std::uint64_t lostReplies = 0;

    /** Time integral of the W-list size (for avg pending W sigs). */
    double pendingIntegral = 0.0;

    /** Ticks during which the W list was non-empty. */
    Tick nonEmptyTicks = 0;

    /** W-list residency of each committed W (grant to commitDone). */
    Histogram occupancy;

    double
    avgPendingW(Tick total) const
    {
        return total ? pendingIntegral / static_cast<double>(total) : 0;
    }

    double
    nonEmptyFrac(Tick total) const
    {
        return total ? static_cast<double>(nonEmptyTicks) /
                           static_cast<double>(total)
                     : 0;
    }
};

/** Supplies a chunk's R signature on demand (RSig optimization). */
using RProvider = std::function<std::shared_ptr<Signature>()>;

/** Interface shared by the central and distributed arbiters. */
class ArbiterIface
{
  public:
    virtual ~ArbiterIface() = default;

    /**
     * Request permission to commit.
     *
     * @param p Requesting processor.
     * @param txn Per-processor transaction number. Retransmissions of
     *        the same request reuse the number so the arbiter can
     *        deduplicate them idempotently: a duplicate of a decided
     *        transaction re-sends the cached decision instead of
     *        deciding twice.
     * @param w The chunk's W signature (kept by the arbiter on grant).
     * @param r_provider Called if the R signature is needed.
     * @param reply Receives the decision at the processor (may be
     *        invoked more than once under reply duplication; callers
     *        must ignore repeats).
     */
    virtual void requestCommit(ProcId p, std::uint64_t txn,
                               std::shared_ptr<Signature> w,
                               RProvider r_provider,
                               std::function<void(bool)> reply) = 0;

    /** All directories acknowledged the commit of @p w: drop it. */
    virtual void commitDone(const std::shared_ptr<Signature> &w) = 0;

    /** Reserve the arbiter for @p p (forward-progress measure). */
    virtual void preArbitrate(ProcId p,
                              std::function<void()> granted) = 0;

    virtual const ArbiterStats &stats() const = 0;

    /** Digest of the arbiter's protocol state (W list, decision
     *  cache, pre-arbitration) for explorer revisit pruning. */
    virtual std::uint64_t fingerprint() const { return 0; }
};

/** The single (or combined-with-directory) arbiter of Section 4.2.1. */
class Arbiter : public SimObject, public ArbiterIface
{
  public:
    /**
     * @param node Network node id of the arbiter.
     * @param processing Signature-check latency (the paper's 30-cycle
     *        commit arbitration latency minus the network hops).
     * @param rsig_opt Enable the RSig bandwidth optimization.
     * @param max_commits Maximum simultaneously-committing chunks.
     */
    Arbiter(EventQueue &eq, Network &net, NodeId node, Tick processing,
            bool rsig_opt, unsigned max_commits = 8);

    /**
     * Attach the fault plane. Request/reply loss and duplication
     * (arb.req_loss, arb.grant_loss, net.drop, net.dup) are injected
     * here; arb.skip_collision grants every Nth colliding request,
     * deliberately breaking chunk disambiguation so the analysis
     * subsystem has SC violations to catch.
     */
    void setFaultPlane(FaultPlane *fp) { faults = fp; }

    void requestCommit(ProcId p, std::uint64_t txn,
                       std::shared_ptr<Signature> w,
                       RProvider r_provider,
                       std::function<void(bool)> reply) override;

    void commitDone(const std::shared_ptr<Signature> &w) override;

    void preArbitrate(ProcId p, std::function<void()> granted) override;

    const ArbiterStats &stats() const override { return stats_; }

    std::uint64_t fingerprint() const override;

    std::size_t pendingW() const { return wList.size(); }

  private:
    void decide(ProcId p, const std::shared_ptr<Signature> &w,
                std::shared_ptr<Signature> r, RProvider r_provider,
                std::function<void(bool)> reply);

    /** True iff some listed W intersects @p s. */
    bool collides(const Signature &s) const;

    void touchStats();

    void tryActivatePreArb();

    /**
     * Record the decision for the processor's current transaction and
     * send the reply (subject to grant-loss / duplication injection).
     * @p w is the decided chunk's W signature; it rides along as the
     * reply's footprint so the schedule explorer can commute replies
     * to different processors (null = unknown, ordered pessimally).
     */
    void concludeAndReply(ProcId p, bool ok,
                          const std::function<void(bool)> &reply,
                          std::shared_ptr<Signature> w = nullptr);

    /**
     * Idempotence filter at request delivery. @return true iff the
     * message is a duplicate and was fully handled here (either
     * swallowed while the decision is still in flight, or answered
     * from the decision cache).
     */
    bool dedupRequest(ProcId p, std::uint64_t txn,
                      const std::function<void(bool)> &reply);

    Network &net;
    NodeId node;
    Tick processing;
    bool rsigOpt;
    unsigned maxCommits;
    FaultPlane *faults = nullptr;

    /** Decision cache: the latest transaction seen per processor. */
    struct TxnRecord
    {
        std::uint64_t txn = ~std::uint64_t{0};
        bool decided = false;
        bool ok = false;
    };
    std::unordered_map<ProcId, TxnRecord> txns;

    std::vector<std::shared_ptr<Signature>> wList;

    /** Tick each listed W entered the list (occupancy histogram). */
    std::unordered_map<const Signature *, Tick> wInsertTick;

    /** Active pre-arbitration owner (kNodeNone when inactive). */
    ProcId preArbOwner = ~ProcId{0};
    std::deque<std::pair<ProcId, std::function<void()>>> preArbQueue;

    ArbiterStats stats_;
    Tick lastTouch = 0;
};

} // namespace bulksc

#endif // BULKSC_CORE_ARBITER_HH
