#include "core/distributed_arbiter.hh"

#include <algorithm>

#include "sim/event_trace.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace bulksc {

DistributedArbiter::DistributedArbiter(EventQueue &eq, Network &n,
                                       NodeId first_node, unsigned count,
                                       Tick processing_, bool rsig_opt)
    : SimObject(eq, "dist-arbiter"), net(n), firstNode(first_node),
      processing(processing_), rsigOpt(rsig_opt)
{
    fatal_if(count == 0, "need at least one arbiter module");
    modules.resize(count);
}

unsigned
DistributedArbiter::rangeOf(LineAddr line) const
{
    // Same coarse granules as MemorySystem::dirOf.
    return static_cast<unsigned>((line >> 10) % modules.size());
}

std::vector<unsigned>
DistributedArbiter::rangesOf(const Signature &s) const
{
    std::vector<bool> mark(modules.size(), false);
    std::vector<unsigned> out;
    for (LineAddr l : s.exactLines()) {
        unsigned r = rangeOf(l);
        if (!mark[r]) {
            mark[r] = true;
            out.push_back(r);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
DistributedArbiter::moduleCollides(unsigned m, const Signature &s) const
{
    for (const auto &w : modules[m].wList) {
        if (w->intersects(s))
            return true;
    }
    return false;
}

void
DistributedArbiter::removeFrom(
    std::vector<std::shared_ptr<Signature>> &list,
    const std::shared_ptr<Signature> &w)
{
    for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->get() == w.get()) {
            list.erase(it);
            return;
        }
    }
}

void
DistributedArbiter::touchStats()
{
    Tick now = curTick();
    Tick dt = now - lastTouch;
    stats_.pendingIntegral +=
        static_cast<double>(activeTxns) * static_cast<double>(dt);
    if (activeTxns)
        stats_.nonEmptyTicks += dt;
    lastTouch = now;
}

void
DistributedArbiter::sendReply(ProcId p, bool ok,
                              const std::function<void(bool)> &reply,
                              NodeId from, std::shared_ptr<Signature> w)
{
    MsgFootprint fp;
    fp.wsig = std::move(w);
    if (faults &&
        faults->dropMessage(FaultKind::ArbGrantLoss, curTick(),
                            static_cast<int>(TrafficClass::Other))) {
        ++stats_.lostReplies;
        EVENT_TRACE(TraceEventType::FaultInject, curTick(),
                    trackArb(static_cast<unsigned>(from - firstNode)),
                    0,
                    static_cast<std::uint64_t>(
                        FaultKind::ArbGrantLoss));
        net.send(from, p, TrafficClass::Other, 8, [] {}, fp);
    } else {
        net.send(from, p, TrafficClass::Other, 8,
                 [reply, ok] { reply(ok); }, fp);
    }
    if (faults &&
        faults->duplicateMessage(
            curTick(), static_cast<int>(TrafficClass::Other))) {
        net.send(from, p, TrafficClass::Other, 8,
                 [reply, ok] { reply(ok); }, fp);
    }
}

void
DistributedArbiter::finishDecision(ProcId p, bool ok,
                                   std::function<void(bool)> reply,
                                   NodeId from,
                                   std::shared_ptr<Signature> w)
{
    TxnRecord &rec = txns[p];
    rec.decided = true;
    rec.ok = ok;
    if (ok)
        ++stats_.grants;
    else
        ++stats_.denials;
    EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                trackArb(static_cast<unsigned>(from - firstNode)), 0,
                activeTxns, ok ? 1 : 0);
    sendReply(p, ok, reply, from, std::move(w));
}

void
DistributedArbiter::requestCommit(ProcId p, std::uint64_t txn,
                                  std::shared_ptr<Signature> w,
                                  RProvider r_provider,
                                  std::function<void(bool)> reply)
{
    NodeId gnode = firstNode + static_cast<NodeId>(modules.size());

    // Idempotent dedup: a retransmission of the transaction in flight
    // is swallowed; one of a decided transaction re-sends the cached
    // decision (deciding twice would self-collide with the reserved
    // W signatures).
    auto it = txns.find(p);
    if (it != txns.end() && it->second.txn == txn) {
        ++stats_.dupRequests;
        if (it->second.decided)
            sendReply(p, it->second.ok, reply, gnode, w);
        return;
    }
    txns[p] = TxnRecord{txn, false, false};

    if (faults &&
        faults->dropMessage(FaultKind::ArbReqLoss, curTick(),
                            static_cast<int>(TrafficClass::WrSig))) {
        ++stats_.lostRequests;
        EVENT_TRACE(TraceEventType::FaultInject, curTick(),
                    trackArb(static_cast<unsigned>(modules.size())),
                    txn,
                    static_cast<std::uint64_t>(FaultKind::ArbReqLoss));
        // The bits travel but never arrive; forget the record so the
        // retransmission re-enters the decision flow.
        net.send(p, gnode, TrafficClass::WrSig,
                 w->empty() ? 16 : w->compressedBits(), [] {});
        txns.erase(p);
        return;
    }

    // The processor knows from the signatures which arbiter(s) to
    // contact (Section 4.2.3).
    auto r = r_provider();
    std::vector<unsigned> w_ranges = rangesOf(*w);
    std::vector<unsigned> ranges = w_ranges;
    if (r) {
        for (unsigned m : rangesOf(*r)) {
            if (std::find(ranges.begin(), ranges.end(), m) ==
                ranges.end()) {
                ranges.push_back(m);
            }
        }
    }
    std::sort(ranges.begin(), ranges.end());
    if (ranges.empty())
        ranges.push_back(0);

    if (ranges.size() == 1) {
        // Single-range commit: one arbiter module (Figure 8(a)).
        unsigned m = ranges[0];
        NodeId mnode = firstNode + m;
        bool w_here = !w_ranges.empty();
        unsigned bits = w->empty() ? 16 : w->compressedBits();
        if (!rsigOpt && r)
            net.send(p, mnode, TrafficClass::RdSig, r->compressedBits(),
                     [] {});
        net.send(p, mnode, TrafficClass::WrSig, bits,
                 [this, p, w, r, m, mnode, w_here, reply] {
            ++stats_.requests;
            ++nSingle;
            if (preArbOwner != ~ProcId{0} && preArbOwner != p) {
                finishDecision(p, false, reply, mnode, w);
                return;
            }
            bool was_owner = preArbOwner == p;
            // RSig round-trip latency is charged when the list is
            // non-empty at arrival; the decision itself (collision
            // check + list insertion) executes atomically later.
            bool need_r = !modules[m].wList.empty();
            if (need_r && rsigOpt)
                ++stats_.rsigRequired;
            eventq.scheduleAfter(
                processing + (need_r && rsigOpt
                                  ? 2 * net.latencyFor(
                                            r ? r->compressedBits()
                                              : 16)
                                  : 0),
                [this, p, w, r, m, mnode, w_here, was_owner, reply] {
                    bool ok = !moduleCollides(m, *w) &&
                              (!r || modules[m].wList.empty() ||
                               !moduleCollides(m, *r));
                    if (ok) {
                        if (w->empty()) {
                            ++stats_.emptyWCommits;
                        } else if (w_here) {
                            touchStats();
                            modules[m].wList.push_back(w);
                            wInsertTick[w.get()] = curTick();
                            ++activeTxns;
                        }
                    }
                    if (was_owner) {
                        preArbOwner = ~ProcId{0};
                        tryActivatePreArb();
                    }
                    finishDecision(p, ok, reply, mnode, w);
                });
        });
        return;
    }

    // Multi-range commit: coordinate through the G-arbiter
    // (Figure 8(b)). Both signatures travel with the request.
    unsigned bits = (w->empty() ? 16 : w->compressedBits()) +
                    (r ? r->compressedBits() : 16);
    net.send(p, gnode, TrafficClass::WrSig, bits,
             [this, p, w, r, w_ranges, ranges, gnode, reply] {
        ++stats_.requests;
        ++nMulti;
        if (preArbOwner != ~ProcId{0} && preArbOwner != p) {
            finishDecision(p, false, reply, gnode, w);
            return;
        }
        bool was_owner = preArbOwner == p;
        if (was_owner)
            preArbOwner = ~ProcId{0};

        // Early deny from the G-arbiter's own W cache.
        bool g_collide = false;
        for (const auto &gw : gList) {
            if (gw->intersects(*w) || (r && gw->intersects(*r))) {
                g_collide = true;
                break;
            }
        }
        if (g_collide) {
            if (was_owner)
                tryActivatePreArb();
            finishDecision(p, false, reply, gnode, w);
            return;
        }

        // Fan the signatures out to the involved modules; each module
        // votes and reserves on yes.
        auto votes = std::make_shared<unsigned>(
            static_cast<unsigned>(ranges.size()));
        auto all_ok = std::make_shared<bool>(true);
        auto reserved = std::make_shared<std::vector<unsigned>>();
        unsigned sig_bits = w->compressedBits() +
                            (r ? r->compressedBits() : 16);

        for (unsigned m : ranges) {
            bool w_here =
                std::find(w_ranges.begin(), w_ranges.end(), m) !=
                w_ranges.end();
            net.send(gnode, firstNode + m, TrafficClass::WrSig,
                     sig_bits,
                     [this, p, w, r, m, w_here, gnode, votes, all_ok,
                      reserved, was_owner, reply] {
                bool ok = !moduleCollides(m, *w) &&
                          (!r || !moduleCollides(m, *r));
                if (ok && w_here && !w->empty()) {
                    modules[m].wList.push_back(w);
                    reserved->push_back(m);
                }
                // Vote back to the G-arbiter.
                net.send(firstNode + m, gnode, TrafficClass::Other, 8,
                         [this, p, w, ok, gnode, votes, all_ok,
                          reserved, was_owner, reply] {
                    if (!ok)
                        *all_ok = false;
                    if (--*votes != 0)
                        return;
                    eventq.scheduleAfter(processing, [this, p, w,
                                                      gnode, all_ok,
                                                      reserved,
                                                      was_owner,
                                                      reply] {
                        if (*all_ok) {
                            if (w->empty()) {
                                ++stats_.emptyWCommits;
                            } else {
                                touchStats();
                                gList.push_back(w);
                                wInsertTick[w.get()] = curTick();
                                ++activeTxns;
                            }
                        } else {
                            for (unsigned rm : *reserved)
                                removeFrom(modules[rm].wList, w);
                        }
                        if (was_owner)
                            tryActivatePreArb();
                        finishDecision(p, *all_ok, reply, gnode, w);
                    });
                });
            });
        }
    });
}

void
DistributedArbiter::commitDone(const std::shared_ptr<Signature> &w)
{
    bool present = false;
    for (auto &m : modules) {
        std::size_t before = m.wList.size();
        removeFrom(m.wList, w);
        if (m.wList.size() != before)
            present = true;
    }
    std::size_t gbefore = gList.size();
    removeFrom(gList, w);
    if (gList.size() != gbefore)
        present = true;
    if (present && activeTxns) {
        touchStats();
        --activeTxns;
    }
    auto in = wInsertTick.find(w.get());
    if (in != wInsertTick.end()) {
        stats_.occupancy.sample(
            static_cast<double>(curTick() - in->second));
        wInsertTick.erase(in);
    }
    tryActivatePreArb();
}

void
DistributedArbiter::preArbitrate(ProcId p, std::function<void()> granted)
{
    ++stats_.preArbitrations;
    preArbQueue.emplace_back(p, std::move(granted));
    tryActivatePreArb();
}

void
DistributedArbiter::tryActivatePreArb()
{
    if (preArbOwner != ~ProcId{0} || preArbQueue.empty() ||
        activeTxns != 0) {
        return;
    }
    auto [p, granted] = std::move(preArbQueue.front());
    preArbQueue.pop_front();
    preArbOwner = p;
    NodeId gnode = firstNode + static_cast<NodeId>(modules.size());
    net.send(gnode, p, TrafficClass::Other, 8,
             [granted = std::move(granted)] { granted(); });
}

std::uint64_t
DistributedArbiter::fingerprint() const
{
    std::uint64_t h = mix64(0x444152ULL); // "DAR"
    for (const Module &m : modules) {
        std::uint64_t ml = 0;
        for (const auto &w : m.wList)
            ml += mix64(w->hash());
        h = mix64(h ^ ml);
    }
    std::uint64_t gl = 0;
    for (const auto &w : gList)
        gl += mix64(w->hash());
    h = mix64(h ^ gl);
    std::uint64_t tc = 0;
    for (const auto &[p, rec] : txns) {
        tc += mix64(mix64(p) ^ rec.txn ^
                    (std::uint64_t{rec.decided} << 62) ^
                    (std::uint64_t{rec.ok} << 61));
    }
    h = mix64(h ^ tc);
    h = mix64(h ^ activeTxns);
    h = mix64(h ^ preArbOwner);
    std::uint64_t pq = 0x9;
    for (const auto &e : preArbQueue)
        pq = mix64(pq ^ e.first);
    return mix64(h ^ pq);
}

} // namespace bulksc
