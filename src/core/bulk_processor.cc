#include "core/bulk_processor.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/trace_log.hh"

namespace bulksc {

BulkProcessor::BulkProcessor(EventQueue &eq, const std::string &name,
                             ProcId pid, MemorySystem &mem,
                             const Trace &trace,
                             const CpuParams &cpu_params,
                             const BulkParams &bulk_params,
                             ArbiterIface &arb_)
    : ProcessorBase(eq, name, pid, mem, trace, cpu_params),
      bprm(bulk_params), arb(arb_), nextChunkTarget(bprm.chunkSize),
      privBuf(bprm.privBufferEntries)
{}

Chunk *
BulkProcessor::currentChunk()
{
    if (!chunks.empty() && !chunks.back()->endReached)
        return chunks.back().get();
    if (chunks.size() >= bprm.maxLiveChunks)
        return nullptr; // out of signature pairs: stall
    chunks.push_back(std::make_unique<Chunk>(nextSeq++, pos,
                                             nextChunkTarget,
                                             bprm.sigCfg));
    chunks.back()->txnDepthAtStart = txnDepth;
    if (lastSquashTick != kTickNever) {
        bstats.squashRestart.sample(
            static_cast<double>(curTick() - lastSquashTick));
        lastSquashTick = kTickNever;
    }
    TRACE_LOG(TraceCat::Chunk, curTick(), name(), ": chunk ",
              chunks.back()->seq, " opens at op ", pos, " (target ",
              nextChunkTarget, " instrs)");
    EVENT_TRACE(TraceEventType::ChunkStart, curTick(), trackProc(pid),
                chunks.back()->seq, nextChunkTarget);
    return chunks.back().get();
}

Chunk *
BulkProcessor::findChunk(std::uint64_t seq)
{
    for (auto &c : chunks) {
        if (c->seq == seq)
            return c.get();
    }
    return nullptr;
}

void
BulkProcessor::retireWindow()
{
    while (!window.empty() && window.front().completed)
        window.pop_front();
}

bool
BulkProcessor::windowFull() const
{
    if (window.size() >= prm.windowOps)
        return true;
    if (!window.empty() &&
        trace.instrsBetween(window.front().opIdx, pos) >= prm.robInstrs) {
        return true;
    }
    return false;
}

std::uint64_t
BulkProcessor::specRead(Addr addr) const
{
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
        auto vit = (*it)->specValues.find(addr);
        if (vit != (*it)->specValues.end())
            return vit->second;
    }
    return mem.readValue(addr);
}

WriterRef
BulkProcessor::findWriterTag(Addr addr) const
{
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
        auto wit = (*it)->specWriters.find(addr);
        if (wit != (*it)->specWriters.end())
            return {pid, (*it)->seq, wit->second};
    }
    return analysis->committedWriter(addr);
}

void
BulkProcessor::logLoad(Chunk &c, Addr addr, std::uint64_t value,
                       bool tracked)
{
    if (!((verifier && tracked) || analysis))
        return;
    LoggedAccess a{addr, value, false, tracked, {}};
    if (analysis)
        a.writer = findWriterTag(addr);
    c.accessLog.push_back(a);
}

bool
BulkProcessor::anyLiveW(LineAddr line) const
{
    for (const auto &c : chunks) {
        if (c->w.contains(line))
            return true;
    }
    return false;
}

bool
BulkProcessor::anyLiveWExact(LineAddr line) const
{
    for (const auto &c : chunks) {
        if (c->wLines.count(line))
            return true;
    }
    return false;
}

bool
BulkProcessor::anyLiveWpriv(LineAddr line) const
{
    for (const auto &c : chunks) {
        if (c->wpriv.contains(line))
            return true;
    }
    return false;
}

void
BulkProcessor::loadToChunk(Chunk &c, LineAddr line, bool stack_ref)
{
    if (bprm.statPrivOpt && stack_ref)
        return; // private reads do not pollute R (Section 5.1)
    c.r.insert(line);

    // Data forwarding from an uncommitted predecessor chunk's write:
    // log it; the successor's R update takes a few cycles and commit of
    // the predecessor must wait for the log to drain (Section 3.2.1).
    for (const auto &pred : chunks) {
        if (pred.get() == &c)
            break;
        if (pred->w.contains(line)) {
            ++c.pendingFwd;
            eventq.scheduleAfter(bprm.fwdLogDelay,
                                 [this, seq = c.seq] {
                                     Chunk *ch = findChunk(seq);
                                     if (ch && ch->pendingFwd) {
                                         --ch->pendingFwd;
                                         maybeArbitrate();
                                     }
                                 });
            break;
        }
    }
}

void
BulkProcessor::storeToChunk(Chunk &c, Addr addr, bool stack_ref,
                            bool tracked, std::uint64_t value)
{
    LineAddr line = lineOf(addr, prm.lineBytes);

    if (bprm.statPrivOpt && stack_ref) {
        c.addWpriv(line);
    } else if (mem.l1State(pid, line) == LineState::Dirty &&
               !anyLiveW(line)) {
        // The line is dirty non-speculative: its current contents are
        // committed state that a squash must not destroy.
        if (bprm.dynPrivOpt) {
            if (anyLiveWpriv(line)) {
                c.addWpriv(line);
            } else if (privBuf.insert(line)) {
                c.privBufLines.push_back(line);
                c.addWpriv(line);
            } else {
                ++bstats.privBufferOverflows;
                mem.writebackLine(pid, line);
                c.addW(line);
            }
        } else {
            // BSCbase: write the old version back to memory, then
            // treat the write as ordinary speculative state.
            ++bstats.baseWritebacks;
            mem.writebackLine(pid, line);
            c.addW(line);
        }
    } else {
        c.addW(line);
    }

    if (tracked)
        c.specValues[addr] = value;
    if ((verifier && tracked) || analysis) {
        if (analysis) {
            c.specWriters[addr] =
                static_cast<std::uint32_t>(c.accessLog.size());
        }
        c.accessLog.push_back({addr, value, true, tracked, {}});
    }

    // Fetch the line if absent (as a Read: BulkSC write misses are
    // read requests, Section 4.3); mark it dirty-speculative once
    // present. Stores never stall the processor (Section 6).
    if (mem.l1Contains(pid, line)) {
        mem.markDirty(pid, line);
    } else {
        c.outstandingStoreLines.insert(line);
        // No epoch guard: the chunk lookup by seq is the staleness
        // check (a squashed chunk is simply gone).
        mem.access(pid, addr, MemCmd::Read,
                   [this, line, seq = c.seq] {
                       Chunk *ch = findChunk(seq);
                       if (ch) {
                           mem.markDirty(pid, line);
                           ch->outstandingStoreLines.erase(line);
                           maybeArbitrate();
                       }
                       advance();
                   });
    }

    // Keep the chunk from growing past the point where the next
    // speculative line could not be held (Section 4.1.2).
    if (wouldOverflowSet(line))
        c.endReached = true;
}

bool
BulkProcessor::wouldOverflowSet(LineAddr line) const
{
    const unsigned assoc = mem.params().l1.assoc;
    const std::uint64_t num_sets = mem.params().l1.numSets();
    std::unordered_set<LineAddr> set_lines;
    for (const auto &ch : chunks) {
        for (LineAddr l : ch->wLines) {
            if (l % num_sets == line % num_sets)
                set_lines.insert(l);
        }
        for (LineAddr l : ch->wprivLines) {
            if (l % num_sets == line % num_sets)
                set_lines.insert(l);
        }
    }
    // Re-writing an already-speculative line needs no new way.
    if (set_lines.count(line))
        return false;
    return set_lines.size() >= assoc - 1;
}

void
BulkProcessor::issueLoad(Chunk &c, const Op &op)
{
    LineAddr line = lineOf(op.addr, prm.lineBytes);
    loadToChunk(c, line, op.stackRef);
    if (op.aux != kNoSlot)
        recordLoad(op, specRead(op.addr));
    logLoad(c, op.addr, specRead(op.addr), op.tracked);

    window.push_back({pos, c.seq, false});
    // No epoch guard: after a squash the window scan and chunk lookup
    // find nothing for dropped work, while completions for surviving
    // older chunks' loads must still land.
    auto lat = mem.access(pid, op.addr, MemCmd::Read,
                          [this, idx = pos, seq = c.seq] {
                              for (auto &w : window) {
                                  if (w.opIdx == idx)
                                      w.completed = true;
                              }
                              Chunk *ch = findChunk(seq);
                              if (ch && ch->inflightLoads) {
                                  --ch->inflightLoads;
                                  maybeArbitrate();
                              }
                              advance();
                          });
    if (lat)
        window.back().completed = true;
    else
        ++c.inflightLoads;
}

void
BulkProcessor::issueStore(Chunk &c, const Op &op)
{
    window.push_back({pos, c.seq, true});
    storeToChunk(c, op.addr, op.stackRef, op.tracked, op.storeValue);
}

void
BulkProcessor::finishOp()
{
    const Op &op = trace.ops[pos];
    ++pos;
    gapCharged = false;
    // An io op completes only after every chunk drained (execIo), so
    // there may be no live chunk to charge; the next one starts fresh.
    if (chunks.empty())
        return;
    Chunk &cur = *chunks.back();
    cur.execInstrs += op.gap + 1;
    if (cur.execInstrs >= cur.targetSize && !cur.endReached &&
        txnDepth == 0) {
        cur.endReached = true;
        maybeArbitrate();
    }
}

void
BulkProcessor::advance()
{
    if (finished())
        return;
    retireWindow();
    maybeArbitrate();
    if (preArbWaiting)
        return;

    while (true) {
        retireWindow();
        if (pos >= trace.ops.size()) {
            if (syncBusy || !window.empty())
                return;
            if (!chunks.empty()) {
                if (!chunks.back()->endReached) {
                    chunks.back()->endReached = true;
                    maybeArbitrate();
                }
                return;
            }
            if (committingCount == 0)
                markFinished();
            return;
        }
        if (syncBusy || windowFull())
            return;

        Chunk *cur = currentChunk();
        if (!cur)
            return; // both signature pairs busy

        const Op &op = trace.ops[pos];
        if (!gapCharged) {
            fetchAvail = fetchAdvance(op.gap + 1);
            gapCharged = true;
        }
        if (fetchAvail > curTick()) {
            scheduleAdvance(fetchAvail);
            return;
        }

        if (op.type == OpType::TxBegin) {
            // A transaction occupies a chunk of its own: its commit
            // IS the chunk commit, so atomicity and conflict handling
            // come for free from the chunk machinery (Section 8).
            if (txnDepth == 0 && cur->execInstrs > 0) {
                cur->endReached = true;
                maybeArbitrate();
                continue;
            }
            ++txnDepth;
            finishOp();
            continue;
        }
        if (op.type == OpType::TxEnd) {
            panic_if(txnDepth == 0, name(),
                     ": TxEnd without a matching TxBegin");
            --txnDepth;
            finishOp();
            if (txnDepth == 0) {
                Chunk &c = *chunks.back();
                if (!c.endReached) {
                    c.endReached = true;
                    maybeArbitrate();
                }
            }
            continue;
        }
        if (op.type == OpType::Load) {
            issueLoad(*cur, op);
            finishOp();
        } else if (op.type == OpType::Store) {
            // The store's speculative line must have a guaranteed L1
            // way. If the current chunk contributes to the pressure,
            // end it (the store lands in the next chunk); if the
            // pressure comes entirely from a predecessor chunk, wait
            // for it to commit.
            LineAddr line = lineOf(op.addr, prm.lineBytes);
            if (wouldOverflowSet(line)) {
                fatal_if(txnDepth > 0,
                         "transaction working set exceeds L1 way "
                         "capacity; transactions are cache-bounded "
                         "(Section 8)");
                if (!cur->endReached) {
                    cur->endReached = true;
                    maybeArbitrate();
                }
                if (chunks.size() >= bprm.maxLiveChunks)
                    return; // wake on predecessor commit
                continue;
            }
            issueStore(*cur, op);
            finishOp();
        } else {
            if (bprm.endChunkOnSync && cur->execInstrs > 0 &&
                !cur->endReached) {
                // Start the synchronization in a fresh chunk so its
                // critical section shares a chunk with as little
                // unrelated work as possible (Figure 6).
                cur->endReached = true;
                maybeArbitrate();
                continue;
            }
            syncBusy = true;
            execSync(op, [this, e = epoch] {
                if (epoch != e)
                    return;
                syncBusy = false;
                finishOp();
                advance();
            });
            return;
        }
    }
}

void
BulkProcessor::maybeArbitrate()
{
    if (chunks.empty() || preArbWaiting)
        return;
    Chunk &front = *chunks.front();
    if (!front.readyToArbitrate())
        return;

    front.arbitrating = true;
    if (front.firstArbTick == kTickNever)
        front.firstArbTick = curTick();
    // |W| and |Wpriv| come from the functional line sets; |R| needs
    // the stats mirror (reads are never tracked exactly on the fast
    // path) and reads 0 when it is off.
    bstats.rSizeSum += static_cast<double>(front.r.exactSize());
    bstats.wSizeSum += static_cast<double>(front.wLines.size());
    bstats.wprivSizeSum += static_cast<double>(front.wprivLines.size());

    auto w = std::make_shared<Signature>(front.w);
    std::uint64_t seq = front.seq;
    EVENT_TRACE(TraceEventType::ArbRequest, curTick(), trackProc(pid),
                seq, front.execInstrs);

    RProvider r_provider = [this, seq]() -> std::shared_ptr<Signature> {
        Chunk *c = findChunk(seq);
        return c ? std::make_shared<Signature>(c->r) : nullptr;
    };

    auto att = std::make_shared<ArbAttempt>();
    att->txn = ++nextArbTxn;
    att->seq = seq;
    att->w = std::move(w);
    att->rp = std::move(r_provider);
    arbAttempts.emplace(att->txn, att);
    sendArbAttempt(att);
}

Tick
BulkProcessor::resendDelay(std::uint64_t txn, unsigned attempts) const
{
    // Exponential backoff, capped, with deterministic +/-25% jitter so
    // retransmission storms from several starved processors decohere
    // without perturbing reproducibility.
    unsigned shift = attempts < 16 ? attempts - 1 : 15;
    Tick base = bprm.resendTimeout << shift;
    if (base > bprm.resendTimeoutCap)
        base = bprm.resendTimeoutCap;
    return jitteredBackoff(base,
                           (static_cast<std::uint64_t>(pid) << 48) ^
                               (txn << 8) ^ attempts);
}

void
BulkProcessor::sendArbAttempt(const std::shared_ptr<ArbAttempt> &att)
{
    ++att->attempts;
    if (att->attempts > 1) {
        ++bstats.resends;
        EVENT_TRACE(TraceEventType::Resend, curTick(), trackProc(pid),
                    att->seq, att->attempts - 1);
        TRACE_LOG(TraceCat::Fault, curTick(), name(), ": resend #",
                  att->attempts - 1, " of commit request txn ",
                  att->txn, " (chunk ", att->seq, ")");
    }

    arb.requestCommit(pid, att->txn, att->w, att->rp,
                      [this, att](bool granted) {
        onArbReply(att, granted);
    });

    if (!bprm.harden)
        return;

    // Arm the timeout for this attempt. A reply (to any attempt of
    // this transaction) disarms it by flipping att->replied.
    eventq.scheduleAfter(
        resendDelay(att->txn, att->attempts),
        [this, att, sent = att->attempts] {
            if (att->replied || att->attempts != sent)
                return;
            if (att->attempts > bprm.maxResend) {
                // Give up: the request (or every reply) keeps
                // vanishing. The processor stalls here and the
                // watchdog turns the stall into a deadlock report.
                ++bstats.resendGiveUps;
                arbAttempts.erase(att->txn);
                TRACE_LOG(TraceCat::Fault, curTick(), name(),
                          ": giving up on commit request txn ",
                          att->txn, " after ", att->attempts,
                          " attempts");
                return;
            }
            sendArbAttempt(att);
        });
}

void
BulkProcessor::onArbReply(const std::shared_ptr<ArbAttempt> &att,
                          bool granted)
{
    // Replies can be duplicated by the fault plane (or arrive once
    // per retransmission of a decided transaction): only the first
    // one acts.
    if (att->replied)
        return;
    att->replied = true;
    arbAttempts.erase(att->txn);
    if (bprm.harden)
        bstats.resendAttempts.sample(
            static_cast<double>(att->attempts));

    std::uint64_t seq = att->seq;
    std::shared_ptr<Signature> w = att->w;
    EVENT_TRACE(granted ? TraceEventType::ArbGrant
                        : TraceEventType::ArbDeny,
                curTick(), trackProc(pid), seq);
    Chunk *c = findChunk(seq);
    if (!c) {
        // The chunk was squashed while its request was in flight.
        if (granted) {
            ++bstats.abortedGrants;
            arb.commitDone(w);
        }
        return;
    }
    if (!granted) {
        ++bstats.deniedCommits;
        c->arbitrating = false;
        eventq.scheduleAfter(bprm.commitRetryDelay,
                             [this] { maybeArbitrate(); });
        return;
    }
    onGranted(seq, w);
}

void
BulkProcessor::onGranted(std::uint64_t seq, std::shared_ptr<Signature> w)
{
    Chunk *c = findChunk(seq);
    panic_if(!c, "granted chunk not found");
    panic_if(chunks.front().get() != c,
             "granted chunk is not the oldest");

    // The commit point: speculative values become the committed state.
    // The analysis engine's committed-writer directory advances in the
    // same atomic step (inside its chunkCommitted), keeping value state
    // and writer tags in lockstep.
    for (const auto &[a, v] : c->specValues)
        mem.writeValue(a, v);
    if (verifier)
        verifier->chunkCommitted(pid, c->accessLog);
    if (analysis)
        analysis->chunkCommitted(curTick(), pid, seq, c->accessLog);

    ++bstats.commits;
    lastCommit = curTick();
    if (w->empty())
        ++bstats.emptyWCommits;
    nRetired += c->execInstrs;
    if (c->firstArbTick != kTickNever) {
        bstats.arbLatency.sample(
            static_cast<double>(curTick() - c->firstArbTick));
    }
    TRACE_LOG(TraceCat::Commit, curTick(), name(), ": chunk ", seq,
              " granted (", c->execInstrs, " instrs, |W|=",
              c->wLines.size(), ", |R|=", c->r.exactSize(), ")");
    EVENT_TRACE(TraceEventType::ChunkCommit, curTick(), trackProc(pid),
                seq, c->execInstrs);

    // Private Buffer: entries belonging to this chunk either transfer
    // to a younger chunk still writing the line, or retire (their
    // writeback was skipped — the whole point of Section 5.2).
    for (LineAddr line : c->privBufLines) {
        bool transferred = false;
        for (auto &other : chunks) {
            if (other.get() != c && other->wpriv.contains(line)) {
                other->privBufLines.push_back(line);
                transferred = true;
                break;
            }
        }
        if (!transferred)
            privBuf.erase(line);
    }

    // Statically-private data stays coherent: Wpriv goes straight to
    // the directory for expansion (Section 5.1).
    if (bprm.statPrivOpt && !c->wpriv.empty()) {
        auto wp = std::make_shared<Signature>(std::move(c->wpriv));
        mem.bulkCommit(pid, wp, [] {}, nullptr, &c->wprivLines);
    }

    // The chunk dies with pop_front; its exact write lines outlive it
    // just long enough to pick the directories W must visit.
    std::unordered_set<LineAddr> w_lines = std::move(c->wLines);
    chunks.pop_front();
    consecutiveSquashes = 0;
    nextChunkTarget = bprm.chunkSize;
    preArbPending = false;

    if (!w->empty()) {
        ++committingCount;
        EVENT_TRACE(TraceEventType::CommitBegin, curTick(),
                    trackProc(pid), seq, w_lines.size());
        mem.bulkCommit(pid, w,
                       [this, w, seq] {
                           EVENT_TRACE(TraceEventType::CommitEnd,
                                       curTick(), trackProc(pid), seq);
                           arb.commitDone(w);
                           --committingCount;
                           advance();
                       },
                       &bstats.invalNodes, &w_lines);
    }
    advance();
}

void
BulkProcessor::rescueBoost()
{
    if (finished() || preArbPending)
        return;
    EVENT_TRACE(TraceEventType::WatchdogRescue, curTick(),
                trackProc(pid), chunks.empty() ? 0 : chunks.front()->seq,
                bprm.minChunkSize);
    TRACE_LOG(TraceCat::Watchdog, curTick(), name(),
              ": rescue boost — clamping chunks to ", bprm.minChunkSize,
              " instrs and pre-arbitrating");
    nextChunkTarget = bprm.minChunkSize;
    for (auto &c : chunks) {
        if (c->endReached)
            continue;
        unsigned clamp = c->execInstrs > bprm.minChunkSize
                             ? c->execInstrs
                             : bprm.minChunkSize;
        if (c->targetSize > clamp)
            c->targetSize = clamp;
    }
    preArbPending = true;
    preArbWaiting = true;
    ++bstats.preArbRequests;
    arb.preArbitrate(pid, [this] {
        preArbWaiting = false;
        advance();
        maybeArbitrate();
    });
    // Chunks that already crossed the clamped target end on the next
    // charge; one that crossed it while stalled needs a nudge now.
    advance();
}

std::string
BulkProcessor::chunkStateDump() const
{
    std::ostringstream os;
    os << name() << ": pos=" << pos << " retired=" << nRetired
       << " squashes=" << nSquashes
       << " consecutive=" << consecutiveSquashes
       << " lastCommit=" << lastCommit
       << " nextTarget=" << nextChunkTarget
       << " inflightTxns=" << arbAttempts.size()
       << (finished() ? " FINISHED" : "") << "\n";
    for (const auto &c : chunks) {
        os << "  chunk seq=" << c->seq << " instrs=" << c->execInstrs
           << "/" << c->targetSize << " |W|=" << c->wLines.size()
           << " endReached=" << (c->endReached ? 1 : 0)
           << " arbitrating=" << (c->arbitrating ? 1 : 0)
           << " inflightLoads=" << c->inflightLoads
           << " pendingStores=" << c->outstandingStoreLines.size()
           << "\n";
    }
    return os.str();
}

std::uint64_t
BulkProcessor::fingerprint() const
{
    std::uint64_t h = ProcessorBase::fingerprint();
    h = mix64(h ^ nextSeq);
    h = mix64(h ^ consecutiveSquashes);
    h = mix64(h ^ nextArbTxn);
    h = mix64(h ^ (std::uint64_t{preArbPending} << 1) ^
              (std::uint64_t{preArbWaiting} << 2) ^
              (std::uint64_t{syncBusy} << 3));
    h = mix64(h ^ committingCount);
    h = mix64(h ^ txnDepth);
    // Chunks are ordered (a deque), so a chained fold is fine.
    for (const auto &c : chunks) {
        std::uint64_t ch = mix64(c->seq);
        ch = mix64(ch ^ c->startPos);
        ch = mix64(ch ^ c->targetSize);
        ch = mix64(ch ^ c->execInstrs);
        ch = mix64(ch ^ (std::uint64_t{c->endReached} << 1) ^
                   (std::uint64_t{c->arbitrating} << 2));
        ch = mix64(ch ^ c->pendingFwd);
        ch = mix64(ch ^ c->inflightLoads);
        ch = mix64(ch ^ c->r.hash());
        ch = mix64(ch ^ c->w.hash());
        ch = mix64(ch ^ c->wpriv.hash());
        // Unordered containers fold commutatively.
        std::uint64_t sv = 0;
        for (const auto &[a, v] : c->specValues)
            sv += mix64(mix64(a) ^ v);
        ch = mix64(ch ^ sv);
        std::uint64_t os_ = 0;
        for (LineAddr l : c->outstandingStoreLines)
            os_ += mix64(l);
        ch = mix64(ch ^ os_);
        h = mix64(h ^ ch);
    }
    for (const auto &e : window) {
        h = mix64(h ^ e.opIdx ^ (e.chunkSeq << 20) ^
                  (std::uint64_t{e.completed} << 63));
    }
    std::uint64_t at = 0;
    for (const auto &[txn, att] : arbAttempts)
        at += mix64(txn);
    return mix64(h ^ at);
}

void
BulkProcessor::onRemoteWSig(const Signature &wc)
{
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        Chunk &c = *chunks[i];
        if (wc.intersects(c.r) || wc.intersects(c.w)) {
            // Attribute the squash: the Bloom encodings intersected,
            // but did the exact address sets? The exact mirrors make
            // this check free in simulation (Section 7 separates real
            // conflicts from signature aliasing); without them the
            // squash is counted but left unattributed.
            SquashCause cause = SquashCause::Unattributed;
            if (wc.tracksExact() && c.r.tracksExact()) {
                bool real = wc.intersectsExact(c.r) ||
                            wc.intersectsExact(c.w);
                cause = real ? SquashCause::TrueConflict
                             : SquashCause::FalsePositive;
            }
            squashFrom(i, cause);
            return;
        }
    }
}

void
BulkProcessor::squashFrom(std::size_t idx, SquashCause cause)
{
    ++nSquashes;
    ++consecutiveSquashes;
    if (cause == SquashCause::TrueConflict)
        ++bstats.trueConflictSquashes;
    else if (cause == SquashCause::FalsePositive)
        ++bstats.falsePositiveSquashes;
    else
        ++bstats.unattributedSquashes;
    TRACE_LOG(TraceCat::Squash, curTick(), name(), ": squashing ",
              chunks.size() - idx, " chunk(s) from seq ",
              chunks[idx]->seq, ", rollback to op ",
              chunks[idx]->startPos, " (", consecutiveSquashes,
              " consecutive, ", squashCauseName(cause), ")");
    EVENT_TRACE(TraceEventType::Squash, curTick(), trackProc(pid),
                chunks[idx]->seq, chunks.size() - idx,
                static_cast<std::uint8_t>(cause));

    for (std::size_t j = chunks.size(); j-- > idx;) {
        Chunk &c = *chunks[j];
        nWasted += c.execInstrs;
        bstats.squashChunkSize.sample(
            static_cast<double>(c.execInstrs));
        EVENT_TRACE(TraceEventType::ChunkSquash, curTick(),
                    trackProc(pid), c.seq, c.execInstrs,
                    static_cast<std::uint8_t>(cause));
        mem.l1DiscardSpeculative(pid, c.w, &c.wLines);
        for (LineAddr line : c.privBufLines) {
            privBuf.erase(line);
            mem.restoreLine(pid, line);
        }
    }
    lastSquashTick = curTick();

    pos = chunks[idx]->startPos;
    txnDepth = chunks[idx]->txnDepthAtStart;
    std::uint64_t cut = chunks[idx]->seq;
    while (!window.empty() && window.back().chunkSeq >= cut)
        window.pop_back();
    chunks.erase(chunks.begin() + static_cast<long>(idx), chunks.end());

    ++epoch;
    syncBusy = false;
    gapCharged = false;

    // Forward progress, measure 1: exponentially shrink the chunk.
    unsigned shift =
        consecutiveSquashes < 6 ? consecutiveSquashes : 6;
    unsigned shrunk = bprm.chunkSize >> shift;
    nextChunkTarget =
        shrunk > bprm.minChunkSize ? shrunk : bprm.minChunkSize;

    // Forward progress, measure 2: pre-arbitrate (Section 3.3).
    if (consecutiveSquashes >= bprm.preArbThreshold && !preArbPending) {
        preArbPending = true;
        preArbWaiting = true;
        ++bstats.preArbRequests;
        arb.preArbitrate(pid, [this] {
            preArbWaiting = false;
            advance();
        });
    }

    scheduleAdvance(curTick() + prm.squashPenalty);
}

void
BulkProcessor::onLineDisplaced(LineAddr line, bool dirty)
{
    (void)dirty;
    // Displacements never squash in BulkSC: the R signature still
    // covers displaced clean lines (Section 4.1.1). Counted for the
    // paper's Table 3; the read-side count needs the stats mirror.
    for (const auto &c : chunks) {
        if (c->r.tracksExact() && c->r.containsExact(line)) {
            ++bstats.specReadDisplacements;
            return;
        }
    }
    if (anyLiveWExact(line))
        ++bstats.specWriteDisplacements;
}

bool
BulkProcessor::mayVictimize(LineAddr line)
{
    // The BDM forbids displacing lines written speculatively by live
    // chunks (their only copy is the cache) and lines whose old
    // version sits in the Private Buffer.
    return !anyLiveW(line) && !anyLiveWpriv(line);
}

void
BulkProcessor::onExternalOwnerFetch(LineAddr line)
{
    if (!bprm.dynPrivOpt && !bprm.statPrivOpt)
        return;
    for (auto &c : chunks) {
        if (c->wpriv.contains(line)) {
            // The predicted-private pattern broke: supply the old
            // version from the Private Buffer and add the address back
            // to W so the commit publishes it (Section 5.2).
            ++bstats.privBufferSupplies;
            c->w.insert(line);
            return;
        }
    }
}

void
BulkProcessor::chargeInstrs(unsigned n)
{
    ProcessorBase::chargeInstrs(n);
    if (chunks.empty() || chunks.back()->endReached)
        return;
    Chunk &cur = *chunks.back();
    cur.execInstrs += n;
    // Spin loops grow the chunk like any other instructions; when it
    // reaches its target size it ends and commits even while the
    // synchronization operation is still in progress. This is what
    // lets a barrier arriver's count increment become visible while
    // the processor spins on the generation word (Section 3.3).
    if (cur.execInstrs >= cur.targetSize && txnDepth == 0) {
        cur.endReached = true;
        maybeArbitrate();
    }
}

void
BulkProcessor::withChunk(std::function<void(Chunk &)> fn)
{
    Chunk *c = currentChunk();
    if (c) {
        fn(*c);
        return;
    }
    eventq.scheduleAfter(10, [this, fn = std::move(fn), e = epoch] {
        if (epoch != e)
            return;
        withChunk(std::move(fn));
    });
}

void
BulkProcessor::syncLoad(Addr addr,
                        std::function<void(std::uint64_t)> done)
{
    withChunk([this, addr, done](Chunk &c) {
        loadToChunk(c, lineOf(addr, prm.lineBytes), false);
        auto fin = [this, addr, done, e = epoch] {
            if (epoch != e)
                return;
            // The value binds now, possibly in a later chunk than the
            // one the access started in (the first chunk may have
            // committed while a spin was in progress), so the read is
            // attributed — R signature and verifier log — to the
            // chunk that is current when it completes.
            withChunk([this, addr, done](Chunk &now) {
                loadToChunk(now, lineOf(addr, prm.lineBytes), false);
                std::uint64_t v = specRead(addr);
                logLoad(now, addr, v, true);
                done(v);
            });
        };
        auto lat = mem.access(pid, addr, MemCmd::Read, fin);
        if (lat)
            eventq.scheduleAfter(*lat, fin);
    });
}

void
BulkProcessor::syncStore(Addr addr, std::uint64_t value,
                         std::function<void()> done)
{
    withChunk([this, addr, value, done](Chunk &c) {
        storeToChunk(c, addr, false, true, value);
        // Stores retire immediately (stall-free writes, Section 6).
        eventq.scheduleAfter(1, [done, this, e = epoch] {
            if (epoch != e)
                return;
            done();
        });
    });
}

void
BulkProcessor::syncRmw(Addr addr,
                       std::function<std::uint64_t(std::uint64_t)> modify,
                       std::function<void(std::uint64_t)> done)
{
    // Load + conditional speculative store; the chunk's atomicity
    // makes the pair atomic (Section 3.3: synchronization operations
    // execute inside chunks with no fences).
    syncLoad(addr, [this, addr, modify, done,
                    e = epoch](std::uint64_t old) {
        if (epoch != e)
            return;
        std::uint64_t next = modify(old);
        if (next != old) {
            withChunk([this, addr, next](Chunk &c) {
                storeToChunk(c, addr, false, true, next);
            });
        }
        done(old);
    });
}

void
BulkProcessor::execIo(std::function<void()> done)
{
    // Uncached operations wait for every chunk to commit, execute
    // non-speculatively, then a fresh chunk starts (Section 4.1.3).
    if (!chunks.empty() && !chunks.back()->endReached) {
        chunks.back()->endReached = true;
        maybeArbitrate();
    }
    // The stored function captures itself weakly (a shared_ptr cycle
    // never frees); the scheduled retry carries the strong reference.
    auto waiter = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> wwaiter = waiter;
    *waiter = [this, done, wwaiter, e = epoch] {
        if (epoch != e)
            return;
        if (chunks.empty() && committingCount == 0) {
            eventq.scheduleAfter(prm.ioLatency, done);
            return;
        }
        maybeArbitrate();
        auto self = wwaiter.lock();
        eventq.scheduleAfter(10, [self] { (*self)(); });
    };
    (*waiter)();
}

} // namespace bulksc
