/**
 * @file
 * An end-to-end sequential-consistency conformance checker.
 *
 * BulkSC's correctness argument (Section 3.1) is that an execution is
 * SC if chunks appear to execute atomically and in isolation, commit
 * in a single total order, and each processor's chunks commit in
 * program order. This checker verifies the *appearance* directly:
 * every committed chunk reports its ordered access log (each load with
 * the value it actually observed during speculative execution, each
 * store with the value it wrote), and the verifier replays the logs
 * serially in commit order against a reference memory image. Every
 * observed load value must equal the reference value at that point of
 * the serial replay — i.e. the real, speculative, out-of-order,
 * squash-and-retry execution must be indistinguishable from the serial
 * one.
 *
 * Replaying in commit-grant order is sound even though commits
 * overlap: the arbiter only lets chunks commit concurrently when the
 * incoming (R, W) pair is disjoint from every committing W (superset
 * check, so the exact sets are disjoint too), making concurrent
 * commits commutative in the replay.
 *
 * The checker needs all values tracked, so tests enable the workload
 * generator's trackAllValues mode (each store writes a unique value).
 */

#ifndef BULKSC_CORE_SC_VERIFIER_HH
#define BULKSC_CORE_SC_VERIFIER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace bulksc {

/** One logged access of a chunk, in program order. */
struct LoggedAccess
{
    Addr addr;
    std::uint64_t value; //!< value observed (load) or written (store)
    bool isWrite;
};

/**
 * Serial-replay SC checker for chunked executions.
 */
class ScVerifier
{
  public:
    /**
     * A chunk committed (commit permission granted). Must be invoked
     * in commit-grant order — which is how BulkProcessor calls it.
     *
     * @param p Committing processor.
     * @param log The chunk's accesses in program order.
     */
    void chunkCommitted(ProcId p, std::vector<LoggedAccess> log);

    /** @return true iff every replayed load matched. */
    bool verified() const { return errorLog.empty(); }

    std::uint64_t chunksChecked() const { return nChunks; }
    std::uint64_t readsChecked() const { return nReads; }
    std::uint64_t writesApplied() const { return nWrites; }

    /** Human-readable descriptions of any mismatches (capped). */
    const std::vector<std::string> &errors() const { return errorLog; }

  private:
    std::unordered_map<Addr, std::uint64_t> state;
    std::uint64_t nChunks = 0;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::vector<std::string> errorLog;
};

} // namespace bulksc

#endif // BULKSC_CORE_SC_VERIFIER_HH
