/**
 * @file
 * An end-to-end sequential-consistency conformance checker.
 *
 * BulkSC's correctness argument (Section 3.1) is that an execution is
 * SC if chunks appear to execute atomically and in isolation, commit
 * in a single total order, and each processor's chunks commit in
 * program order. This checker verifies the *appearance* directly:
 * every committed chunk reports its ordered access log (each load with
 * the value it actually observed during speculative execution, each
 * store with the value it wrote), and the verifier replays the logs
 * serially in commit order against a reference memory image. Every
 * observed load value must equal the reference value at that point of
 * the serial replay — i.e. the real, speculative, out-of-order,
 * squash-and-retry execution must be indistinguishable from the serial
 * one.
 *
 * Replaying in commit-grant order is sound even though commits
 * overlap: the arbiter only lets chunks commit concurrently when the
 * incoming (R, W) pair is disjoint from every committing W (superset
 * check, so the exact sets are disjoint too), making concurrent
 * commits commutative in the replay.
 *
 * Value tracking: the checker no longer requires the workload
 * generator's trackAllValues mode. Accesses without a meaningful
 * value (LoggedAccess::hasValue == false, logged when an
 * AnalysisEngine is attached) participate in the replay
 * structurally — an untracked store poisons the reference cell to
 * "unknown", and loads of unknown cells are counted but not
 * compared. Structural SC over those accesses is covered by the
 * axiomatic checker (src/analysis/mem_order_graph.hh), which works
 * from writer tags instead of values; cross-checking the two on the
 * tracked subset is how the restriction was lifted.
 *
 * Remaining limitation: on partially-tracked workloads the *replay*
 * checker's value comparison only discriminates between writes that
 * wrote different tracked values to the same address. Two stores of
 * the same value to one address are indistinguishable to the replay
 * (classic ABA), which is exactly why trackAllValues writes unique
 * values — enable it when the strongest value-level check is wanted,
 * or rely on the axiomatic checker, which is immune to ABA because
 * it never infers writers from values.
 */

#ifndef BULKSC_CORE_SC_VERIFIER_HH
#define BULKSC_CORE_SC_VERIFIER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/access_log.hh"
#include "sim/types.hh"

namespace bulksc {

/**
 * Serial-replay SC checker for chunked executions.
 */
class ScVerifier
{
  public:
    /**
     * A chunk committed (commit permission granted). Must be invoked
     * in commit-grant order — which is how BulkProcessor calls it.
     *
     * @param p Committing processor.
     * @param log The chunk's accesses in program order.
     */
    void chunkCommitted(ProcId p, const std::vector<LoggedAccess> &log);

    /** @return true iff every replayed load matched. */
    bool verified() const { return errorLog.empty(); }

    std::uint64_t chunksChecked() const { return nChunks; }
    std::uint64_t readsChecked() const { return nReads; }
    std::uint64_t writesApplied() const { return nWrites; }

    /** Tracked loads hitting a cell last written by an untracked
     *  store (compared structurally only, see the header comment). */
    std::uint64_t unknownValueReads() const { return nUnknownReads; }

    /** Untracked loads (no value to compare at all). */
    std::uint64_t skippedReads() const { return nSkippedReads; }

    /** Human-readable descriptions of any mismatches (capped). */
    const std::vector<std::string> &errors() const { return errorLog; }

  private:
    /** One reference-memory cell; a cell last written by an untracked
     *  store holds no usable value. */
    struct Cell
    {
        std::uint64_t value = 0;
        bool known = true;
    };

    std::unordered_map<Addr, Cell> state;
    std::uint64_t nChunks = 0;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::uint64_t nUnknownReads = 0;
    std::uint64_t nSkippedReads = 0;
    std::vector<std::string> errorLog;
};

} // namespace bulksc

#endif // BULKSC_CORE_SC_VERIFIER_HH
