/**
 * @file
 * The distributed arbiter of Section 4.2.3: the arbiter is split into
 * multiple modules, each managing an address range (interleaved by
 * line, matching the directory modules). A chunk that accessed a
 * single range arbitrates with that module alone; a chunk spanning
 * ranges goes through the Global Arbiter (G-arbiter), which forwards
 * the signatures to the involved modules, collects their votes, and
 * combines them. The G-arbiter also caches the W signatures of its own
 * in-flight transactions to deny colliding requests early.
 */

#ifndef BULKSC_CORE_DISTRIBUTED_ARBITER_HH
#define BULKSC_CORE_DISTRIBUTED_ARBITER_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/arbiter.hh"

namespace bulksc {

/** Distributed arbiter: per-range modules plus a G-arbiter. */
class DistributedArbiter : public SimObject, public ArbiterIface
{
  public:
    /**
     * @param first_node Network node of module 0; module i lives at
     *        first_node + i and the G-arbiter at first_node + count.
     * @param count Number of arbiter modules (address ranges).
     */
    DistributedArbiter(EventQueue &eq, Network &net, NodeId first_node,
                       unsigned count, Tick processing, bool rsig_opt);

    /**
     * Attach the fault plane. Request loss and reply loss/duplication
     * are injected at the processor-facing edges; the internal module
     * fan-out and votes stay reliable (they model on-chip wiring of
     * one logical arbiter). arb.skip_collision is not supported here
     * (MachineConfig::validate rejects it with numArbiters > 1).
     */
    void setFaultPlane(FaultPlane *fp) { faults = fp; }

    void requestCommit(ProcId p, std::uint64_t txn,
                       std::shared_ptr<Signature> w,
                       RProvider r_provider,
                       std::function<void(bool)> reply) override;

    void commitDone(const std::shared_ptr<Signature> &w) override;

    void preArbitrate(ProcId p, std::function<void()> granted) override;

    const ArbiterStats &stats() const override { return stats_; }

    std::uint64_t fingerprint() const override;

    /** Commits that involved a single arbiter module. */
    std::uint64_t singleRangeCommits() const { return nSingle; }

    /** Commits that required the G-arbiter. */
    std::uint64_t multiRangeCommits() const { return nMulti; }

  private:
    struct Module
    {
        std::vector<std::shared_ptr<Signature>> wList;
    };

    unsigned rangeOf(LineAddr line) const;

    /** Ranges touched by a signature's (exact) line set. */
    std::vector<unsigned> rangesOf(const Signature &s) const;

    bool moduleCollides(unsigned m, const Signature &s) const;

    void removeFrom(std::vector<std::shared_ptr<Signature>> &list,
                    const std::shared_ptr<Signature> &w);

    void finishDecision(ProcId p, bool ok,
                        std::function<void(bool)> reply, NodeId from,
                        std::shared_ptr<Signature> w = nullptr);

    /** Send a (possibly lost/duplicated) decision reply. @p w is the
     *  decided chunk's W signature, attached as the message footprint
     *  so the schedule explorer can commute independent replies. */
    void sendReply(ProcId p, bool ok,
                   const std::function<void(bool)> &reply, NodeId from,
                   std::shared_ptr<Signature> w = nullptr);

    void touchStats();
    void tryActivatePreArb();

    Network &net;
    NodeId firstNode;
    Tick processing;
    bool rsigOpt;
    FaultPlane *faults = nullptr;

    /** Decision cache: the latest transaction seen per processor. */
    struct TxnRecord
    {
        std::uint64_t txn = ~std::uint64_t{0};
        bool decided = false;
        bool ok = false;
    };
    std::unordered_map<ProcId, TxnRecord> txns;

    std::vector<Module> modules;
    std::vector<std::shared_ptr<Signature>> gList;

    /** Tick each accepted W entered the arbiter (occupancy). Entries
     *  are created only at the final accept points — the single-range
     *  list push and the G-arbiter list push — never for the tentative
     *  module reservations of a multi-range transaction, which can
     *  still roll back. */
    std::unordered_map<const Signature *, Tick> wInsertTick;

    unsigned activeTxns = 0;

    ProcId preArbOwner = ~ProcId{0};
    std::deque<std::pair<ProcId, std::function<void()>>> preArbQueue;

    ArbiterStats stats_;
    Tick lastTouch = 0;
    std::uint64_t nSingle = 0;
    std::uint64_t nMulti = 0;
};

} // namespace bulksc

#endif // BULKSC_CORE_DISTRIBUTED_ARBITER_HH
