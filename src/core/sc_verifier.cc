#include "core/sc_verifier.hh"

#include <sstream>

namespace bulksc {

void
ScVerifier::chunkCommitted(ProcId p,
                           const std::vector<LoggedAccess> &log)
{
    ++nChunks;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const LoggedAccess &a = log[i];
        if (a.isWrite) {
            state[a.addr] = {a.value, a.hasValue};
            ++nWrites;
            continue;
        }
        if (!a.hasValue) {
            ++nSkippedReads;
            continue;
        }
        ++nReads;
        auto it = state.find(a.addr);
        // An address never written still has its (known) initial
        // value of 0; one last written by an untracked store has no
        // usable reference value.
        if (it != state.end() && !it->second.known) {
            ++nUnknownReads;
            continue;
        }
        std::uint64_t expect = it == state.end() ? 0 : it->second.value;
        if (a.value != expect && errorLog.size() < 32) {
            std::ostringstream os;
            os << "proc " << p << " chunk " << nChunks << " access "
               << i << ": load of 0x" << std::hex << a.addr
               << " observed 0x" << a.value << " but serial replay"
               << " expects 0x" << expect;
            errorLog.push_back(os.str());
        }
    }
}

} // namespace bulksc
