#include "core/sc_verifier.hh"

#include <sstream>

namespace bulksc {

void
ScVerifier::chunkCommitted(ProcId p, std::vector<LoggedAccess> log)
{
    ++nChunks;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const LoggedAccess &a = log[i];
        if (a.isWrite) {
            state[a.addr] = a.value;
            ++nWrites;
            continue;
        }
        ++nReads;
        auto it = state.find(a.addr);
        std::uint64_t expect = it == state.end() ? 0 : it->second;
        if (a.value != expect && errorLog.size() < 32) {
            std::ostringstream os;
            os << "proc " << p << " chunk " << nChunks << " access "
               << i << ": load of 0x" << std::hex << a.addr
               << " observed 0x" << a.value << " but serial replay"
               << " expects 0x" << expect;
            errorLog.push_back(os.str());
        }
    }
}

} // namespace bulksc
