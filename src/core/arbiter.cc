#include "core/arbiter.hh"

#include "sim/event_trace.hh"
#include "sim/logging.hh"
#include "sim/trace_log.hh"

namespace bulksc {

Arbiter::Arbiter(EventQueue &eq, Network &n, NodeId node_,
                 Tick processing_, bool rsig_opt, unsigned max_commits,
                 unsigned fault_skip_every)
    : SimObject(eq, "arbiter"), net(n), node(node_),
      processing(processing_), rsigOpt(rsig_opt),
      maxCommits(max_commits), faultSkipEvery(fault_skip_every)
{}

void
Arbiter::touchStats()
{
    Tick now = curTick();
    Tick dt = now - lastTouch;
    stats_.pendingIntegral +=
        static_cast<double>(wList.size()) * static_cast<double>(dt);
    if (!wList.empty())
        stats_.nonEmptyTicks += dt;
    lastTouch = now;
}

bool
Arbiter::collides(const Signature &s) const
{
    for (const auto &w : wList) {
        if (w->intersects(s))
            return true;
    }
    return false;
}

void
Arbiter::requestCommit(ProcId p, std::shared_ptr<Signature> w,
                       RProvider r_provider,
                       std::function<void(bool)> reply)
{
    // Request message: with the RSig optimization only W travels.
    unsigned bits = w->empty() ? 16 : w->compressedBits();
    std::shared_ptr<Signature> upfront_r;
    if (!rsigOpt) {
        upfront_r = r_provider();
        net.send(p, node, TrafficClass::RdSig,
                 upfront_r ? upfront_r->compressedBits() : 16, [] {});
    }
    net.send(p, node, TrafficClass::WrSig, bits,
             [this, p, w, upfront_r, r_provider, reply] {
        ++stats_.requests;

        // Pre-arbitration: reject everyone but the owner.
        if (preArbOwner != ~ProcId{0} && preArbOwner != p) {
            ++stats_.denials;
            EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                        trackArb(0), 0, wList.size(), 0);
            eventq.scheduleAfter(processing, [this, p, reply] {
                net.send(node, p, TrafficClass::Other, 8,
                         [reply] { reply(false); });
            });
            return;
        }
        if (preArbOwner == p)
            preArbOwner = ~ProcId{0};

        decide(p, w, upfront_r, r_provider, std::move(reply));
    });
}

void
Arbiter::decide(ProcId p, const std::shared_ptr<Signature> &w,
                std::shared_ptr<Signature> r, RProvider r_provider,
                std::function<void(bool)> reply)
{
    // The entire check runs atomically at the decision tick: the W
    // list is examined exactly once, and if the R signature turns out
    // to be needed but absent (RSig optimization), it is fetched and
    // the decision re-runs against the then-current list.
    eventq.scheduleAfter(processing, [this, p, w, r, r_provider,
                                      reply] {
        auto finalize = [this, p, reply](
                            bool ok,
                            const std::shared_ptr<Signature> &w_) {
            TRACE_LOG(TraceCat::Commit, curTick(), "arbiter: ",
                      ok ? "grant" : "deny", " for proc ", p,
                      " (pending W list: ", wList.size(), ")");
            EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                        trackArb(0), 0, wList.size(), ok ? 1 : 0);
            if (ok) {
                ++stats_.grants;
                if (w_->empty()) {
                    ++stats_.emptyWCommits;
                } else {
                    touchStats();
                    wList.push_back(w_);
                    wInsertTick[w_.get()] = curTick();
                }
            } else {
                ++stats_.denials;
            }
            tryActivatePreArb();
            net.send(node, p, TrafficClass::Other, 8,
                     [reply, ok] { reply(ok); });
        };

        if (wList.empty()) {
            finalize(true, w);
            return;
        }
        if (!r) {
            // RSig slow path: fetch R, then re-decide.
            ++stats_.rsigRequired;
            net.send(node, p, TrafficClass::Other, 16,
                     [this, p, w, r_provider, reply] {
                auto fetched = r_provider();
                if (!fetched) {
                    // Chunk vanished (squashed); deny.
                    ++stats_.denials;
                    EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                                trackArb(0), 0, wList.size(), 0);
                    tryActivatePreArb();
                    net.send(node, p, TrafficClass::Other, 8,
                             [reply] { reply(false); });
                    return;
                }
                net.send(p, node, TrafficClass::RdSig,
                         fetched->compressedBits(),
                         [this, p, w, fetched, r_provider, reply] {
                    decide(p, w, fetched, r_provider, reply);
                });
            });
            return;
        }
        bool ok = !collides(*r) && !collides(*w) &&
                  wList.size() < maxCommits;
        // Fault injection (negative testing): let every Nth colliding
        // request through, breaking the disambiguation the checkers
        // are supposed to catch. The capacity limit still applies.
        if (!ok && faultSkipEvery && wList.size() < maxCommits &&
            ++faultCounter >= faultSkipEvery) {
            faultCounter = 0;
            ++stats_.faultInjectedGrants;
            TRACE_LOG(TraceCat::Commit, curTick(),
                      "arbiter: FAULT-INJECTED grant for proc ", p);
            ok = true;
        }
        finalize(ok, w);
    });
}

void
Arbiter::commitDone(const std::shared_ptr<Signature> &w)
{
    for (auto it = wList.begin(); it != wList.end(); ++it) {
        if (it->get() == w.get()) {
            touchStats();
            auto in = wInsertTick.find(w.get());
            if (in != wInsertTick.end()) {
                stats_.occupancy.sample(
                    static_cast<double>(curTick() - in->second));
                wInsertTick.erase(in);
            }
            wList.erase(it);
            tryActivatePreArb();
            return;
        }
    }
}

void
Arbiter::preArbitrate(ProcId p, std::function<void()> granted)
{
    ++stats_.preArbitrations;
    preArbQueue.emplace_back(p, std::move(granted));
    tryActivatePreArb();
}

void
Arbiter::tryActivatePreArb()
{
    if (preArbOwner != ~ProcId{0} || preArbQueue.empty() ||
        !wList.empty()) {
        return;
    }
    auto [p, granted] = std::move(preArbQueue.front());
    preArbQueue.pop_front();
    preArbOwner = p;
    net.send(node, p, TrafficClass::Other, 8,
             [granted = std::move(granted)] { granted(); });
}

} // namespace bulksc
