#include "core/arbiter.hh"

#include "sim/event_trace.hh"
#include "sim/rng.hh"
#include "sim/logging.hh"
#include "sim/trace_log.hh"

namespace bulksc {

Arbiter::Arbiter(EventQueue &eq, Network &n, NodeId node_,
                 Tick processing_, bool rsig_opt, unsigned max_commits)
    : SimObject(eq, "arbiter"), net(n), node(node_),
      processing(processing_), rsigOpt(rsig_opt),
      maxCommits(max_commits)
{}

void
Arbiter::touchStats()
{
    Tick now = curTick();
    Tick dt = now - lastTouch;
    stats_.pendingIntegral +=
        static_cast<double>(wList.size()) * static_cast<double>(dt);
    if (!wList.empty())
        stats_.nonEmptyTicks += dt;
    lastTouch = now;
}

bool
Arbiter::collides(const Signature &s) const
{
    for (const auto &w : wList) {
        if (w->intersects(s))
            return true;
    }
    return false;
}

void
Arbiter::concludeAndReply(ProcId p, bool ok,
                          const std::function<void(bool)> &reply,
                          std::shared_ptr<Signature> w)
{
    TxnRecord &rec = txns[p];
    rec.decided = true;
    rec.ok = ok;

    MsgFootprint fp;
    fp.wsig = std::move(w);
    if (faults &&
        faults->dropMessage(FaultKind::ArbGrantLoss, curTick(),
                            static_cast<int>(TrafficClass::Other))) {
        ++stats_.lostReplies;
        EVENT_TRACE(TraceEventType::FaultInject, curTick(),
                    trackArb(0), rec.txn,
                    static_cast<std::uint64_t>(
                        FaultKind::ArbGrantLoss));
        // The bits still travel; the message just never arrives.
        net.send(node, p, TrafficClass::Other, 8, [] {}, fp);
    } else {
        net.send(node, p, TrafficClass::Other, 8,
                 [reply, ok] { reply(ok); }, fp);
    }
    if (faults &&
        faults->duplicateMessage(
            curTick(), static_cast<int>(TrafficClass::Other))) {
        net.send(node, p, TrafficClass::Other, 8,
                 [reply, ok] { reply(ok); }, fp);
    }
}

bool
Arbiter::dedupRequest(ProcId p, std::uint64_t txn,
                      const std::function<void(bool)> &reply)
{
    auto it = txns.find(p);
    if (it != txns.end() && it->second.txn == txn) {
        ++stats_.dupRequests;
        // Duplicate of a decided transaction: answer from the cache
        // (never decide twice — a granted W is already in the list and
        // would collide with itself). Still deciding: swallow; the
        // in-flight decision's reply is on its way.
        if (it->second.decided)
            concludeAndReply(p, it->second.ok, reply);
        return true;
    }
    txns[p] = TxnRecord{txn, false, false};
    return false;
}

void
Arbiter::requestCommit(ProcId p, std::uint64_t txn,
                       std::shared_ptr<Signature> w,
                       RProvider r_provider,
                       std::function<void(bool)> reply)
{
    // Request message: with the RSig optimization only W travels.
    unsigned bits = w->empty() ? 16 : w->compressedBits();
    std::shared_ptr<Signature> upfront_r;
    if (!rsigOpt) {
        upfront_r = r_provider();
        MsgFootprint rfp;
        rfp.rsig = upfront_r;
        net.send(p, node, TrafficClass::RdSig,
                 upfront_r ? upfront_r->compressedBits() : 16, [] {},
                 rfp);
    }

    if (faults &&
        faults->dropMessage(FaultKind::ArbReqLoss, curTick(),
                            static_cast<int>(TrafficClass::WrSig))) {
        ++stats_.lostRequests;
        EVENT_TRACE(TraceEventType::FaultInject, curTick(),
                    trackArb(0), txn,
                    static_cast<std::uint64_t>(FaultKind::ArbReqLoss));
        net.send(p, node, TrafficClass::WrSig, bits, [] {});
        return;
    }

    auto deliver = [this, p, txn, w, upfront_r, r_provider, reply] {
        if (dedupRequest(p, txn, reply))
            return;
        ++stats_.requests;

        // Pre-arbitration: reject everyone but the owner.
        if (preArbOwner != ~ProcId{0} && preArbOwner != p) {
            ++stats_.denials;
            EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                        trackArb(0), 0, wList.size(), 0);
            eventq.scheduleAfter(processing, [this, p, w, reply] {
                concludeAndReply(p, false, reply, w);
            });
            return;
        }
        if (preArbOwner == p)
            preArbOwner = ~ProcId{0};

        decide(p, w, upfront_r, r_provider, std::move(reply));
    };

    MsgFootprint reqFp;
    reqFp.wsig = w;
    reqFp.rsig = upfront_r;
    net.send(p, node, TrafficClass::WrSig, bits, deliver, reqFp);
    if (faults &&
        faults->duplicateMessage(
            curTick(), static_cast<int>(TrafficClass::WrSig))) {
        net.send(p, node, TrafficClass::WrSig, bits, deliver, reqFp);
    }
}

void
Arbiter::decide(ProcId p, const std::shared_ptr<Signature> &w,
                std::shared_ptr<Signature> r, RProvider r_provider,
                std::function<void(bool)> reply)
{
    // The entire check runs atomically at the decision tick: the W
    // list is examined exactly once, and if the R signature turns out
    // to be needed but absent (RSig optimization), it is fetched and
    // the decision re-runs against the then-current list.
    eventq.scheduleAfter(processing, [this, p, w, r, r_provider,
                                      reply] {
        auto finalize = [this, p, reply](
                            bool ok,
                            const std::shared_ptr<Signature> &w_) {
            TRACE_LOG(TraceCat::Commit, curTick(), "arbiter: ",
                      ok ? "grant" : "deny", " for proc ", p,
                      " (pending W list: ", wList.size(), ")");
            EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                        trackArb(0), 0, wList.size(), ok ? 1 : 0);
            if (ok) {
                ++stats_.grants;
                if (w_->empty()) {
                    ++stats_.emptyWCommits;
                } else {
                    touchStats();
                    wList.push_back(w_);
                    wInsertTick[w_.get()] = curTick();
                }
            } else {
                ++stats_.denials;
            }
            tryActivatePreArb();
            concludeAndReply(p, ok, reply, w_);
        };

        if (wList.empty()) {
            finalize(true, w);
            return;
        }
        if (!r) {
            // RSig slow path: fetch R, then re-decide.
            ++stats_.rsigRequired;
            net.send(node, p, TrafficClass::Other, 16,
                     [this, p, w, r_provider, reply] {
                auto fetched = r_provider();
                if (!fetched) {
                    // Chunk vanished (squashed); deny.
                    ++stats_.denials;
                    EVENT_TRACE(TraceEventType::ArbDecision, curTick(),
                                trackArb(0), 0, wList.size(), 0);
                    tryActivatePreArb();
                    concludeAndReply(p, false, reply, w);
                    return;
                }
                MsgFootprint rfp;
                rfp.rsig = fetched;
                net.send(p, node, TrafficClass::RdSig,
                         fetched->compressedBits(),
                         [this, p, w, fetched, r_provider, reply] {
                             decide(p, w, fetched, r_provider, reply);
                         },
                         rfp);
            });
            return;
        }
        bool ok = !collides(*r) && !collides(*w) &&
                  wList.size() < maxCommits;
        // Fault injection (negative testing): let every Nth colliding
        // request through, breaking the disambiguation the checkers
        // are supposed to catch. The capacity limit still applies.
        if (!ok && faults && wList.size() < maxCommits &&
            faults->skipCollision()) {
            ++stats_.faultInjectedGrants;
            TRACE_LOG(TraceCat::Commit, curTick(),
                      "arbiter: FAULT-INJECTED grant for proc ", p);
            ok = true;
        }
        finalize(ok, w);
    });
}

void
Arbiter::commitDone(const std::shared_ptr<Signature> &w)
{
    for (auto it = wList.begin(); it != wList.end(); ++it) {
        if (it->get() == w.get()) {
            touchStats();
            auto in = wInsertTick.find(w.get());
            if (in != wInsertTick.end()) {
                stats_.occupancy.sample(
                    static_cast<double>(curTick() - in->second));
                wInsertTick.erase(in);
            }
            wList.erase(it);
            tryActivatePreArb();
            return;
        }
    }
}

void
Arbiter::preArbitrate(ProcId p, std::function<void()> granted)
{
    ++stats_.preArbitrations;
    preArbQueue.emplace_back(p, std::move(granted));
    tryActivatePreArb();
}

void
Arbiter::tryActivatePreArb()
{
    if (preArbOwner != ~ProcId{0} || preArbQueue.empty() ||
        !wList.empty()) {
        return;
    }
    auto [p, granted] = std::move(preArbQueue.front());
    preArbQueue.pop_front();
    preArbOwner = p;
    net.send(node, p, TrafficClass::Other, 8,
             [granted = std::move(granted)] { granted(); });
}

std::uint64_t
Arbiter::fingerprint() const
{
    std::uint64_t h = mix64(0x415242ULL); // "ARB"
    std::uint64_t wl = 0;
    for (const auto &w : wList)
        wl += mix64(w->hash());
    h = mix64(h ^ wl);
    std::uint64_t tc = 0;
    for (const auto &[p, rec] : txns) {
        tc += mix64(mix64(p) ^ rec.txn ^
                    (std::uint64_t{rec.decided} << 62) ^
                    (std::uint64_t{rec.ok} << 61));
    }
    h = mix64(h ^ tc);
    h = mix64(h ^ preArbOwner);
    std::uint64_t pq = 0x9; // non-zero so an empty queue still folds
    for (const auto &e : preArbQueue)
        pq = mix64(pq ^ e.first);
    return mix64(h ^ pq);
}

} // namespace bulksc
