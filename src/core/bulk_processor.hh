/**
 * @file
 * The BulkSC processor (Sections 3 and 4): dynamically breaks the
 * instruction stream into chunks that execute speculatively with full
 * memory-access reordering, summarizes their addresses in R/W
 * signatures, and commits chunks through the arbiter so that SC is
 * enforced at chunk granularity.
 *
 * Variants (paper Table 2):
 *  - BSCbase:  this class with default BulkParams;
 *  - BSCdypvt: dynPrivOpt = true (Wpriv + Private Buffer, Section 5.2);
 *  - BSCstpvt: statPrivOpt = true (stack refs private, Section 5.1);
 *  - BSCexact: SignatureConfig::exact = true ("magic" alias-free).
 */

#ifndef BULKSC_CORE_BULK_PROCESSOR_HH
#define BULKSC_CORE_BULK_PROCESSOR_HH

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "analysis/analysis_engine.hh"
#include "core/arbiter.hh"
#include "core/bdm.hh"
#include "core/sc_verifier.hh"
#include "cpu/processor_base.hh"
#include "sim/event_trace.hh"
#include "sim/stats.hh"

namespace bulksc {

/** BulkSC-specific configuration (defaults follow Table 2). */
struct BulkParams
{
    /** Target chunk size in dynamic instructions. */
    unsigned chunkSize = 1000;

    /** Signature pairs / simultaneous chunks per processor. */
    unsigned maxLiveChunks = 2;

    /** RSig commit bandwidth optimization (Section 4.2.2). */
    bool rsigOpt = true;

    /** Dynamically-private data optimization (Section 5.2). */
    bool dynPrivOpt = false;

    /** Statically-private data optimization (Section 5.1). */
    bool statPrivOpt = false;

    /** Private Buffer capacity, lines. */
    unsigned privBufferEntries = 24;

    /** Delay before retrying a denied commit request. */
    Tick commitRetryDelay = 30;

    /**
     * Arm the commit-request timeout/resend machinery. Off by default:
     * with a reliable interconnect every request gets exactly one
     * reply, so no timer is ever needed and behaviour is bit-identical
     * to the unhardened protocol. The System turns it on when the
     * fault plane can lose or duplicate messages (or --harden forces
     * it).
     */
    bool harden = false;

    /** Resend attempts before giving up on a commit request. A proc
     *  that gives up stalls; the watchdog reports the deadlock. */
    unsigned maxResend = 8;

    /** Base commit-request timeout; doubles per attempt (plus
     *  deterministic jitter) up to resendTimeoutCap. */
    Tick resendTimeout = 256;

    /** Ceiling for the exponential resend backoff. */
    Tick resendTimeoutCap = 8192;

    /** Consecutive squashes before pre-arbitration kicks in. */
    unsigned preArbThreshold = 6;

    /** Floor for exponential chunk shrinking. */
    unsigned minChunkSize = 16;

    /** Cycles for a forwarding-log entry to drain into the successor's
     *  R signature (window of vulnerability, Section 3.2.1). */
    Tick fwdLogDelay = 3;

    /**
     * End the current chunk when a synchronization operation is
     * reached (the paper's Section 4.1.2 notes that checkpoint-
     * triggering events can double as chunk boundaries). This shrinks
     * the window during which two critical sections overlap in one
     * chunk (Figure 6(a)/(b) scenarios) at the cost of smaller
     * chunks around synchronization.
     */
    bool endChunkOnSync = false;

    /** Signature geometry (exact = true gives BSCexact). */
    SignatureConfig sigCfg;
};

/** Per-processor BulkSC statistics (feeds Tables 3 and 4). */
struct BulkStats
{
    std::uint64_t commits = 0;
    std::uint64_t emptyWCommits = 0;
    std::uint64_t deniedCommits = 0;
    std::uint64_t abortedGrants = 0;
    double rSizeSum = 0;     //!< sum of exact R set sizes at commit
    double wSizeSum = 0;     //!< sum of exact W set sizes at commit
    double wprivSizeSum = 0; //!< sum of exact Wpriv set sizes at commit
    std::uint64_t specReadDisplacements = 0;
    std::uint64_t specWriteDisplacements = 0;
    std::uint64_t privBufferSupplies = 0;
    std::uint64_t privBufferOverflows = 0;
    std::uint64_t baseWritebacks = 0; //!< dirty-line writebacks forced
                                      //!< by the base protocol
    unsigned invalNodes = 0;          //!< procs sent W, total
    std::uint64_t preArbRequests = 0;

    /** Squash attribution: triggers whose exact address sets really
     *  intersected the committing W. */
    std::uint64_t trueConflictSquashes = 0;

    /** Squash attribution: triggers where only the Bloom encodings
     *  intersected (signature aliasing). */
    std::uint64_t falsePositiveSquashes = 0;

    /** Squashes that could not be attributed because the exact
     *  mirrors were disabled (signature.track-exact=0). */
    std::uint64_t unattributedSquashes = 0;

    /** Commit requests retransmitted after a timeout. */
    std::uint64_t resends = 0;

    /** Commit requests abandoned after maxResend attempts. */
    std::uint64_t resendGiveUps = 0;

    /** Send attempts each decided commit request needed (1 = no
     *  fault; only sampled when hardening is armed). */
    Histogram resendAttempts;

    /** First commit request to grant, per committed chunk (cycles). */
    Histogram arbLatency;

    /** Squash to next chunk open, per squash (cycles). */
    Histogram squashRestart;

    /** Executed instructions of each squashed chunk. */
    Histogram squashChunkSize;
};

/**
 * A processor that executes chunks all the time (Figure 5).
 */
class BulkProcessor : public ProcessorBase
{
  public:
    BulkProcessor(EventQueue &eq, const std::string &name, ProcId pid,
                  MemorySystem &mem, const Trace &trace,
                  const CpuParams &cpu_params,
                  const BulkParams &bulk_params, ArbiterIface &arb);

    // CacheListener
    void onRemoteWSig(const Signature &w) override;
    void onLineDisplaced(LineAddr line, bool dirty) override;
    bool mayVictimize(LineAddr line) override;
    void onExternalOwnerFetch(LineAddr line) override;

    const BulkStats &bulkStats() const { return bstats; }

    /** Attach an SC conformance checker: committed chunks report
     *  their access logs to it in commit order. */
    void setVerifier(ScVerifier *v) { verifier = v; }

    /** Attach an analysis engine: every access (tracked or not) is
     *  logged, loads bind writer tags, and committed chunks report
     *  in commit order. */
    void setAnalysis(AnalysisEngine *a) { analysis = a; }

    /** Live chunks right now (testing hook). */
    std::size_t liveChunks() const { return chunks.size(); }

    // --- forward-progress watchdog hooks ---

    /** Squashes since the last commit. */
    unsigned consecutiveSquashCount() const
    {
        return consecutiveSquashes;
    }

    /** Tick of the last committed chunk (0 if none yet). */
    Tick lastCommitTick() const { return lastCommit; }

    /** Target size the next chunk will open with. */
    unsigned nextTarget() const { return nextChunkTarget; }

    /** The configured chunk-shrink floor. */
    unsigned minChunkSize() const { return bprm.minChunkSize; }

    /**
     * Watchdog rescue (graceful degradation): clamp the live chunks'
     * targets to minChunkSize so they end quickly, and reserve the
     * arbiter via pre-arbitration so the shrunken chunk commits ahead
     * of the contention that starved it. No-op if pre-arbitration is
     * already pending or the trace finished.
     */
    void rescueBoost();

    /** One-line-per-chunk state dump for watchdog diagnostics. */
    std::string chunkStateDump() const;

    std::uint64_t fingerprint() const override;

  protected:
    void advance() override;

    void syncLoad(Addr addr,
                  std::function<void(std::uint64_t)> done) override;
    void syncStore(Addr addr, std::uint64_t value,
                   std::function<void()> done) override;
    void syncRmw(Addr addr,
                 std::function<std::uint64_t(std::uint64_t)> modify,
                 std::function<void(std::uint64_t)> done) override;
    void execIo(std::function<void()> done) override;
    void chargeInstrs(unsigned n) override;

  private:
    struct WinEntry
    {
        std::size_t opIdx;
        std::uint64_t chunkSeq;
        bool completed;
    };

    /** Current (youngest, still-open) chunk; opens one if a signature
     *  pair is free. nullptr when stalled on chunk slots. */
    Chunk *currentChunk();

    Chunk *findChunk(std::uint64_t seq);

    void finishOp();

    void retireWindow();
    bool windowFull() const;

    void issueLoad(Chunk &c, const Op &op);
    void issueStore(Chunk &c, const Op &op);

    /**
     * Would storing to @p line leave no L1 way for it? True when the
     * live chunks already hold assoc-1 or more *other* speculative
     * lines in its set (Section 4.1.2's overflow condition).
     */
    bool wouldOverflowSet(LineAddr line) const;

    /** Shared load bookkeeping (R signature, forwarding log). */
    void loadToChunk(Chunk &c, LineAddr line, bool stack_ref);

    /** Shared store bookkeeping: W / Wpriv classification, Private
     *  Buffer, base-protocol writeback, presence request, overflow
     *  check. */
    void storeToChunk(Chunk &c, Addr addr, bool stack_ref, bool tracked,
                      std::uint64_t value);

    /** Speculative read: youngest chunk value, else committed. */
    std::uint64_t specRead(Addr addr) const;

    /** Where a load of @p addr gets its data right now: the youngest
     *  live chunk's store to it, else the committed writer. Mirrors
     *  the machine's forwarding structure, so it is meaningful even
     *  for value-untracked addresses. */
    WriterRef findWriterTag(Addr addr) const;

    /** Append a load of @p addr to @p c's access log (analysis /
     *  verifier instrumentation; call at value-bind time). */
    void logLoad(Chunk &c, Addr addr, std::uint64_t value,
                 bool tracked);

    bool anyLiveW(LineAddr line) const;
    bool anyLiveWExact(LineAddr line) const;
    bool anyLiveWpriv(LineAddr line) const;

    void maybeArbitrate();
    void onGranted(std::uint64_t seq, std::shared_ptr<Signature> w);
    void squashFrom(std::size_t idx, SquashCause cause);

    /**
     * One commit-permission attempt in flight: the transaction id, the
     * signatures it travels with, and the resend bookkeeping. Kept in
     * arbAttempts until a reply lands or the resends are exhausted, so
     * a late (or duplicated) reply can still clean up the arbiter's W
     * list even if the chunk is long gone.
     */
    struct ArbAttempt
    {
        std::uint64_t txn = 0;
        std::uint64_t seq = 0;
        std::shared_ptr<Signature> w;
        RProvider rp;
        unsigned attempts = 0;
        bool replied = false;
    };

    /** Transmit (or retransmit) @p att and arm the resend timer. */
    void sendArbAttempt(const std::shared_ptr<ArbAttempt> &att);

    /** Timeout for attempt number @p attempts (1-based): exponential
     *  backoff with deterministic jitter. */
    Tick resendDelay(std::uint64_t txn, unsigned attempts) const;

    /** Reply handler shared by all (re)transmissions of @p att. */
    void onArbReply(const std::shared_ptr<ArbAttempt> &att,
                    bool granted);

    /** Run @p fn with the current chunk, retrying while stalled. */
    void withChunk(std::function<void(Chunk &)> fn);

    BulkParams bprm;
    ArbiterIface &arb;

    std::deque<std::unique_ptr<Chunk>> chunks;
    std::uint64_t nextSeq = 0;
    unsigned nextChunkTarget;
    unsigned consecutiveSquashes = 0;
    Tick lastCommit = 0;

    /** Commit-permission transaction counter (ids are per-proc). */
    std::uint64_t nextArbTxn = 0;

    /** In-flight commit-permission attempts by transaction id. */
    std::unordered_map<std::uint64_t, std::shared_ptr<ArbAttempt>>
        arbAttempts;

    std::deque<WinEntry> window;
    Tick fetchAvail = 0;
    bool gapCharged = false;
    bool syncBusy = false;

    PrivateBuffer privBuf;

    unsigned committingCount = 0;

    bool preArbPending = false;
    bool preArbWaiting = false;

    /** Tick of the last squash with no chunk opened since (feeds the
     *  squash-to-restart histogram). */
    Tick lastSquashTick = kTickNever;

    /** Transaction nesting depth (Section 8 extension): while > 0
     *  the chunk is pinned open so the whole transaction commits
     *  atomically as one chunk. */
    unsigned txnDepth = 0;

    ScVerifier *verifier = nullptr;
    AnalysisEngine *analysis = nullptr;

    BulkStats bstats;
};

} // namespace bulksc

#endif // BULKSC_CORE_BULK_PROCESSOR_HH
