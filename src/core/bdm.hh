/**
 * @file
 * Per-processor Bulk Disambiguation Module state: the chunk descriptor
 * (R / W / Wpriv signature set, speculative values, execution
 * bookkeeping) and the Private Buffer of the dynamically-private data
 * optimization (Section 5.2).
 *
 * The BDM is deliberately decoupled from the cache: the tag/data arrays
 * never learn what is speculative. All speculation bookkeeping lives
 * here, and interacts with the cache only through victim filters and
 * bulk operations.
 */

#ifndef BULKSC_CORE_BDM_HH
#define BULKSC_CORE_BDM_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/sc_verifier.hh"
#include "signature/signature.hh"
#include "sim/types.hh"

namespace bulksc {

/**
 * The Private Buffer: holds the pre-update version of dirty
 * non-speculative lines whose writes were diverted to Wpriv. ~24
 * entries, not on any critical path (Section 5.2). Only membership is
 * modelled; data contents live in the simulator's value store.
 */
class PrivateBuffer
{
  public:
    explicit PrivateBuffer(unsigned capacity = 24) : cap(capacity) {}

    bool full() const { return lines.size() >= cap; }

    bool contains(LineAddr l) const { return lines.count(l) != 0; }

    /** @return false if the buffer is full (caller must fall back to
     *  writeback + W insertion). */
    bool
    insert(LineAddr l)
    {
        if (lines.count(l))
            return true;
        if (full())
            return false;
        lines.insert(l);
        if (lines.size() > highWater)
            highWater = static_cast<unsigned>(lines.size());
        return true;
    }

    void erase(LineAddr l) { lines.erase(l); }

    void clear() { lines.clear(); }

    std::size_t size() const { return lines.size(); }

    unsigned highWatermark() const { return highWater; }

    const std::unordered_set<LineAddr> &entries() const { return lines; }

  private:
    unsigned cap;
    unsigned highWater = 0;
    std::unordered_set<LineAddr> lines;
};

/**
 * One in-flight chunk: a dynamically-built group of consecutive
 * instructions executing speculatively with its own signature set and
 * checkpoint (Section 4.1).
 */
struct Chunk
{
    Chunk(std::uint64_t seq_, std::size_t start_pos, unsigned target,
          const SignatureConfig &cfg)
        : seq(seq_), startPos(start_pos), targetSize(target), r(cfg),
          w(cfg), wpriv(cfg)
    {}

    /** Monotonic chunk id (the hardware's Chunk ID bits). */
    std::uint64_t seq;

    /** Trace position of the checkpoint (rollback target). */
    std::size_t startPos;

    /** Instructions after which the chunk ends (shrinks on squash). */
    unsigned targetSize;

    /** Instructions executed so far (including spin iterations). */
    std::uint64_t execInstrs = 0;

    Signature r;     //!< read signature
    Signature w;     //!< write signature (consistency-visible)
    Signature wpriv; //!< private-write signature (Section 5)

    /**
     * Exact speculative write lines of this chunk, the model of the
     * per-line chunk-id bits the BDM keeps in the L1. Unlike the
     * signatures' optional exact mirror (stats metadata), these sets
     * are functional state: L1 way-overflow checks, squash discard,
     * and directory selection at commit read them, so they are
     * maintained in every mode. Writes only — loads stay mirror-free.
     */
    std::unordered_set<LineAddr> wLines;
    std::unordered_set<LineAddr> wprivLines;

    /** Insert into W and its exact line set. */
    void
    addW(LineAddr l)
    {
        w.insert(l);
        wLines.insert(l);
    }

    /** Insert into Wpriv and its exact line set. */
    void
    addWpriv(LineAddr l)
    {
        wpriv.insert(l);
        wprivLines.insert(l);
    }

    /** Speculative values written by this chunk (tracked addrs). */
    std::unordered_map<Addr, std::uint64_t> specValues;

    /** Program-ordered access log for the SC verifier and the
     *  analysis engine (only filled when one is attached). */
    std::vector<LoggedAccess> accessLog;

    /** This chunk's latest store to each address, as an index into
     *  accessLog — the per-chunk half of the load instrumentation's
     *  writer-tag lookup (analysis mode only). Dies with the chunk on
     *  squash, so tags never reference discarded work. */
    std::unordered_map<Addr, std::uint32_t> specWriters;

    /** Lines whose old version this chunk parked in the Private
     *  Buffer. */
    std::vector<LineAddr> privBufLines;

    /** Store lines not yet present in the L1 (commit must wait). */
    std::unordered_set<LineAddr> outstandingStoreLines;

    /** Forwarding-log entries not yet drained into R (the window of
     *  vulnerability of Section 3.2.1). */
    unsigned pendingFwd = 0;

    /** Loads issued for this chunk and not yet completed. */
    unsigned inflightLoads = 0;

    /** The chunk has reached its boundary (size/overflow/trace end). */
    bool endReached = false;

    /** Transaction nesting depth at the checkpoint (restored on
     *  squash so re-execution re-enters transactions correctly). */
    unsigned txnDepthAtStart = 0;

    /** A permission-to-commit request is outstanding. */
    bool arbitrating = false;

    /** Tick of the first commit request (arbitration-latency stat;
     *  kTickNever until the chunk first arbitrates). */
    Tick firstArbTick = kTickNever;

    bool
    readyToArbitrate() const
    {
        return endReached && !arbitrating && inflightLoads == 0 &&
               outstandingStoreLines.empty() && pendingFwd == 0;
    }
};

} // namespace bulksc

#endif // BULKSC_CORE_BDM_HH
