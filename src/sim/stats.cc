#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/types.hh"

namespace bulksc {

unsigned
Histogram::bucketOf(double v)
{
    if (v < 1.0)
        return 0;
    auto u = static_cast<std::uint64_t>(v);
    unsigned idx = floorLog2(u) + 1;
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

double
Histogram::percentile(double pct) const
{
    if (n == 0)
        return 0.0;
    double rank = pct / 100.0 * static_cast<double>(n);
    if (rank < 1.0)
        rank = 1.0;
    if (rank > static_cast<double>(n))
        rank = static_cast<double>(n);

    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        double before = static_cast<double>(cum);
        cum += buckets[i];
        if (rank > static_cast<double>(cum))
            continue;
        double b_lo = i == 0 ? lo
                             : static_cast<double>(std::uint64_t{1}
                                                   << (i - 1));
        double b_hi = i == 0 ? 1.0
                             : static_cast<double>(std::uint64_t{1} << i);
        double frac =
            (rank - before) / static_cast<double>(buckets[i]);
        double v = b_lo + frac * (b_hi - b_lo);
        return std::clamp(v, lo, hi);
    }
    return hi;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.n == 0)
        return;
    if (n == 0 || other.lo < lo)
        lo = other.lo;
    if (n == 0 || other.hi > hi)
        hi = other.hi;
    sum += other.sum;
    n += other.n;
    for (unsigned i = 0; i < kNumBuckets; ++i)
        buckets[i] += other.buckets[i];
}

void
Histogram::reset()
{
    buckets.fill(0);
    lo = hi = sum = 0.0;
    n = 0;
}

void
Histogram::dumpInto(StatGroup &sg, const std::string &prefix) const
{
    sg.set(prefix + "samples", static_cast<double>(n));
    sg.set(prefix + "mean", mean());
    sg.set(prefix + "min", min());
    sg.set(prefix + "max", max());
    sg.set(prefix + "p50", percentile(50.0));
    sg.set(prefix + "p90", percentile(90.0));
    sg.set(prefix + "p99", percentile(99.0));
}

void
StatGroup::set(const std::string &key, double value)
{
    vals[key] = value;
}

void
StatGroup::add(const std::string &key, double value)
{
    vals[key] += value;
}

double
StatGroup::get(const std::string &key, double fallback) const
{
    auto it = vals.find(key);
    return it == vals.end() ? fallback : it->second;
}

bool
StatGroup::has(const std::string &key) const
{
    return vals.count(key) != 0;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.vals)
        vals[k] = v;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[k, v] : vals)
        os << prefix << k << " " << v << "\n";
}

void
StatGroup::dumpJson(std::ostream &os, const std::string &indent) const
{
    if (vals.empty()) {
        os << "{}";
        return;
    }
    os << "{";
    bool first = true;
    for (const auto &[k, v] : vals) {
        os << (first ? "" : ",") << "\n"
           << indent << "\"" << jsonEscape(k) << "\": " << jsonNumber(v);
        first = false;
    }
    os << "\n}";
}

double
geoMean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : vals)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(vals.size()));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace bulksc
