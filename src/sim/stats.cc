#include "sim/stats.hh"

#include <cmath>

namespace bulksc {

void
StatGroup::set(const std::string &key, double value)
{
    vals[key] = value;
}

void
StatGroup::add(const std::string &key, double value)
{
    vals[key] += value;
}

double
StatGroup::get(const std::string &key, double fallback) const
{
    auto it = vals.find(key);
    return it == vals.end() ? fallback : it->second;
}

bool
StatGroup::has(const std::string &key) const
{
    return vals.count(key) != 0;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.vals)
        vals[k] = v;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[k, v] : vals)
        os << prefix << k << " " << v << "\n";
}

double
geoMean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : vals)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(vals.size()));
}

} // namespace bulksc
