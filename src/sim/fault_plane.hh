/**
 * @file
 * Deterministic, seeded fault-injection plane.
 *
 * A FaultPlane holds a set of fault points parsed from a compact spec
 * string (the --faults option):
 *
 *   net.drop=0.01,net.dup=0.005,net.delay=1:200,arb.grant_loss=0.002
 *
 * Each item is NAME[/CLASS]=VALUE[@LO:HI] where
 *
 *  - NAME selects the fault kind (see FaultKind);
 *  - /CLASS restricts the point to one traffic class (RdWr, RdSig,
 *    WrSig, Inv, Other); omitted means "any class";
 *  - VALUE is a probability in [0,1] for rate-based kinds, an integer
 *    period for arb.skip_collision=everyN, or MIN:MAX (optionally
 *    P:MIN:MAX) extra delay ticks for net.delay;
 *  - @LO:HI limits the point to a tick window (inclusive LO, exclusive
 *    HI; HI may be omitted for "until the end").
 *
 * Every decision is a pure function of (seed, kind, per-kind decision
 * counter) through the splitmix64 finalizer, so a given configuration
 * produces the same fault schedule on every run — including across
 * bulksc_batch worker counts, because each sweep point owns its plane
 * and derives its seed from the point index.
 *
 * The plane only *decides*; the protocol layers (network, arbiters,
 * directory commit service) own the mechanics of dropping, duplicating
 * or delaying their messages and of surviving the result.
 */

#ifndef BULKSC_SIM_FAULT_PLANE_HH
#define BULKSC_SIM_FAULT_PLANE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bulksc {

class StatGroup;

/** The fault kinds the plane can inject. */
enum class FaultKind : unsigned
{
    NetDrop,          //!< drop any message (rate)
    NetDup,           //!< duplicate any message (rate)
    NetDelay,         //!< add uniform extra latency (p + min:max ticks)
    ArbReqLoss,       //!< lose a commit-permission request (rate)
    ArbGrantLoss,     //!< lose an arbiter grant/deny reply (rate)
    ArbSkipCollision, //!< grant every Nth colliding request (period)
    DirNack,          //!< directory refuses a commit W delivery (rate)
    DirCommitLoss,    //!< lose a directory commit-service msg (rate)
    NumKinds
};

/** Canonical spec name of @p k ("net.drop", ...). */
const char *faultKindName(FaultKind k);

/**
 * Number of traffic classes the /CLASS scope understands. Kept in
 * lockstep with network.hh's TrafficClass (static_assert'd there);
 * fault_plane sits below the network layer and cannot include it.
 */
constexpr unsigned kFaultNumTrafficClasses = 5;

/** Scope value meaning "applies to every traffic class". */
constexpr int kFaultAnyClass = -1;

/** One configured fault point. */
struct FaultPoint
{
    FaultKind kind = FaultKind::NumKinds;
    double rate = 0.0;     //!< probability for rate-based kinds
    std::uint64_t everyN = 0; //!< period for arb.skip_collision
    Tick delayMin = 0;     //!< net.delay: minimum extra ticks
    Tick delayMax = 0;     //!< net.delay: maximum extra ticks
    int cls = kFaultAnyClass; //!< traffic-class scope (-1 = any)
    Tick tickLo = 0;          //!< active window start (inclusive)
    Tick tickHi = kTickNever; //!< active window end (exclusive)
};

/**
 * The seeded fault plane. One instance per System (and per sweep
 * point); decisions are deterministic in (seed, query order).
 */
class FaultPlane
{
  public:
    /**
     * Parse a --faults spec string into fault points.
     * @return false and set @p err on grammar or range errors.
     */
    static bool parseSpec(const std::string &spec,
                          std::vector<FaultPoint> &out,
                          std::string &err);

    /** Re-emit @p points in canonical spec form (parse round-trips). */
    static std::string canonicalSpec(
        const std::vector<FaultPoint> &points);

    /** Arm the plane with @p points and the decision seed. */
    void configure(std::vector<FaultPoint> points, std::uint64_t seed);

    /** True iff any fault point is configured. */
    bool active() const { return !points_.empty(); }

    /**
     * True iff the configured points include a kind that loses or
     * duplicates protocol messages — i.e. one that requires the
     * timeout/resend hardening to be armed for liveness.
     */
    bool requiresHardening() const;

    /** True iff a point of @p kind exists (any scope). */
    bool has(FaultKind kind) const;

    /**
     * Should a message of kind @p kind (ArbReqLoss, ArbGrantLoss,
     * DirNack, DirCommitLoss — or NetDrop for plain traffic) be lost?
     * Generic net.drop points also apply to the protocol-specific
     * kinds, scoped by @p cls.
     */
    bool dropMessage(FaultKind kind, Tick now, int cls);

    /** Should this message be duplicated (net.dup)? */
    bool duplicateMessage(Tick now, int cls);

    /** Extra delivery delay for a message sent at @p now (net.delay). */
    Tick extraDelay(Tick now, int cls);

    /**
     * Does a net.delay window apply to a message of class @p cls sent
     * at @p now? If so, @p lo / @p hi receive the first matching
     * point's delay bounds. Pure query — no counters advance; the
     * schedule explorer uses the bounds as a choice domain instead of
     * rolling extraDelay()'s seeded dice.
     */
    bool delayWindow(Tick now, int cls, Tick &lo, Tick &hi) const;

    /** arb.skip_collision: grant this colliding request anyway? */
    bool skipCollision();

    /** Decisions that came up "inject" for @p kind so far. */
    std::uint64_t injectedCount(FaultKind kind) const
    {
        return injected_[static_cast<unsigned>(kind)];
    }

    /** Dump per-kind opportunity/injection counters (if active). */
    void dumpStats(StatGroup &sg, const std::string &prefix) const;

  private:
    bool roll(const FaultPoint &pt, FaultKind counterKind);
    bool windowed(const FaultPoint &pt, Tick now, int cls) const;

    std::vector<FaultPoint> points_;
    std::uint64_t seed_ = 0;

    static constexpr unsigned kNK =
        static_cast<unsigned>(FaultKind::NumKinds);
    std::array<std::uint64_t, kNK> counters_{};
    std::array<std::uint64_t, kNK> opportunities_{};
    std::array<std::uint64_t, kNK> injected_{};
};

} // namespace bulksc

#endif // BULKSC_SIM_FAULT_PLANE_HH
