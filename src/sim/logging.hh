/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal simulator invariant was violated (a bug in the
 *            simulator itself); aborts so a debugger/core dump can be used.
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, invalid arguments); exits with status 1.
 * warn()   — something is suspect but the simulation can continue.
 * inform() — plain status output.
 */

#ifndef BULKSC_SIM_LOGGING_HH
#define BULKSC_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace bulksc {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Build a message from a stream-style expression. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    // void-cast: with an empty pack the fold is just `os`, which
    // would otherwise warn as a statement with no effect.
    static_cast<void>((os << ... << args));
    return os.str();
}

} // namespace detail

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool isQuiet();

#define panic(...)                                                        \
    ::bulksc::detail::panicImpl(__FILE__, __LINE__,                       \
                                ::bulksc::detail::format(__VA_ARGS__))

#define fatal(...)                                                        \
    ::bulksc::detail::fatalImpl(__FILE__, __LINE__,                       \
                                ::bulksc::detail::format(__VA_ARGS__))

#define warn(...)                                                         \
    ::bulksc::detail::warnImpl(::bulksc::detail::format(__VA_ARGS__))

#define inform(...)                                                       \
    ::bulksc::detail::informImpl(::bulksc::detail::format(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            panic("condition '" #cond "' hit: ", __VA_ARGS__);            \
        }                                                                 \
    } while (0)

#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            fatal("condition '" #cond "' hit: ", __VA_ARGS__);            \
        }                                                                 \
    } while (0)

} // namespace bulksc

#endif // BULKSC_SIM_LOGGING_HH
