/**
 * @file
 * Fundamental scalar types shared by every subsystem of the BulkSC
 * simulator: ticks, addresses, node identifiers, and the geometry
 * constants that the rest of the code derives from.
 */

#ifndef BULKSC_SIM_TYPES_HH
#define BULKSC_SIM_TYPES_HH

#include <cstdint>

namespace bulksc {

/** Simulated time, in processor cycles. */
using Tick = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** A cache-line address (byte address >> line-offset bits). */
using LineAddr = std::uint64_t;

/** Identifies a node (processor, directory module, arbiter) on the
 *  interconnect. */
using NodeId = std::uint32_t;

/** Identifies a processor core. */
using ProcId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kTickNever = ~Tick{0};

/** Sentinel node id. */
constexpr NodeId kNodeNone = ~NodeId{0};

/** Default line size used throughout the paper's configuration
 *  (Table 2: 32 B lines in both L1 and L2). */
constexpr unsigned kDefaultLineBytes = 32;

/**
 * Convert a byte address to a line address for a given line size.
 *
 * @param addr Byte address.
 * @param line_bytes Cache line size in bytes (power of two).
 * @return The line address.
 */
constexpr LineAddr
lineOf(Addr addr, unsigned line_bytes = kDefaultLineBytes)
{
    return addr / line_bytes;
}

/** Integer log2 for power-of-two values. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** True iff @p x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace bulksc

#endif // BULKSC_SIM_TYPES_HH
