#include "sim/event_trace.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "sim/stats.hh"

namespace bulksc {

namespace detail {
bool eventTraceOn = false;
} // namespace detail

const char *
traceEventTypeName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::ChunkStart:
        return "chunk-start";
      case TraceEventType::ChunkCommit:
        return "chunk-commit";
      case TraceEventType::ChunkSquash:
        return "chunk-squash";
      case TraceEventType::Squash:
        return "squash";
      case TraceEventType::ArbRequest:
        return "arb-request";
      case TraceEventType::ArbGrant:
        return "arb-grant";
      case TraceEventType::ArbDeny:
        return "arb-deny";
      case TraceEventType::ArbDecision:
        return "arb-decision";
      case TraceEventType::CommitBegin:
        return "commit-begin";
      case TraceEventType::CommitEnd:
        return "commit-end";
      case TraceEventType::DirBounce:
        return "dir-bounce";
      case TraceEventType::BulkInval:
        return "bulk-inval";
      case TraceEventType::ScViolation:
        return "sc-violation";
      case TraceEventType::RaceDetected:
        return "race-detected";
      case TraceEventType::FaultInject:
        return "fault-inject";
      case TraceEventType::Resend:
        return "resend";
      case TraceEventType::DirNack:
        return "dir-nack";
      case TraceEventType::WatchdogRescue:
        return "watchdog-rescue";
      case TraceEventType::WatchdogTrip:
        return "watchdog-trip";
      default:
        return "?";
    }
}

const char *
squashCauseName(SquashCause c)
{
    switch (c) {
      case SquashCause::TrueConflict:
        return "true-conflict";
      case SquashCause::FalsePositive:
        return "false-positive";
      case SquashCause::Unattributed:
        return "unattributed";
      default:
        return "none";
    }
}

TraceCat
traceEventCat(TraceEventType t)
{
    switch (t) {
      case TraceEventType::ChunkStart:
      case TraceEventType::ChunkCommit:
        return TraceCat::Chunk;
      case TraceEventType::ChunkSquash:
      case TraceEventType::Squash:
        return TraceCat::Squash;
      case TraceEventType::DirBounce:
      case TraceEventType::BulkInval:
        return TraceCat::Coherence;
      case TraceEventType::ScViolation:
      case TraceEventType::RaceDetected:
        return TraceCat::Analysis;
      case TraceEventType::FaultInject:
      case TraceEventType::Resend:
      case TraceEventType::DirNack:
        return TraceCat::Fault;
      case TraceEventType::WatchdogRescue:
      case TraceEventType::WatchdogTrip:
        return TraceCat::Watchdog;
      default:
        return TraceCat::Commit;
    }
}

std::string
trackName(std::uint16_t track)
{
    if (track < kTrackDirBase)
        return "cpu" + std::to_string(track);
    if (track < kTrackArbBase)
        return "dir" + std::to_string(track - kTrackDirBase);
    return "arbiter" + std::to_string(track - kTrackArbBase);
}

EventTrace &
EventTrace::instance()
{
    static EventTrace et;
    return et;
}

void
EventTrace::enable(std::uint32_t cat_mask, std::size_t capacity)
{
    clear();
    catMask = cat_mask;
    cap = capacity ? capacity : 1;
    ring.clear();
    ring.reserve(cap < 4096 ? cap : 4096);
    detail::eventTraceOn = true;
}

void
EventTrace::disable()
{
    detail::eventTraceOn = false;
}

void
EventTrace::clear()
{
    ring.clear();
    ring.shrink_to_fit();
    head = 0;
    total = 0;
    nDropped = 0;
    counts.fill(0);
}

void
EventTrace::record(TraceEventType type, Tick tick, std::uint16_t track,
                   std::uint64_t seq, std::uint64_t arg,
                   std::uint8_t cause)
{
    if ((catMask & static_cast<std::uint32_t>(traceEventCat(type))) == 0)
        return;
    TraceEvent ev{tick, seq, arg, track, type, cause};
    if (ring.size() < cap) {
        ring.push_back(ev);
    } else {
        ring[head] = ev;
        head = (head + 1) % cap;
        ++nDropped;
    }
    ++counts[static_cast<std::size_t>(type)];
    ++total;
}

std::uint64_t
EventTrace::count(TraceEventType type) const
{
    return counts[static_cast<std::size_t>(type)];
}

std::size_t
EventTrace::size() const
{
    return ring.size();
}

std::vector<TraceEvent>
EventTrace::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring.size());
    // `head` is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

namespace {

/** A paired start/end interval ready for export. */
struct Span
{
    std::uint16_t track;
    unsigned kind; //!< 0 = chunk, 1 = arbitration, 2 = commit
    Tick start;
    Tick end;
    std::uint64_t seq;
    std::uint64_t arg;
    std::uint8_t cause;
    const char *outcome;
};

constexpr unsigned kChunkRowBase = 0;
constexpr unsigned kArbRowBase = 100;
constexpr unsigned kCommitRowBase = 200;

unsigned
rowBase(unsigned kind)
{
    switch (kind) {
      case 0:
        return kChunkRowBase;
      case 1:
        return kArbRowBase;
      default:
        return kCommitRowBase;
    }
}

const char *
rowLabel(unsigned kind)
{
    switch (kind) {
      case 0:
        return "chunks";
      case 1:
        return "arbitration";
      default:
        return "commit";
    }
}

} // namespace

void
EventTrace::writeChromeTrace(std::ostream &os) const
{
    std::vector<TraceEvent> evs = snapshot();
    Tick last_tick = 0;
    for (const TraceEvent &ev : evs) {
        if (ev.tick > last_tick)
            last_tick = ev.tick;
    }

    // Pair start/end events into spans; keep the rest as instants.
    std::vector<Span> spans;
    std::vector<TraceEvent> instants;
    std::map<std::pair<std::uint16_t, std::uint64_t>, TraceEvent> open[3];

    auto close = [&](unsigned kind, const TraceEvent &ev,
                     const char *outcome) {
        auto key = std::make_pair(ev.track, ev.seq);
        auto it = open[kind].find(key);
        if (it == open[kind].end())
            return; // start fell out of the ring
        spans.push_back({ev.track, kind, it->second.tick, ev.tick,
                         ev.seq, ev.arg, ev.cause, outcome});
        open[kind].erase(it);
    };

    for (const TraceEvent &ev : evs) {
        switch (ev.type) {
          case TraceEventType::ChunkStart:
            open[0][{ev.track, ev.seq}] = ev;
            break;
          case TraceEventType::ChunkCommit:
            close(0, ev, "commit");
            break;
          case TraceEventType::ChunkSquash:
            close(0, ev, "squash");
            break;
          case TraceEventType::ArbRequest:
            open[1][{ev.track, ev.seq}] = ev;
            break;
          case TraceEventType::ArbGrant:
            close(1, ev, "grant");
            break;
          case TraceEventType::ArbDeny:
            close(1, ev, "deny");
            break;
          case TraceEventType::CommitBegin:
            open[2][{ev.track, ev.seq}] = ev;
            break;
          case TraceEventType::CommitEnd:
            close(2, ev, "done");
            break;
          default:
            instants.push_back(ev);
            break;
        }
    }
    // Intervals still open at export time (live chunks, in-flight
    // requests) extend to the last observed tick.
    for (unsigned kind = 0; kind < 3; ++kind) {
        for (const auto &[key, ev] : open[kind]) {
            spans.push_back({ev.track, kind, ev.tick, last_tick, ev.seq,
                             ev.arg, ev.cause, "open"});
        }
    }

    // Greedy row allocation so overlapping spans (two live chunks,
    // overlapping commits) land on separate rows of the same track.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span &a, const Span &b) {
                         return a.start < b.start;
                     });
    std::map<std::pair<std::uint16_t, unsigned>, std::vector<Tick>> rows;
    std::vector<unsigned> span_tid(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const Span &s = spans[i];
        auto &ends = rows[{s.track, s.kind}];
        unsigned row = 0;
        for (; row < ends.size(); ++row) {
            if (ends[row] <= s.start)
                break;
        }
        if (row == ends.size())
            ends.push_back(0);
        ends[row] = s.end;
        span_tid[i] = rowBase(s.kind) + row;
    }

    // Emit. pid = track + 1 (chrome dislikes pid 0).
    os << "{\n\"traceEvents\": [";
    bool first = true;
    auto emit = [&](const std::string &json) {
        os << (first ? "" : ",") << "\n" << json;
        first = false;
    };

    std::set<std::uint16_t> tracks;
    std::set<std::pair<std::uint16_t, unsigned>> tids;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        tracks.insert(spans[i].track);
        tids.insert({spans[i].track, span_tid[i]});
    }
    for (const TraceEvent &ev : instants) {
        tracks.insert(ev.track);
        tids.insert({ev.track, 0});
    }

    for (std::uint16_t t : tracks) {
        std::ostringstream m;
        m << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << t + 1
          << ",\"tid\":0,\"args\":{\"name\":\""
          << jsonEscape(trackName(t)) << "\"}}";
        emit(m.str());
    }
    for (const auto &[track, tid] : tids) {
        unsigned kind = tid >= kCommitRowBase ? 2
                        : tid >= kArbRowBase  ? 1
                                              : 0;
        std::ostringstream m;
        m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
          << track + 1 << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
          << rowLabel(kind) << "-" << tid - rowBase(kind) << "\"}}";
        emit(m.str());
    }

    for (std::size_t i = 0; i < spans.size(); ++i) {
        const Span &s = spans[i];
        const char *name = rowLabel(s.kind);
        std::ostringstream e;
        e << "{\"name\":\"" << (s.kind == 0   ? "chunk "
                                : s.kind == 1 ? "arb "
                                              : "commit ")
          << s.seq << "\",\"cat\":\"" << name << "\",\"ph\":\"X\""
          << ",\"ts\":" << s.start << ",\"dur\":" << s.end - s.start
          << ",\"pid\":" << s.track + 1 << ",\"tid\":" << span_tid[i]
          << ",\"args\":{\"seq\":" << s.seq << ",\"arg\":" << s.arg
          << ",\"outcome\":\"" << s.outcome << "\"}}";
        emit(e.str());
    }

    for (const TraceEvent &ev : instants) {
        std::ostringstream e;
        e << "{\"name\":\"" << traceEventTypeName(ev.type);
        if (ev.type == TraceEventType::Squash ||
            ev.type == TraceEventType::ChunkSquash) {
            e << " ("
              << squashCauseName(static_cast<SquashCause>(ev.cause))
              << ")";
        } else if (ev.type == TraceEventType::ArbDecision) {
            e << " (" << (ev.cause ? "grant" : "deny") << ")";
        }
        e << "\",\"cat\":\""
          << traceCatName(traceEventCat(ev.type)) << "\",\"ph\":\"i\""
          << ",\"ts\":" << ev.tick << ",\"pid\":" << ev.track + 1
          << ",\"tid\":0,\"s\":\"t\",\"args\":{\"seq\":" << ev.seq
          << ",\"arg\":" << ev.arg << "}}";
        emit(e.str());
    }

    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
          "{\"recorded\": "
       << total << ", \"dropped\": " << nDropped << "}\n}\n";
}

bool
EventTrace::exportChromeTrace(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeChromeTrace(f);
    f.flush();
    return static_cast<bool>(f);
}

} // namespace bulksc
