#include "sim/fault_plane.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/rng.hh"
#include "sim/stats.hh"

namespace bulksc {

namespace {

struct KindInfo
{
    FaultKind kind;
    const char *name;
};

constexpr KindInfo kKinds[] = {
    {FaultKind::NetDrop, "net.drop"},
    {FaultKind::NetDup, "net.dup"},
    {FaultKind::NetDelay, "net.delay"},
    {FaultKind::ArbReqLoss, "arb.req_loss"},
    {FaultKind::ArbGrantLoss, "arb.grant_loss"},
    {FaultKind::ArbSkipCollision, "arb.skip_collision"},
    {FaultKind::DirNack, "dir.nack"},
    {FaultKind::DirCommitLoss, "dir.commit_loss"},
};

/** Traffic-class scope names, index-matched to TrafficClass. */
constexpr const char *kClsNames[kFaultNumTrafficClasses] = {
    "RdWr", "RdSig", "WrSig", "Inv", "Other",
};

bool
kindFromName(const std::string &s, FaultKind &out)
{
    for (const KindInfo &k : kKinds) {
        if (s == k.name) {
            out = k.kind;
            return true;
        }
    }
    return false;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

std::string
fmtRate(double r)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", r);
    return buf;
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    for (const KindInfo &ki : kKinds) {
        if (ki.kind == k)
            return ki.name;
    }
    return "?";
}

bool
FaultPlane::parseSpec(const std::string &spec,
                      std::vector<FaultPoint> &out, std::string &err)
{
    out.clear();
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        FaultPoint pt;

        // Peel the optional tick window: NAME...=VALUE@LO:HI
        std::size_t at = item.find('@');
        if (at != std::string::npos) {
            std::string win = item.substr(at + 1);
            item = item.substr(0, at);
            std::size_t colon = win.find(':');
            if (colon == std::string::npos) {
                err = "fault window '" + win + "' needs LO:HI";
                return false;
            }
            std::uint64_t lo = 0, hi = 0;
            if (!parseU64(win.substr(0, colon), lo)) {
                err = "bad fault window start in '" + win + "'";
                return false;
            }
            std::string his = win.substr(colon + 1);
            if (his.empty()) {
                hi = kTickNever;
            } else if (!parseU64(his, hi)) {
                err = "bad fault window end in '" + win + "'";
                return false;
            }
            if (hi <= lo) {
                err = "empty fault window '" + win + "'";
                return false;
            }
            pt.tickLo = lo;
            pt.tickHi = hi;
        }

        std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            err = "fault item '" + item + "' needs NAME=VALUE";
            return false;
        }
        std::string name = item.substr(0, eq);
        std::string value = item.substr(eq + 1);

        // Optional traffic-class scope: NAME/CLASS
        std::size_t slash = name.find('/');
        if (slash != std::string::npos) {
            std::string cls = name.substr(slash + 1);
            name = name.substr(0, slash);
            pt.cls = kFaultAnyClass;
            for (unsigned c = 0; c < kFaultNumTrafficClasses; ++c) {
                if (cls == kClsNames[c]) {
                    pt.cls = static_cast<int>(c);
                    break;
                }
            }
            if (pt.cls == kFaultAnyClass) {
                err = "unknown traffic class '" + cls +
                      "' (RdWr, RdSig, WrSig, Inv, Other)";
                return false;
            }
        }

        if (!kindFromName(name, pt.kind)) {
            err = "unknown fault kind '" + name + "'";
            return false;
        }

        switch (pt.kind) {
          case FaultKind::ArbSkipCollision: {
            if (!parseU64(value, pt.everyN) || pt.everyN == 0) {
                err = "arb.skip_collision needs a period >= 1, got '" +
                      value + "'";
                return false;
            }
            if (pt.cls != kFaultAnyClass) {
                err = "arb.skip_collision takes no traffic class";
                return false;
            }
            break;
          }
          case FaultKind::NetDelay: {
            // MIN:MAX (always) or P:MIN:MAX (probabilistic).
            std::size_t c1 = value.find(':');
            if (c1 == std::string::npos) {
                err = "net.delay needs MIN:MAX or P:MIN:MAX, got '" +
                      value + "'";
                return false;
            }
            std::size_t c2 = value.find(':', c1 + 1);
            std::string ps, mins, maxs;
            if (c2 == std::string::npos) {
                ps = "1";
                mins = value.substr(0, c1);
                maxs = value.substr(c1 + 1);
            } else {
                ps = value.substr(0, c1);
                mins = value.substr(c1 + 1, c2 - c1 - 1);
                maxs = value.substr(c2 + 1);
            }
            std::uint64_t lo = 0, hi = 0;
            if (!parseDouble(ps, pt.rate) || !parseU64(mins, lo) ||
                !parseU64(maxs, hi) || hi < lo) {
                err = "bad net.delay value '" + value + "'";
                return false;
            }
            if (pt.rate < 0.0 || pt.rate > 1.0) {
                err = "net.delay probability must be in [0,1]";
                return false;
            }
            pt.delayMin = lo;
            pt.delayMax = hi;
            break;
          }
          default: {
            if (!parseDouble(value, pt.rate) || pt.rate < 0.0 ||
                pt.rate > 1.0) {
                err = "fault rate for " + name +
                      " must be in [0,1], got '" + value + "'";
                return false;
            }
            break;
          }
        }
        out.push_back(pt);
    }
    return true;
}

std::string
FaultPlane::canonicalSpec(const std::vector<FaultPoint> &points)
{
    std::string out;
    for (const FaultPoint &pt : points) {
        if (!out.empty())
            out += ',';
        out += faultKindName(pt.kind);
        if (pt.cls != kFaultAnyClass &&
            pt.cls < static_cast<int>(kFaultNumTrafficClasses)) {
            out += '/';
            out += kClsNames[pt.cls];
        }
        out += '=';
        if (pt.kind == FaultKind::ArbSkipCollision) {
            out += std::to_string(pt.everyN);
        } else if (pt.kind == FaultKind::NetDelay) {
            out += fmtRate(pt.rate);
            out += ':';
            out += std::to_string(pt.delayMin);
            out += ':';
            out += std::to_string(pt.delayMax);
        } else {
            out += fmtRate(pt.rate);
        }
        if (pt.tickLo != 0 || pt.tickHi != kTickNever) {
            out += '@';
            out += std::to_string(pt.tickLo);
            out += ':';
            if (pt.tickHi != kTickNever)
                out += std::to_string(pt.tickHi);
        }
    }
    return out;
}

void
FaultPlane::configure(std::vector<FaultPoint> points,
                      std::uint64_t seed)
{
    points_ = std::move(points);
    seed_ = seed;
    counters_.fill(0);
    opportunities_.fill(0);
    injected_.fill(0);
}

bool
FaultPlane::requiresHardening() const
{
    for (const FaultPoint &pt : points_) {
        switch (pt.kind) {
          case FaultKind::NetDrop:
          case FaultKind::NetDup:
          case FaultKind::ArbReqLoss:
          case FaultKind::ArbGrantLoss:
          case FaultKind::DirNack:
          case FaultKind::DirCommitLoss:
            return true;
          default:
            break;
        }
    }
    return false;
}

bool
FaultPlane::has(FaultKind kind) const
{
    for (const FaultPoint &pt : points_) {
        if (pt.kind == kind)
            return true;
    }
    return false;
}

bool
FaultPlane::windowed(const FaultPoint &pt, Tick now, int cls) const
{
    if (now < pt.tickLo || now >= pt.tickHi)
        return false;
    if (pt.cls != kFaultAnyClass && cls != kFaultAnyClass &&
        pt.cls != cls) {
        return false;
    }
    return true;
}

bool
FaultPlane::roll(const FaultPoint &pt, FaultKind counterKind)
{
    unsigned ki = static_cast<unsigned>(counterKind);
    std::uint64_t n = ++counters_[ki];
    std::uint64_t u = deriveSeed(
        seed_, (static_cast<std::uint64_t>(ki) << 56) ^ n);
    return u01(u) < pt.rate;
}

bool
FaultPlane::dropMessage(FaultKind kind, Tick now, int cls)
{
    bool drop = false;
    unsigned ki = static_cast<unsigned>(kind);
    ++opportunities_[ki];
    for (const FaultPoint &pt : points_) {
        // A generic net.drop point also covers the protocol-specific
        // loss kinds (everything rides the same interconnect).
        bool applies = pt.kind == kind ||
                       (pt.kind == FaultKind::NetDrop &&
                        kind != FaultKind::NetDrop);
        if (!applies || !windowed(pt, now, cls))
            continue;
        if (roll(pt, kind))
            drop = true;
    }
    if (drop)
        ++injected_[ki];
    return drop;
}

bool
FaultPlane::duplicateMessage(Tick now, int cls)
{
    unsigned ki = static_cast<unsigned>(FaultKind::NetDup);
    ++opportunities_[ki];
    bool dup = false;
    for (const FaultPoint &pt : points_) {
        if (pt.kind != FaultKind::NetDup || !windowed(pt, now, cls))
            continue;
        if (roll(pt, FaultKind::NetDup))
            dup = true;
    }
    if (dup)
        ++injected_[ki];
    return dup;
}

Tick
FaultPlane::extraDelay(Tick now, int cls)
{
    unsigned ki = static_cast<unsigned>(FaultKind::NetDelay);
    Tick extra = 0;
    for (const FaultPoint &pt : points_) {
        if (pt.kind != FaultKind::NetDelay || !windowed(pt, now, cls))
            continue;
        ++opportunities_[ki];
        std::uint64_t n = ++counters_[ki];
        std::uint64_t u = deriveSeed(
            seed_, (static_cast<std::uint64_t>(ki) << 56) ^ n);
        if (u01(u) >= pt.rate)
            continue;
        Tick span = pt.delayMax - pt.delayMin + 1;
        extra += pt.delayMin + static_cast<Tick>(mix64(u) % span);
        ++injected_[ki];
    }
    return extra;
}

bool
FaultPlane::delayWindow(Tick now, int cls, Tick &lo, Tick &hi) const
{
    for (const FaultPoint &pt : points_) {
        if (pt.kind != FaultKind::NetDelay || !windowed(pt, now, cls))
            continue;
        lo = pt.delayMin;
        hi = pt.delayMax;
        return true;
    }
    return false;
}

bool
FaultPlane::skipCollision()
{
    unsigned ki = static_cast<unsigned>(FaultKind::ArbSkipCollision);
    ++opportunities_[ki];
    for (const FaultPoint &pt : points_) {
        if (pt.kind != FaultKind::ArbSkipCollision)
            continue;
        if (++counters_[ki] >= pt.everyN) {
            counters_[ki] = 0;
            ++injected_[ki];
            return true;
        }
        return false;
    }
    return false;
}

void
FaultPlane::dumpStats(StatGroup &sg, const std::string &prefix) const
{
    if (!active())
        return;
    for (const KindInfo &ki : kKinds) {
        unsigned i = static_cast<unsigned>(ki.kind);
        if (opportunities_[i] == 0 && injected_[i] == 0)
            continue;
        sg.set(prefix + std::string(ki.name) + ".opportunities",
               opportunities_[i]);
        sg.set(prefix + std::string(ki.name) + ".injected",
               injected_[i]);
    }
}

} // namespace bulksc
