/**
 * @file
 * A move-only type-erased callable with small-buffer storage, used as
 * the event representation of the DES kernel.
 *
 * Unlike std::function, captures up to kInlineBytes are stored inline
 * in the event itself, so scheduling an event performs no heap
 * allocation; the bucket vectors of the EventQueue recycle this storage
 * run over run. Larger callables fall back to a single heap cell.
 *
 * Callables that are trivially copyable and trivially destructible
 * (most of the simulator's hot-path lambdas: a this pointer plus a few
 * scalars) leave manage_ null: moving them is a byte copy and
 * destroying them a no-op, so bucket drains touch no function pointers
 * beyond the single invoke.
 */

#ifndef BULKSC_SIM_INLINE_CALLBACK_HH
#define BULKSC_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace bulksc {

class InlineCallback
{
  public:
    /** Inline capture budget; the simulator's largest hot-path lambda
     *  (io-drain retry: this + std::function + weak_ptr + epoch) is
     *  exactly 64 bytes. */
    static constexpr std::size_t kInlineBytes = 64;

    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f) // NOLINT: implicit from any callable
    {
        using Fn = std::decay_t<F>;
        constexpr bool fits =
            sizeof(Fn) <= kInlineBytes &&
            alignof(Fn) <= alignof(std::max_align_t);
        if constexpr (fits && std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>) {
            // Trivial fast path: manage_ stays null.
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
        } else if constexpr (fits &&
                             std::is_nothrow_move_constructible_v<
                                 Fn>) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            manage_ = [](void *dst, void *src) {
                if (dst) {
                    ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                }
                static_cast<Fn *>(src)->~Fn();
            };
        } else {
            // Oversized capture: one heap cell, pointer stored inline.
            auto **slot = reinterpret_cast<Fn **>(buf);
            *slot = new Fn(std::forward<F>(f));
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            manage_ = [](void *dst, void *src) {
                if (dst) {
                    *static_cast<Fn **>(dst) =
                        *static_cast<Fn **>(src);
                } else {
                    delete *static_cast<Fn **>(src);
                }
            };
        }
    }

    InlineCallback(InlineCallback &&o) noexcept
        : invoke_(o.invoke_), manage_(o.manage_)
    {
        if (manage_)
            manage_(buf, o.buf);
        else if (invoke_)
            std::memcpy(buf, o.buf, kInlineBytes);
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
    }

    InlineCallback &
    operator=(InlineCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            invoke_ = o.invoke_;
            manage_ = o.manage_;
            if (manage_)
                manage_(buf, o.buf);
            else if (invoke_)
                std::memcpy(buf, o.buf, kInlineBytes);
            o.invoke_ = nullptr;
            o.manage_ = nullptr;
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback()
    {
        // Not reset(): nulling the pointers of a dying object is a
        // wasted store in the batch-destroy loop of the event kernel.
        if (manage_)
            manage_(nullptr, buf);
    }

    void operator()() { invoke_(buf); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

  private:
    void
    reset() noexcept
    {
        if (manage_) {
            manage_(nullptr, buf);
            manage_ = nullptr;
        }
        invoke_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf[kInlineBytes];

    /** Call the stored callable in place. */
    void (*invoke_)(void *) = nullptr;

    /** dst != nullptr: move-construct into dst, destroy src.
     *  dst == nullptr: destroy src. Null for trivially-relocatable
     *  callables (byte-copy move, no-op destroy). */
    void (*manage_)(void *dst, void *src) = nullptr;
};

} // namespace bulksc

#endif // BULKSC_SIM_INLINE_CALLBACK_HH
