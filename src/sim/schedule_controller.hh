/**
 * @file
 * Hook through which a systematic explorer steers the DES kernel.
 *
 * Normal simulation is a single schedule: same-tick events fire in
 * FIFO order and fault-plane delay windows are resolved by seeded
 * pseudo-randomness. A ScheduleController attached to the EventQueue
 * (and the Network) turns both into *choice points*:
 *
 *  - network message deliveries are tagged with a footprint
 *    (destination node plus the line address or R/W signatures the
 *    message carries) when they are scheduled; when a same-tick batch
 *    containing tagged events is about to fire, the controller may
 *    permute it;
 *  - when a fault-plane net.delay window applies to a message, the
 *    controller picks the extra delay from the window's bounds instead
 *    of rolling the seeded dice.
 *
 * Untagged events (processor wakeups, timers, internal callbacks) and
 * far-horizon events keep their deterministic FIFO order: they are
 * bookkeeping, not protocol nondeterminism, and reordering them would
 * explore schedules no real machine exhibits.
 *
 * The footprints exist so the explorer can apply partial-order
 * reduction: two deliveries commute when they target different nodes
 * or their R/W footprints are disjoint (bulk disambiguation *is* the
 * independence relation).
 */

#ifndef BULKSC_SIM_SCHEDULE_CONTROLLER_HH
#define BULKSC_SIM_SCHEDULE_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace bulksc {

class Signature;

/**
 * What a tagged event will do when it fires — the independence
 * oracle's input. A delivery with no line and no signatures has an
 * unknown footprint and is treated as dependent on everything.
 */
struct EventFootprint
{
    NodeId src = kNodeNone;
    NodeId dst = kNodeNone;
    int cls = -1; //!< TrafficClass as int (-1 = unknown)

    bool hasLine = false;
    LineAddr line = 0; //!< single-line footprint (valid iff hasLine)

    /** Signature footprints (commit W deliveries, RSig transfers). */
    std::shared_ptr<const Signature> rsig;
    std::shared_ptr<const Signature> wsig;
};

/**
 * The explorer's interface to the kernel. One controller instance
 * drives exactly one EventQueue for exactly one run.
 */
class ScheduleController
{
  public:
    /** Tag value of events that are not schedulable choices. */
    static constexpr std::uint32_t kNoTag = ~std::uint32_t{0};

    virtual ~ScheduleController() = default;

    /**
     * Register a tagged event about to be scheduled; the returned tag
     * is carried by the kernel and handed back through orderBatch().
     */
    virtual std::uint32_t registerEvent(const EventFootprint &fp) = 0;

    /**
     * A same-tick batch is about to fire at @p now. @p tags holds one
     * entry per event in scheduling (FIFO) order, kNoTag for untagged
     * events. Fill @p order with a permutation of [0, tags.size()) to
     * reorder the batch, or leave it empty for FIFO.
     */
    virtual void orderBatch(Tick now,
                            const std::vector<std::uint32_t> &tags,
                            std::vector<std::uint32_t> &order) = 0;

    /**
     * Pick the extra delivery delay for a message subject to an active
     * net.delay window (@p lo .. @p hi inclusive, from the fault
     * plane's FaultPoint bounds).
     */
    virtual Tick chooseDelay(Tick now, int cls, Tick lo, Tick hi) = 0;
};

} // namespace bulksc

#endif // BULKSC_SIM_SCHEDULE_CONTROLLER_HH
