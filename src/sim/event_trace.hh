/**
 * @file
 * Structured chunk-lifecycle event tracing.
 *
 * Where TRACE_LOG emits free-form text for humans, the EventTrace sink
 * records *typed* events (chunk start/commit/squash, arbitration
 * request/grant/deny, commit begin/end, directory bounces, bulk
 * invalidations) into a fixed-capacity ring buffer with tick
 * timestamps. The recorded stream can be exported as Chrome
 * `trace_event` JSON — one track per processor plus arbiter and
 * directory tracks — and opened directly in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * Recording is globally gated: when disabled (the default), every
 * instrumentation site costs a single predicted branch, the same guard
 * style as TRACE_LOG. When enabled, events are additionally filtered
 * by the TraceCat category mask, so `--trace-cats squash,commit`
 * records only those event families.
 *
 * Per-type totals are counted independently of the ring (the ring
 * keeps the most recent `capacity` events; the counters never drop),
 * which lets tests cross-check event counts against the statistics
 * counters.
 */

#ifndef BULKSC_SIM_EVENT_TRACE_HH
#define BULKSC_SIM_EVENT_TRACE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace_log.hh"
#include "sim/types.hh"

namespace bulksc {

/** Typed chunk-lifecycle events. */
enum class TraceEventType : std::uint8_t
{
    ChunkStart,  //!< chunk opened (proc track; arg = target size)
    ChunkCommit, //!< chunk left the pipeline by commit (arg = instrs)
    ChunkSquash, //!< chunk discarded by a squash (arg = instrs)
    Squash,      //!< one squash occurrence (arg = chunks squashed)
    ArbRequest,  //!< commit request sent (proc track)
    ArbGrant,    //!< grant received at the processor
    ArbDeny,     //!< denial received at the processor
    ArbDecision, //!< decision made at the arbiter (cause 1 = grant)
    CommitBegin, //!< W handed to the memory system (proc track)
    CommitEnd,   //!< all directory acks collected (proc track)
    DirBounce,   //!< read bounced off a committing W (dir track)
    BulkInval,   //!< W delivered to a cache for bulk invalidation
    ScViolation, //!< axiomatic checker found a cycle (arg = address)
    RaceDetected, //!< happens-before race (arg = address; cause =
                  //!< 1 for a racing write)
    FaultInject,  //!< fault plane fired (arg = FaultKind index)
    Resend,       //!< protocol retransmission (arg = attempt number)
    DirNack,      //!< directory refused a commit W delivery
    WatchdogRescue, //!< watchdog forced a starved proc's chunk small
    WatchdogTrip, //!< watchdog verdict reached (arg = verdict code)
    NumTypes,
};

/** Why a squash happened, from the exact address sets. */
enum class SquashCause : std::uint8_t
{
    None = 0,
    TrueConflict,  //!< the exact R/W sets really intersect W
    FalsePositive, //!< only the Bloom encodings intersect (aliasing)
    Unattributed,  //!< exact mirrors off — cause unknown
};

/** Short printable name of an event type. */
const char *traceEventTypeName(TraceEventType t);

/** Short printable name of a squash cause. */
const char *squashCauseName(SquashCause c);

/** The TraceCat family an event type belongs to (for mask filtering). */
TraceCat traceEventCat(TraceEventType t);

/** One recorded event (32 bytes; the ring is a flat array of these). */
struct TraceEvent
{
    Tick tick;
    std::uint64_t seq; //!< chunk sequence number, or 0
    std::uint64_t arg; //!< type-specific payload
    std::uint16_t track;
    TraceEventType type;
    std::uint8_t cause; //!< SquashCause, or grant/deny flag
};

// --- track identifiers ---------------------------------------------------
// Tracks are small integers: processors from 0, directory modules from
// kTrackDirBase, arbiter modules from kTrackArbBase.

constexpr std::uint16_t kTrackDirBase = 0x100;
constexpr std::uint16_t kTrackArbBase = 0x200;

constexpr std::uint16_t
trackProc(ProcId p)
{
    return static_cast<std::uint16_t>(p);
}

constexpr std::uint16_t
trackDir(unsigned d)
{
    return static_cast<std::uint16_t>(kTrackDirBase + d);
}

constexpr std::uint16_t
trackArb(unsigned a)
{
    return static_cast<std::uint16_t>(kTrackArbBase + a);
}

/** Human-readable track name ("cpu3", "dir0", "arbiter0"). */
std::string trackName(std::uint16_t track);

/**
 * The process-global event sink. Enable it before building a System;
 * every instrumented component records through the singleton.
 */
class EventTrace
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

    static EventTrace &instance();

    /**
     * Start recording events whose family is in @p cat_mask, keeping
     * the most recent @p capacity events. Clears previous contents.
     */
    void enable(std::uint32_t cat_mask,
                std::size_t capacity = kDefaultCapacity);

    /** Stop recording (contents stay available for export). */
    void disable();

    /** Drop all recorded events and counters. */
    void clear();

    /** Record one event (called through the EVENT_TRACE macro). */
    void record(TraceEventType type, Tick tick, std::uint16_t track,
                std::uint64_t seq = 0, std::uint64_t arg = 0,
                std::uint8_t cause = 0);

    /** Total events recorded of @p type (not reduced by ring drops). */
    std::uint64_t count(TraceEventType type) const;

    /** Total events recorded across all types. */
    std::uint64_t recorded() const { return total; }

    /** Events pushed out of the ring by newer ones. */
    std::uint64_t dropped() const { return nDropped; }

    /** Events currently held in the ring. */
    std::size_t size() const;

    /** Ring contents in chronological (record) order. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Export the ring as Chrome trace_event JSON. Chunk, arbitration,
     * and commit start/end pairs become complete ("X") spans; squashes,
     * arbiter decisions, bounces, and bulk invalidations become instant
     * ("i") events. One tick maps to one microsecond of trace time.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace() to @p path. @return false on I/O error. */
    bool exportChromeTrace(const std::string &path) const;

  private:
    EventTrace() = default;

    std::uint32_t catMask = 0;
    std::vector<TraceEvent> ring;
    std::size_t cap = 0;
    std::size_t head = 0; //!< next slot to write
    std::uint64_t total = 0;
    std::uint64_t nDropped = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(TraceEventType::NumTypes)>
        counts{};
};

namespace detail {
/** Fast global gate, mirrored by EventTrace::enable()/disable(). */
extern bool eventTraceOn;
} // namespace detail

/** True iff the event sink is recording. */
inline bool
eventTraceEnabled()
{
    return detail::eventTraceOn;
}

/**
 * Record an event if tracing is enabled: a single predicted branch
 * when disabled. Usage:
 *   EVENT_TRACE(TraceEventType::ChunkStart, curTick(), trackProc(pid),
 *               seq, target);
 */
#define EVENT_TRACE(type, tick, track, ...)                             \
    do {                                                                \
        if (::bulksc::eventTraceEnabled()) {                            \
            ::bulksc::EventTrace::instance().record(                    \
                type, tick, track __VA_OPT__(, ) __VA_ARGS__);          \
        }                                                               \
    } while (0)

} // namespace bulksc

#endif // BULKSC_SIM_EVENT_TRACE_HH
