/**
 * @file
 * A small statistics framework in the spirit of the gem5 stats package.
 *
 * Stats are plain accumulators registered with a StatGroup so they can be
 * enumerated and dumped as a table. Scalar counts, averages (mean over
 * samples), and simple distributions are supported; formula-style derived
 * values are computed at dump time by the owner.
 */

#ifndef BULKSC_SIM_STATS_HH
#define BULKSC_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace bulksc {

/** A monotonically increasing counter. */
class Counter
{
  public:
    Counter &
    operator+=(std::uint64_t n)
    {
        val += n;
        return *this;
    }

    Counter &
    operator++()
    {
        ++val;
        return *this;
    }

    std::uint64_t value() const { return val; }

    void reset() { val = 0; }

  private:
    std::uint64_t val = 0;
};

/** Mean over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    std::uint64_t samples() const { return n; }

    double total() const { return sum; }

    void
    reset()
    {
        sum = 0.0;
        n = 0;
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
};

/** Min/max/mean distribution over a stream of samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (n == 0 || v < lo)
            lo = v;
        if (n == 0 || v > hi)
            hi = v;
        sum += v;
        ++n;
    }

    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t samples() const { return n; }

    void
    reset()
    {
        lo = hi = sum = 0.0;
        n = 0;
    }

  private:
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    std::uint64_t n = 0;
};

class StatGroup;

/**
 * Log2-bucketed histogram over a stream of samples.
 *
 * Bucket 0 holds samples below 1 (including negatives and zero);
 * bucket i >= 1 holds samples in [2^(i-1), 2^i). Alongside the bucket
 * counts the exact min/max/sum are kept, so mean is exact and
 * percentiles are bucket-interpolated but clamped to the observed
 * range. Designed for latency/size distributions where a factor-of-two
 * resolution is plenty and memory must stay constant.
 */
class Histogram
{
  public:
    static constexpr unsigned kNumBuckets = 64;

    void
    sample(double v)
    {
        if (n == 0 || v < lo)
            lo = v;
        if (n == 0 || v > hi)
            hi = v;
        sum += v;
        ++n;
        ++buckets[bucketOf(v)];
    }

    std::uint64_t samples() const { return n; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double total() const { return sum; }

    /**
     * Percentile estimate for @p pct in [0, 100]: linear interpolation
     * inside the covering log2 bucket, clamped to [min(), max()].
     */
    double percentile(double pct) const;

    /** Accumulate @p other into this histogram. */
    void merge(const Histogram &other);

    void reset();

    /** Write samples/mean/min/max/p50/p90/p99 under @p prefix. */
    void dumpInto(StatGroup &sg, const std::string &prefix) const;

    const std::array<std::uint64_t, kNumBuckets> &bucketCounts() const
    {
        return buckets;
    }

  private:
    static unsigned bucketOf(double v);

    std::array<std::uint64_t, kNumBuckets> buckets{};
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    std::uint64_t n = 0;
};

/**
 * A flat named collection of scalar statistics. Components expose their
 * stats by writing name/value pairs into a StatGroup at dump time; the
 * System merges groups into a final report.
 */
class StatGroup
{
  public:
    void set(const std::string &key, double value);

    /** Add @p value to the entry (creating it at zero if absent). */
    void add(const std::string &key, double value);

    /** @return the value for @p key, or @p fallback if absent. */
    double get(const std::string &key, double fallback = 0.0) const;

    bool has(const std::string &key) const;

    /** Merge all entries of @p other into this group (overwrites). */
    void merge(const StatGroup &other);

    const std::map<std::string, double> &entries() const { return vals; }

    /** Print "key value" lines, sorted by key. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Print the group as a complete JSON object. Keys are escaped, and
     * non-finite values (which JSON cannot represent) become null.
     */
    void dumpJson(std::ostream &os, const std::string &indent = "  ") const;

  private:
    std::map<std::string, double> vals;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geoMean(const std::vector<double> &vals);

/** Escape @p s for use inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Render @p v as a JSON number ("null" for NaN/infinity). */
std::string jsonNumber(double v);

} // namespace bulksc

#endif // BULKSC_SIM_STATS_HH
