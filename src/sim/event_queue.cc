#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "sim/schedule_controller.hh"

namespace bulksc {

static_assert(EventQueue::kUntagged == ScheduleController::kNoTag,
              "kernel and controller no-tag sentinels out of sync");

void
EventQueue::setController(ScheduleController *c)
{
    panic_if(c && !empty(),
             "attach the schedule controller before scheduling events");
    ctrl = c;
    stagedTag = kUntagged;
    for (auto &tags : wheelTags)
        tags.clear();
    curTags.clear();
}

void
EventQueue::applyControl(std::size_t idx)
{
    curTags.clear();
    curTags.swap(wheelTags[idx]);
    // Events scheduled before the controller attached have no mirror
    // entry; pad them as untagged so the vectors stay parallel.
    curTags.resize(cur.size(), kUntagged);

    ctrlOrder.clear();
    ctrl->orderBatch(_now, curTags, ctrlOrder);
    if (ctrlOrder.empty())
        return; // FIFO
    panic_if(ctrlOrder.size() != cur.size(),
             "controller returned a non-permutation: ",
             ctrlOrder.size(), " of ", cur.size());

    ctrlScratch.clear();
    ctrlTagScratch.clear();
    for (std::uint32_t i : ctrlOrder) {
        ctrlScratch.emplace_back(std::move(cur[i]));
        ctrlTagScratch.push_back(curTags[i]);
    }
    cur.swap(ctrlScratch);
    curTags.swap(ctrlTagScratch);
    ctrlScratch.clear(); // destroy the moved-from shells
}

std::vector<EventQueue::Callback> &
EventQueue::farBatch(Tick when)
{
    if (when < farNext)
        farNext = when;
    // Descending by tick: lower_bound finds the first entry at or
    // below `when`. The list holds a handful of long waits at most.
    auto it = std::lower_bound(
        far.begin(), far.end(), when,
        [](const auto &e, Tick w) { return e.first > w; });
    if (it == far.end() || it->first != when)
        it = far.emplace(it, when, std::move(spare));
    return it->second;
}

Tick
EventQueue::nextWheelTick() const
{
    // The slot for now() is split: bits at or above its position are
    // at distance countr_zero; bits below it wrapped a full lap. The
    // summary word covers every other slot word in one scan, with the
    // starting word's wrapped low bits reappearing as distance
    // kHorizon (i == kWords).
    const std::size_t start = static_cast<std::size_t>(_now) & kMask;
    const std::size_t word = start / 64;
    const std::size_t off = start % 64;
    std::uint64_t bits = occupied[word] >> off;
    if (bits)
        return _now + std::countr_zero(bits);
    // Rotate the summary so bit 0 is the word after the current one
    // (kWords-bit rotate; both shifts are < 64).
    const std::size_t r = word + 1;
    std::uint64_t rot = ((std::uint64_t{summary} >> r) |
                         (std::uint64_t{summary} << (kWords - r))) &
                        ((std::uint64_t{1} << kWords) - 1);
    if (!rot)
        return kTickNever;
    std::size_t i = std::countr_zero(rot) + std::size_t{1};
    std::size_t w = (word + i) % kWords;
    return _now + i * 64 - off + std::countr_zero(occupied[w]);
}

std::size_t
EventQueue::size() const
{
    std::size_t n = cur.size() - curHead;
    for (const auto &b : wheel)
        n += b.size();
    for (const auto &[t, evs] : far)
        n += evs.size();
    return n;
}

Tick
EventQueue::nextEventTick() const
{
    if (curHead < cur.size())
        return _now;
    Tick tw = nextWheelTick();
    return tw < farNext ? tw : farNext;
}

void
EventQueue::pullFar()
{
    spare = std::move(cur);
    cur = std::move(far.back().second);
    far.pop_back();
    farNext = far.empty() ? kTickNever : far.back().first;
}

bool
EventQueue::step()
{
    if (curHead >= cur.size()) {
        cur.clear();
        curHead = 0;
        if (!pullBatch(kTickNever))
            return false;
    }

    ++fired;
    cur[curHead]();
    ++curHead;
    if (curHead >= cur.size()) {
        cur.clear();
        curHead = 0;
    }
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    stopRequested = false;
    for (;;) {
        if (stopRequested)
            break;
        if (curHead < cur.size()) {
            // An in-progress batch's tick is _now; normally <= limit,
            // or it would not have been pulled — but a caller may
            // pass a limit below now() after stepping.
            if (_now > limit)
                break;
            // Invoke in place: no per-event move or destroy.
            // Callbacks never touch cur (reschedules go to buckets or
            // far), so the batch extent is loop-invariant;
            // non-trivial callbacks are destroyed wholesale by the
            // clear() when the batch is exhausted.
            Callback *const evs = cur.data();
            const std::size_t n = cur.size();
            fired += n - curHead;
            for (std::size_t i = curHead; i < n; ++i)
                evs[i]();
            curHead = n;
            continue;
        }
        cur.clear();
        curHead = 0;
        if (!pullBatch(limit))
            break;
    }
    return _now;
}

} // namespace bulksc
