#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace bulksc {

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < _now, "scheduling event in the past: ", when,
             " < ", _now);
    events.push(Event{when, nextSeq++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately afterwards.
    Event ev = std::move(const_cast<Event &>(events.top()));
    events.pop();
    _now = ev.when;
    ++fired;
    ev.cb();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!events.empty() && events.top().when <= limit)
        step();
    return _now;
}

} // namespace bulksc
