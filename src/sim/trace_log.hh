/**
 * @file
 * Category-based debug tracing in the spirit of gem5's DPRINTF.
 *
 * Categories are enabled through the BULKSC_TRACE environment
 * variable (comma-separated, e.g. BULKSC_TRACE=chunk,commit,squash or
 * BULKSC_TRACE=all) or programmatically via setTraceCategories().
 * Each line is prefixed with the current tick and the category.
 *
 * Tracing compiles in but costs a single predicted branch when
 * disabled.
 */

#ifndef BULKSC_SIM_TRACE_LOG_HH
#define BULKSC_SIM_TRACE_LOG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace bulksc {

/** Trace categories (bitmask). */
enum class TraceCat : std::uint32_t
{
    Chunk = 1u << 0,   //!< chunk start/end
    Commit = 1u << 1,  //!< arbitration and commit flow
    Squash = 1u << 2,  //!< squashes and rollbacks
    Coherence = 1u << 3, //!< directory / invalidation actions
    Sync = 1u << 4,    //!< locks and barriers
    Mem = 1u << 5,     //!< cache fills and writebacks
    Analysis = 1u << 6, //!< SC violations and data races found
    Fault = 1u << 7,   //!< fault injections and resends
    Watchdog = 1u << 8, //!< forward-progress watchdog actions
};

/** @return the bitmask of enabled categories. */
std::uint32_t traceCategories();

/** Enable exactly the given categories (bitmask). */
void setTraceCategories(std::uint32_t mask);

/**
 * Parse a comma-separated category list ("chunk,squash" or "all").
 * Matching is case-insensitive; the first unknown name encountered in
 * the process triggers a one-time warning on stderr.
 */
std::uint32_t parseTraceCategories(const std::string &spec);

/** True iff @p cat is enabled. */
inline bool
traceEnabled(TraceCat cat)
{
    return (traceCategories() & static_cast<std::uint32_t>(cat)) != 0;
}

namespace detail {
void traceLine(TraceCat cat, Tick tick, const std::string &msg);

/** Re-arm the unknown-category warning (testing hook). */
void resetUnknownTraceCatWarning();
} // namespace detail

/** Short printable name of a category. */
const char *traceCatName(TraceCat cat);

#define TRACE_LOG(cat, tick, ...)                                      \
    do {                                                               \
        if (traceEnabled(cat)) {                                       \
            ::bulksc::detail::traceLine(                               \
                cat, tick, ::bulksc::detail::format(__VA_ARGS__));     \
        }                                                              \
    } while (0)

} // namespace bulksc

#include "sim/logging.hh" // for detail::format

#endif // BULKSC_SIM_TRACE_LOG_HH
