/**
 * @file
 * Deterministic random number generation: the one home of the
 * simulator's splitmix64 machinery.
 *
 * Uses splitmix64 both as a stream generator and as a stateless
 * counter-based hash, so traces can be regenerated from (seed, proc,
 * index) without storing generator state. The free helpers below are
 * shared by every subsystem that needs counter-based decisions (fault
 * plane, resend backoff jitter, sweep-point seed derivation) so the
 * mapping from bits to decisions exists exactly once.
 */

#ifndef BULKSC_SIM_RNG_HH
#define BULKSC_SIM_RNG_HH

#include <cstdint>

namespace bulksc {

/** One round of the splitmix64 finalizer (a strong 64-bit mixer). */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Map a 64-bit hash/stream output to a uniform double in [0, 1). */
constexpr double
u01(std::uint64_t u)
{
    return static_cast<double>(u >> 11) * 0x1.0p-53;
}

/**
 * Derive an independent seed from a base seed and a stream key (the
 * per-point derivation of the sweep runner and the per-decision hash
 * of the fault plane share this shape).
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t key)
{
    return mix64(seed ^ mix64(key));
}

/**
 * Deterministic +/-25% jitter around an exponential-backoff delay:
 * returns a value in [base - base/4, base + base/4) keyed by @p key,
 * so retransmission storms from several nodes decohere without
 * perturbing reproducibility. @p base below 2 is returned unchanged.
 */
constexpr std::uint64_t
jitteredBackoff(std::uint64_t base, std::uint64_t key)
{
    std::uint64_t span = base / 2;
    if (span == 0)
        return base;
    return base - span / 2 + mix64(key) % span;
}

/**
 * A small, fast, deterministic PRNG (splitmix64 stream).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : state(seed) {}

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        // mix64 adds the splitmix64 gamma before finalizing, so
        // hashing the pre-increment state IS the stream step.
        std::uint64_t z = mix64(state);
        state += 0x9e3779b97f4a7c15ULL;
        return z;
    }

    /** @return a uniform value in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return u01(next());
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Sample from an approximately Zipf-like distribution over
     * [0, n): small indices are much more likely, giving the temporal
     * locality real working sets exhibit.
     *
     * @param n Universe size.
     * @param skew Locality knob in [0, 1); higher is more skewed.
     */
    std::uint64_t
    zipfish(std::uint64_t n, double skew)
    {
        if (n <= 1)
            return 0;
        double u = uniform();
        // Power-law warp of the uniform sample.
        double exponent = 1.0 + 4.0 * skew;
        double w = 1.0;
        for (int i = 0; i < static_cast<int>(exponent); ++i)
            w *= u;
        double frac = exponent - static_cast<int>(exponent);
        if (frac > 0)
            w *= (1.0 - frac) + frac * u;
        auto idx = static_cast<std::uint64_t>(
            w * static_cast<double>(n));
        return idx >= n ? n - 1 : idx;
    }

  private:
    std::uint64_t state;
};

} // namespace bulksc

#endif // BULKSC_SIM_RNG_HH
