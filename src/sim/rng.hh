/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Uses splitmix64 both as a stream generator and as a stateless
 * counter-based hash, so traces can be regenerated from (seed, proc,
 * index) without storing generator state.
 */

#ifndef BULKSC_SIM_RNG_HH
#define BULKSC_SIM_RNG_HH

#include <cstdint>

namespace bulksc {

/** One round of the splitmix64 finalizer (a strong 64-bit mixer). */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * A small, fast, deterministic PRNG (splitmix64 stream).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : state(seed) {}

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** @return a uniform value in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Sample from an approximately Zipf-like distribution over
     * [0, n): small indices are much more likely, giving the temporal
     * locality real working sets exhibit.
     *
     * @param n Universe size.
     * @param skew Locality knob in [0, 1); higher is more skewed.
     */
    std::uint64_t
    zipfish(std::uint64_t n, double skew)
    {
        if (n <= 1)
            return 0;
        double u = uniform();
        // Power-law warp of the uniform sample.
        double exponent = 1.0 + 4.0 * skew;
        double w = 1.0;
        for (int i = 0; i < static_cast<int>(exponent); ++i)
            w *= u;
        double frac = exponent - static_cast<int>(exponent);
        if (frac > 0)
            w *= (1.0 - frac) + frac * u;
        auto idx = static_cast<std::uint64_t>(
            w * static_cast<double>(n));
        return idx >= n ? n - 1 : idx;
    }

  private:
    std::uint64_t state;
};

} // namespace bulksc

#endif // BULKSC_SIM_RNG_HH
