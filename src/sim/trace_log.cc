#include "sim/trace_log.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bulksc {

namespace {

std::uint32_t
initialMask()
{
    const char *env = std::getenv("BULKSC_TRACE");
    return env ? parseTraceCategories(env) : 0;
}

std::uint32_t &
mask()
{
    static std::uint32_t m = initialMask();
    return m;
}

} // namespace

std::uint32_t
traceCategories()
{
    return mask();
}

void
setTraceCategories(std::uint32_t m)
{
    mask() = m;
}

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Chunk:
        return "chunk";
      case TraceCat::Commit:
        return "commit";
      case TraceCat::Squash:
        return "squash";
      case TraceCat::Coherence:
        return "coherence";
      case TraceCat::Sync:
        return "sync";
      case TraceCat::Mem:
        return "mem";
      case TraceCat::Analysis:
        return "analysis";
      case TraceCat::Fault:
        return "fault";
      case TraceCat::Watchdog:
        return "watchdog";
      default:
        return "?";
    }
}

namespace detail {

namespace {
bool unknownCatWarned = false;
} // namespace

void
resetUnknownTraceCatWarning()
{
    unknownCatWarned = false;
}

} // namespace detail

std::uint32_t
parseTraceCategories(const std::string &spec)
{
    std::uint32_t m = 0;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        for (char &ch : name)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        if (name.empty())
            continue;
        if (name == "all") {
            m = ~std::uint32_t{0};
            continue;
        }
        bool matched = false;
        for (TraceCat c : {TraceCat::Chunk, TraceCat::Commit,
                           TraceCat::Squash, TraceCat::Coherence,
                           TraceCat::Sync, TraceCat::Mem,
                           TraceCat::Analysis, TraceCat::Fault,
                           TraceCat::Watchdog}) {
            if (name == traceCatName(c)) {
                m |= static_cast<std::uint32_t>(c);
                matched = true;
            }
        }
        if (!matched && !detail::unknownCatWarned) {
            detail::unknownCatWarned = true;
            std::fprintf(stderr,
                         "warning: unknown trace category '%s' "
                         "(known: chunk,commit,squash,coherence,sync,"
                         "mem,analysis,fault,watchdog,all)\n",
                         name.c_str());
        }
    }
    return m;
}

namespace detail {

void
traceLine(TraceCat cat, Tick tick, const std::string &msg)
{
    std::fprintf(stderr, "%10llu: [%s] %s\n",
                 static_cast<unsigned long long>(tick),
                 traceCatName(cat), msg.c_str());
}

} // namespace detail
} // namespace bulksc
