/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. Events are
 * callbacks scheduled at an absolute tick; events scheduled for the same
 * tick fire in FIFO order of scheduling, which makes every simulation run
 * bit-for-bit reproducible.
 *
 * The kernel is a timing wheel: events within kHorizon ticks of now()
 * land in per-tick bucket vectors addressed by `when mod kHorizon`, and
 * a bitmap over the buckets finds the next occupied tick with a couple
 * of word scans. A due bucket is swapped whole into a scratch batch and
 * its callbacks invoked in place — no per-event move — while same-tick
 * reschedules accumulate in the (emptied) bucket for the next pass.
 * The swap also ping-pongs vector capacity between the scratch batch
 * and the buckets, and the InlineCallback event representation stores
 * captures in place, so steady-state scheduling performs no heap
 * allocation at all. The rare event beyond the horizon (idle-phase
 * timeouts, run limits) waits in a tick-keyed overflow map whose
 * batches drain through the same scratch buffer.
 */

#ifndef BULKSC_SIM_EVENT_QUEUE_HH
#define BULKSC_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bulksc {

class ScheduleController;

/**
 * The central event queue. All timed behaviour in the simulator is
 * expressed as callbacks scheduled on an instance of this class.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Tag of events that are not schedulable choices (must equal
     *  ScheduleController::kNoTag; static_assert'd in the .cc). */
    static constexpr std::uint32_t kUntagged = ~std::uint32_t{0};

    /** Wheel span in ticks (power of two). Covers every latency the
     *  machine model schedules on its hot path (memory round trip 300,
     *  capped spin backoff 200) while keeping the bucket headers small
     *  enough to stay L1-resident; longer waits take the far path. */
    static constexpr std::size_t kHorizon = 512;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * The event is emplace-constructed directly in its bucket — no
     * intermediate Callback object, no move.
     *
     * @param when Absolute tick; must be >= now().
     * @param f Callable to invoke.
     */
    template <typename F>
    void
    schedule(Tick when, F &&f)
    {
        panic_if(when < _now, "scheduling event in the past: ", when,
                 " < ", _now);
        if (when - _now < kHorizon) {
            std::size_t idx = static_cast<std::size_t>(when) & kMask;
            wheel[idx].emplace_back(std::forward<F>(f));
            markBucket(idx);
            if (ctrl) [[unlikely]] {
                wheelTags[idx].push_back(stagedTag);
                stagedTag = kUntagged;
            }
        } else {
            farBatch(when).emplace_back(std::forward<F>(f));
            // Far events are never reorderable choices.
            stagedTag = kUntagged;
        }
    }

    /**
     * Schedule a callback @p delta ticks in the future.
     */
    template <typename F>
    void
    scheduleAfter(Tick delta, F &&f)
    {
        schedule(_now + delta, std::forward<F>(f));
    }

    /**
     * Schedule a callback carrying a controller tag: if a controller
     * is attached and the event lands on the wheel, its batch becomes
     * a choice point the controller may permute. Without a controller
     * this is exactly schedule().
     */
    template <typename F>
    void
    scheduleTagged(Tick when, std::uint32_t tag, F &&f)
    {
        stagedTag = tag;
        schedule(when, std::forward<F>(f));
    }

    /**
     * Attach (or detach, with nullptr) a schedule controller. Must be
     * called while the queue is empty — tag bookkeeping only mirrors
     * events scheduled afterwards.
     */
    void setController(ScheduleController *c);

    /** The attached controller, or nullptr. */
    ScheduleController *controller() const { return ctrl; }

    /** @return true if no events remain. */
    bool
    empty() const
    {
        return summary == 0 && far.empty() && curHead >= cur.size();
    }

    /** @return the number of pending events (walks the wheel — meant
     *  for tests and teardown checks, not the simulation hot path). */
    std::size_t size() const;

    /** @return the tick of the earliest pending event (kTickNever if
     *  the queue is empty). */
    Tick nextEventTick() const;

    /**
     * Run until the queue drains or @p limit ticks is reached.
     *
     * @param limit Stop (without firing) events past this tick.
     * @return the tick of the last event fired (or now() if none fired).
     */
    Tick run(Tick limit = kTickNever);

    /**
     * Request that run() return at the next batch boundary.
     *
     * Callable from inside a firing event (the watchdog uses this to
     * halt a wedged simulation); the current batch finishes so
     * same-tick FIFO order is preserved, then run() returns. The flag
     * is cleared at the next run() entry.
     */
    void stop() { stopRequested = true; }

    /** @return true if stop() was called during the last run(). */
    bool stopped() const { return stopRequested; }

    /**
     * Fire a single event.
     *
     * @return true if an event was fired, false if the queue was empty.
     */
    bool step();

    /** Total number of events processed so far. */
    std::uint64_t eventsFired() const { return fired; }

  private:
    static constexpr std::size_t kMask = kHorizon - 1;
    static constexpr std::size_t kWords = kHorizon / 64;

    /** Earliest occupied wheel tick, or kTickNever. All wheel events
     *  satisfy when in [_now, _now + kHorizon), so the bucket index
     *  uniquely identifies the tick. */
    Tick nextWheelTick() const;

    /** Pull the next due batch (far batches at a tick precede wheel
     *  events at the same tick: they were necessarily scheduled at an
     *  earlier now()) into cur and advance _now. @return false if the
     *  earliest batch is past @p limit (nothing pulled). Defined here
     *  so the per-batch hot path inlines into run()/step(). */
    bool
    pullBatch(Tick limit)
    {
        Tick tw = nextWheelTick();
        Tick t = tw < farNext ? tw : farNext;
        if (t == kTickNever || t > limit)
            return false;
        _now = t;
        if (farNext <= tw) [[unlikely]] {
            pullFar();
            if (ctrl) [[unlikely]]
                curTags.assign(cur.size(), kUntagged);
        } else {
            // Swap the due bucket out whole; same-tick events
            // appended by a firing callback land in the (emptied)
            // bucket, re-mark it, and are pulled by the caller's
            // recheck — preserving global FIFO order within the tick.
            std::size_t idx = static_cast<std::size_t>(t) & kMask;
            cur.swap(wheel[idx]);
            clearBucket(idx);
            if (ctrl) [[unlikely]]
                applyControl(idx);
        }
        curHead = 0;
        return true;
    }

    /** Move the earliest far batch into cur, recycling cur's storage
     *  through the spare slot. */
    void pullFar();

    /** Controlled mode: sync curTags with the freshly pulled bucket
     *  @p idx and let the controller permute the batch. */
    void applyControl(std::size_t idx);

    void
    markBucket(std::size_t idx)
    {
        occupied[idx / 64] |= std::uint64_t{1} << (idx % 64);
        summary |= std::uint32_t{1} << (idx / 64);
    }

    void
    clearBucket(std::size_t idx)
    {
        std::uint64_t w = occupied[idx / 64] &=
            ~(std::uint64_t{1} << (idx % 64));
        if (!w)
            summary &= ~(std::uint32_t{1} << (idx / 64));
    }

    /** The far batch for tick @p when (>= kHorizon out), created if
     *  needed; keeps the overflow list sorted and farNext current. */
    std::vector<Callback> &farBatch(Tick when);

    std::array<std::vector<Callback>, kHorizon> wheel;
    std::uint64_t occupied[kWords] = {};

    /** One bit per occupied[] word with any bit set: finds the next
     *  occupied wheel slot without looping over the bitmap. */
    std::uint32_t summary = 0;
    static_assert(kWords <= 32, "summary bitmap is one 32-bit word");

    /** Events at least kHorizon ticks out: (tick, batch) pairs sorted
     *  by tick descending, so the earliest batch pops off the back.
     *  Entries are few (long io waits, run limits) and the vector
     *  recycles its storage — no per-event node allocation. */
    std::vector<std::pair<Tick, std::vector<Callback>>> far;

    /** Cached earliest far tick (kTickNever when far is empty), so
     *  the per-batch scheduling decision is two compares. */
    Tick farNext = kTickNever;

    /** Spare batch storage: far entry -> cur -> spare -> next far
     *  entry, so far scheduling allocates nothing in steady state. */
    std::vector<Callback> spare;

    /** The batch currently being drained (its tick == _now): a wheel
     *  bucket swapped out whole, or a far-map batch. Callbacks are
     *  invoked in place through curHead; the vector is cleared (keeping
     *  capacity) only once the whole batch has fired. */
    std::vector<Callback> cur;
    std::size_t curHead = 0;

    Tick _now = 0;
    std::uint64_t fired = 0;
    bool stopRequested = false;

    // --- schedule-controller plumbing (inert unless ctrl is set) ---

    ScheduleController *ctrl = nullptr;

    /** Tag staged by scheduleTagged() for the next schedule() call. */
    std::uint32_t stagedTag = kUntagged;

    /** Per-bucket tag vectors mirroring wheel[] (controlled mode). */
    std::array<std::vector<std::uint32_t>, kHorizon> wheelTags;

    /** Tags mirroring cur (controlled mode). */
    std::vector<std::uint32_t> curTags;

    /** Permutation scratch, reused across batches. */
    std::vector<std::uint32_t> ctrlOrder;
    std::vector<Callback> ctrlScratch;
    std::vector<std::uint32_t> ctrlTagScratch;
};

/**
 * Base class for named simulation components. Provides access to the
 * shared event queue and a hierarchical name used in stats and logging.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : eventq(eq), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    const std::string &name() const { return _name; }

    Tick curTick() const { return eventq.now(); }

  protected:
    EventQueue &eventq;

  private:
    std::string _name;
};

} // namespace bulksc

#endif // BULKSC_SIM_EVENT_QUEUE_HH
