/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. Events are
 * callbacks scheduled at an absolute tick; events scheduled for the same
 * tick fire in FIFO order of scheduling, which makes every simulation run
 * bit-for-bit reproducible.
 */

#ifndef BULKSC_SIM_EVENT_QUEUE_HH
#define BULKSC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bulksc {

/**
 * The central event queue. All timed behaviour in the simulator is
 * expressed as callbacks scheduled on an instance of this class.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to invoke.
     */
    void schedule(Tick when, Callback cb);

    /**
     * Schedule a callback @p delta ticks in the future.
     */
    void
    scheduleAfter(Tick delta, Callback cb)
    {
        schedule(_now + delta, std::move(cb));
    }

    /** @return true if no events remain. */
    bool empty() const { return events.empty(); }

    /** @return the number of pending events. */
    std::size_t size() const { return events.size(); }

    /**
     * Run until the queue drains or @p limit ticks is reached.
     *
     * @param limit Stop (without firing) events past this tick.
     * @return the tick of the last event fired (or now() if none fired).
     */
    Tick run(Tick limit = kTickNever);

    /**
     * Fire a single event.
     *
     * @return true if an event was fired, false if the queue was empty.
     */
    bool step();

    /** Total number of events processed so far. */
    std::uint64_t eventsFired() const { return fired; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

/**
 * Base class for named simulation components. Provides access to the
 * shared event queue and a hierarchical name used in stats and logging.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : eventq(eq), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    const std::string &name() const { return _name; }

    Tick curTick() const { return eventq.now(); }

  protected:
    EventQueue &eventq;

  private:
    std::string _name;
};

} // namespace bulksc

#endif // BULKSC_SIM_EVENT_QUEUE_HH
