#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace bulksc {

namespace {
bool quietMode = false;
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

bool
isQuiet()
{
    return quietMode;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace bulksc
