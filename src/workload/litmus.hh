/**
 * @file
 * Classic memory-consistency litmus tests with an SC outcome checker.
 *
 * Each test is a tiny multi-processor program on tracked variables;
 * loads record their observed values into result slots. The checker
 * enumerates the outcomes forbidden under SC. Running these under
 * BulkSC demonstrates (and the test suite *verifies*) that the chunk
 * machinery enforces SC at the memory-access level, while an RC
 * machine without fences can and does produce forbidden outcomes.
 */

#ifndef BULKSC_WORKLOAD_LITMUS_HH
#define BULKSC_WORKLOAD_LITMUS_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/op.hh"

namespace bulksc {

/** One litmus test: per-processor traces plus an SC predicate. */
struct LitmusTest
{
    std::string name;

    /** One trace per participating processor. */
    std::vector<Trace> traces;

    /**
     * Is the observed outcome allowed under SC? Receives the
     * per-processor load-result vectors.
     */
    std::function<bool(
        const std::vector<std::vector<std::uint64_t>> &)>
        allowedSC;
};

/**
 * Store buffering (Dekker): P0: x=1; r0=y.  P1: y=1; r1=x.
 * SC forbids r0 == 0 && r1 == 0.
 * @param variant Perturbs instruction spacing to explore timings.
 */
LitmusTest makeStoreBuffering(unsigned variant = 0);

/**
 * Message passing: P0: data=1; flag=1.  P1: r0=flag; r1=data.
 * SC forbids r0 == 1 && r1 == 0.
 */
LitmusTest makeMessagePassing(unsigned variant = 0);

/**
 * IRIW: P0: x=1.  P1: y=1.  P2: r0=x; r1=y.  P3: r2=y; r3=x.
 * SC forbids r0==1 && r1==0 && r2==1 && r3==0.
 */
LitmusTest makeIriw(unsigned variant = 0);

/**
 * CoRR (coherence read-read): P0: x=1.  P1: r0=x; r1=x.
 * Even weak models forbid r0 == 1 && r1 == 0 (per-location
 * coherence); under BulkSC it additionally falls out of chunk
 * atomicity.
 */
LitmusTest makeCoRR(unsigned variant = 0);

/**
 * 2+2W (write serialization): P0: x=1; y=2.  P1: y=1; x=2.
 * SC forbids the final state x==1 && y==1 (each processor's second
 * write would have to be ordered before the other's first).
 * Checked via post-run loads on two observer processors.
 */
LitmusTest make2Plus2W(unsigned variant = 0);

/**
 * Write-to-read causality: P0: x=1.  P1: r0=x; y=1.  P2: r1=y; r2=x.
 * SC forbids r0==1 && r1==1 && r2==0 (P2 observing P1's write must
 * also observe what P1 observed).
 */
LitmusTest makeWrc(unsigned variant = 0);

/**
 * ISA2 (transitive message passing): P0: x=1; y=1.  P1: r0=y; z=1.
 * P2: r1=z; r2=x.  SC forbids r0==1 && r1==1 && r2==0.
 */
LitmusTest makeIsa2(unsigned variant = 0);

/** Look up a litmus test by its CLI name ("sb", "mp", "iriw",
 *  "corr", "2+2w", "wrc", "isa2"); false if unknown. */
bool litmusByName(const std::string &name, unsigned variant,
                  LitmusTest &out);

/** The comma-separated list of known names (for error messages). */
const char *litmusNames();

/** All litmus tests across a few timing variants. */
std::vector<LitmusTest> allLitmusTests(unsigned variants = 4);

} // namespace bulksc

#endif // BULKSC_WORKLOAD_LITMUS_HH
