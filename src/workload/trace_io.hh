/**
 * @file
 * Binary save/load for trace bundles.
 *
 * Workloads are normally synthesized deterministically, but a real
 * release needs record/replay: freeze the exact op streams of a run
 * to disk, share them, and re-run them bit-identically on any build
 * (e.g. to report a bug or compare machine configurations on frozen
 * inputs). The format is a small versioned container:
 *
 *   magic "BSCT"  u32 version  u32 numTraces
 *   per trace: u64 numOps, then numOps packed Op records
 *
 * All fields little-endian.
 */

#ifndef BULKSC_WORKLOAD_TRACE_IO_HH
#define BULKSC_WORKLOAD_TRACE_IO_HH

#include <string>
#include <vector>

#include "cpu/op.hh"

namespace bulksc {

/** Write a trace bundle to @p path. @return false on I/O failure. */
bool saveTraces(const std::string &path,
                const std::vector<Trace> &traces);

/**
 * Load a trace bundle written by saveTraces(). Traces come back
 * finalized.
 *
 * @return the traces; empty on I/O or format failure (and warns).
 */
std::vector<Trace> loadTraces(const std::string &path);

} // namespace bulksc

#endif // BULKSC_WORKLOAD_TRACE_IO_HH
