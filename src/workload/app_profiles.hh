/**
 * @file
 * Synthetic application profiles standing in for the paper's
 * workloads: the 11 SPLASH-2 applications (all but volrend) plus
 * SPECjbb2000- and SPECweb2005-like commercial codes.
 *
 * We do not have the original binaries or the SESC/Simics toolchain,
 * so each application is modelled by a parameterized memory-access
 * generator. Parameters are calibrated so that the *memory behaviour*
 * the paper's evaluation depends on lands in the reported ranges:
 * chunk read/write-set sizes, the private-write fraction, the
 * empty-W-commit fraction, lock/barrier usage, and the degree of true
 * sharing (see Tables 3 and 4 of the paper and DESIGN.md §2).
 */

#ifndef BULKSC_WORKLOAD_APP_PROFILES_HH
#define BULKSC_WORKLOAD_APP_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bulksc {

/** Parameters of one synthetic application. */
struct AppProfile
{
    std::string name;

    /** Fraction of dynamic instructions that are memory operations. */
    double memFrac = 0.30;

    /** Of memory ops: fraction that touch the stack (private,
     *  statically-private candidates). */
    double stackFrac = 0.12;

    /** Of memory ops: fraction that are reads of shared data. */
    double sharedReadFrac = 0.15;

    /** Shared-data *written lines* per 1000 instructions. This
     *  directly sets the W-signature size and the empty-W commit
     *  fraction. */
    double sharedWritesPer1k = 0.3;

    /** Shared writes arrive in bursts of this many lines (real codes
     *  update records/stripes, not isolated words): burstier writes
     *  mean more chunks with an empty W at the same write volume. */
    std::uint32_t sharedWriteBurst = 1;

    /** Stride (in lines) between shared-write targets. 0 = cursor. */
    std::uint32_t sharedWriteStride = 0;

    /**
     * Radix-sort write pattern: writes go to bucket*16384 + position,
     * where the position advances with execution progress. Different
     * processors write different buckets (no true sharing) at similar
     * positions — so their lines share low-order address bits and
     * collide heavily in the permuted signature slices. This is the
     * paper's radix aliasing pathology (Table 3: 10.89% squashed under
     * BSCdypvt vs 0.01% with an exact signature).
     */
    bool radixWritePattern = false;

    /** Of private-heap accesses: fraction that are stores. */
    double privStoreFrac = 0.35;

    /** Private heap working set per processor, in lines. */
    std::uint32_t privLines = 3072;

    /** Hot private-write subset (stays dirty in the L1 across chunks;
     *  this is what the dynamically-private optimization captures). */
    std::uint32_t privWriteLines = 384;

    /**
     * Streaming bursts per 1000 instructions. A burst walks
     * streamBurstLines fresh lines (4 accesses each) of a huge
     * never-reused region: these are the memory-level-parallelism
     * events that separate RC (overlapped) from SC (serialized).
     */
    double streamBurstsPer1k = 0.4;

    /** Lines touched per streaming burst. */
    std::uint32_t streamBurstLines = 6;

    /** Of streaming accesses: fraction that are stores. */
    double streamStoreFrac = 0.15;

    /** Shared region size, in lines. */
    std::uint32_t sharedLines = 16384;

    /** Hot shared subset where writes (and contended reads) go. */
    std::uint32_t hotLines = 512;

    /** Of shared accesses: fraction aimed at the hot subset. Writes
     *  to the hot subset collide across processors (true sharing). */
    double hotFrac = 0.25;

    /** Temporal locality knob (0 = uniform, towards 1 = very hot). */
    double locality = 0.55;

    /** Probability of continuing a sequential run within a region. */
    double seqRun = 0.45;

    /** Lock acquire/release pairs per 1000 instructions. */
    double locksPer1k = 0.0;

    /** Size of the lock pool (smaller = more contention). */
    std::uint32_t numLocks = 64;

    /** Memory ops inside each critical section. */
    std::uint32_t csMemOps = 6;

    /** Of critical-section ops: fraction that are writes. */
    double csWriteFrac = 0.5;

    /** Barriers per 100k instructions (0 = none). */
    double barriersPer100k = 0.0;

    /**
     * Track values on every generated op: each store carries a unique
     * value and every load records what it observed. Needed by the
     * SC conformance checker; off by default (value bookkeeping costs
     * simulation time).
     */
    bool trackAllValues = false;

    /** Base RNG seed (combined with the processor id). */
    std::uint64_t seed = 1;
};

/** The 11 SPLASH-2 profiles, in the paper's order. */
const std::vector<AppProfile> &splash2Profiles();

/** SPECjbb2000- and SPECweb2005-like commercial profiles. */
const std::vector<AppProfile> &commercialProfiles();

/** All 13 evaluation workloads (SPLASH-2 then commercial). */
const std::vector<AppProfile> &allProfiles();

/** Look up a profile by name (fatal if unknown). */
const AppProfile &profileByName(const std::string &name);

} // namespace bulksc

#endif // BULKSC_WORKLOAD_APP_PROFILES_HH
