#include "workload/generator.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace bulksc {

namespace {

/**
 * Per-region access cursor. Real code touches several words of a line
 * before moving on (spatial locality), and revisits hot lines
 * (temporal locality); the cursor models both with a dwell counter on
 * top of a zipf-ish line picker and sequential runs.
 */
struct RegionCursor
{
    static constexpr unsigned kRecent = 24;

    std::uint64_t line = 0;
    unsigned dwell = 0;
    bool valid = false;
    std::uint64_t recent[kRecent] = {};
    unsigned recentCount = 0;
    unsigned recentHead = 0;

    std::uint64_t
    pick(Rng &rng, std::uint64_t lines, double locality, double seq_run,
         unsigned dwell_len)
    {
        if (valid && dwell > 0) {
            --dwell;
            return line;
        }
        // Temporal reuse: revisit the recent working set most of the
        // time; otherwise move on (sequential run or a fresh pick).
        double p_revisit = 0.30 + 0.45 * locality;
        if (recentCount > 0 && rng.chance(p_revisit)) {
            line = recent[rng.below(recentCount)];
        } else if (valid && rng.chance(seq_run)) {
            line = (line + 1) % lines;
            remember(line);
        } else {
            line = rng.zipfish(lines, locality);
            remember(line);
        }
        valid = true;
        dwell = dwell_len ? dwell_len - 1 : 0;
        return line;
    }

    void
    remember(std::uint64_t l)
    {
        recent[recentHead] = l;
        recentHead = (recentHead + 1) % kRecent;
        if (recentCount < kRecent)
            ++recentCount;
    }
};

/** Geometric-ish non-memory gap with the given mean. */
std::uint32_t
sampleGap(Rng &rng, double mean)
{
    double u = rng.uniform();
    if (u < 1e-12)
        u = 1e-12;
    double g = -std::log(u) * mean;
    if (g > 400.0)
        g = 400.0;
    return static_cast<std::uint32_t>(g);
}

} // namespace

std::vector<Trace>
generateTraces(const AppProfile &prof, unsigned num_procs,
               std::uint64_t instrs_per_proc, std::uint64_t seed_salt)
{
    fatal_if(num_procs == 0, "need at least one processor");
    const unsigned lb = kDefaultLineBytes;

    std::vector<Trace> traces(num_procs);

    const double gap_mean =
        prof.memFrac > 0 ? (1.0 - prof.memFrac) / prof.memFrac : 50.0;

    const unsigned sw_burst =
        prof.sharedWriteBurst ? prof.sharedWriteBurst : 1;
    const double p_shared_write =
        prof.memFrac > 0
            ? prof.sharedWritesPer1k /
                  (1000.0 * prof.memFrac * sw_burst)
            : 0.0;

    const double barrier_period =
        prof.barriersPer100k > 0 ? 100000.0 / prof.barriersPer100k
                                 : 0.0;
    const double p_lock = prof.locksPer1k > 0
                              ? prof.locksPer1k / 1000.0 *
                                    (gap_mean + 1.0)
                              : 0.0;
    const double p_stream = prof.streamBurstsPer1k > 0
                                ? prof.streamBurstsPer1k / 1000.0 *
                                      (gap_mean + 1.0)
                                : 0.0;

    for (unsigned p = 0; p < num_procs; ++p) {
        Rng rng(mix64(prof.seed * 0x9e3779b9ULL + p * 7919 +
                      seed_salt * 104729));
        Trace &t = traces[p];
        t.ops.reserve(static_cast<std::size_t>(
            static_cast<double>(instrs_per_proc) * prof.memFrac * 1.1));

        // Skew the per-processor bases by an odd line count so that
        // same-offset lines of different processors differ in their
        // low address bits too (real allocators are not 64 MB-aligned
        // per thread; perfectly aligned bases would alias in the
        // signature slices).
        const Addr stack_base = layout::kStackBase +
                                Addr{p} * layout::kStackStride +
                                Addr{p} * 509 * lb;
        const Addr priv_base = layout::kPrivBase +
                               Addr{p} * layout::kPrivStride +
                               Addr{p} * 12347 * lb;
        const Addr stream_base =
            layout::kStreamBase + Addr{p} * layout::kStreamStride;

        RegionCursor stack_cur, priv_cur, priv_wr_cur, shared_rd_cur,
            shared_wr_cur;
        std::uint64_t stream_line = 0;

        std::uint64_t instrs = 0;
        double next_barrier = barrier_period;
        std::uint32_t barrier_idx = 0;

        auto emit = [&](OpType type, Addr addr, std::uint32_t gap,
                        bool stack_ref) {
            Op op;
            op.type = type;
            op.addr = addr;
            op.gap = gap;
            op.stackRef = stack_ref;
            if (prof.trackAllValues) {
                op.tracked = true;
                if (type == OpType::Store) {
                    // Unique per (processor, position): the SC
                    // checker can tell every write apart.
                    op.storeValue =
                        mix64((Addr{p} << 32) + t.ops.size() + 1);
                }
            }
            t.ops.push_back(op);
            instrs += gap + 1;
        };

        auto word = [&] { return rng.below(lb / 8) * 8; };

        // Shared reads dwell on lines like private data; shared writes
        // use their own cursor so write runs stay spatially compact.
        // Hot (contended) lines are scattered through their region
        // like real shared structures; a dense hot array would alias
        // wholesale in the signature slices.
        auto hot_line = [&]() -> Addr {
            std::uint64_t h = rng.below(prof.hotLines);
            return layout::kHotBase + (h * 769 % 65536) * lb + word();
        };
        // Each processor's shared-region work concentrates in its own
        // rotation of the region (threads process their own partition;
        // sharing happens through the hot set, lock data, and the
        // partition tails) — without this, every processor would camp
        // on the same zipf head and over-share the whole region.
        const std::uint64_t shared_rot =
            Addr{p} * prof.sharedLines / num_procs;
        auto shared_read_addr = [&]() -> Addr {
            if (prof.hotLines > 0 && rng.chance(prof.hotFrac))
                return hot_line();
            std::uint64_t line;
            if (prof.radixWritePattern) {
                // Readers consume the previous phase's data, slightly
                // ahead of the write frontier: the owning bucket's
                // writer will soon overwrite these lines, so its W
                // signature is regularly forwarded to the readers —
                // where it aliases against their dense position-window
                // R signatures without any true conflict.
                std::uint64_t bucket = rng.below(8);
                std::uint64_t pos = ((instrs >> 6) + 192 +
                                     rng.below(2048)) %
                                    16384;
                line = (bucket << 30) + pos;
            } else {
                line = shared_rd_cur.pick(rng, prof.sharedLines,
                                          prof.locality, prof.seqRun,
                                          7);
                line = (line + shared_rot) % prof.sharedLines;
            }
            return layout::kSharedBase + line * lb + word();
        };
        std::uint64_t stride_cursor = rng.below(1024);
        auto shared_write_addr = [&]() -> Addr {
            if (!prof.radixWritePattern && prof.hotLines > 0 &&
                rng.chance(prof.hotFrac)) {
                return hot_line();
            }
            std::uint64_t line;
            if (prof.radixWritePattern) {
                // Scatter phase: each processor owns a bucket, and
                // bucket-relative positions track execution progress,
                // so all processors write lines that agree in every
                // signature-covered bit and differ only in the bucket
                // bits — which lie beyond the address slice the
                // 2 Kbit signature hashes. The written sets are truly
                // disjoint yet collide in every Bloom bank: the
                // paper's radix aliasing pathology.
                std::uint64_t pos =
                    ((instrs >> 6) + rng.below(96)) % 16384;
                line = (Addr{p} << 30) + pos;
            } else if (prof.sharedWriteStride) {
                stride_cursor = (stride_cursor +
                                 prof.sharedWriteStride) %
                                prof.sharedLines;
                line = stride_cursor;
            } else {
                line = shared_wr_cur.pick(rng, prof.sharedLines, 0.3,
                                          prof.seqRun, 3);
                line = (line + shared_rot) % prof.sharedLines;
            }
            return layout::kSharedBase + line * lb + word();
        };

        while (instrs < instrs_per_proc) {
            // Barriers at fixed instruction thresholds so every
            // processor executes the same barrier sequence.
            if (barrier_period > 0 &&
                static_cast<double>(instrs) >= next_barrier) {
                Op arrive;
                arrive.type = OpType::BarrierArrive;
                arrive.addr = layout::kBarrierBase;
                arrive.gap = 10;
                arrive.aux = barrier_idx;
                t.ops.push_back(arrive);
                Op wait = arrive;
                wait.type = OpType::BarrierWait;
                wait.gap = 2;
                t.ops.push_back(wait);
                instrs += 14;
                ++barrier_idx;
                next_barrier += barrier_period;
                continue;
            }

            // Lock-protected critical section over the lock's data
            // (a few lines keyed by the lock id): true sharing happens
            // when two processors contend for the same lock region.
            if (p_lock > 0 && rng.chance(p_lock)) {
                std::uint32_t lock_id =
                    static_cast<std::uint32_t>(
                        rng.below(prof.numLocks));
                Op acq;
                acq.type = OpType::Acquire;
                acq.addr = layout::lockAddr(lock_id, lb);
                acq.gap = sampleGap(rng, gap_mean);
                t.ops.push_back(acq);
                instrs += acq.gap + 1;
                // 8 data lines per lock, in their own region.
                Addr data_base = layout::lockDataBase(lock_id, lb);
                for (std::uint32_t i = 0; i < prof.csMemOps; ++i) {
                    bool write = rng.chance(prof.csWriteFrac);
                    Addr a = data_base + rng.below(8) * lb + word();
                    emit(write ? OpType::Store : OpType::Load, a,
                         sampleGap(rng, gap_mean), false);
                }
                Op rel;
                rel.type = OpType::Release;
                rel.addr = acq.addr;
                rel.gap = sampleGap(rng, gap_mean);
                t.ops.push_back(rel);
                instrs += rel.gap + 1;
                continue;
            }

            // Streaming burst: a run of fresh lines touched once with
            // spatial locality. These are clustered memory misses —
            // overlappable by RC/SC++/BulkSC, serialized by SC.
            if (p_stream > 0 && rng.chance(p_stream)) {
                for (std::uint32_t l = 0; l < prof.streamBurstLines;
                     ++l) {
                    Addr line_base =
                        stream_base + (stream_line++) * lb;
                    for (unsigned k = 0; k < 4; ++k) {
                        bool write =
                            rng.chance(prof.streamStoreFrac);
                        emit(write ? OpType::Store : OpType::Load,
                             line_base + k * 8,
                             sampleGap(rng, gap_mean * 0.5), false);
                    }
                }
                continue;
            }

            std::uint32_t gap = sampleGap(rng, gap_mean);
            double r = rng.uniform();

            if (r < p_shared_write) {
                emit(OpType::Store, shared_write_addr(), gap, false);
                for (unsigned b = 1; b < sw_burst; ++b) {
                    emit(OpType::Store, shared_write_addr(),
                         sampleGap(rng, gap_mean * 0.5), false);
                }
            } else if (r < p_shared_write + prof.sharedReadFrac) {
                emit(OpType::Load, shared_read_addr(), gap, false);
            } else if (r < p_shared_write + prof.sharedReadFrac +
                               prof.stackFrac) {
                std::uint64_t line =
                    stack_cur.pick(rng, 48, 0.75, 0.5, 6);
                emit(rng.chance(0.45) ? OpType::Store : OpType::Load,
                     stack_base + line * lb + word(), gap, true);
            } else if (rng.chance(prof.privStoreFrac)) {
                // Private writes concentrate on a hot subset that
                // stays dirty in the L1 across chunks — the pattern
                // the dynamically-private optimization exploits.
                std::uint64_t line = priv_wr_cur.pick(
                    rng, prof.privWriteLines, 0.8, prof.seqRun, 6);
                emit(OpType::Store, priv_base + line * lb + word(),
                     gap, false);
            } else {
                std::uint64_t line =
                    priv_cur.pick(rng, prof.privLines, prof.locality,
                                  prof.seqRun, 7);
                emit(OpType::Load, priv_base + line * lb + word(),
                     gap, false);
            }
        }

        t.finalize();
    }
    return traces;
}

} // namespace bulksc
