/**
 * @file
 * Trace generation from application profiles.
 *
 * The generated traces are fully materialized (replayable), so a
 * squashed chunk re-executes exactly the same dynamic operations. All
 * processors of a run share the layout below; synchronization
 * variables are tracked so lock/barrier semantics execute against real
 * values.
 *
 * Address-space layout (byte addresses):
 *   stack[p]   : 0x1000'0000 + p * 0x0100'0000
 *   priv[p]    : 0x4000'0000 + p * 0x0400'0000
 *   shared     : 0x9000'0000
 *   locks      : 0xF000'0000 (one line per lock, line-spaced by 2)
 *   barrier    : 0xF800'0000 (count word; generation word next line)
 */

#ifndef BULKSC_WORKLOAD_GENERATOR_HH
#define BULKSC_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "cpu/op.hh"
#include "workload/app_profiles.hh"

namespace bulksc {

/** Address-space layout constants. */
namespace layout {
constexpr Addr kStackBase = 0x1000'0000;
constexpr Addr kStackStride = 0x0100'0000;
constexpr Addr kPrivBase = 0x4000'0000;
constexpr Addr kPrivStride = 0x0400'0000;
constexpr Addr kSharedBase = 0x9000'0000;
constexpr Addr kLockDataBase = 0xA000'0000; //!< lock-protected data
constexpr Addr kHotBase = 0xB000'0000;      //!< contended hot lines
constexpr Addr kStreamBase = 0x40'0000'0000;
constexpr Addr kStreamStride = 0x4'0000'0000;
constexpr Addr kLockBase = 0xF000'0000;
constexpr Addr kBarrierBase = 0xF800'0000;

/** Locks are scattered through their region as in real heaps — a
 *  dense lock array would make unrelated locks alias in the
 *  signature slices. */
inline Addr
lockAddr(std::uint32_t lock_id, unsigned line_bytes = kDefaultLineBytes)
{
    return kLockBase +
           (Addr{lock_id} * 641 % 16384) * line_bytes;
}

/** Base of the data lines protected by a lock (8 lines), scattered
 *  like the locks themselves. */
inline Addr
lockDataBase(std::uint32_t lock_id,
             unsigned line_bytes = kDefaultLineBytes)
{
    return kLockDataBase +
           (Addr{lock_id} * 977 % 8192) * 8 * line_bytes;
}
} // namespace layout

/**
 * Generate per-processor traces for an application profile.
 *
 * @param profile The application model.
 * @param num_procs Number of processors (all participate in barriers).
 * @param instrs_per_proc Dynamic instructions per processor.
 * @param seed_salt Extra seed material (vary for different runs).
 */
std::vector<Trace> generateTraces(const AppProfile &profile,
                                  unsigned num_procs,
                                  std::uint64_t instrs_per_proc,
                                  std::uint64_t seed_salt = 0);

} // namespace bulksc

#endif // BULKSC_WORKLOAD_GENERATOR_HH
