#include "workload/app_profiles.hh"

#include "sim/logging.hh"

namespace bulksc {

namespace {

std::vector<AppProfile>
makeSplash2()
{
    std::vector<AppProfile> v;

    // N-body tree code: mostly private tree walks, light locking,
    // almost no shared writes per chunk (paper W ~ 0.1 lines).
    AppProfile barnes;
    barnes.name = "barnes";
    barnes.memFrac = 0.28;
    barnes.sharedReadFrac = 0.12;
    barnes.sharedWritesPer1k = 0.12;
    barnes.privLines = 3072;
    barnes.privWriteLines = 64;
    barnes.hotLines = 256;
    barnes.hotFrac = 0.10;
    barnes.locality = 0.68;
    barnes.locksPer1k = 0.15;
    barnes.numLocks = 64;
    barnes.csMemOps = 4;
    barnes.csWriteFrac = 0.35;
    barnes.streamBurstsPer1k = 0.45;
    barnes.streamStoreFrac = 0.0;
    barnes.seed = 101;
    v.push_back(barnes);

    // Sparse factorization: large read sets, modest shared writes.
    AppProfile cholesky;
    cholesky.name = "cholesky";
    cholesky.memFrac = 0.30;
    cholesky.sharedReadFrac = 0.26;
    cholesky.sharedWritesPer1k = 0.9;
    cholesky.privLines = 4096;
    cholesky.privWriteLines = 80;
    cholesky.sharedWriteBurst = 3;
    cholesky.sharedLines = 32768;
    cholesky.hotLines = 512;
    cholesky.hotFrac = 0.08;
    cholesky.locality = 0.55;
    cholesky.locksPer1k = 0.25;
    cholesky.csMemOps = 4;
    cholesky.csWriteFrac = 0.35;
    cholesky.streamBurstsPer1k = 0.55;
    cholesky.streamStoreFrac = 0.05;
    cholesky.seed = 102;
    v.push_back(cholesky);

    // Transpose phases write shared data in disjoint stripes: sizable
    // W but essentially no true sharing; barrier-synchronized.
    AppProfile fft;
    fft.name = "fft";
    fft.memFrac = 0.30;
    fft.sharedReadFrac = 0.22;
    fft.sharedWritesPer1k = 1.0;
    fft.privLines = 6144;
    fft.privWriteLines = 160;
    fft.sharedWriteBurst = 4;
    fft.privStoreFrac = 0.40;
    fft.sharedLines = 32768;
    fft.hotFrac = 0.0;
    fft.locality = 0.58;
    fft.barriersPer100k = 2.0;
    fft.streamBurstsPer1k = 0.7;
    fft.streamStoreFrac = 0.20;
    fft.seed = 103;
    v.push_back(fft);

    AppProfile fmm;
    fmm.name = "fmm";
    fmm.memFrac = 0.30;
    fmm.sharedReadFrac = 0.24;
    fmm.sharedWritesPer1k = 0.2;
    fmm.privStoreFrac = 0.22;
    fmm.privLines = 1536;
    fmm.privWriteLines = 56;
    fmm.hotLines = 256;
    fmm.hotFrac = 0.08;
    fmm.locality = 0.62;
    fmm.locksPer1k = 0.20;
    fmm.csMemOps = 4;
    fmm.csWriteFrac = 0.35;
    fmm.streamBurstsPer1k = 0.45;
    fmm.streamStoreFrac = 0.0;
    fmm.seed = 104;
    v.push_back(fmm);

    // Blocked dense factorization: small, very local read sets.
    AppProfile lu;
    lu.name = "lu";
    lu.memFrac = 0.28;
    lu.sharedReadFrac = 0.10;
    lu.sharedWritesPer1k = 0.1;
    lu.privLines = 2048;
    lu.privWriteLines = 72;
    lu.hotFrac = 0.04;
    lu.locality = 0.80;
    lu.barriersPer100k = 3.0;
    lu.streamBurstsPer1k = 0.35;
    lu.streamStoreFrac = 0.0;
    lu.seed = 105;
    v.push_back(lu);

    // Grid stencil: streaming reads (big read sets), nearest-neighbor
    // write sharing, barrier-heavy.
    AppProfile ocean;
    ocean.name = "ocean";
    ocean.memFrac = 0.32;
    ocean.sharedReadFrac = 0.30;
    ocean.sharedWritesPer1k = 3.0;
    ocean.privLines = 3072;
    ocean.privWriteLines = 96;
    ocean.sharedWriteBurst = 4;
    ocean.privStoreFrac = 0.30;
    ocean.sharedLines = 49152;
    ocean.hotLines = 2048;
    ocean.hotFrac = 0.08;
    ocean.locality = 0.45;
    ocean.seqRun = 0.65;
    ocean.barriersPer100k = 4.0;
    ocean.streamBurstsPer1k = 0.9;
    ocean.streamStoreFrac = 0.15;
    ocean.seed = 106;
    v.push_back(ocean);

    // Task-queue renderer with locking and real true sharing.
    AppProfile radiosity;
    radiosity.name = "radiosity";
    radiosity.memFrac = 0.30;
    radiosity.sharedReadFrac = 0.18;
    radiosity.sharedWritesPer1k = 0.4;
    radiosity.privLines = 4096;
    radiosity.privWriteLines = 80;
    radiosity.sharedWriteBurst = 2;
    radiosity.hotLines = 512;
    radiosity.hotFrac = 0.10;
    radiosity.locality = 0.62;
    radiosity.locksPer1k = 0.30;
    radiosity.numLocks = 64;
    radiosity.csMemOps = 4;
    radiosity.csWriteFrac = 0.35;
    radiosity.streamBurstsPer1k = 0.45;
    radiosity.streamStoreFrac = 0.0;
    radiosity.seed = 107;
    v.push_back(radiosity);

    // Permutation phase scatters writes over a huge shared region:
    // almost no true sharing, but W is large and scattered — the
    // signature-aliasing pathology of the paper.
    AppProfile radix;
    radix.name = "radix";
    radix.memFrac = 0.30;
    radix.sharedReadFrac = 0.10;
    radix.sharedWritesPer1k = 5.0;
    radix.privLines = 3072;
    radix.privWriteLines = 128;
    radix.sharedWriteBurst = 4;
    radix.radixWritePattern = true;
    radix.sharedLines = 131072; // 8 buckets x 16K lines
    radix.hotLines = 512;
    radix.hotFrac = 0.12;
    radix.locality = 0.78;
    radix.stackFrac = 0.02; // almost no stack references (Section 7.2)
    radix.barriersPer100k = 1.5;
    radix.streamBurstsPer1k = 0.7;
    radix.streamStoreFrac = 0.20;
    radix.seed = 108;
    v.push_back(radix);

    // Work-queue ray tracer: contended locks, large read sets.
    AppProfile raytrace;
    raytrace.name = "raytrace";
    raytrace.memFrac = 0.30;
    raytrace.sharedReadFrac = 0.30;
    raytrace.sharedWritesPer1k = 0.6;
    raytrace.privLines = 4096;
    raytrace.privWriteLines = 80;
    raytrace.sharedWriteBurst = 2;
    raytrace.sharedLines = 49152;
    raytrace.hotLines = 512;
    raytrace.hotFrac = 0.12;
    raytrace.locality = 0.52;
    raytrace.locksPer1k = 0.40;
    raytrace.numLocks = 32;
    raytrace.csMemOps = 4;
    raytrace.csWriteFrac = 0.40;
    raytrace.streamBurstsPer1k = 0.55;
    raytrace.streamStoreFrac = 0.0;
    raytrace.seed = 109;
    v.push_back(raytrace);

    AppProfile waterns;
    waterns.name = "water-ns";
    waterns.memFrac = 0.28;
    waterns.sharedReadFrac = 0.14;
    waterns.sharedWritesPer1k = 0.1;
    waterns.privLines = 3072;
    waterns.privWriteLines = 88;
    waterns.hotFrac = 0.05;
    waterns.locality = 0.70;
    waterns.locksPer1k = 0.15;
    waterns.csMemOps = 4;
    waterns.csWriteFrac = 0.35;
    waterns.streamBurstsPer1k = 0.25;
    waterns.streamStoreFrac = 0.0;
    waterns.seed = 110;
    v.push_back(waterns);

    AppProfile watersp;
    watersp.name = "water-sp";
    watersp.memFrac = 0.28;
    watersp.sharedReadFrac = 0.16;
    watersp.sharedWritesPer1k = 0.1;
    watersp.privLines = 3584;
    watersp.privWriteLines = 88;
    watersp.hotFrac = 0.04;
    watersp.locality = 0.68;
    watersp.locksPer1k = 0.10;
    watersp.csMemOps = 4;
    watersp.csWriteFrac = 0.35;
    watersp.streamBurstsPer1k = 0.25;
    watersp.streamStoreFrac = 0.0;
    watersp.seed = 111;
    v.push_back(watersp);

    return v;
}

std::vector<AppProfile>
makeCommercial()
{
    std::vector<AppProfile> v;

    // SPECjbb2000-like: large footprints, frequent shared writes
    // (about half the chunks have a non-empty W), moderate locking.
    AppProfile sjbb;
    sjbb.name = "sjbb2k";
    sjbb.memFrac = 0.32;
    sjbb.sharedReadFrac = 0.28;
    sjbb.sharedWritesPer1k = 2.5;
    sjbb.privLines = 8192;
    sjbb.privWriteLines = 144;
    sjbb.sharedWriteBurst = 5;
    sjbb.sharedLines = 65536;
    sjbb.hotLines = 2048;
    sjbb.hotFrac = 0.08;
    sjbb.locality = 0.48;
    sjbb.locksPer1k = 0.5;
    sjbb.numLocks = 64;
    sjbb.csMemOps = 5;
    sjbb.csWriteFrac = 0.40;
    sjbb.streamBurstsPer1k = 0.9;
    sjbb.streamStoreFrac = 0.10;
    sjbb.seed = 201;
    v.push_back(sjbb);

    // SPECweb2005-like: even larger read sets that pressure the L1.
    AppProfile sweb;
    sweb.name = "sweb2005";
    sweb.memFrac = 0.35;
    sweb.sharedReadFrac = 0.36;
    sweb.sharedWritesPer1k = 2.8;
    sweb.privLines = 12288;
    sweb.privWriteLines = 144;
    sweb.sharedWriteBurst = 5;
    sweb.sharedLines = 98304;
    sweb.hotLines = 3072;
    sweb.hotFrac = 0.06;
    sweb.locality = 0.42;
    sweb.locksPer1k = 0.4;
    sweb.numLocks = 64;
    sweb.csMemOps = 5;
    sweb.csWriteFrac = 0.40;
    sweb.streamBurstsPer1k = 1.1;
    sweb.streamStoreFrac = 0.10;
    sweb.seed = 202;
    v.push_back(sweb);

    return v;
}

} // namespace

const std::vector<AppProfile> &
splash2Profiles()
{
    static const std::vector<AppProfile> v = makeSplash2();
    return v;
}

const std::vector<AppProfile> &
commercialProfiles()
{
    static const std::vector<AppProfile> v = makeCommercial();
    return v;
}

const std::vector<AppProfile> &
allProfiles()
{
    static const std::vector<AppProfile> v = [] {
        std::vector<AppProfile> all = makeSplash2();
        for (const auto &p : makeCommercial())
            all.push_back(p);
        return all;
    }();
    return v;
}

const AppProfile &
profileByName(const std::string &name)
{
    for (const auto &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown application profile: ", name);
}

} // namespace bulksc
