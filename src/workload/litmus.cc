#include "workload/litmus.hh"

namespace bulksc {

namespace {

constexpr Addr kX = 0x9000'0000;
constexpr Addr kY = 0x9000'0040; // different line
constexpr Addr kData = 0x9000'0080;
constexpr Addr kFlag = 0x9000'00C0;
constexpr Addr kZ = 0x9000'0100;

Op
mkLoad(Addr a, std::uint32_t slot, std::uint32_t gap)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.aux = slot;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
mkStore(Addr a, std::uint64_t v, std::uint32_t gap)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
mkWarm(Addr a, std::uint32_t gap)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    return op;
}

/** Warm both variables into every cache, then space out the body. */
void
warmup(Trace &t, std::initializer_list<Addr> addrs, std::uint32_t pad)
{
    for (Addr a : addrs)
        t.ops.push_back(mkWarm(a, 20));
    // A long non-memory stretch so warm-up misses settle.
    Op spacer = mkWarm(addrs.begin()[0], 2000 + pad);
    t.ops.push_back(spacer);
}

} // namespace

LitmusTest
makeStoreBuffering(unsigned variant)
{
    LitmusTest lt;
    lt.name = "store-buffering-v" + std::to_string(variant);
    lt.traces.resize(2);

    std::uint32_t j0 = 1 + (variant * 17) % 29;
    std::uint32_t j1 = 1 + (variant * 31) % 23;

    warmup(lt.traces[0], {kX, kY}, variant * 13);
    lt.traces[0].ops.push_back(mkStore(kX, 1, j0));
    lt.traces[0].ops.push_back(mkLoad(kY, 0, 1));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kX, kY}, variant * 13);
    lt.traces[1].ops.push_back(mkStore(kY, 1, j1));
    lt.traces[1].ops.push_back(mkLoad(kX, 0, 1));
    lt.traces[1].finalize();

    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[0][0] == 0 && r[1][0] == 0);
        };
    return lt;
}

LitmusTest
makeMessagePassing(unsigned variant)
{
    LitmusTest lt;
    lt.name = "message-passing-v" + std::to_string(variant);
    lt.traces.resize(2);

    std::uint32_t j0 = 1 + (variant * 11) % 19;

    warmup(lt.traces[0], {kData, kFlag}, variant * 7);
    lt.traces[0].ops.push_back(mkStore(kData, 1, j0));
    lt.traces[0].ops.push_back(mkStore(kFlag, 1, 1));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kData, kFlag}, variant * 7);
    lt.traces[1].ops.push_back(mkLoad(kFlag, 0, 1 + variant % 5));
    lt.traces[1].ops.push_back(mkLoad(kData, 1, 1));
    lt.traces[1].finalize();

    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[1][0] == 1 && r[1][1] == 0);
        };
    return lt;
}

LitmusTest
makeIriw(unsigned variant)
{
    LitmusTest lt;
    lt.name = "iriw-v" + std::to_string(variant);
    lt.traces.resize(4);

    warmup(lt.traces[0], {kX}, variant * 5);
    lt.traces[0].ops.push_back(mkStore(kX, 1, 1 + variant % 7));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kY}, variant * 5);
    lt.traces[1].ops.push_back(mkStore(kY, 1, 1 + (variant * 3) % 7));
    lt.traces[1].finalize();

    warmup(lt.traces[2], {kX, kY}, variant * 5);
    lt.traces[2].ops.push_back(mkLoad(kX, 0, 1));
    lt.traces[2].ops.push_back(mkLoad(kY, 1, 1));
    lt.traces[2].finalize();

    warmup(lt.traces[3], {kX, kY}, variant * 5);
    lt.traces[3].ops.push_back(mkLoad(kY, 0, 1));
    lt.traces[3].ops.push_back(mkLoad(kX, 1, 1));
    lt.traces[3].finalize();

    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[2][0] == 1 && r[2][1] == 0 && r[3][0] == 1 &&
                     r[3][1] == 0);
        };
    return lt;
}

LitmusTest
makeCoRR(unsigned variant)
{
    LitmusTest lt;
    lt.name = "corr-v" + std::to_string(variant);
    lt.traces.resize(2);

    warmup(lt.traces[0], {kX}, variant * 9);
    lt.traces[0].ops.push_back(mkStore(kX, 1, 1 + variant % 11));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kX}, variant * 9);
    lt.traces[1].ops.push_back(mkLoad(kX, 0, 1 + variant % 3));
    lt.traces[1].ops.push_back(mkLoad(kX, 1, 1));
    lt.traces[1].finalize();

    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[1][0] == 1 && r[1][1] == 0);
        };
    return lt;
}

LitmusTest
make2Plus2W(unsigned variant)
{
    LitmusTest lt;
    lt.name = "2+2w-v" + std::to_string(variant);
    lt.traces.resize(4);

    warmup(lt.traces[0], {kX, kY}, variant * 3);
    lt.traces[0].ops.push_back(mkStore(kX, 1, 1 + variant % 7));
    lt.traces[0].ops.push_back(mkStore(kY, 2, 1));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kX, kY}, variant * 3);
    lt.traces[1].ops.push_back(mkStore(kY, 1, 1 + (variant * 5) % 7));
    lt.traces[1].ops.push_back(mkStore(kX, 2, 1));
    lt.traces[1].finalize();

    // Observers read the final state well after the writers are done.
    for (unsigned o = 2; o < 4; ++o) {
        warmup(lt.traces[o], {kX, kY}, variant * 3);
        lt.traces[o].ops.push_back(
            mkLoad(o == 2 ? kX : kY, 0, 20000));
        lt.traces[o].finalize();
    }

    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[2][0] == 1 && r[3][0] == 1);
        };
    return lt;
}

LitmusTest
makeWrc(unsigned variant)
{
    LitmusTest lt;
    lt.name = "wrc-v" + std::to_string(variant);
    lt.traces.resize(3);

    warmup(lt.traces[0], {kX}, variant * 7);
    lt.traces[0].ops.push_back(mkStore(kX, 1, 1 + variant % 7));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kX, kY}, variant * 7);
    lt.traces[1].ops.push_back(mkLoad(kX, 0, 1 + variant % 5));
    lt.traces[1].ops.push_back(mkStore(kY, 1, 1));
    lt.traces[1].finalize();

    warmup(lt.traces[2], {kX, kY}, variant * 7);
    lt.traces[2].ops.push_back(mkLoad(kY, 0, 1));
    lt.traces[2].ops.push_back(mkLoad(kX, 1, 1));
    lt.traces[2].finalize();

    // P1 saw x==1 and then published y==1; once P2 sees y==1, SC
    // makes x==1 visible to it too.
    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[1][0] == 1 && r[2][0] == 1 && r[2][1] == 0);
        };
    return lt;
}

LitmusTest
makeIsa2(unsigned variant)
{
    LitmusTest lt;
    lt.name = "isa2-v" + std::to_string(variant);
    lt.traces.resize(3);

    warmup(lt.traces[0], {kX, kY}, variant * 9);
    lt.traces[0].ops.push_back(mkStore(kX, 1, 1 + variant % 7));
    lt.traces[0].ops.push_back(mkStore(kY, 1, 1));
    lt.traces[0].finalize();

    warmup(lt.traces[1], {kY, kZ}, variant * 9);
    lt.traces[1].ops.push_back(mkLoad(kY, 0, 1 + variant % 5));
    lt.traces[1].ops.push_back(mkStore(kZ, 1, 1));
    lt.traces[1].finalize();

    warmup(lt.traces[2], {kX, kZ}, variant * 9);
    lt.traces[2].ops.push_back(mkLoad(kZ, 0, 1));
    lt.traces[2].ops.push_back(mkLoad(kX, 1, 1));
    lt.traces[2].finalize();

    // The transitive chain x=1; y=1 → y==1; z=1 → z==1 forces x==1
    // at the final load under SC.
    lt.allowedSC =
        [](const std::vector<std::vector<std::uint64_t>> &r) {
            return !(r[1][0] == 1 && r[2][0] == 1 && r[2][1] == 0);
        };
    return lt;
}

bool
litmusByName(const std::string &name, unsigned variant, LitmusTest &out)
{
    if (name == "sb") {
        out = makeStoreBuffering(variant);
    } else if (name == "mp") {
        out = makeMessagePassing(variant);
    } else if (name == "iriw") {
        out = makeIriw(variant);
    } else if (name == "corr") {
        out = makeCoRR(variant);
    } else if (name == "2+2w") {
        out = make2Plus2W(variant);
    } else if (name == "wrc") {
        out = makeWrc(variant);
    } else if (name == "isa2") {
        out = makeIsa2(variant);
    } else {
        return false;
    }
    return true;
}

const char *
litmusNames()
{
    return "sb, mp, iriw, corr, 2+2w, wrc, isa2";
}

std::vector<LitmusTest>
allLitmusTests(unsigned variants)
{
    std::vector<LitmusTest> v;
    for (unsigned i = 0; i < variants; ++i) {
        v.push_back(makeStoreBuffering(i));
        v.push_back(makeMessagePassing(i));
        v.push_back(makeIriw(i));
        v.push_back(makeCoRR(i));
        v.push_back(make2Plus2W(i));
        v.push_back(makeWrc(i));
        v.push_back(makeIsa2(i));
    }
    return v;
}

} // namespace bulksc
