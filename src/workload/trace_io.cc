#include "workload/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "sim/logging.hh"

namespace bulksc {

namespace {

constexpr char kMagic[4] = {'B', 'S', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

/** On-disk op record (packed, fixed layout). */
struct DiskOp
{
    std::uint64_t addr;
    std::uint64_t storeValue;
    std::uint32_t gap;
    std::uint32_t aux;
    std::uint8_t type;
    std::uint8_t stackRef;
    std::uint8_t tracked;
    std::uint8_t pad;
};
static_assert(sizeof(DiskOp) == 32, "DiskOp layout must be stable");

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

} // namespace

bool
saveTraces(const std::string &path, const std::vector<Trace> &traces)
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "wb"));
    if (!f) {
        warn("saveTraces: cannot open ", path);
        return false;
    }
    std::uint32_t n = static_cast<std::uint32_t>(traces.size());
    if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
        std::fwrite(&kVersion, sizeof kVersion, 1, f.get()) != 1 ||
        std::fwrite(&n, sizeof n, 1, f.get()) != 1) {
        return false;
    }
    for (const Trace &t : traces) {
        std::uint64_t ops = t.ops.size();
        if (std::fwrite(&ops, sizeof ops, 1, f.get()) != 1)
            return false;
        for (const Op &op : t.ops) {
            DiskOp d{};
            d.addr = op.addr;
            d.storeValue = op.storeValue;
            d.gap = op.gap;
            d.aux = op.aux;
            d.type = static_cast<std::uint8_t>(op.type);
            d.stackRef = op.stackRef ? 1 : 0;
            d.tracked = op.tracked ? 1 : 0;
            if (std::fwrite(&d, sizeof d, 1, f.get()) != 1)
                return false;
        }
    }
    return true;
}

std::vector<Trace>
loadTraces(const std::string &path)
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "rb"));
    if (!f) {
        warn("loadTraces: cannot open ", path);
        return {};
    }
    char magic[4];
    std::uint32_t version = 0, n = 0;
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        warn("loadTraces: ", path, " is not a trace bundle");
        return {};
    }
    if (std::fread(&version, sizeof version, 1, f.get()) != 1 ||
        version != kVersion) {
        warn("loadTraces: unsupported version in ", path);
        return {};
    }
    if (std::fread(&n, sizeof n, 1, f.get()) != 1 || n > 1024) {
        warn("loadTraces: bad trace count in ", path);
        return {};
    }

    std::vector<Trace> traces(n);
    for (Trace &t : traces) {
        std::uint64_t ops = 0;
        if (std::fread(&ops, sizeof ops, 1, f.get()) != 1 ||
            ops > (std::uint64_t{1} << 32)) {
            warn("loadTraces: bad op count in ", path);
            return {};
        }
        t.ops.resize(ops);
        for (Op &op : t.ops) {
            DiskOp d;
            if (std::fread(&d, sizeof d, 1, f.get()) != 1) {
                warn("loadTraces: truncated bundle ", path);
                return {};
            }
            op.addr = d.addr;
            op.storeValue = d.storeValue;
            op.gap = d.gap;
            op.aux = d.aux;
            op.type = static_cast<OpType>(d.type);
            op.stackRef = d.stackRef != 0;
            op.tracked = d.tracked != 0;
        }
        t.finalize();
    }
    return traces;
}

} // namespace bulksc
