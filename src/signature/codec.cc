#include "signature/codec.hh"

#include "sim/logging.hh"

namespace bulksc {

namespace {

/** Append @p nbits of @p value to the stream at bit position @p pos. */
void
putBits(std::vector<std::uint8_t> &out, std::size_t &pos,
        std::uint32_t value, unsigned nbits)
{
    for (unsigned i = 0; i < nbits; ++i) {
        if (pos / 8 >= out.size())
            out.push_back(0);
        if ((value >> i) & 1)
            out[pos / 8] |= static_cast<std::uint8_t>(1u << (pos % 8));
        ++pos;
    }
}

std::uint32_t
getBits(const std::vector<std::uint8_t> &in, std::size_t &pos,
        unsigned nbits)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) {
        fatal_if(pos / 8 >= in.size(), "truncated signature stream");
        if (in[pos / 8] & (1u << (pos % 8)))
            v |= 1u << i;
        ++pos;
    }
    return v;
}

} // namespace

std::vector<std::uint8_t>
encodeSignature(const Signature &sig)
{
    const SignatureConfig &cfg = sig.config();
    const unsigned bank_bits = cfg.bitsPerBank();
    const unsigned idx_bits = floorLog2(bank_bits);

    std::vector<std::uint8_t> out;
    std::size_t pos = 0;

    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        std::vector<std::uint32_t> set;
        for (std::uint32_t i = 0; i < bank_bits; ++i) {
            if (sig.bitSet(b, i))
                set.push_back(i);
        }
        bool sparse = set.size() < 128 &&
                      8 + set.size() * idx_bits < 8 + bank_bits;
        if (sparse) {
            putBits(out, pos, static_cast<std::uint32_t>(set.size()),
                    7);
            putBits(out, pos, 0, 1); // format bit: sparse
            for (std::uint32_t idx : set)
                putBits(out, pos, idx, idx_bits);
        } else {
            putBits(out, pos, 0, 7);
            putBits(out, pos, 1, 1); // format bit: bitmap
            for (std::uint32_t i = 0; i < bank_bits; ++i)
                putBits(out, pos, sig.bitSet(b, i) ? 1 : 0, 1);
        }
    }
    return out;
}

Signature
decodeSignature(const std::vector<std::uint8_t> &bytes,
                const SignatureConfig &cfg)
{
    fatal_if(cfg.exact,
             "exact signatures are a simulation fiction and have no "
             "wire format");
    Signature sig(cfg);
    const unsigned bank_bits = cfg.bitsPerBank();
    const unsigned idx_bits = floorLog2(bank_bits);
    std::size_t pos = 0;

    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        std::uint32_t count = getBits(bytes, pos, 7);
        bool bitmap = getBits(bytes, pos, 1) != 0;
        if (bitmap) {
            for (std::uint32_t i = 0; i < bank_bits; ++i) {
                if (getBits(bytes, pos, 1))
                    sig.setBit(b, i);
            }
        } else {
            for (std::uint32_t i = 0; i < count; ++i)
                sig.setBit(b, getBits(bytes, pos, idx_bits));
        }
    }
    return sig;
}

} // namespace bulksc
