/**
 * @file
 * A real wire codec for signatures.
 *
 * The paper states that ~2 Kbit signatures are compressed to a few
 * hundred bits when communicated (Section 2.2). The simulator's
 * traffic accounting uses Signature::compressedBits() as the size
 * model; this codec actually produces (and parses) a byte stream of
 * that size, validating the model and giving a concrete format a
 * hardware or software implementation could use:
 *
 *   per bank, a 1-byte header:
 *     bit 7      — format: 0 = sparse index list, 1 = raw bitmap
 *     bits 0..6  — sparse: number of indices (0..127)
 *   followed by either ceil(pop * idx_bits / 8) bytes of packed
 *   indices (little-endian bit order) or bitsPerBank/8 bitmap bytes.
 *
 * Only the Bloom bits travel; the exact mirror is simulator metadata
 * and is NOT encoded — a decoded signature answers membership and
 * intersection queries identically to the original's Bloom behaviour,
 * which is all remote agents (directories, caches) ever use.
 */

#ifndef BULKSC_SIGNATURE_CODEC_HH
#define BULKSC_SIGNATURE_CODEC_HH

#include <cstdint>
#include <vector>

#include "signature/signature.hh"

namespace bulksc {

/** Encode @p sig's Bloom banks into a byte stream. */
std::vector<std::uint8_t> encodeSignature(const Signature &sig);

/**
 * Decode a byte stream produced by encodeSignature().
 *
 * @param bytes The encoded stream.
 * @param cfg Geometry the stream was encoded with (must match).
 * @return a signature whose Bloom bits equal the original's.
 */
Signature decodeSignature(const std::vector<std::uint8_t> &bytes,
                          const SignatureConfig &cfg);

} // namespace bulksc

#endif // BULKSC_SIGNATURE_CODEC_HH
