#include "signature/signature.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace bulksc {

Signature::Signature(const SignatureConfig &c)
    : cfg(c)
{
    panic_if(cfg.numBanks == 0, "signature needs at least one bank");
    panic_if(cfg.totalBits % cfg.numBanks != 0,
             "totalBits must be divisible by numBanks");
    panic_if(!isPowerOf2(cfg.bitsPerBank()),
             "bits per bank must be a power of two");
    wordsPerBank = (cfg.bitsPerBank() + 63) / 64;
    bits.assign(std::size_t{cfg.numBanks} * wordsPerBank, 0);

    // Build the bit permutation (Figure 2(a)): the line address bits
    // are shuffled once, then sliced into one index per bank. Bank 0
    // keeps the identity low-order bits so the decode operation can
    // map set bits back to cache sets. Because banks are *slices of
    // one permuted address* — not independent hashes — structured
    // address sets alias realistically, as in the paper's evaluation.
    const unsigned idx_bits = floorLog2(cfg.bitsPerBank());
    const unsigned total_src = idx_bits * cfg.numBanks;
    permute.resize(total_src);
    for (unsigned i = 0; i < total_src; ++i)
        permute[i] = static_cast<std::uint8_t>(i);
    Rng rng(cfg.hashSeed);
    for (unsigned i = total_src - 1; i > idx_bits; --i) {
        // Leave bank 0's slice (positions 0..idx_bits-1) in place.
        unsigned j = static_cast<unsigned>(
            idx_bits + rng.below(i - idx_bits + 1));
        std::swap(permute[i], permute[j]);
    }
}

std::uint32_t
Signature::bankIndex(unsigned bank, LineAddr line) const
{
    const unsigned idx_bits = floorLog2(cfg.bitsPerBank());
    const std::uint32_t mask = cfg.bitsPerBank() - 1;
    // The hardware hashes a finite slice of the line address (30 bits
    // here, a 32 GB reach); higher-order bits are not covered —
    // address sets that differ only there are indistinguishable to
    // the signature (one source of the paper's aliasing).
    auto slice = [&](unsigned b) {
        std::uint32_t idx = 0;
        for (unsigned j = 0; j < idx_bits; ++j) {
            unsigned src = permute[b * idx_bits + j] % 30;
            idx |= static_cast<std::uint32_t>((line >> src) & 1) << j;
        }
        return idx;
    };
    // The last bank XOR-folds two slices: well distributed for diverse
    // address mixes, but still correlated for strided/structured sets
    // — which is what produces the realistic signature aliasing of the
    // paper's evaluation (radix most of all).
    if (bank == cfg.numBanks - 1 && cfg.numBanks >= 3) {
        std::uint32_t a = slice(bank);
        std::uint32_t b = slice(1);
        return (a ^ ((b << 4) | (b >> (idx_bits - 4)))) & mask;
    }
    return slice(bank);
}

std::uint32_t
Signature::bank0Index(LineAddr line) const
{
    return bankIndex(0, line);
}

void
Signature::insert(LineAddr line)
{
    if (tracksExact())
        exactSet.insert(line);
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        std::uint32_t idx = bankIndex(b, line);
        bits[std::size_t{b} * wordsPerBank + idx / 64] |=
            std::uint64_t{1} << (idx % 64);
    }
}

bool
Signature::contains(LineAddr line) const
{
    if (cfg.exact)
        return containsExact(line);
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        std::uint32_t idx = bankIndex(b, line);
        if (!(bits[std::size_t{b} * wordsPerBank + idx / 64] &
              (std::uint64_t{1} << (idx % 64)))) {
            return false;
        }
    }
    return true;
}

bool
Signature::containsExact(LineAddr line) const
{
    return exactSet.count(line) != 0;
}

bool
Signature::bloomEmpty() const
{
    // Membership requires a hit in every bank, so the signature is
    // definitely empty as soon as one bank is all-zero.
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        bool any = false;
        for (unsigned w = 0; w < wordsPerBank; ++w) {
            if (bits[std::size_t{b} * wordsPerBank + w]) {
                any = true;
                break;
            }
        }
        if (!any)
            return true;
    }
    return false;
}

bool
Signature::empty() const
{
    if (cfg.exact)
        return exactSet.empty();
    return bloomEmpty();
}

bool
Signature::intersects(const Signature &other) const
{
    if (cfg.exact || other.cfg.exact)
        return intersectsExact(other);
    panic_if(cfg.totalBits != other.cfg.totalBits ||
                 cfg.numBanks != other.cfg.numBanks,
             "intersecting signatures of different geometry");
    // Banked AND; the intersection is definitely empty iff some bank
    // ANDs to all-zero.
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        bool any = false;
        for (unsigned w = 0; w < wordsPerBank; ++w) {
            std::size_t i = std::size_t{b} * wordsPerBank + w;
            if (bits[i] & other.bits[i]) {
                any = true;
                break;
            }
        }
        if (!any)
            return false;
    }
    return true;
}

bool
Signature::intersectsExact(const Signature &other) const
{
    const auto &small =
        exactSet.size() <= other.exactSet.size() ? exactSet
                                                 : other.exactSet;
    const auto &big =
        exactSet.size() <= other.exactSet.size() ? other.exactSet
                                                 : exactSet;
    for (LineAddr l : small) {
        if (big.count(l))
            return true;
    }
    return false;
}

void
Signature::unionWith(const Signature &other)
{
    panic_if(cfg.totalBits != other.cfg.totalBits ||
                 cfg.numBanks != other.cfg.numBanks,
             "uniting signatures of different geometry");
    for (std::size_t i = 0; i < bits.size(); ++i)
        bits[i] |= other.bits[i];
    exactSet.insert(other.exactSet.begin(), other.exactSet.end());
}

void
Signature::clear()
{
    std::fill(bits.begin(), bits.end(), 0);
    exactSet.clear();
}

std::vector<std::uint32_t>
Signature::decodeBank0() const
{
    std::vector<std::uint32_t> out;
    for (unsigned w = 0; w < wordsPerBank; ++w) {
        std::uint64_t word = bits[w];
        while (word) {
            unsigned bit = std::countr_zero(word);
            out.push_back(w * 64 + bit);
            word &= word - 1;
        }
    }
    return out;
}

bool
Signature::bitSet(unsigned bank, std::uint32_t idx) const
{
    return bits[std::size_t{bank} * wordsPerBank + idx / 64] &
           (std::uint64_t{1} << (idx % 64));
}

void
Signature::setBit(unsigned bank, std::uint32_t idx)
{
    bits[std::size_t{bank} * wordsPerBank + idx / 64] |=
        std::uint64_t{1} << (idx % 64);
}

unsigned
Signature::popCount() const
{
    unsigned n = 0;
    for (std::uint64_t w : bits)
        n += std::popcount(w);
    return n;
}

std::uint64_t
Signature::hash() const
{
    std::uint64_t h = 0x5349'47'42'4cULL; // "SIGBL"
    for (std::uint64_t w : bits)
        h = mix64(h ^ w);
    return h;
}

unsigned
Signature::compressedBits() const
{
    // Per bank: choose the smaller of the raw bitmap and a sparse list
    // of log2(bitsPerBank)-bit indices. One byte of header per bank
    // for the format tag and count — the exact format implemented by
    // signature/codec.hh (the 7-bit count field caps sparse encoding
    // at 127 indices).
    const unsigned idx_bits = floorLog2(cfg.bitsPerBank());
    unsigned total = 0;
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        unsigned pop = 0;
        for (unsigned w = 0; w < wordsPerBank; ++w)
            pop += std::popcount(bits[std::size_t{b} * wordsPerBank + w]);
        unsigned sparse = 8 + pop * idx_bits;
        unsigned bitmap = 8 + cfg.bitsPerBank();
        total += (pop < 128 && sparse < bitmap) ? sparse : bitmap;
    }
    return total;
}

} // namespace bulksc
