/**
 * @file
 * Bulk-style address signatures (Ceze et al., "Bulk Disambiguation of
 * Speculative Threads in Multiprocessors", ISCA 2006), as used by BulkSC.
 *
 * A signature is a superset encoding of a set of cache-line addresses. It
 * is organized as a partitioned Bloom filter: the (permuted) line address
 * is sliced into one index per bank and the corresponding bit is set in
 * each bank. An address is a member iff its bit is set in every bank.
 *
 * Bank 0 is indexed by the untouched low-order bits of the line address so
 * the decode (delta) operation can recover the set of cache sets that may
 * hold members — this is what makes bulk invalidation and directory
 * signature expansion possible without walking the whole cache.
 *
 * Every signature also carries an exact mirror set. In `exact` mode
 * (the paper's BSCexact "magic" alias-free signature) the mirror drives
 * behaviour; in Bloom mode it is simulation metadata used only for
 * statistics such as true set sizes and aliasing rates.
 */

#ifndef BULKSC_SIGNATURE_SIGNATURE_HH
#define BULKSC_SIGNATURE_SIGNATURE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace bulksc {

/** Configuration for signature geometry and behaviour. */
struct SignatureConfig
{
    /** Total signature bits (paper: ~2 Kbit). */
    unsigned totalBits = 2048;

    /** Number of Bloom banks (fields); totalBits / numBanks each. */
    unsigned numBanks = 4;

    /** If true, behave as an alias-free (exact) signature: BSCexact. */
    bool exact = false;

    /**
     * Maintain the exact mirror set alongside the Bloom bits. The
     * mirror is simulation metadata: it feeds statistics (true set
     * sizes, aliasing rates, squash attribution) and the distributed
     * arbiter's range partitioning. Plain timing runs can turn it off
     * so the hot path never touches an unordered_set; exec times are
     * unaffected. Forced on for exact mode (the mirror IS the
     * signature there) and for multi-module arbiters.
     */
    bool trackExact = true;

    /** Seed selecting the per-bank hash permutations. */
    std::uint64_t hashSeed = 0xb01d'5c5cULL;

    unsigned bitsPerBank() const { return totalBits / numBanks; }
};

/**
 * An address-set signature supporting the primitive bulk operations of
 * the paper's Figure 2: intersection, union, emptiness, membership, and
 * decoding into cache sets.
 */
class Signature
{
  public:
    explicit Signature(const SignatureConfig &cfg = SignatureConfig{});

    /** Insert a line address (the "accumulate" operation). */
    void insert(LineAddr line);

    /**
     * Membership test (the ∈ operation).
     *
     * In Bloom mode this may report false positives but never false
     * negatives; in exact mode it is precise.
     */
    bool contains(LineAddr line) const;

    /** Precise membership against the exact mirror (stats only).
     *  Meaningless unless tracksExact(). */
    bool containsExact(LineAddr line) const;

    /** True iff the exact mirror is being maintained. */
    bool tracksExact() const { return cfg.exact || cfg.trackExact; }

    /** @return true iff the signature encodes no addresses (=∅). */
    bool empty() const;

    /**
     * @return true iff this signature's intersection with @p other is
     * (possibly) non-empty. In Bloom mode, a banked AND: the result is
     * definitely empty iff some bank ANDs to zero.
     */
    bool intersects(const Signature &other) const;

    /** True intersection emptiness on the exact mirrors (stats only). */
    bool intersectsExact(const Signature &other) const;

    /** Union @p other into this signature (the ∪ operation). */
    void unionWith(const Signature &other);

    /** Remove all addresses. */
    void clear();

    /**
     * Decode (delta operation): the set of bank-0 indices that are set.
     * A cache controller maps these to candidate cache sets; a line with
     * bank-0 index not in this list is definitely not a member.
     */
    std::vector<std::uint32_t> decodeBank0() const;

    /** Bank-0 index of a line (used by buckets mirroring the decode). */
    std::uint32_t bank0Index(LineAddr line) const;

    /** Number of distinct line addresses inserted (exact). */
    std::size_t exactSize() const { return exactSet.size(); }

    /** The exact mirror set (simulation metadata). */
    const std::unordered_set<LineAddr> &exactLines() const
    {
        return exactSet;
    }

    /**
     * Size of this signature when transferred on the interconnect, in
     * bits: the better of the raw bitmap and a sparse per-bank index
     * list, plus a small header. Models the paper's compression of
     * ~2 Kbit signatures to a few hundred bits.
     */
    unsigned compressedBits() const;

    /** Number of bits set across all banks (Bloom occupancy). */
    unsigned popCount() const;

    /** 64-bit digest of the Bloom bit array (explorer state
     *  fingerprinting). Equal signatures hash equal; the exact mirror
     *  does not participate (it never travels on the wire). */
    std::uint64_t hash() const;

    /** Raw bank-bit access (used by the wire codec). */
    bool bitSet(unsigned bank, std::uint32_t idx) const;

    /** Set a raw bank bit (wire codec decode; bypasses the exact
     *  mirror, which never travels on the interconnect). */
    void setBit(unsigned bank, std::uint32_t idx);

    const SignatureConfig &config() const { return cfg; }

  private:
    std::uint32_t bankIndex(unsigned bank, LineAddr line) const;

    bool bloomEmpty() const;

    SignatureConfig cfg;
    unsigned wordsPerBank;

    /** Bit permutation: slot -> source bit of the line address. */
    std::vector<std::uint8_t> permute;

    /** Bit storage: numBanks * wordsPerBank 64-bit words. */
    std::vector<std::uint64_t> bits;

    /** Exact mirror of inserted lines. */
    std::unordered_set<LineAddr> exactSet;
};

} // namespace bulksc

#endif // BULKSC_SIGNATURE_SIGNATURE_HH
