#include "cpu/op.hh"

namespace bulksc {

void
Trace::finalize()
{
    cum.resize(ops.size() + 1);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        cum[i] = acc;
        acc += ops[i].gap + 1;
    }
    cum[ops.size()] = acc;

    numSlots = 0;
    for (const Op &op : ops) {
        if (op.type == OpType::Load && op.aux != kNoSlot &&
            op.aux + 1 > numSlots) {
            numSlots = op.aux + 1;
        }
    }
}

} // namespace bulksc
