/**
 * @file
 * The RC baseline: loads and stores overlap and reorder freely within
 * the instruction window; stores retire into a write buffer and acquire
 * ownership in the background (hardware exclusive prefetching for
 * writes); fences are effectively free because the paper's RC
 * configuration speculates across them.
 *
 * This is the performance ceiling the paper normalizes everything to.
 */

#ifndef BULKSC_CPU_RC_PROCESSOR_HH
#define BULKSC_CPU_RC_PROCESSOR_HH

#include <deque>
#include <unordered_map>

#include "cpu/processor_base.hh"

namespace bulksc {

/** Fully-overlapped release-consistency processor. */
class RcProcessor : public ProcessorBase
{
  public:
    RcProcessor(EventQueue &eq, const std::string &name, ProcId pid,
                MemorySystem &mem, const Trace &trace,
                const CpuParams &params);

  protected:
    void advance() override;

    void syncLoad(Addr addr,
                  std::function<void(std::uint64_t)> done) override;
    void syncStore(Addr addr, std::uint64_t value,
                   std::function<void()> done) override;
    void syncRmw(Addr addr,
                 std::function<std::uint64_t(std::uint64_t)> modify,
                 std::function<void(std::uint64_t)> done) override;

    /** An op in the instruction window. */
    struct WinEntry
    {
        std::size_t opIdx;
        LineAddr line;
        bool completed;
        bool isLoad;
    };

    /** Retire completed ops from the window head. */
    void retire();

    /** True if issue must stall (window/ROB limits; SC++ adds the
     *  SHiQ capacity). */
    virtual bool windowFull() const;

    std::deque<WinEntry> window;

    /** Values of stores whose ownership is still pending, newest
     *  last: a same-address load forwards from here (program order
     *  within one processor holds even under RC). */
    std::unordered_map<Addr, std::deque<std::uint64_t>> pendingStores;

    /** Forward from the pending stores, else the committed value. */
    std::uint64_t readForwarded(Addr addr) const;

    Tick fetchAvail = 0;
    bool gapCharged = false;
    bool syncBusy = false;
};

} // namespace bulksc

#endif // BULKSC_CPU_RC_PROCESSOR_HH
