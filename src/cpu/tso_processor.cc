#include "cpu/tso_processor.hh"

namespace bulksc {

TsoProcessor::TsoProcessor(EventQueue &eq, const std::string &name,
                           ProcId pid, MemorySystem &mem,
                           const Trace &trace, const CpuParams &params)
    : ProcessorBase(eq, name, pid, mem, trace, params)
{}

void
TsoProcessor::issuePrefetches()
{
    if (prefetchPos < pos)
        prefetchPos = pos;
    while (prefetchPos < trace.ops.size() &&
           trace.instrsBetween(pos, prefetchPos) < prm.robInstrs) {
        const Op &op = trace.ops[prefetchPos];
        if (op.type == OpType::Load)
            mem.access(pid, op.addr, MemCmd::Prefetch, nullptr);
        else if (op.type == OpType::Store)
            mem.access(pid, op.addr, MemCmd::PrefetchEx, nullptr);
        ++prefetchPos;
    }
}

void
TsoProcessor::drainStores()
{
    if (drainInFlight || storeBuffer.empty())
        return;
    drainInFlight = true;
    std::size_t idx = storeBuffer.front();
    const Op &op = trace.ops[idx];
    auto fin = [this, idx] {
        const Op &o = trace.ops[idx];
        if (o.tracked)
            mem.writeValue(o.addr, o.storeValue);
        ++nDrained;
        storeBuffer.pop_front();
        drainInFlight = false;
        drainStores();
        advance(); // the front end may have stalled on a full buffer
    };
    auto lat = mem.access(pid, op.addr, MemCmd::ReadEx, fin);
    if (lat)
        eventq.scheduleAfter(*lat, fin);
}

void
TsoProcessor::completeOp(const Op &op)
{
    nRetired += op.gap + 1;
    ++pos;
    gapCharged = false;
}

void
TsoProcessor::advance()
{
    if (busy)
        return;
    while (true) {
        if (pos >= trace.ops.size()) {
            if (storeBuffer.empty() && !drainInFlight)
                markFinished();
            return;
        }
        issuePrefetches();

        const Op &op = trace.ops[pos];
        if (!gapCharged) {
            fetchAvail = fetchAdvance(op.gap + 1);
            gapCharged = true;
        }

        Tick start = curTick();
        if (fetchAvail > start)
            start = fetchAvail;

        if (op.type == OpType::Store) {
            // Stores retire into the store buffer; visibility waits
            // for ownership, in order, off the critical path.
            if (storeBuffer.size() >= kStoreBufferEntries)
                return; // drainStores() re-calls advance()
            if (start > curTick() + prm.batchWindow) {
                scheduleAdvance(start);
                return;
            }
            storeBuffer.push_back(pos);
            drainStores();
            completeOp(op);
            continue;
        }

        if (performTick > start)
            start = performTick;
        if (start > curTick() + prm.batchWindow) {
            scheduleAdvance(start);
            return;
        }

        if (op.type != OpType::Load) {
            // Synchronization: drain the store buffer first (x86-like
            // atomics and fences flush the buffer), then execute.
            if (!storeBuffer.empty() || drainInFlight)
                return; // woken by drainStores()
            if (start > curTick()) {
                scheduleAdvance(start);
                return;
            }
            busy = true;
            execSync(op, [this, &op] {
                busy = false;
                performTick = curTick();
                completeOp(op);
                advance();
            });
            return;
        }

        // Loads perform in order among themselves; a load may bypass
        // (and forward from) the store buffer.
        for (auto it = storeBuffer.rbegin(); it != storeBuffer.rend();
             ++it) {
            const Op &st = trace.ops[*it];
            if (st.addr == op.addr) {
                if (op.aux != kNoSlot)
                    recordLoad(op, st.storeValue);
                performTick = start + 1; // forwarded from the buffer
                completeOp(op);
                goto next_op;
            }
        }
        {
            auto lat = mem.access(pid, op.addr, MemCmd::Read, [this] {
                busy = false;
                performTick = curTick() + 1;
                const Op &o = trace.ops[pos];
                if (o.aux != kNoSlot)
                    recordLoad(o, mem.readValue(o.addr));
                completeOp(o);
                advance();
            });
            if (!lat) {
                busy = true;
                return;
            }
            performTick = start + *lat;
            if (op.aux != kNoSlot)
                recordLoad(op, mem.readValue(op.addr));
            completeOp(op);
        }
      next_op:;
    }
}

void
TsoProcessor::syncLoad(Addr addr, std::function<void(std::uint64_t)> done)
{
    auto lat = mem.access(pid, addr, MemCmd::Read, [this, addr, done] {
        done(mem.readValue(addr));
    });
    if (lat) {
        eventq.scheduleAfter(*lat, [this, addr, done] {
            done(mem.readValue(addr));
        });
    }
}

void
TsoProcessor::syncStore(Addr addr, std::uint64_t value,
                        std::function<void()> done)
{
    auto lat =
        mem.access(pid, addr, MemCmd::ReadEx, [this, addr, value, done] {
            mem.writeValue(addr, value);
            done();
        });
    if (lat) {
        eventq.scheduleAfter(*lat, [this, addr, value, done] {
            mem.writeValue(addr, value);
            done();
        });
    }
}

void
TsoProcessor::syncRmw(Addr addr,
                      std::function<std::uint64_t(std::uint64_t)> modify,
                      std::function<void(std::uint64_t)> done)
{
    auto fin = [this, addr, modify, done] {
        std::uint64_t old = mem.readValue(addr);
        std::uint64_t next = modify(old);
        if (next != old)
            mem.writeValue(addr, next);
        done(old);
    };
    auto lat = mem.access(pid, addr, MemCmd::ReadEx, fin);
    if (lat)
        eventq.scheduleAfter(*lat, fin);
}

} // namespace bulksc
