#include "cpu/rc_processor.hh"

namespace bulksc {

RcProcessor::RcProcessor(EventQueue &eq, const std::string &name,
                         ProcId pid, MemorySystem &mem,
                         const Trace &trace, const CpuParams &params)
    : ProcessorBase(eq, name, pid, mem, trace, params)
{}

std::uint64_t
RcProcessor::readForwarded(Addr addr) const
{
    auto it = pendingStores.find(addr);
    if (it != pendingStores.end() && !it->second.empty())
        return it->second.back();
    return mem.readValue(addr);
}

void
RcProcessor::retire()
{
    while (!window.empty() && window.front().completed) {
        const Op &op = trace.ops[window.front().opIdx];
        nRetired += op.gap + 1;
        window.pop_front();
    }
}

bool
RcProcessor::windowFull() const
{
    if (window.size() >= prm.windowOps)
        return true;
    if (!window.empty() &&
        trace.instrsBetween(window.front().opIdx, pos) >= prm.robInstrs) {
        return true;
    }
    return false;
}

void
RcProcessor::advance()
{
    retire();

    while (true) {
        if (pos >= trace.ops.size()) {
            if (window.empty() && !syncBusy)
                markFinished();
            return;
        }
        if (syncBusy || windowFull())
            return;

        const Op &op = trace.ops[pos];
        if (!gapCharged) {
            fetchAvail = fetchAdvance(op.gap + 1);
            gapCharged = true;
        }
        if (fetchAvail > curTick()) {
            scheduleAdvance(fetchAvail);
            return;
        }

        if (op.type == OpType::Load) {
            std::size_t idx = pos;
            window.push_back(
                {idx, lineOf(op.addr, prm.lineBytes), false, true});
            // NOTE: no epoch guard here — after a squash the window
            // scan simply finds nothing (dropped entries), while
            // completions for surviving older entries must still
            // land or the window would wedge.
            auto lat = mem.access(pid, op.addr, MemCmd::Read,
                                  [this, idx] {
                                      for (auto &w : window) {
                                          if (w.opIdx == idx)
                                              w.completed = true;
                                      }
                                      const Op &o = trace.ops[idx];
                                      if (o.aux != kNoSlot)
                                          recordLoad(
                                              o,
                                              readForwarded(o.addr));
                                      advance();
                                  });
            if (lat) {
                // L1 hit: completes within the window shadow.
                window.back().completed = true;
                if (op.aux != kNoSlot)
                    recordLoad(op, readForwarded(op.addr));
            }
            ++pos;
            gapCharged = false;
            retire();
        } else if (op.type == OpType::Store) {
            // Stores never block: they retire into the write buffer
            // and become visible when ownership arrives.
            window.push_back(
                {pos, lineOf(op.addr, prm.lineBytes), true, false});
            Addr a = op.addr;
            std::uint64_t v = op.storeValue;
            bool tracked = op.tracked;
            auto lat = mem.access(pid, a, MemCmd::ReadEx,
                                  [this, a, v, tracked] {
                                      if (tracked) {
                                          mem.writeValue(a, v);
                                          auto it =
                                              pendingStores.find(a);
                                          if (it !=
                                                  pendingStores.end() &&
                                              !it->second.empty()) {
                                              it->second.pop_front();
                                              if (it->second.empty())
                                                  pendingStores.erase(
                                                      it);
                                          }
                                      }
                                  });
            if (lat) {
                if (tracked)
                    mem.writeValue(a, v);
            } else if (tracked) {
                pendingStores[a].push_back(v);
            }
            ++pos;
            gapCharged = false;
            retire();
        } else {
            // Synchronization: wait for it to complete before issuing
            // further ops (conservative; sync is rare).
            syncBusy = true;
            execSync(op, [this, idx = pos] {
                syncBusy = false;
                nRetired += trace.ops[idx].gap + 1;
                ++pos;
                gapCharged = false;
                advance();
            });
            return;
        }
    }
}

void
RcProcessor::syncLoad(Addr addr, std::function<void(std::uint64_t)> done)
{
    auto lat = mem.access(pid, addr, MemCmd::Read, [this, addr, done] {
        done(mem.readValue(addr));
    });
    if (lat) {
        eventq.scheduleAfter(*lat, [this, addr, done] {
            done(mem.readValue(addr));
        });
    }
}

void
RcProcessor::syncStore(Addr addr, std::uint64_t value,
                       std::function<void()> done)
{
    auto lat =
        mem.access(pid, addr, MemCmd::ReadEx, [this, addr, value, done] {
            mem.writeValue(addr, value);
            done();
        });
    if (lat) {
        eventq.scheduleAfter(*lat, [this, addr, value, done] {
            mem.writeValue(addr, value);
            done();
        });
    }
}

void
RcProcessor::syncRmw(Addr addr,
                     std::function<std::uint64_t(std::uint64_t)> modify,
                     std::function<void(std::uint64_t)> done)
{
    auto fin = [this, addr, modify, done] {
        std::uint64_t old = mem.readValue(addr);
        std::uint64_t next = modify(old);
        if (next != old)
            mem.writeValue(addr, next);
        done(old);
    };
    auto lat = mem.access(pid, addr, MemCmd::ReadEx, fin);
    if (lat)
        eventq.scheduleAfter(*lat, fin);
}

} // namespace bulksc
