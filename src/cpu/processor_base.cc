#include "cpu/processor_base.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/trace_log.hh"

namespace bulksc {

ProcessorBase::ProcessorBase(EventQueue &eq, const std::string &name,
                             ProcId pid_, MemorySystem &mem_,
                             const Trace &trace_, const CpuParams &params)
    : SimObject(eq, name), pid(pid_), mem(mem_), trace(trace_),
      prm(params)
{
    panic_if(trace.cum.size() != trace.ops.size() + 1,
             "trace not finalized");
    results.assign(trace.numSlots, 0);
    mem.setListener(pid, this);
}

void
ProcessorBase::start()
{
    scheduleAdvance(curTick());
}

void
ProcessorBase::scheduleAdvance(Tick when)
{
    if (when < curTick())
        when = curTick();
    if (advancePending && advanceAt <= when)
        return;
    advancePending = true;
    advanceAt = when;
    eventq.schedule(when, [this, when] {
        if (advancePending && advanceAt == when)
            advancePending = false;
        if (!finishedFlag)
            advance();
    });
}

Tick
ProcessorBase::fetchAdvance(std::uint32_t instrs)
{
    if (fetchTick < curTick())
        fetchTick = curTick();
    std::uint64_t total = instrs + fetchCarry;
    fetchTick += total / prm.issueWidth;
    fetchCarry = static_cast<std::uint32_t>(total % prm.issueWidth);
    return fetchTick;
}

void
ProcessorBase::markFinished()
{
    if (finishedFlag)
        return;
    finishedFlag = true;
    finishTick_ = curTick() > fetchTick ? curTick() : fetchTick;
    if (onFinished)
        onFinished();
}

void
ProcessorBase::chargeInstrs(unsigned n)
{
    nSpin += n;
    nRetired += n;
    fetchAdvance(n);
}

void
ProcessorBase::execIo(std::function<void()> done)
{
    eventq.scheduleAfter(prm.ioLatency, std::move(done));
}

void
ProcessorBase::execSync(const Op &op, std::function<void()> done)
{
    // A squash (epoch bump) abandons any in-flight sync chain; the
    // re-executed op starts a fresh one.
    const std::uint64_t e = epoch;
    switch (op.type) {
      case OpType::Acquire: {
        // Test-and-set with exponential backoff; atomicity comes from
        // the model's syncRmw primitive.
        // The stored function must not own itself (a shared_ptr
        // cycle never frees): it captures a weak_ptr, and each
        // in-flight continuation carries the strong reference.
        auto attempt = std::make_shared<std::function<void()>>();
        auto attempts = std::make_shared<unsigned>(0);
        Addr lock = op.addr;
        std::weak_ptr<std::function<void()>> wattempt = attempt;
        *attempt = [this, e, lock, done, wattempt, attempts] {
            if (epoch != e)
                return;
            auto self = wattempt.lock();
            syncRmw(
                lock,
                [](std::uint64_t v) {
                    return v == 0 ? std::uint64_t{1} : v;
                },
                [this, e, done, self,
                 attempts](std::uint64_t old) {
                    if (epoch != e)
                        return;
                    if (old == 0) {
                        done();
                        return;
                    }
                    ++*attempts;
                    chargeInstrs(prm.spinLoopInstrs);
                    unsigned factor =
                        *attempts < 8 ? *attempts : 8;
                    eventq.scheduleAfter(prm.spinPoll * factor,
                                         [self] { (*self)(); });
                });
        };
        (*attempt)();
        return;
      }
      case OpType::Release:
        syncStore(op.addr, 0, std::move(done));
        return;
      case OpType::BarrierArrive: {
        // Centralized barrier: count word at op.addr, generation word
        // one line above. The last arriver resets the count and
        // publishes generation = barrier index + 1 (idempotent under
        // chunk re-execution).
        Addr count_addr = op.addr;
        Addr gen_addr = op.addr + prm.lineBytes;
        std::uint64_t gen_val = op.aux + 1;
        unsigned total = prm.numBarrierProcs;
        syncRmw(
            count_addr,
            [](std::uint64_t v) { return v + 1; },
            [this, e, count_addr, gen_addr, gen_val, total,
             done](std::uint64_t old) {
                if (epoch != e)
                    return;
                TRACE_LOG(TraceCat::Sync, curTick(), name(),
                          ": barrier arrive, count ", old, " -> ",
                          old + 1);
                if (old + 1 == total) {
                    syncStore(count_addr, 0,
                              [this, e, gen_addr, gen_val, done] {
                                  if (epoch != e)
                                      return;
                                  syncStore(gen_addr, gen_val, done);
                              });
                } else {
                    done();
                }
            });
        return;
      }
      case OpType::BarrierWait: {
        Addr gen_addr = op.addr + prm.lineBytes;
        std::uint64_t want = op.aux + 1;
        // Weak self-capture, as in Acquire above.
        auto poll = std::make_shared<std::function<void()>>();
        std::weak_ptr<std::function<void()>> wpoll = poll;
        *poll = [this, e, gen_addr, want, done, wpoll] {
            if (epoch != e)
                return;
            auto self = wpoll.lock();
            syncLoad(gen_addr,
                     [this, e, want, done, self](std::uint64_t v) {
                         if (epoch != e)
                             return;
                         if (v >= want) {
                             done();
                             return;
                         }
                         chargeInstrs(prm.spinLoopInstrs);
                         eventq.scheduleAfter(prm.spinPoll,
                                              [self] { (*self)(); });
                     });
        };
        (*poll)();
        return;
      }
      case OpType::Io:
        execIo(std::move(done));
        return;
      case OpType::TxBegin:
      case OpType::TxEnd:
        // Baselines have no transactional support: the markers are
        // no-ops (the BulkSC models intercept them before execSync
        // and align chunk boundaries to them).
        done();
        return;
      default:
        panic("execSync called with non-sync op");
    }
}

std::uint64_t
ProcessorBase::fingerprint() const
{
    std::uint64_t h = mix64(0x435055ULL); // "CPU"
    h = mix64(h ^ pid);
    h = mix64(h ^ pos);
    h = mix64(h ^ (std::uint64_t{finishedFlag} << 1));
    for (std::uint64_t v : results)
        h = mix64(h ^ v);
    return h;
}

} // namespace bulksc
