#include "cpu/scpp_processor.hh"

namespace bulksc {

ScppProcessor::ScppProcessor(EventQueue &eq, const std::string &name,
                             ProcId pid, MemorySystem &mem,
                             const Trace &trace, const CpuParams &params,
                             unsigned shiq_entries)
    : RcProcessor(eq, name, pid, mem, trace, params),
      shiqEntries(shiq_entries)
{}

bool
ScppProcessor::windowFull() const
{
    if (RcProcessor::windowFull())
        return true;
    // Speculatively performed ops occupy SHiQ entries until every
    // older op completes; completed entries still in the window are
    // exactly that set (retire pops SC-safe heads immediately).
    unsigned spec = 0;
    for (const WinEntry &w : window) {
        if (w.completed)
            ++spec;
    }
    if (spec >= shiqEntries) {
        ++nShiqStalls;
        return true;
    }
    return false;
}

void
ScppProcessor::onExternalInval(LineAddr line)
{
    maybeSquash(line);
}

void
ScppProcessor::onLineDisplaced(LineAddr line, bool dirty)
{
    (void)dirty;
    // Unlike BulkSC, SC++ must also treat displacements of
    // speculatively accessed lines as potential violations, because
    // the SHiQ can no longer observe coherence events for them.
    maybeSquash(line);
}

void
ScppProcessor::maybeSquash(LineAddr line)
{
    // Completed ops still in the window performed while an older op
    // was incomplete — they are the speculative (SHiQ) set.
    for (std::size_t i = 0; i < window.size(); ++i) {
        const WinEntry &w = window[i];
        if (!w.completed || w.line != line)
            continue;

        // Violation: roll back to this op and re-execute.
        std::size_t target = w.opIdx;
        nWasted += trace.instrsBetween(target, pos);
        ++nSquashes;
        while (!window.empty() && window.back().opIdx >= target)
            window.pop_back();
        pos = target;
        ++epoch;
        syncBusy = false;
        gapCharged = false;
        scheduleAdvance(curTick() + prm.squashPenalty);
        return;
    }
}

} // namespace bulksc
