#include "cpu/sc_processor.hh"

namespace bulksc {

ScProcessor::ScProcessor(EventQueue &eq, const std::string &name,
                         ProcId pid, MemorySystem &mem,
                         const Trace &trace, const CpuParams &params)
    : ProcessorBase(eq, name, pid, mem, trace, params)
{}

void
ScProcessor::issuePrefetches()
{
    if (prefetchPos < pos)
        prefetchPos = pos;
    while (prefetchPos < trace.ops.size() &&
           trace.instrsBetween(pos, prefetchPos) < prm.robInstrs) {
        const Op &op = trace.ops[prefetchPos];
        if (op.type == OpType::Load) {
            mem.access(pid, op.addr, MemCmd::Prefetch, nullptr);
        } else if (op.type == OpType::Store) {
            mem.access(pid, op.addr, MemCmd::PrefetchEx, nullptr);
        }
        ++prefetchPos;
    }
}

void
ScProcessor::completeOp(const Op &op)
{
    if (op.type == OpType::Load) {
        if (op.tracked || op.aux != kNoSlot)
            recordLoad(op, mem.readValue(op.addr));
    } else if (op.type == OpType::Store) {
        if (op.tracked)
            mem.writeValue(op.addr, op.storeValue);
    }
    nRetired += op.gap + 1;
    ++pos;
    gapCharged = false;
}

void
ScProcessor::advance()
{
    if (busy)
        return;
    while (true) {
        if (pos >= trace.ops.size()) {
            markFinished();
            return;
        }
        issuePrefetches();

        const Op &op = trace.ops[pos];
        if (!gapCharged) {
            fetchAvail = fetchAdvance(op.gap + 1);
            gapCharged = true;
        }

        Tick start = curTick();
        if (fetchAvail > start)
            start = fetchAvail;
        if (performTick > start)
            start = performTick;

        if (start > curTick() + prm.batchWindow) {
            scheduleAdvance(start);
            return;
        }

        if (op.type != OpType::Load && op.type != OpType::Store) {
            // Synchronization executes at a precise time, in order.
            if (start > curTick()) {
                scheduleAdvance(start);
                return;
            }
            busy = true;
            execSync(op, [this, &op] {
                busy = false;
                performTick = curTick();
                completeOp(op);
                advance();
            });
            return;
        }

        MemCmd cmd =
            op.type == OpType::Load ? MemCmd::Read : MemCmd::ReadEx;
        auto lat = mem.access(pid, op.addr, cmd, [this] {
            // Demand miss filled: perform now.
            busy = false;
            performTick = curTick() + 1;
            completeOp(trace.ops[pos]);
            advance();
        });
        if (!lat) {
            busy = true;
            return;
        }
        // Requirement (i) of Section 2.1: the next memory operation
        // waits for the previous one to complete, so even L1 hits
        // serialize at their full round-trip latency. Prefetching
        // turns most misses into hits but cannot remove this chain.
        performTick = start + *lat;
        completeOp(op);
    }
}

void
ScProcessor::syncLoad(Addr addr, std::function<void(std::uint64_t)> done)
{
    auto lat = mem.access(pid, addr, MemCmd::Read, [this, addr, done] {
        done(mem.readValue(addr));
    });
    if (lat) {
        eventq.scheduleAfter(*lat, [this, addr, done] {
            done(mem.readValue(addr));
        });
    }
}

void
ScProcessor::syncStore(Addr addr, std::uint64_t value,
                       std::function<void()> done)
{
    auto lat =
        mem.access(pid, addr, MemCmd::ReadEx, [this, addr, value, done] {
            mem.writeValue(addr, value);
            done();
        });
    if (lat) {
        eventq.scheduleAfter(*lat, [this, addr, value, done] {
            mem.writeValue(addr, value);
            done();
        });
    }
}

void
ScProcessor::syncRmw(Addr addr,
                     std::function<std::uint64_t(std::uint64_t)> modify,
                     std::function<void(std::uint64_t)> done)
{
    auto fin = [this, addr, modify, done] {
        std::uint64_t old = mem.readValue(addr);
        std::uint64_t next = modify(old);
        if (next != old)
            mem.writeValue(addr, next);
        done(old);
    };
    auto lat = mem.access(pid, addr, MemCmd::ReadEx, fin);
    if (lat)
        eventq.scheduleAfter(*lat, fin);
}

} // namespace bulksc
