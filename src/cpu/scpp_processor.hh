/**
 * @file
 * The SC++ baseline (Gniady, Falsafi, Vijaykumar [15]): loads and
 * stores overlap and reorder like RC, but every operation performed
 * while an older one is incomplete is speculative and tracked in the
 * Speculative History Queue (SHiQ). An incoming invalidation or a cache
 * displacement that hits a speculatively performed access is an SC
 * violation: the processor rolls back to that operation and
 * re-executes.
 *
 * With a large SHiQ (the paper's configuration uses 2K entries) SC++
 * performs nearly as fast as RC; a small SHiQ (SC++lite-style) degrades
 * toward SC — exposed here as a constructor parameter for ablations.
 */

#ifndef BULKSC_CPU_SCPP_PROCESSOR_HH
#define BULKSC_CPU_SCPP_PROCESSOR_HH

#include "cpu/rc_processor.hh"

namespace bulksc {

/** SC++ processor: RC-like overlap plus SHiQ-based violation repair. */
class ScppProcessor : public RcProcessor
{
  public:
    ScppProcessor(EventQueue &eq, const std::string &name, ProcId pid,
                  MemorySystem &mem, const Trace &trace,
                  const CpuParams &params, unsigned shiq_entries = 2048);

    void onExternalInval(LineAddr line) override;
    void onLineDisplaced(LineAddr line, bool dirty) override;

    std::uint64_t shiqStalls() const { return nShiqStalls; }

  protected:
    /** Adds the SHiQ capacity limit: issue stalls while the number of
     *  speculatively performed (completed but not SC-retirable) ops
     *  reaches the SHiQ size. A small SHiQ degrades toward SC —
     *  SC++lite-style. */
    bool windowFull() const override;

  private:
    /** Roll back to the oldest speculative access of @p line. */
    void maybeSquash(LineAddr line);

    unsigned shiqEntries;
    mutable std::uint64_t nShiqStalls = 0;
};

} // namespace bulksc

#endif // BULKSC_CPU_SCPP_PROCESSOR_HH
