/**
 * @file
 * Common machinery for all processor models: front-end (fetch/issue
 * rate) accounting, load-value recording, statistics, and the
 * synchronization engine that executes lock/barrier operations on top
 * of model-specific load/store/RMW primitives.
 *
 * Timing is modelled at memory-op granularity: non-memory instructions
 * advance the front-end clock at the issue width; memory and
 * synchronization operations are subject to each consistency model's
 * ordering rules. This keeps the relative behaviour of SC / RC / SC++ /
 * BulkSC (the paper's comparison axis) while staying fast enough to run
 * the full evaluation.
 */

#ifndef BULKSC_CPU_PROCESSOR_BASE_HH
#define BULKSC_CPU_PROCESSOR_BASE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/op.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace bulksc {

/** Processor timing parameters (defaults follow the paper's Table 2). */
struct CpuParams
{
    /** Non-memory instructions issued per cycle. */
    unsigned issueWidth = 4;

    /** Maximum memory ops in flight (load/store queue). */
    unsigned windowOps = 56;

    /** Instruction window (ROB) size; bounds lookahead. */
    unsigned robInstrs = 176;

    /** Cycles to restore a checkpoint / recover from a squash. */
    Tick squashPenalty = 15;

    /** Spin-loop poll interval, cycles. */
    Tick spinPoll = 25;

    /** Instructions charged per spin-loop iteration. */
    unsigned spinLoopInstrs = 8;

    /** Latency of an uncached (I/O) operation. */
    Tick ioLatency = 100;

    /** Processors participating in barriers. */
    unsigned numBarrierProcs = 8;

    /** Cache line size (locates the barrier generation word). */
    unsigned lineBytes = kDefaultLineBytes;

    /** Maximum ticks of L1-hit work batched into one event. */
    Tick batchWindow = 64;
};

/**
 * Abstract base of all processor models.
 */
class ProcessorBase : public SimObject, public CacheListener
{
  public:
    ProcessorBase(EventQueue &eq, const std::string &name, ProcId pid,
                  MemorySystem &mem, const Trace &trace,
                  const CpuParams &params);

    /** Begin executing the trace. */
    void start();

    bool finished() const { return finishedFlag; }

    /** Tick at which the trace completed (valid once finished()). */
    Tick finishTick() const { return finishTick_; }

    /** Invoked once when the trace completes. */
    void setOnFinished(std::function<void()> cb)
    {
        onFinished = std::move(cb);
    }

    ProcId procId() const { return pid; }

    /** Values observed by recording loads, indexed by slot. */
    const std::vector<std::uint64_t> &loadResults() const
    {
        return results;
    }

    // --- statistics ---
    std::uint64_t retiredInstrs() const { return nRetired; }
    std::uint64_t wastedInstrs() const { return nWasted; }
    std::uint64_t squashes() const { return nSquashes; }
    std::uint64_t spinInstrs() const { return nSpin; }

    /**
     * Digest of the model-visible execution state (trace position,
     * recorded load values, model-specific chunk machinery) for
     * explorer revisit pruning. Timing state is excluded on purpose:
     * two runs in "the same" protocol state at different ticks should
     * fingerprint equal.
     */
    virtual std::uint64_t fingerprint() const;

  protected:
    /** Model-specific execution engine; re-entered on every wakeup. */
    virtual void advance() = 0;

    /**
     * Charge @p instrs instructions to the front end.
     * @return the tick at which the last of them has issued.
     */
    Tick fetchAdvance(std::uint32_t instrs);

    /** Mark the trace complete and fire the finished callback. */
    void markFinished();

    /** Schedule an advance() wakeup at absolute tick @p when. */
    void scheduleAdvance(Tick when);

    // --- synchronization engine ---

    /**
     * Execute a synchronization or I/O op; @p done fires when it
     * completes. Built on the model primitives below.
     */
    void execSync(const Op &op, std::function<void()> done);

    /** Model-specific timed load of a tracked value. */
    virtual void syncLoad(Addr addr,
                          std::function<void(std::uint64_t)> done) = 0;

    /** Model-specific timed store of a tracked value. */
    virtual void syncStore(Addr addr, std::uint64_t value,
                           std::function<void()> done) = 0;

    /**
     * Model-specific atomic read-modify-write: applies @p modify to the
     * current value and reports the old value. Baselines make this
     * atomic at the completion event; BulkSC makes it a speculative
     * load + store pair whose atomicity comes from the chunk.
     */
    virtual void
    syncRmw(Addr addr,
            std::function<std::uint64_t(std::uint64_t)> modify,
            std::function<void(std::uint64_t)> done) = 0;

    /** Perform an uncached I/O operation (overridden by BulkSC to
     *  drain chunks first, Section 4.1.3). */
    virtual void execIo(std::function<void()> done);

    /** Charge spin-loop instructions (models extend, e.g. to grow the
     *  current chunk). */
    virtual void chargeInstrs(unsigned n);

    /** Record a load's observed value if it has a result slot. */
    void
    recordLoad(const Op &op, std::uint64_t v)
    {
        if (op.aux != kNoSlot && op.aux < results.size())
            results[op.aux] = v;
    }

    ProcId pid;
    MemorySystem &mem;
    const Trace &trace;
    CpuParams prm;

    /** Next op index to execute. */
    std::size_t pos = 0;

    /** Squash epoch: callbacks from before a squash are stale. */
    std::uint64_t epoch = 0;

    // statistics (maintained by subclasses)
    std::uint64_t nRetired = 0;
    std::uint64_t nWasted = 0;
    std::uint64_t nSquashes = 0;
    std::uint64_t nSpin = 0;

  private:
    Tick fetchTick = 0;
    std::uint32_t fetchCarry = 0;

    bool finishedFlag = false;
    Tick finishTick_ = 0;
    std::function<void()> onFinished;

    std::vector<std::uint64_t> results;

    bool advancePending = false;
    Tick advanceAt = 0;
};

} // namespace bulksc

#endif // BULKSC_CPU_PROCESSOR_BASE_HH
