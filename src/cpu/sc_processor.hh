/**
 * @file
 * The SC baseline: memory operations perform strictly in program order
 * (requirement (i) of Section 2.1), enhanced with the two techniques of
 * Gharachorloo et al. [12] that the paper's SC configuration includes:
 * hardware prefetching for reads and exclusive prefetching for writes.
 *
 * Ops within the instruction window issue (exclusive) prefetches as
 * soon as they enter it; the demand access then usually hits unless the
 * line was invalidated in between — exactly the residual cost the
 * technique leaves.
 */

#ifndef BULKSC_CPU_SC_PROCESSOR_HH
#define BULKSC_CPU_SC_PROCESSOR_HH

#include "cpu/processor_base.hh"

namespace bulksc {

/** In-order-perform SC processor with read/exclusive prefetching. */
class ScProcessor : public ProcessorBase
{
  public:
    ScProcessor(EventQueue &eq, const std::string &name, ProcId pid,
                MemorySystem &mem, const Trace &trace,
                const CpuParams &params);

  protected:
    void advance() override;

    void syncLoad(Addr addr,
                  std::function<void(std::uint64_t)> done) override;
    void syncStore(Addr addr, std::uint64_t value,
                   std::function<void()> done) override;
    void syncRmw(Addr addr,
                 std::function<std::uint64_t(std::uint64_t)> modify,
                 std::function<void(std::uint64_t)> done) override;

  private:
    void issuePrefetches();
    void completeOp(const Op &op);

    /** Next op index to prefetch for. */
    std::size_t prefetchPos = 0;

    /** Time the in-order perform chain has reached. */
    Tick performTick = 0;

    /** Front-end availability of the current op. */
    Tick fetchAvail = 0;
    bool gapCharged = false;

    /** An op (miss or sync) is in flight. */
    bool busy = false;
};

} // namespace bulksc

#endif // BULKSC_CPU_SC_PROCESSOR_HH
