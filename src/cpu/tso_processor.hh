/**
 * @file
 * A TSO (total store order) baseline — an extension beyond the
 * paper's SC / RC / SC++ comparison set, provided because TSO is what
 * commodity x86-like machines implement and it brackets BulkSC's
 * target nicely: loads stay ordered among themselves and stores stay
 * ordered among themselves, but stores drain through a store buffer
 * so the store->load reordering of the store-buffering litmus test is
 * architecturally allowed.
 *
 * Implementation: an in-order load chain (loads perform one at a
 * time, like the SC model) plus a non-blocking store path with
 * exclusive prefetching (stores retire into the buffer immediately
 * and become visible when ownership arrives, preserving their order).
 */

#ifndef BULKSC_CPU_TSO_PROCESSOR_HH
#define BULKSC_CPU_TSO_PROCESSOR_HH

#include <deque>

#include "cpu/processor_base.hh"

namespace bulksc {

/** Total-store-order processor: ordered loads, buffered stores. */
class TsoProcessor : public ProcessorBase
{
  public:
    TsoProcessor(EventQueue &eq, const std::string &name, ProcId pid,
                 MemorySystem &mem, const Trace &trace,
                 const CpuParams &params);

    /** Stores that drained from the store buffer. */
    std::uint64_t drainedStores() const { return nDrained; }

  protected:
    void advance() override;

    void syncLoad(Addr addr,
                  std::function<void(std::uint64_t)> done) override;
    void syncStore(Addr addr, std::uint64_t value,
                   std::function<void()> done) override;
    void syncRmw(Addr addr,
                 std::function<std::uint64_t(std::uint64_t)> modify,
                 std::function<void(std::uint64_t)> done) override;

  private:
    void issuePrefetches();
    void completeOp(const Op &op);

    /** Drain the head of the store buffer when ownership arrives. */
    void drainStores();

    std::size_t prefetchPos = 0;

    /** Time the in-order load chain has reached. */
    Tick performTick = 0;

    Tick fetchAvail = 0;
    bool gapCharged = false;
    bool busy = false;

    /** FIFO store buffer: op indices awaiting drain. */
    std::deque<std::size_t> storeBuffer;
    bool drainInFlight = false;
    std::uint64_t nDrained = 0;

    /** Store-buffer capacity; the front end stalls when full. */
    static constexpr std::size_t kStoreBufferEntries = 16;
};

} // namespace bulksc

#endif // BULKSC_CPU_TSO_PROCESSOR_HH
