/**
 * @file
 * The dynamic-instruction-stream representation consumed by processor
 * models.
 *
 * A trace is a per-processor sequence of memory and synchronization
 * operations; non-memory instructions are folded into each op's `gap`
 * (the number of non-memory instructions preceding it). Traces are
 * pre-materialized so that a squashed chunk re-executes exactly the
 * same dynamic operations, which is what the paper's re-execution
 * semantics require.
 */

#ifndef BULKSC_CPU_OP_HH
#define BULKSC_CPU_OP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace bulksc {

/** Kind of a dynamic operation. */
enum class OpType : std::uint8_t
{
    Load,
    Store,
    Acquire,       //!< lock acquire (test-and-set with spin)
    Release,       //!< lock release (store 0)
    BarrierArrive, //!< increment the barrier count (last flips gen)
    BarrierWait,   //!< spin until the barrier generation advances
    Io,            //!< uncached operation (Section 4.1.3)
    TxBegin,       //!< transaction start (Section 8 extension: on
                   //!< BulkSC a transaction is a boundary-aligned
                   //!< chunk; baselines treat it as a no-op)
    TxEnd,         //!< transaction commit point
};

/** Sentinel for "this load does not record its value". */
constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

/** One dynamic operation. */
struct Op
{
    /** Byte address (lock address for Acquire/Release; barrier base
     *  address for barrier ops — the generation word lives one line
     *  above the count word). */
    Addr addr = 0;

    /** Non-memory instructions preceding this op. */
    std::uint32_t gap = 0;

    /** Barrier index for barrier ops; load-result slot for recording
     *  loads; kNoSlot otherwise. */
    std::uint32_t aux = kNoSlot;

    /** For Store ops on tracked addresses: the value written. */
    std::uint64_t storeValue = 0;

    OpType type = OpType::Load;

    /** Stack/private reference (statically-private candidate, §5.1). */
    bool stackRef = false;

    /** For tracked Load/Store: participate in value tracking. */
    bool tracked = false;
};

/** A per-processor dynamic operation stream. */
struct Trace
{
    std::vector<Op> ops;

    /** cum[i] = instructions (gaps + ops) strictly before op i;
     *  cum[size()] = total. Built by finalize(). */
    std::vector<std::uint64_t> cum;

    /** Number of load-result slots referenced by recording loads. */
    std::uint32_t numSlots = 0;

    /** Build the cumulative instruction index. */
    void finalize();

    std::uint64_t
    totalInstrs() const
    {
        return cum.empty() ? 0 : cum.back();
    }

    /** Instructions spanned by ops [i, j). */
    std::uint64_t
    instrsBetween(std::size_t i, std::size_t j) const
    {
        return cum[j] - cum[i];
    }
};

} // namespace bulksc

#endif // BULKSC_CPU_OP_HH
