/**
 * @file
 * Cache geometry description shared by tag arrays, the directory's
 * DirBDM decode function, and chunk overflow checks.
 */

#ifndef BULKSC_MEM_CACHE_GEOMETRY_HH
#define BULKSC_MEM_CACHE_GEOMETRY_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace bulksc {

/** Size/associativity/line-size triple describing a cache. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = kDefaultLineBytes;

    std::uint64_t
    numLines() const
    {
        return sizeBytes / lineBytes;
    }

    std::uint64_t
    numSets() const
    {
        return numLines() / assoc;
    }

    /** Set index of a line address. */
    std::uint32_t
    setIndex(LineAddr line) const
    {
        return static_cast<std::uint32_t>(line % numSets());
    }

    void
    validate() const
    {
        fatal_if(!isPowerOf2(lineBytes), "line size must be power of 2");
        fatal_if(!isPowerOf2(numSets()), "set count must be power of 2");
        fatal_if(assoc == 0, "associativity must be non-zero");
    }
};

} // namespace bulksc

#endif // BULKSC_MEM_CACHE_GEOMETRY_HH
