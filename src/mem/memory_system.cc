#include "mem/memory_system.hh"

#include <bit>

#include "sim/event_trace.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/trace_log.hh"

namespace bulksc {

namespace {

/** Footprint of a line-addressed coherence message (exploration). */
MsgFootprint
lineFp(LineAddr line)
{
    MsgFootprint fp;
    fp.hasLine = true;
    fp.line = line;
    return fp;
}

/** Footprint of a W-signature-carrying message (exploration). */
MsgFootprint
wsigFp(std::shared_ptr<const Signature> w)
{
    MsgFootprint fp;
    fp.wsig = std::move(w);
    return fp;
}

} // namespace

MemorySystem::MemorySystem(EventQueue &eq, Network &n,
                           const MemParams &params)
    : SimObject(eq, "memsys"), prm(params), net(n), l2(prm.l2)
{
    fatal_if(prm.numProcs == 0 || prm.numProcs > 32,
             "numProcs must be in [1, 32]");
    fatal_if(prm.numDirectories == 0, "need at least one directory");
    l1s.reserve(prm.numProcs);
    for (unsigned p = 0; p < prm.numProcs; ++p)
        l1s.emplace_back(prm.l1);
    for (unsigned d = 0; d < prm.numDirectories; ++d) {
        dirs.push_back(std::make_unique<Directory>(
            prm.sigCfg, prm.numProcs, prm.dirCacheEntries));
    }
    committingSigs.resize(prm.numDirectories);
}

void
MemorySystem::setListener(ProcId p, CacheListener *l)
{
    l1s.at(p).listener = l;
}

unsigned
MemorySystem::dirOf(LineAddr line) const
{
    // Coarse 32 KB granules (not line interleaving): a chunk with
    // data locality stays within one directory/arbiter range, which
    // is what makes distributed arbitration mostly single-range
    // (Section 4.2.3).
    return static_cast<unsigned>((line >> 10) % dirs.size());
}

const DirEntry *
MemorySystem::peekDir(LineAddr line) const
{
    return dirs[dirOf(line)]->peek(line);
}

CacheArray::VictimFilter
MemorySystem::filterFor(ProcId p)
{
    CacheListener *l = l1s[p].listener;
    if (!l)
        return nullptr;
    return [l](LineAddr line) { return l->mayVictimize(line); };
}

std::optional<Tick>
MemorySystem::access(ProcId p, Addr addr, MemCmd cmd, AccessCallback cb)
{
    LineAddr line = lineOf(addr, prm.l1.lineBytes);
    L1 &c = l1s[p];

    CacheLine *e = c.array.lookup(line);
    if (e && (!wantsOwnership(cmd) || e->state == LineState::Dirty))
        return prm.l1Latency;

    // Coalesce into an outstanding MSHR for the same line. The command
    // can still be strengthened until the directory starts processing.
    auto coalesce = [&](std::unordered_map<LineAddr, Mshr> &table) {
        auto it = table.find(line);
        if (it == table.end())
            return false;
        if (cb)
            it->second.callbacks.push_back(std::move(cb));
        if (wantsOwnership(cmd) && !it->second.dispatched &&
            !wantsOwnership(it->second.cmd)) {
            it->second.cmd = MemCmd::ReadEx;
        }
        return true;
    };
    if (coalesce(c.mshrs) || coalesce(c.queuedMshrs))
        return std::nullopt;

    if (c.mshrs.size() >= prm.l1Mshrs) {
        Mshr &m = c.queuedMshrs[line];
        m.cmd = cmd;
        if (cb)
            m.callbacks.push_back(std::move(cb));
        c.pendingQueue.emplace_back(line, cmd);
        return std::nullopt;
    }

    Mshr &m = c.mshrs[line];
    m.cmd = cmd;
    if (cb)
        m.callbacks.push_back(std::move(cb));
    dispatchMiss(p, line);
    return std::nullopt;
}

void
MemorySystem::dispatchMiss(ProcId p, LineAddr line)
{
    // Request message to the home directory.
    net.send(p, prm.numProcs + dirOf(line), TrafficClass::DataRdWr, 64,
             [this, p, line] {
                 auto it = l1s[p].mshrs.find(line);
                 if (it == l1s[p].mshrs.end())
                     return; // stale (should not happen)
                 dirHandleRequest(p, line, it->second.cmd);
             },
             lineFp(line));
}

void
MemorySystem::sendInval(ProcId target, LineAddr line)
{
    ++nInvals;
    net.send(prm.numProcs + dirOf(line), target, TrafficClass::Inval, 64,
             [this, target, line] {
                 // A racing in-flight fill must not resurrect the
                 // line after this invalidation.
                 auto mit = l1s[target].mshrs.find(line);
                 if (mit != l1s[target].mshrs.end())
                     mit->second.dropFill = true;
                 auto qit = l1s[target].queuedMshrs.find(line);
                 if (qit != l1s[target].queuedMshrs.end())
                     qit->second.dropFill = true;
                 LineState prev = l1s[target].array.invalidate(line);
                 if (prev == LineState::Dirty) {
                     // Dirty data travels with the acknowledgement.
                     std::optional<Victim> vic;
                     l2.insert(line, LineState::Dirty, nullptr, vic);
                     if (vic && vic->dirty)
                         ++nWritebacks;
                 }
                 if (prev != LineState::Invalid &&
                     l1s[target].listener) {
                     l1s[target].listener->onExternalInval(line);
                 }
                 // Acknowledgement (latency folded into the requester's
                 // response time; traffic accounted here).
                 net.send(target, prm.numProcs + dirOf(line),
                          TrafficClass::Inval, 16, [] {},
                          lineFp(line));
             },
             lineFp(line));
}

void
MemorySystem::dirHandleRequest(ProcId p, LineAddr line, MemCmd cmd,
                               unsigned bounces)
{
    unsigned d = dirOf(line);

    // Section 4.3.2: bounce reads to lines being committed. The retry
    // interval doubles per bounce up to the cap, so a reader stuck
    // behind a long (or wedged) commit backs off instead of hammering
    // the module every bounceRetry ticks forever.
    for (const auto &sig : committingSigs[d]) {
        if (sig->contains(line)) {
            ++nBounced;
            EVENT_TRACE(TraceEventType::DirBounce, curTick(),
                        trackDir(d), 0, line,
                        static_cast<std::uint8_t>(
                            bounces < 255 ? bounces : 255));
            Tick cap = prm.bounceRetryCap ? prm.bounceRetryCap
                                          : prm.bounceRetry * 32;
            unsigned shift = bounces < 16 ? bounces : 16;
            Tick delay = prm.bounceRetry << shift;
            if (delay > cap || delay < prm.bounceRetry)
                delay = cap;
            eventq.scheduleAfter(delay, [this, p, line, cmd, bounces] {
                dirHandleRequest(p, line, cmd, bounces + 1);
            });
            return;
        }
    }
    if (bounces > 0)
        bounceRetries.sample(static_cast<double>(bounces));

    auto it = l1s[p].mshrs.find(line);
    if (it != l1s[p].mshrs.end())
        it->second.dispatched = true;

    Directory &dir = *dirs[d];
    std::vector<DirDisplacement> displaced;
    const DirEntry *pe = dir.peek(line);
    bool owner_fetch = pe && pe->dirty && pe->owner != p;
    bool requester_had_copy = pe && pe->isSharer(p);

    if (owner_fetch && l1s[pe->owner].listener)
        l1s[pe->owner].listener->onExternalOwnerFetch(line);

    Tick lat = 0;
    if (wantsOwnership(cmd)) {
        std::uint32_t to_inval = dir.recordReadEx(line, p, displaced);
        std::uint32_t bits = to_inval;
        while (bits) {
            ProcId q = static_cast<ProcId>(std::countr_zero(bits));
            bits &= bits - 1;
            sendInval(q, line);
        }
        if (owner_fetch) {
            lat = prm.l2Latency + 2 * net.latencyFor(256);
        } else if (requester_had_copy) {
            lat = 1; // upgrade: no data transfer needed
        } else {
            CacheLine *l2e = l2.lookup(line);
            if (l2e) {
                lat = prm.l2Latency;
            } else {
                lat = prm.memLatency;
                std::optional<Victim> vic;
                l2.insert(line, LineState::Shared, nullptr, vic);
                if (vic && vic->dirty)
                    ++nWritebacks;
            }
        }
        if (to_inval) {
            Tick inval_lat = 2 * net.latencyFor(64) + 2;
            lat = lat > inval_lat ? lat : inval_lat;
        }
    } else {
        dir.recordRead(line, p, displaced);
        if (owner_fetch) {
            // Downgrade the owner; its data is written back to the L2
            // and forwarded to the requester.
            ProcId owner = pe->owner;
            CacheLine *oe = l1s[owner].array.lookup(line);
            if (oe && oe->state == LineState::Dirty)
                oe->state = LineState::Shared;
            std::optional<Victim> vic;
            l2.insert(line, LineState::Dirty, nullptr, vic);
            if (vic && vic->dirty)
                ++nWritebacks;
            dir.recordWriteback(line, owner);
            net.send(owner, prm.numProcs + d, TrafficClass::DataRdWr,
                     256, [] {}, lineFp(line));
            lat = prm.l2Latency + 2 * net.latencyFor(256);
        } else {
            CacheLine *l2e = l2.lookup(line);
            if (l2e) {
                lat = prm.l2Latency;
            } else {
                lat = prm.memLatency;
                std::optional<Victim> vic;
                l2.insert(line, LineState::Shared, nullptr, vic);
                if (vic && vic->dirty)
                    ++nWritebacks;
            }
        }
    }

    handleDirDisplacements(d, displaced);

    // Data response after the access latency.
    eventq.scheduleAfter(lat, [this, p, line, d] {
        net.send(prm.numProcs + d, p, TrafficClass::DataRdWr, 256,
                 [this, p, line] {
                     auto mit = l1s[p].mshrs.find(line);
                     if (mit == l1s[p].mshrs.end())
                         return;
                     finishFill(p, line, mit->second.cmd);
                 },
                 lineFp(line));
    });
}

void
MemorySystem::finishFill(ProcId p, LineAddr line, MemCmd cmd)
{
    L1 &c = l1s[p];
    LineState st =
        wantsOwnership(cmd) ? LineState::Dirty : LineState::Shared;

    // An invalidation overtook this fill: complete the access without
    // installing the (stale) line.
    bool drop = false;
    {
        auto it = c.mshrs.find(line);
        if (it != c.mshrs.end())
            drop = it->second.dropFill;
    }

    std::optional<Victim> vic;
    CacheLine *ins = nullptr;
    if (!drop) {
        ins = c.array.insert(line, st, filterFor(p), vic);
        if (!ins)
            ++nFillBypasses;
    }

    if (vic) {
        if (vic->dirty) {
            ++nWritebacks;
            net.send(p, prm.numProcs + dirOf(vic->line),
                     TrafficClass::DataRdWr, 256, [] {},
                     lineFp(vic->line));
            std::optional<Victim> l2vic;
            l2.insert(vic->line, LineState::Dirty, nullptr, l2vic);
            if (l2vic && l2vic->dirty)
                ++nWritebacks;
            dirs[dirOf(vic->line)]->recordWriteback(vic->line, p);
            dirs[dirOf(vic->line)]->dropSharer(vic->line, p);
        }
        if (!vic->dirty) {
            // Replacement hint: keep the bit-vector precise so W
            // signatures are only forwarded to live sharers.
            net.send(p, prm.numProcs + dirOf(vic->line),
                     TrafficClass::Other, 32, [] {},
                     lineFp(vic->line));
            dirs[dirOf(vic->line)]->dropSharer(vic->line, p);
        }
        if (c.listener)
            c.listener->onLineDisplaced(vic->line, vic->dirty);
    }

    auto it = c.mshrs.find(line);
    std::vector<AccessCallback> cbs;
    if (it != c.mshrs.end()) {
        cbs = std::move(it->second.callbacks);
        c.mshrs.erase(it);
    }

    // Promote queued requests into the freed MSHR.
    while (!c.pendingQueue.empty() && c.mshrs.size() < prm.l1Mshrs) {
        auto [qline, qcmd] = c.pendingQueue.front();
        c.pendingQueue.pop_front();
        auto qit = c.queuedMshrs.find(qline);
        if (qit == c.queuedMshrs.end())
            continue;
        c.mshrs[qline] = std::move(qit->second);
        c.queuedMshrs.erase(qit);
        dispatchMiss(p, qline);
    }

    for (auto &cb : cbs)
        cb();
}

void
MemorySystem::handleDirDisplacements(
    unsigned dir_idx, const std::vector<DirDisplacement> &disp)
{
    // Section 4.3.3: a displaced directory-cache entry is encoded into
    // a one-line signature and sent to all sharer caches for bulk
    // disambiguation; copies are invalidated (written back if dirty).
    for (const auto &dd : disp) {
        ++nDirDisplacements;
        auto sig = std::make_shared<Signature>(prm.sigCfg);
        sig->insert(dd.line);
        std::uint32_t bits = dd.sharers;
        while (bits) {
            ProcId q = static_cast<ProcId>(std::countr_zero(bits));
            bits &= bits - 1;
            net.send(prm.numProcs + dir_idx, q, TrafficClass::WrSig,
                     sig->compressedBits(),
                     [this, q, sig, line = dd.line] {
                         EVENT_TRACE(TraceEventType::BulkInval,
                                     curTick(), trackProc(q), 0, line,
                                     1);
                         if (l1s[q].listener)
                             l1s[q].listener->onRemoteWSig(*sig);
                         applyBulkInval(q, *sig, false);
                     },
                     wsigFp(sig));
        }
    }
}

void
MemorySystem::applyBulkInval(ProcId p, const Signature &w,
                             bool spec_discard,
                             const std::unordered_set<LineAddr> *spec_lines)
{
    L1 &c = l1s[p];
    const std::uint64_t num_sets = c.array.geometry().numSets();

    // Delta-decode bank 0 into candidate cache sets, then probe each
    // resident line for membership (bulk invalidation, Section 2.2).
    std::vector<std::uint32_t> sets;
    std::vector<bool> seen(num_sets, false);
    for (std::uint32_t idx : w.decodeBank0()) {
        std::uint32_t set = idx % num_sets;
        if (!seen[set]) {
            seen[set] = true;
            sets.push_back(set);
        }
    }

    std::vector<LineAddr> victims;
    for (std::uint32_t set : sets) {
        c.array.forEachInSet(set, [&](CacheLine &l) {
            if (w.contains(l.line))
                victims.push_back(l.line);
        });
    }

    // Cancel racing in-flight fills for member lines.
    for (auto &[mline, mshr] : c.mshrs) {
        if (!spec_discard && w.contains(mline))
            mshr.dropFill = true;
    }
    for (auto &[mline, mshr] : c.queuedMshrs) {
        if (!spec_discard && w.contains(mline))
            mshr.dropFill = true;
    }

    for (LineAddr line : victims) {
        // Aliasing stat: a commit-side invalidation that hit a
        // non-member line. Needs the stats mirror to be countable.
        if (!spec_discard && w.tracksExact() && !w.containsExact(line))
            ++nExtraInvals;
        // Squash discard: the chunk's truly written lines (its
        // per-line chunk-id bits) drop without writeback; aliased
        // victims hold committed data that must stay safe.
        bool spec_data =
            spec_discard && (spec_lines ? spec_lines->count(line) != 0
                                        : w.containsExact(line));
        const CacheLine *e = c.array.peek(line);
        if (e && e->state == LineState::Dirty && !spec_data) {
            // Committed dirty data hit by (aliased) bulk invalidation:
            // write it back before dropping the line.
            ++nWritebacks;
            net.send(p, prm.numProcs + dirOf(line),
                     TrafficClass::DataRdWr, 256, [] {}, lineFp(line));
            std::optional<Victim> vic;
            l2.insert(line, LineState::Dirty, nullptr, vic);
            if (vic && vic->dirty)
                ++nWritebacks;
            dirs[dirOf(line)]->recordWriteback(line, p);
        }
        c.array.invalidate(line);
        dirs[dirOf(line)]->dropSharer(line, p);
    }
}

void
MemorySystem::bulkCommit(ProcId committer, std::shared_ptr<Signature> w,
                         std::function<void()> done,
                         unsigned *inval_nodes_out,
                         const std::unordered_set<LineAddr> *w_lines)
{
    if (w->empty()) {
        done();
        return;
    }

    // Determine the interested directory modules from the written
    // lines (the arbiter knows the ranges a chunk touched).
    std::vector<unsigned> involved;
    if (dirs.size() == 1) {
        involved.push_back(0);
    } else {
        panic_if(!w_lines && !w->tracksExact(),
                 "multi-directory commit needs the chunk's written "
                 "lines or an exact-tracking signature");
        std::vector<bool> mark(dirs.size(), false);
        for (LineAddr l : w_lines ? *w_lines : w->exactLines()) {
            unsigned d = dirOf(l);
            if (!mark[d]) {
                mark[d] = true;
                involved.push_back(d);
            }
        }
        if (involved.empty())
            involved.push_back(0);
    }

    auto remaining = std::make_shared<unsigned>(
        static_cast<unsigned>(involved.size()));
    auto user_done = std::make_shared<std::function<void()>>(
        std::move(done));

    for (unsigned d : involved) {
        auto txn = std::make_shared<CommitTxn>();
        // Service-time start, filled in when W reaches the module (the
        // shared_ptr keeps the txn free of a self-referential capture).
        auto start = std::make_shared<Tick>(0);
        txn->w = w;
        txn->onDone = [this, d, remaining, user_done, w, start] {
            dirCommitService.sample(
                static_cast<double>(curTick() - *start));
            auto &list = committingSigs[d];
            for (auto it = list.begin(); it != list.end(); ++it) {
                if (it->get() == w.get()) {
                    list.erase(it);
                    break;
                }
            }
            if (--*remaining == 0)
                (*user_done)();
        };
        txn->invalNodesOut = inval_nodes_out;
        sendCommitW(committer, d, txn, start, ++nextCommitId,
                    std::make_shared<bool>(false), 1);
    }
}

void
MemorySystem::sendCommitW(ProcId committer, unsigned d,
                          const std::shared_ptr<CommitTxn> &txn,
                          const std::shared_ptr<Tick> &start,
                          std::uint64_t id,
                          const std::shared_ptr<bool> &delivered,
                          unsigned attempt)
{
    if (attempt > 1) {
        ++nCommitResends;
        EVENT_TRACE(TraceEventType::Resend, curTick(), trackDir(d), id,
                    attempt - 1);
        TRACE_LOG(TraceCat::Fault, curTick(), "dir", d, ": resend #",
                  attempt - 1, " of commit W ", id, " from proc ",
                  committer);
    }

    auto deliver = [this, d, committer, txn, start, id, delivered] {
        if (*delivered)
            return; // duplicate or late retransmission
        if (faults &&
            faults->dropMessage(
                FaultKind::DirNack, curTick(),
                static_cast<int>(TrafficClass::WrSig))) {
            // The module refuses service (resource pressure); no
            // explicit nack message travels — the committer's timeout
            // drives the retry.
            ++nDirNacks;
            EVENT_TRACE(TraceEventType::DirNack, curTick(),
                        trackDir(d), id, 0);
            return;
        }
        *delivered = true;
        *start = curTick();
        committingSigs[d].push_back(txn->w);
        dirHandleCommit(d, committer, txn);
    };

    bool lost = faults &&
                faults->dropMessage(
                    FaultKind::DirCommitLoss, curTick(),
                    static_cast<int>(TrafficClass::WrSig));
    if (lost) {
        EVENT_TRACE(TraceEventType::FaultInject, curTick(), trackDir(d),
                    id,
                    static_cast<std::uint64_t>(
                        FaultKind::DirCommitLoss));
        net.send(committer, prm.numProcs + d, TrafficClass::WrSig,
                 txn->w->compressedBits(), [] {}, wsigFp(txn->w));
    } else {
        net.send(committer, prm.numProcs + d, TrafficClass::WrSig,
                 txn->w->compressedBits(), deliver, wsigFp(txn->w));
    }
    if (faults &&
        faults->duplicateMessage(
            curTick(), static_cast<int>(TrafficClass::WrSig))) {
        net.send(committer, prm.numProcs + d, TrafficClass::WrSig,
                 txn->w->compressedBits(), deliver, wsigFp(txn->w));
    }

    if (!prm.harden)
        return;

    unsigned shift = attempt < 16 ? attempt - 1 : 15;
    Tick delay = prm.resendTimeout << shift;
    if (delay > prm.resendTimeoutCap)
        delay = prm.resendTimeoutCap;
    // Deterministic jitter, as in the processors' resend chain.
    delay = jitteredBackoff(delay, (std::uint64_t{0xd1} << 56) ^
                                       (id << 8) ^ attempt);
    eventq.scheduleAfter(delay, [this, committer, d, txn, start, id,
                                 delivered, attempt] {
        if (*delivered)
            return;
        if (attempt > prm.maxResend) {
            // Give up: this directory never saw the W, the commit can
            // never complete, and the committer wedges — which is
            // exactly what the watchdog exists to report.
            ++nCommitAbandoned;
            TRACE_LOG(TraceCat::Fault, curTick(), "dir", d,
                      ": abandoning commit W ", id, " after ", attempt,
                      " attempts");
            return;
        }
        sendCommitW(committer, d, txn, start, id, delivered,
                    attempt + 1);
    });
}

void
MemorySystem::dirHandleCommit(unsigned dir_idx, ProcId committer,
                              const std::shared_ptr<CommitTxn> &txn)
{
    ExpansionResult res = dirs[dir_idx]->expand(*txn->w, committer);
    TRACE_LOG(TraceCat::Coherence, curTick(), "dir", dir_idx,
              ": expanded W of proc ", committer, " (", res.lookups,
              " lookups, ", res.aliasLookups, " aliased, inval list 0x",
              res.invalidationList, ")");
    nDirLookups += res.lookups;
    nDirAliasLookups += res.aliasLookups;
    nDirUpdates += res.updates;
    nDirAliasUpdates += res.aliasUpdates;

    Tick exp_lat = res.lookups ? static_cast<Tick>(res.lookups) : 1;

    eventq.scheduleAfter(exp_lat, [this, dir_idx, committer, txn,
                                   inval_list = res.invalidationList] {
        std::uint32_t targets =
            inval_list & ~(1u << committer);
        unsigned count = static_cast<unsigned>(std::popcount(targets));
        if (txn->invalNodesOut)
            *txn->invalNodesOut += count;
        if (count == 0) {
            txn->onDone();
            return;
        }
        txn->acksPending = count;
        std::uint32_t bits = targets;
        while (bits) {
            ProcId q = static_cast<ProcId>(std::countr_zero(bits));
            bits &= bits - 1;
            net.send(prm.numProcs + dir_idx, q, TrafficClass::WrSig,
                     txn->w->compressedBits(), [this, dir_idx, q, txn] {
                         EVENT_TRACE(TraceEventType::BulkInval,
                                     curTick(), trackProc(q), 0,
                                     dir_idx, 0);
                         if (l1s[q].listener)
                             l1s[q].listener->onRemoteWSig(*txn->w);
                         applyBulkInval(q, *txn->w, false);
                         net.send(q, prm.numProcs + dir_idx,
                                  TrafficClass::Inval, 16,
                                  [txn] {
                                      if (--txn->acksPending == 0)
                                          txn->onDone();
                                  },
                                  wsigFp(txn->w));
                     },
                     wsigFp(txn->w));
        }
    });
}

void
MemorySystem::writebackLine(ProcId p, LineAddr line)
{
    ++nWritebacks;
    net.send(p, prm.numProcs + dirOf(line), TrafficClass::DataRdWr, 256,
             [] {}, lineFp(line));
    std::optional<Victim> vic;
    l2.insert(line, LineState::Dirty, nullptr, vic);
    if (vic && vic->dirty)
        ++nWritebacks;
    dirs[dirOf(line)]->recordWriteback(line, p);
}

bool
MemorySystem::l1Contains(ProcId p, LineAddr line,
                         bool needs_ownership) const
{
    const CacheLine *e = l1s[p].array.peek(line);
    if (!e)
        return false;
    return !needs_ownership || e->state == LineState::Dirty;
}

void
MemorySystem::markDirty(ProcId p, LineAddr line)
{
    CacheLine *e = l1s[p].array.lookup(line);
    if (e)
        e->state = LineState::Dirty;
}

LineState
MemorySystem::l1State(ProcId p, LineAddr line) const
{
    const CacheLine *e = l1s[p].array.peek(line);
    return e ? e->state : LineState::Invalid;
}

void
MemorySystem::l1DiscardSpeculative(
    ProcId p, const Signature &w,
    const std::unordered_set<LineAddr> *spec_lines)
{
    applyBulkInval(p, w, true, spec_lines);
}

void
MemorySystem::restoreLine(ProcId p, LineAddr line)
{
    std::optional<Victim> vic;
    CacheLine *ins =
        l1s[p].array.insert(line, LineState::Dirty, filterFor(p), vic);
    if (!ins) {
        // No insertable way: keep the restored data safe in the L2.
        std::optional<Victim> l2vic;
        l2.insert(line, LineState::Dirty, nullptr, l2vic);
        if (l2vic && l2vic->dirty)
            ++nWritebacks;
        return;
    }
    if (vic && vic->dirty) {
        ++nWritebacks;
        std::optional<Victim> l2vic;
        l2.insert(vic->line, LineState::Dirty, nullptr, l2vic);
        if (l2vic && l2vic->dirty)
            ++nWritebacks;
        dirs[dirOf(vic->line)]->recordWriteback(vic->line, p);
    }
}

void
MemorySystem::warmLine(LineAddr line)
{
    if (l2.peek(line))
        return;
    std::optional<Victim> vic;
    l2.insert(line, LineState::Shared, nullptr, vic);
}

void
MemorySystem::warmL1(ProcId p, LineAddr line, bool dirty)
{
    warmLine(line);
    std::optional<Victim> vic;
    l1s[p].array.insert(line,
                        dirty ? LineState::Dirty : LineState::Shared,
                        nullptr, vic);
    std::vector<DirDisplacement> displaced;
    if (dirty)
        dirs[dirOf(line)]->recordReadEx(line, p, displaced);
    else
        dirs[dirOf(line)]->recordRead(line, p, displaced);
    if (vic)
        dirs[dirOf(vic->line)]->dropSharer(vic->line, p);
    handleDirDisplacements(dirOf(line), displaced);
}

std::uint64_t
MemorySystem::readValue(Addr addr) const
{
    auto it = values.find(addr);
    return it == values.end() ? 0 : it->second;
}

void
MemorySystem::writeValue(Addr addr, std::uint64_t v)
{
    values[addr] = v;
}

std::uint64_t
MemorySystem::l1Hits() const
{
    std::uint64_t n = 0;
    for (const auto &c : l1s)
        n += c.array.hits();
    return n;
}

std::uint64_t
MemorySystem::l1Misses() const
{
    std::uint64_t n = 0;
    for (const auto &c : l1s)
        n += c.array.misses();
    return n;
}

void
MemorySystem::dumpStats(StatGroup &sg, const std::string &prefix) const
{
    sg.set(prefix + "l1_hits", static_cast<double>(l1Hits()));
    sg.set(prefix + "l1_misses", static_cast<double>(l1Misses()));
    sg.set(prefix + "bounced_reads", static_cast<double>(nBounced));
    sg.set(prefix + "invalidations", static_cast<double>(nInvals));
    sg.set(prefix + "extra_invals", static_cast<double>(nExtraInvals));
    sg.set(prefix + "writebacks", static_cast<double>(nWritebacks));
    sg.set(prefix + "dir_lookups", static_cast<double>(nDirLookups));
    sg.set(prefix + "dir_alias_lookups",
           static_cast<double>(nDirAliasLookups));
    sg.set(prefix + "dir_updates", static_cast<double>(nDirUpdates));
    sg.set(prefix + "dir_alias_updates",
           static_cast<double>(nDirAliasUpdates));
    sg.set(prefix + "dir_displacements",
           static_cast<double>(nDirDisplacements));
    sg.set(prefix + "fill_bypasses", static_cast<double>(nFillBypasses));
    dirCommitService.dumpInto(sg, prefix + "dir_commit_service.");
    if (bounceRetries.samples())
        bounceRetries.dumpInto(sg, prefix + "bounce_retries.");
    if (nCommitResends || nCommitAbandoned || nDirNacks) {
        sg.set(prefix + "commit_resends",
               static_cast<double>(nCommitResends));
        sg.set(prefix + "commit_abandoned",
               static_cast<double>(nCommitAbandoned));
        sg.set(prefix + "dir_nacks", static_cast<double>(nDirNacks));
    }
}

std::uint64_t
MemorySystem::fingerprint() const
{
    std::uint64_t h = mix64(0x4d454dULL); // "MEM"
    for (std::size_t p = 0; p < l1s.size(); ++p) {
        const L1 &l1 = l1s[p];
        h = mix64(h ^ l1.array.fingerprint());
        // MSHR and pending-queue membership, order-insensitively.
        std::uint64_t m = 0;
        for (const auto &[line, mshr] : l1.mshrs)
            m += mix64(line ^ (std::uint64_t{mshr.dispatched} << 60));
        for (const auto &qm : l1.queuedMshrs)
            m += mix64(mix64(qm.first) ^ 0x71);
        for (const auto &[line, cmd] : l1.pendingQueue)
            m += mix64(line ^ (static_cast<std::uint64_t>(cmd) << 56));
        h = mix64(h ^ m);
    }
    h = mix64(h ^ l2.fingerprint());
    std::uint64_t d = 0;
    for (const auto &dir : dirs)
        d = mix64(d ^ dir->fingerprint());
    h = mix64(h ^ d);
    std::uint64_t c = 0;
    for (const auto &sigs : committingSigs) {
        for (const auto &w : sigs)
            c += mix64(w->hash());
        c = mix64(c);
    }
    h = mix64(h ^ c);
    std::uint64_t v = 0;
    for (const auto &[addr, val] : values)
        v += mix64(mix64(addr) ^ val);
    return mix64(h ^ v);
}

} // namespace bulksc
