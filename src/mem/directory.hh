/**
 * @file
 * Directory state plus the DirBDM bulk operations (Section 4.3).
 *
 * The directory keeps, per line, a full bit-vector of sharers and a
 * dirty/owner indication (Lenoski et al. [22]). The DirBDM extends it to
 * work with the inexact information of signatures:
 *
 *  - signature expansion of an incoming W signature finds candidate
 *    entries (via the bank-0 decode buckets), applies the paper's
 *    Table 1 action matrix to each, and builds the Invalidation List;
 *  - incoming reads are membership-tested against the W signatures of
 *    currently-committing chunks and bounced on a hit (Section 4.3.2);
 *  - an optional directory cache (Section 4.3.3) limits entries and, on
 *    a displacement, produces a one-line signature that the memory
 *    system broadcasts for bulk disambiguation.
 *
 * This class holds protocol *state and decisions* only; message timing
 * lives in MemorySystem.
 */

#ifndef BULKSC_MEM_DIRECTORY_HH
#define BULKSC_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "signature/signature.hh"
#include "sim/types.hh"

namespace bulksc {

/** Per-line directory entry: full bit-vector plus dirty/owner. */
struct DirEntry
{
    std::uint32_t sharers = 0; //!< bit i set => proc i has the line
    bool dirty = false;        //!< some proc owns a modified copy
    ProcId owner = 0;          //!< valid iff dirty

    bool
    isSharer(ProcId p) const
    {
        return (sharers >> p) & 1;
    }

    void addSharer(ProcId p) { sharers |= 1u << p; }

    void clearSharers() { sharers = 0; }
};

/** Outcome of expanding one W signature at a directory module. */
struct ExpansionResult
{
    /** Processors that must receive W for disambiguation/invalidation. */
    std::uint32_t invalidationList = 0;

    /** Directory entries examined during expansion. */
    std::uint64_t lookups = 0;

    /** Lookups caused purely by signature aliasing (false positives). */
    std::uint64_t aliasLookups = 0;

    /** Entries whose state was changed. */
    std::uint64_t updates = 0;

    /** State changes caused purely by aliasing (Table 1 case 2 hit by a
     *  false-positive line; harmless but counted, cf. Table 4). */
    std::uint64_t aliasUpdates = 0;
};

/** One displaced directory-cache entry (Section 4.3.3). */
struct DirDisplacement
{
    LineAddr line;
    std::uint32_t sharers;
    bool dirty;
    ProcId owner;
};

/**
 * A directory module (one per address range in a distributed machine).
 */
class Directory
{
  public:
    /**
     * @param sig_cfg Signature geometry; the DirBDM decode function is
     *        derived from it.
     * @param num_procs Width of the sharer bit-vector.
     * @param max_entries 0 for a full-mapped directory; otherwise the
     *        capacity of the directory cache.
     */
    Directory(const SignatureConfig &sig_cfg, unsigned num_procs,
              std::size_t max_entries = 0);

    /**
     * Record a demand read by @p p (all BulkSC demand misses are read
     * requests, Section 4.3). Creates the entry if needed; may displace
     * a directory-cache entry.
     *
     * @param[out] displaced Filled with the displaced entry, if any.
     * @return the entry for @p line.
     */
    DirEntry &recordRead(LineAddr line, ProcId p,
                         std::vector<DirDisplacement> &displaced);

    /**
     * Record an exclusive (ReadEx) access by @p p: used by the SC/RC/
     * SC++ baselines. @return sharers (excluding @p p) that must be
     * invalidated.
     */
    std::uint32_t recordReadEx(LineAddr line, ProcId p,
                               std::vector<DirDisplacement> &displaced);

    /** A dirty, non-speculative line was written back by @p p. */
    void recordWriteback(LineAddr line, ProcId p);

    /** Processor @p p dropped its copy of @p line (L1 displacement). */
    void dropSharer(LineAddr line, ProcId p);

    /**
     * DirBDM signature expansion of a committing chunk's W signature
     * (Table 1 action matrix). Updates state, returns the Invalidation
     * List and the lookup/update statistics of Table 4.
     */
    ExpansionResult expand(const Signature &w, ProcId committer);

    /** @return the entry for @p line, or nullptr. */
    const DirEntry *peek(LineAddr line) const;

    /** @return number of directory entries currently allocated. */
    std::size_t entryCount() const { return entries.size(); }

    /** Order-insensitive digest of the directory state (per-line
     *  sharer vectors and dirty/owner), for explorer fingerprints. */
    std::uint64_t fingerprint() const;

  private:
    DirEntry &getOrCreate(LineAddr line,
                          std::vector<DirDisplacement> &displaced);

    void eraseEntry(LineAddr line);

    std::uint32_t bucketOf(LineAddr line) const;

    SignatureConfig sigCfg;
    unsigned numProcs;
    std::size_t maxEntries;

    std::unordered_map<LineAddr, DirEntry> entries;

    /** Lines bucketed by signature bank-0 index: the hardware analogue
     *  is the delta-decode directed tag probe of signature expansion. */
    std::vector<std::unordered_set<LineAddr>> buckets;

    /** FIFO order for directory-cache displacement. */
    std::vector<LineAddr> fifo;
    std::size_t fifoHead = 0;
};

} // namespace bulksc

#endif // BULKSC_MEM_DIRECTORY_HH
