/**
 * @file
 * The timed memory system: private write-back L1s with MSHRs, a shared
 * L2, one or more directory modules with DirBDM support, and a main
 * memory, all connected through the generic Network.
 *
 * Processors issue accesses through access(); BulkSC's commit engine
 * uses bulkCommit() / l1DiscardSpeculative() / restoreLine(). A
 * CacheListener registered per processor receives external
 * invalidations, displacements, and incoming W signatures — this is how
 * consistency machinery observes the memory system without the caches
 * knowing anything about speculation.
 */

#ifndef BULKSC_MEM_MEMORY_SYSTEM_HH
#define BULKSC_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "network/network.hh"
#include "signature/signature.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bulksc {

/** Command of a processor-initiated access. */
enum class MemCmd : std::uint8_t
{
    Read,       //!< demand read (also BulkSC write misses, Section 4.3)
    ReadEx,     //!< demand read-exclusive (baseline write misses)
    Prefetch,   //!< read prefetch [12]
    PrefetchEx, //!< exclusive prefetch for writes [12]
};

/** True for commands that want ownership. */
inline bool
wantsOwnership(MemCmd c)
{
    return c == MemCmd::ReadEx || c == MemCmd::PrefetchEx;
}

/**
 * Interface through which consistency machinery observes one L1 cache.
 */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /** The line was invalidated by a remote exclusive request. */
    virtual void onExternalInval(LineAddr) {}

    /** The line was displaced by a fill (capacity/conflict). */
    virtual void onLineDisplaced(LineAddr, bool /*dirty*/) {}

    /**
     * A W signature arrived (committing chunk, or directory-cache
     * displacement). Called before bulk invalidation is applied.
     */
    virtual void onRemoteWSig(const Signature &) {}

    /** May @p line be chosen as a fill victim? The BDM vetoes lines
     *  speculatively written by live chunks. */
    virtual bool mayVictimize(LineAddr) { return true; }

    /**
     * Another processor is fetching @p line, which this cache owns
     * dirty. BulkSC's BDM checks membership in Wpriv: on a hit the old
     * version is supplied from the Private Buffer and the address is
     * added back to W (Section 5.2).
     */
    virtual void onExternalOwnerFetch(LineAddr) {}
};

/** Memory system configuration (defaults follow the paper's Table 2). */
struct MemParams
{
    unsigned numProcs = 8;
    CacheGeometry l1{32 * 1024, 4, 32};
    CacheGeometry l2{8 * 1024 * 1024, 8, 32};
    unsigned l1Mshrs = 8;
    Tick l1Latency = 2;    //!< L1 round trip
    Tick l2Latency = 13;   //!< L2 round trip
    Tick memLatency = 300; //!< memory round trip
    Tick bounceRetry = 20; //!< retry delay for bounced reads

    /** Ceiling for the exponential bounce-retry backoff (0 = 32x
     *  bounceRetry). A bounced read doubles its retry interval each
     *  bounce up to this cap instead of spinning at bounceRetry. */
    Tick bounceRetryCap = 0;

    /** Arm the commit-service timeout/resend machinery (set by the
     *  System when the fault plane can lose or duplicate messages). */
    bool harden = false;

    /** Resend attempts before abandoning a commit-service message. */
    unsigned maxResend = 8;

    /** Base commit-service resend timeout; doubles per attempt. */
    Tick resendTimeout = 256;

    /** Ceiling for the commit-service resend backoff. */
    Tick resendTimeoutCap = 8192;

    unsigned numDirectories = 1;
    std::size_t dirCacheEntries = 0; //!< 0 = full-mapped directory
    SignatureConfig sigCfg;

    /** BulkSC mode: demand write misses are issued as Reads and the
     *  directory only ever adds the requester as a sharer. */
    bool bulkMode = false;
};

/**
 * The complete timed memory subsystem of the modelled CMP.
 */
class MemorySystem : public SimObject
{
  public:
    using AccessCallback = std::function<void()>;

    MemorySystem(EventQueue &eq, Network &net, const MemParams &params);

    /** Register the consistency listener for processor @p p. */
    void setListener(ProcId p, CacheListener *l);

    /**
     * Attach the fault plane. The directory commit service is the
     * faulted surface (dir.commit_loss, dir.nack, net.drop/dup of the
     * W delivery); invalidation fan-out and acknowledgements stay
     * reliable — they model short on-chip control wires, and faulting
     * them would need ack-level sequencing the paper's protocol does
     * not describe.
     */
    void setFaultPlane(FaultPlane *fp) { faults = fp; }

    /**
     * Issue an access.
     *
     * @return the access latency if it hits in the L1 (the callback is
     *         NOT invoked in that case); std::nullopt on a miss, in
     *         which case @p cb fires when the fill completes.
     */
    std::optional<Tick> access(ProcId p, Addr addr, MemCmd cmd,
                               AccessCallback cb);

    /** @return true if @p p's L1 holds @p line (optionally owned). */
    bool l1Contains(ProcId p, LineAddr line,
                    bool needs_ownership = false) const;

    /** Mark @p line dirty in @p p's L1 (BulkSC speculative store). */
    void markDirty(ProcId p, LineAddr line);

    /** L1 state of @p line in @p p's cache (Invalid if absent). */
    LineState l1State(ProcId p, LineAddr line) const;

    /**
     * Write a dirty non-speculative line back to memory without
     * invalidating it (the BSCbase first-speculative-write rule,
     * Section 5.2). Generates writeback traffic and clears the
     * directory's dirty indication.
     */
    void writebackLine(ProcId p, LineAddr line);

    /**
     * Commit a chunk's W signature (arbitration already granted):
     * W travels to each directory module, is expanded (Table 1),
     * forwarded to the Invalidation List for disambiguation and bulk
     * invalidation, and @p done fires when every module has collected
     * its acknowledgements (the arbiter may then drop W).
     *
     * @param w Shared so in-flight commits keep it alive.
     * @param inval_nodes_out If non-null, receives the total number of
     *        processors that were sent W (Table 4 "Nodes per W Sig").
     * @param w_lines The chunk's exact written lines (Chunk::wLines),
     *        used to pick the involved directory modules. Only read
     *        synchronously, so a stack-local set is fine. When null,
     *        falls back to the signature's exact mirror (tests), which
     *        multi-directory configs then require.
     */
    void bulkCommit(ProcId committer, std::shared_ptr<Signature> w,
                    std::function<void()> done,
                    unsigned *inval_nodes_out = nullptr,
                    const std::unordered_set<LineAddr> *w_lines = nullptr);

    /**
     * Discard @p p's speculatively written lines (all lines of its L1
     * that are members of @p w) — chunk squash.
     *
     * @param spec_lines The chunk's truly written lines (the per-line
     *        chunk-id bits): members are dropped without writeback,
     *        aliased victims keep their committed data safe in the L2.
     *        When null, falls back to @p w's exact mirror.
     */
    void l1DiscardSpeculative(
        ProcId p, const Signature &w,
        const std::unordered_set<LineAddr> *spec_lines = nullptr);

    /** Re-insert @p line as dirty in @p p's L1 (Private Buffer restore). */
    void restoreLine(ProcId p, LineAddr line);

    /**
     * Functionally pre-load @p line into the L2 (no timing, no
     * traffic). Used to warm caches so short simulations measure
     * steady-state behaviour instead of cold misses.
     */
    void warmLine(LineAddr line);

    /**
     * Functionally pre-load @p line into @p p's L1 (and the L2 and
     * directory), optionally dirty-owned. Dirty warming seeds the
     * steady-state "dirty non-speculative" pattern the dynamically-
     * private optimization relies on.
     */
    void warmL1(ProcId p, LineAddr line, bool dirty);

    /** Committed value of @p addr (tracked addresses; 0 if unset). */
    std::uint64_t readValue(Addr addr) const;

    /** Set the committed value of @p addr. */
    void writeValue(Addr addr, std::uint64_t v);

    /** Directory module responsible for @p line. */
    unsigned dirOf(LineAddr line) const;

    /** Peek the directory entry for @p line (testing/debug). */
    const DirEntry *peekDir(LineAddr line) const;

    unsigned numDirs() const { return static_cast<unsigned>(dirs.size()); }

    const MemParams &params() const { return prm; }

    Network &network() { return net; }

    /** Dump aggregate statistics into @p sg under @p prefix. */
    void dumpStats(StatGroup &sg, const std::string &prefix = "mem.") const;

    /**
     * Digest of the protocol-visible memory-system state: L1/L2
     * contents, outstanding MSHRs, directory entries, in-flight commit
     * signatures, and the committed value store. Performance counters
     * and timing state are excluded (see CacheArray::fingerprint).
     * Feeds System::stateFingerprint() for explorer revisit pruning.
     */
    std::uint64_t fingerprint() const;

    // --- aggregate stats, exposed for benches/tests ---
    std::uint64_t l1Hits() const;
    std::uint64_t l1Misses() const;
    std::uint64_t bouncedReads() const { return nBounced; }
    std::uint64_t extraInvalidations() const { return nExtraInvals; }
    std::uint64_t invalidations() const { return nInvals; }
    std::uint64_t writebacks() const { return nWritebacks; }
    std::uint64_t dirLookups() const { return nDirLookups; }
    std::uint64_t dirAliasLookups() const { return nDirAliasLookups; }
    std::uint64_t dirUpdates() const { return nDirUpdates; }
    std::uint64_t dirAliasUpdates() const { return nDirAliasUpdates; }
    std::uint64_t dirDisplacements() const { return nDirDisplacements; }
    std::uint64_t fillBypasses() const { return nFillBypasses; }

  private:
    struct Mshr
    {
        MemCmd cmd;
        bool dispatched = false;

        /** An invalidation targeted this line while the fill was in
         *  flight: complete the access but do NOT install the line
         *  (the directory no longer tracks this requester). Without
         *  this, the racing fill would install a copy invisible to
         *  the directory — and future commits would skip it. */
        bool dropFill = false;

        std::vector<AccessCallback> callbacks;
    };

    struct L1
    {
        explicit L1(const CacheGeometry &g) : array(g) {}

        CacheArray array;
        std::unordered_map<LineAddr, Mshr> mshrs;
        std::deque<std::pair<LineAddr, MemCmd>> pendingQueue;
        std::unordered_map<LineAddr, Mshr> queuedMshrs;
        CacheListener *listener = nullptr;
    };

    /** State of one W commit at one directory module. */
    struct CommitTxn
    {
        std::shared_ptr<Signature> w;
        unsigned acksPending = 0;
        std::function<void()> onDone;
        unsigned *invalNodesOut = nullptr;
    };

    void dispatchMiss(ProcId p, LineAddr line);

    /** @p bounces counts prior bounces of this request (backoff). */
    void dirHandleRequest(ProcId p, LineAddr line, MemCmd cmd,
                          unsigned bounces = 0);
    void finishFill(ProcId p, LineAddr line, MemCmd cmd);
    void sendInval(ProcId target, LineAddr line);
    void applyBulkInval(ProcId p, const Signature &w, bool discard_only,
                        const std::unordered_set<LineAddr> *spec_lines =
                            nullptr);
    void handleDirDisplacements(
        unsigned dir_idx, const std::vector<DirDisplacement> &disp);
    void dirHandleCommit(unsigned dir_idx, ProcId committer,
                         const std::shared_ptr<CommitTxn> &txn);

    /**
     * (Re)send a commit W to directory @p d, with loss/duplication
     * injection on the wire, nack injection at arrival, idempotent
     * delivery (via @p delivered), and — when hardening is armed — a
     * timeout-driven resend chain with exponential backoff.
     */
    void sendCommitW(ProcId committer, unsigned d,
                     const std::shared_ptr<CommitTxn> &txn,
                     const std::shared_ptr<Tick> &start,
                     std::uint64_t id,
                     const std::shared_ptr<bool> &delivered,
                     unsigned attempt);

    CacheArray::VictimFilter filterFor(ProcId p);

    MemParams prm;
    Network &net;
    FaultPlane *faults = nullptr;

    /** Commit-service message ids (dedup/trace labelling). */
    std::uint64_t nextCommitId = 0;

    std::vector<L1> l1s;
    CacheArray l2;
    std::vector<std::unique_ptr<Directory>> dirs;

    /** Per-directory list of currently-committing W signatures (read
     *  bounce, Section 4.3.2). */
    std::vector<std::vector<std::shared_ptr<Signature>>> committingSigs;

    std::unordered_map<Addr, std::uint64_t> values;

    // stats
    std::uint64_t nBounced = 0;
    std::uint64_t nInvals = 0;
    std::uint64_t nExtraInvals = 0;
    std::uint64_t nWritebacks = 0;
    std::uint64_t nDirLookups = 0;
    std::uint64_t nDirAliasLookups = 0;
    std::uint64_t nDirUpdates = 0;
    std::uint64_t nDirAliasUpdates = 0;
    std::uint64_t nDirDisplacements = 0;
    std::uint64_t nFillBypasses = 0;
    std::uint64_t nCommitResends = 0;
    std::uint64_t nCommitAbandoned = 0;
    std::uint64_t nDirNacks = 0;

    /** Per-directory W commit service time: signature arrival at the
     *  module to the last invalidation acknowledgement (cycles). */
    Histogram dirCommitService;

    /** Bounces each eventually-serviced read took (sampled only for
     *  reads that bounced at least once). */
    Histogram bounceRetries;
};

} // namespace bulksc

#endif // BULKSC_MEM_MEMORY_SYSTEM_HH
