#include "mem/cache_array.hh"

#include "sim/rng.hh"

namespace bulksc {

CacheArray::CacheArray(const CacheGeometry &g)
    : geom(g)
{
    geom.validate();
    lines.resize(geom.numLines());
}

CacheLine *
CacheArray::findWay(LineAddr line)
{
    std::uint32_t set = geom.setIndex(line);
    CacheLine *base = &lines[std::size_t{set} * geom.assoc];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        if (base[w].valid() && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

CacheLine *
CacheArray::lookup(LineAddr line)
{
    CacheLine *entry = findWay(line);
    if (entry) {
        entry->lruStamp = ++lruCounter;
        ++nHits;
    } else {
        ++nMisses;
    }
    return entry;
}

const CacheLine *
CacheArray::peek(LineAddr line) const
{
    std::uint32_t set = geom.setIndex(line);
    const CacheLine *base = &lines[std::size_t{set} * geom.assoc];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        if (base[w].valid() && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

CacheLine *
CacheArray::insert(LineAddr line, LineState state,
                   const VictimFilter &filter,
                   std::optional<Victim> &victim)
{
    victim.reset();
    std::uint32_t set = geom.setIndex(line);
    CacheLine *base = &lines[std::size_t{set} * geom.assoc];

    // Reuse the existing way if the line is already present.
    CacheLine *target = nullptr;
    for (unsigned w = 0; w < geom.assoc; ++w) {
        if (base[w].valid() && base[w].line == line) {
            target = &base[w];
            break;
        }
    }

    // Otherwise take an invalid way, or the LRU way that may be evicted.
    if (!target) {
        for (unsigned w = 0; w < geom.assoc; ++w) {
            if (!base[w].valid()) {
                target = &base[w];
                break;
            }
        }
    }
    if (!target) {
        // Clean-first LRU: displacing a clean line costs only a
        // refetch, while a dirty victim needs a writeback — so prefer
        // the LRU clean line and fall back to the LRU dirty one.
        CacheLine *lru_clean = nullptr;
        CacheLine *lru_dirty = nullptr;
        for (unsigned w = 0; w < geom.assoc; ++w) {
            if (filter && !filter(base[w].line))
                continue;
            if (base[w].state == LineState::Dirty) {
                if (!lru_dirty ||
                    base[w].lruStamp < lru_dirty->lruStamp)
                    lru_dirty = &base[w];
            } else {
                if (!lru_clean ||
                    base[w].lruStamp < lru_clean->lruStamp)
                    lru_clean = &base[w];
            }
        }
        CacheLine *lru = lru_clean ? lru_clean : lru_dirty;
        if (!lru)
            return nullptr; // every way vetoed
        victim = Victim{lru->line, lru->state == LineState::Dirty};
        target = lru;
    }

    target->line = line;
    target->state = state;
    target->lruStamp = ++lruCounter;
    return target;
}

LineState
CacheArray::invalidate(LineAddr line)
{
    CacheLine *entry = findWay(line);
    if (!entry)
        return LineState::Invalid;
    LineState prev = entry->state;
    entry->state = LineState::Invalid;
    return prev;
}

unsigned
CacheArray::countVetoed(LineAddr line, const VictimFilter &filter) const
{
    std::uint32_t set = geom.setIndex(line);
    const CacheLine *base = &lines[std::size_t{set} * geom.assoc];
    unsigned vetoed = 0;
    for (unsigned w = 0; w < geom.assoc; ++w) {
        if (base[w].valid() && filter && !filter(base[w].line))
            ++vetoed;
    }
    return vetoed;
}

void
CacheArray::forEachInSet(std::uint32_t set_idx,
                         const std::function<void(CacheLine &)> &fn)
{
    CacheLine *base = &lines[std::size_t{set_idx} * geom.assoc];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        if (base[w].valid())
            fn(base[w]);
    }
}

void
CacheArray::forEach(const std::function<void(CacheLine &)> &fn)
{
    for (auto &l : lines) {
        if (l.valid())
            fn(l);
    }
}

std::uint64_t
CacheArray::fingerprint() const
{
    // Commutative fold so way placement within a set is irrelevant.
    std::uint64_t h = 0;
    for (const CacheLine &l : lines) {
        if (!l.valid())
            continue;
        h += mix64(l.line * 4 + static_cast<std::uint64_t>(l.state));
    }
    return h;
}

} // namespace bulksc
