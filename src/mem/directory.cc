#include "mem/directory.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace bulksc {

Directory::Directory(const SignatureConfig &cfg, unsigned num_procs,
                     std::size_t max_entries)
    : sigCfg(cfg), numProcs(num_procs), maxEntries(max_entries)
{
    buckets.resize(sigCfg.bitsPerBank());
}

std::uint32_t
Directory::bucketOf(LineAddr line) const
{
    return static_cast<std::uint32_t>(line) & (sigCfg.bitsPerBank() - 1);
}

void
Directory::eraseEntry(LineAddr line)
{
    entries.erase(line);
    buckets[bucketOf(line)].erase(line);
}

DirEntry &
Directory::getOrCreate(LineAddr line,
                       std::vector<DirDisplacement> &displaced)
{
    auto it = entries.find(line);
    if (it != entries.end())
        return it->second;

    // Directory cache: displace the oldest entry when full
    // (Section 4.3.3). The caller broadcasts the displacement
    // signature for bulk disambiguation.
    if (maxEntries && entries.size() >= maxEntries) {
        while (fifoHead < fifo.size()) {
            LineAddr victim = fifo[fifoHead++];
            auto vit = entries.find(victim);
            if (vit == entries.end())
                continue; // stale fifo slot
            displaced.push_back(DirDisplacement{
                victim, vit->second.sharers, vit->second.dirty,
                vit->second.owner});
            eraseEntry(victim);
            break;
        }
        if (fifoHead > 4096 && fifoHead * 2 > fifo.size()) {
            fifo.erase(fifo.begin(),
                       fifo.begin() + static_cast<long>(fifoHead));
            fifoHead = 0;
        }
    }

    DirEntry &e = entries[line];
    buckets[bucketOf(line)].insert(line);
    if (maxEntries)
        fifo.push_back(line);
    return e;
}

DirEntry &
Directory::recordRead(LineAddr line, ProcId p,
                      std::vector<DirDisplacement> &displaced)
{
    DirEntry &e = getOrCreate(line, displaced);
    e.addSharer(p);
    return e;
}

std::uint32_t
Directory::recordReadEx(LineAddr line, ProcId p,
                        std::vector<DirDisplacement> &displaced)
{
    DirEntry &e = getOrCreate(line, displaced);
    std::uint32_t to_inval = e.sharers & ~(1u << p);
    e.sharers = 1u << p;
    e.dirty = true;
    e.owner = p;
    return to_inval;
}

void
Directory::recordWriteback(LineAddr line, ProcId p)
{
    auto it = entries.find(line);
    if (it == entries.end())
        return;
    DirEntry &e = it->second;
    if (e.dirty && e.owner == p)
        e.dirty = false;
}

void
Directory::dropSharer(LineAddr line, ProcId p)
{
    auto it = entries.find(line);
    if (it == entries.end())
        return;
    DirEntry &e = it->second;
    e.sharers &= ~(1u << p);
    if (e.dirty && e.owner == p)
        e.dirty = false;
}

ExpansionResult
Directory::expand(const Signature &w, ProcId committer)
{
    ExpansionResult res;
    if (w.empty())
        return res;

    // Delta-decode bank 0 to find the candidate buckets, then probe
    // each resident line for full membership — the hardware equivalent
    // of the directed tag lookups of signature expansion.
    std::vector<LineAddr> candidates;
    for (std::uint32_t idx : w.decodeBank0()) {
        for (LineAddr line : buckets[idx]) {
            if (w.contains(line))
                candidates.push_back(line);
        }
    }

    for (LineAddr line : candidates) {
        ++res.lookups;
        // Aliasing stats (Table 4) need the exact mirror; without it
        // every lookup counts as genuine.
        bool truly_written =
            !w.tracksExact() || w.containsExact(line);
        if (!truly_written)
            ++res.aliasLookups;

        DirEntry &e = entries.at(line);

        // Table 1: the four possible states of a selected entry.
        if (!e.dirty && !e.isSharer(committer)) {
            // Case 1: false positive — the committing processor would
            // have fetched the line and be in the bit vector already.
            continue;
        }
        if (!e.dirty && e.isSharer(committer)) {
            // Case 2: committing processor becomes the owner; all other
            // sharers join the Invalidation List.
            res.invalidationList |= e.sharers & ~(1u << committer);
            e.sharers = 1u << committer;
            e.dirty = true;
            e.owner = committer;
            ++res.updates;
            if (!truly_written)
                ++res.aliasUpdates;
            continue;
        }
        if (e.dirty && !e.isSharer(committer)) {
            // Case 3: false positive — do nothing.
            continue;
        }
        // Case 4: dirty and committing proc is a sharer. If the proc is
        // already the owner there is nothing to do; a dirty entry owned
        // by someone else with the committer as sharer cannot occur in
        // this protocol (dirty implies a single sharer).
    }
    return res;
}

const DirEntry *
Directory::peek(LineAddr line) const
{
    auto it = entries.find(line);
    return it == entries.end() ? nullptr : &it->second;
}

std::uint64_t
Directory::fingerprint() const
{
    // Commutative fold over the unordered entry map.
    std::uint64_t h = 0;
    for (const auto &[line, e] : entries) {
        std::uint64_t v = mix64(line);
        v = mix64(v ^ e.sharers);
        v = mix64(v ^ (std::uint64_t{e.dirty} << 32) ^ e.owner);
        h += v;
    }
    return h;
}

} // namespace bulksc
