/**
 * @file
 * A set-associative tag array with LRU replacement.
 *
 * As in the paper, the tag/data arrays know nothing about speculation:
 * lines carry only a coherence state. Speculative-line protection is
 * imposed from outside through the victim filter passed to insert(),
 * which is how the BDM prevents displacement of speculatively written
 * lines (Section 4.1.1).
 */

#ifndef BULKSC_MEM_CACHE_ARRAY_HH
#define BULKSC_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/cache_geometry.hh"
#include "sim/types.hh"

namespace bulksc {

/** Coherence state of a cached line (MSI with a dirty/owned state). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Dirty, //!< Modified/owned (may be speculative; the array can't tell)
};

/** One cache line's tag-array entry. */
struct CacheLine
{
    LineAddr line = 0;
    LineState state = LineState::Invalid;
    std::uint64_t lruStamp = 0;

    bool valid() const { return state != LineState::Invalid; }
};

/** A victim displaced by an insertion. */
struct Victim
{
    LineAddr line;
    bool dirty;
};

/** Generic set-associative cache tag array. */
class CacheArray
{
  public:
    /** Predicate deciding whether a line may be chosen as a victim. */
    using VictimFilter = std::function<bool(LineAddr)>;

    explicit CacheArray(const CacheGeometry &geom);

    /** Look up @p line, updating LRU on hit. @return entry or nullptr. */
    CacheLine *lookup(LineAddr line);

    /** Look up @p line without touching LRU state. */
    const CacheLine *peek(LineAddr line) const;

    /**
     * Insert @p line with @p state, evicting the LRU victim of its set
     * that passes @p filter.
     *
     * @param[out] victim The displaced valid line, if any.
     * @return the inserted entry, or nullptr if every candidate way was
     *         vetoed by the filter (the caller must handle bypass).
     */
    CacheLine *insert(LineAddr line, LineState state,
                      const VictimFilter &filter,
                      std::optional<Victim> &victim);

    /** Invalidate @p line if present. @return its state beforehand. */
    LineState invalidate(LineAddr line);

    /**
     * Number of ways of @p line's set currently vetoed by @p filter.
     * Used by chunk-overflow checks.
     */
    unsigned countVetoed(LineAddr line, const VictimFilter &filter) const;

    /** Apply @p fn to every valid line of set @p set_idx. */
    void forEachInSet(std::uint32_t set_idx,
                      const std::function<void(CacheLine &)> &fn);

    /** Apply @p fn to every valid line in the array. */
    void forEach(const std::function<void(CacheLine &)> &fn);

    const CacheGeometry &geometry() const { return geom; }

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }

    /**
     * Order-insensitive digest of the coherence-visible contents
     * (valid lines and their states). LRU stamps and hit/miss
     * counters are deliberately excluded: they are performance
     * bookkeeping, and folding them in would make every explorer
     * fingerprint unique, defeating revisit pruning.
     */
    std::uint64_t fingerprint() const;

  private:
    CacheLine *findWay(LineAddr line);

    CacheGeometry geom;
    std::vector<CacheLine> lines;
    std::uint64_t lruCounter = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace bulksc

#endif // BULKSC_MEM_CACHE_ARRAY_HH
