/**
 * @file
 * A fixed-width vector clock for happens-before tracking.
 *
 * One component per processor; the standard pointwise join and
 * partial-order comparison. Widths are the (small) processor count,
 * so clocks are dense vectors, not maps.
 */

#ifndef BULKSC_ANALYSIS_VECTOR_CLOCK_HH
#define BULKSC_ANALYSIS_VECTOR_CLOCK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bulksc {

class VectorClock
{
  public:
    VectorClock() = default;

    explicit VectorClock(std::size_t n) : c(n, 0) {}

    std::size_t size() const { return c.size(); }

    std::uint64_t operator[](std::size_t i) const { return c[i]; }
    std::uint64_t &operator[](std::size_t i) { return c[i]; }

    /** Pointwise maximum: this := this ⊔ other. */
    void
    join(const VectorClock &o)
    {
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (o.c[i] > c[i])
                c[i] = o.c[i];
        }
    }

    /** this ⊑ other (every component ≤). */
    bool
    leq(const VectorClock &o) const
    {
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (c[i] > o.c[i])
                return false;
        }
        return true;
    }

    bool operator==(const VectorClock &o) const { return c == o.c; }

  private:
    std::vector<std::uint64_t> c;
};

} // namespace bulksc

#endif // BULKSC_ANALYSIS_VECTOR_CLOCK_HH
