#include "analysis/cycle_detector.hh"

#include <algorithm>

namespace bulksc {

bool
CycleDetector::forwardReaches(NodeId v, NodeId u, std::uint32_t limit,
                              std::vector<NodeId> &visited)
{
    ++epoch;
    mark[v] = epoch;
    parent[v] = kNone;
    visited.clear();
    visited.push_back(v);
    // Breadth-first so the first arrival at u is a fewest-edges path.
    for (std::size_t head = 0; head < visited.size(); ++head) {
        NodeId x = visited[head];
        for (NodeId y : out[x]) {
            if (ord[y] > limit || mark[y] == epoch)
                continue;
            mark[y] = epoch;
            parent[y] = x;
            if (y == u)
                return true;
            visited.push_back(y);
        }
    }
    return false;
}

CycleDetector::EdgeOutcome
CycleDetector::addEdge(NodeId u, NodeId v, std::vector<NodeId> *cycle)
{
    if (u == v) {
        if (cycle)
            *cycle = {u};
        return EdgeOutcome::Cycle;
    }
    if (!edgeSet.insert(key(u, v)).second)
        return EdgeOutcome::Duplicate;

    auto commit = [&] {
        out[u].push_back(v);
        in[v].push_back(u);
        ++nEdges;
        return EdgeOutcome::Inserted;
    };

    if (ord[u] < ord[v])
        return commit(); // already topologically consistent

    ++nReorders;
    std::vector<NodeId> deltaF;
    if (forwardReaches(v, u, ord[u], deltaF)) {
        // A v -> u path exists: u -> v would close a cycle. Reconstruct
        // the shortest path v, ..., u from the BFS parents.
        edgeSet.erase(key(u, v));
        if (cycle) {
            cycle->clear();
            for (NodeId x = u; x != kNone; x = parent[x])
                cycle->push_back(x);
            std::reverse(cycle->begin(), cycle->end());
        }
        return EdgeOutcome::Cycle;
    }

    // No cycle: restore the topological invariant by permuting only
    // the affected region. deltaF holds everything reachable from v
    // within (.., ord[u]]; deltaB everything reaching u within
    // [ord[v], ..). The two sets are disjoint (an overlap would have
    // been a v -> u path), and moving deltaB before deltaF within the
    // union of their current order slots restores ord[x] < ord[y] for
    // every edge x -> y.
    std::vector<NodeId> deltaB;
    {
        ++epoch;
        mark[u] = epoch;
        deltaB.push_back(u);
        for (std::size_t head = 0; head < deltaB.size(); ++head) {
            NodeId x = deltaB[head];
            for (NodeId y : in[x]) {
                if (ord[y] < ord[v] || mark[y] == epoch)
                    continue;
                mark[y] = epoch;
                deltaB.push_back(y);
            }
        }
    }

    auto byOrd = [this](NodeId a, NodeId b) { return ord[a] < ord[b]; };
    std::sort(deltaB.begin(), deltaB.end(), byOrd);
    std::sort(deltaF.begin(), deltaF.end(), byOrd);

    std::vector<std::uint32_t> slots;
    slots.reserve(deltaB.size() + deltaF.size());
    for (NodeId x : deltaB)
        slots.push_back(ord[x]);
    for (NodeId x : deltaF)
        slots.push_back(ord[x]);
    std::sort(slots.begin(), slots.end());

    std::size_t s = 0;
    for (NodeId x : deltaB) {
        ord[x] = slots[s++];
        pos[ord[x]] = x;
    }
    for (NodeId x : deltaF) {
        ord[x] = slots[s++];
        pos[ord[x]] = x;
    }
    return commit();
}

} // namespace bulksc
