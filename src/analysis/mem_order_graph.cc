#include "analysis/mem_order_graph.hh"

#include <sstream>

#include "sim/event_trace.hh"

namespace bulksc {

const char *
MemOrderGraph::edgeKindName(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Po:
        return "po";
      case EdgeKind::Rf:
        return "rf";
      case EdgeKind::Co:
        return "co";
      case EdgeKind::Fr:
        return "fr";
    }
    return "?";
}

void
MemOrderGraph::addEdge(Tick now, NodeId u, NodeId v, EdgeKind kind,
                       Addr addr)
{
    auto [it, fresh] = edgeInfo.try_emplace(key(u, v),
                                            EdgeInfo{kind, addr});
    if (!fresh)
        return; // edge already present; first witness wins

    std::vector<NodeId> path;
    auto outcome = det.addEdge(u, v, &path);
    if (outcome == CycleDetector::EdgeOutcome::Cycle) {
        // The offending edge is rejected (the graph stays acyclic and
        // later commits keep being checked), but the cycle it would
        // have closed is the SC-violation witness.
        edgeInfo.erase(it);
        ++nCycles;
        EVENT_TRACE(TraceEventType::ScViolation, now,
                    trackProc(nodes[v].proc), nodes[v].seq, addr,
                    static_cast<std::uint8_t>(kind));
        if (viols.size() < violationCap) {
            Violation viol;
            viol.tick = now;
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const EdgeInfo &ei =
                    edgeInfo.at(key(path[i], path[i + 1]));
                viol.edges.push_back(
                    {path[i], path[i + 1], ei.kind, ei.addr});
            }
            viol.edges.push_back({u, v, kind, addr}); // closing edge
            viols.push_back(std::move(viol));
        }
        return;
    }
    ++kindCounts[static_cast<unsigned>(kind)];
}

void
MemOrderGraph::chunkCommitted(Tick now, ProcId p, std::uint64_t seq,
                              const std::vector<LoggedAccess> &log)
{
    NodeId n = det.addNode();
    nodes.push_back({p, seq, now});

    auto po = lastNode.find(p);
    if (po != lastNode.end())
        addEdge(now, po->second, n, EdgeKind::Po, 0);
    lastNode[p] = n;

    for (std::size_t i = 0; i < log.size(); ++i) {
        const LoggedAccess &a = log[i];
        auto &h = hist[a.addr];
        if (a.isWrite) {
            if (!h.empty() && h.back().node != n)
                addEdge(now, h.back().node, n, EdgeKind::Co, a.addr);
            auto rs = readers.find(a.addr);
            if (rs != readers.end()) {
                for (NodeId r : rs->second) {
                    if (r != n)
                        addEdge(now, r, n, EdgeKind::Fr, a.addr);
                }
                rs->second.clear();
            }
            h.push_back({WriterRef{p, seq,
                                   static_cast<std::uint32_t>(i)},
                         n});
            continue;
        }

        if (!a.writer.fromStore()) {
            // The load observed initial memory. If writes to the
            // address have already committed, that observation is
            // stale: the reader serializes before the first write.
            if (h.empty())
                readers[a.addr].push_back(n);
            else
                addEdge(now, n, h.front().node, EdgeKind::Fr, a.addr);
            continue;
        }

        // Resolve the writer tag in the address's write history.
        // Searching from the back finds it immediately in the common
        // (read-the-latest) case.
        std::size_t j = h.size();
        while (j-- > 0) {
            if (h[j].writer == a.writer)
                break;
        }
        if (j >= h.size()) {
            ++nUnmatched; // writer never committed: instrumentation bug
            continue;
        }
        if (h[j].node != n)
            addEdge(now, h[j].node, n, EdgeKind::Rf, a.addr);
        if (j + 1 == h.size()) {
            // Fresh read: fr materializes when the next write commits.
            readers[a.addr].push_back(n);
        } else if (h[j + 1].node != n) {
            // Stale read: a later write already committed, so the
            // reader must serialize before it. This is the edge that
            // points *backward* in commit order and closes the cycle
            // when disambiguation was (deliberately or otherwise)
            // skipped.
            addEdge(now, n, h[j + 1].node, EdgeKind::Fr, a.addr);
        }
    }
}

std::string
MemOrderGraph::describe(const Violation &v) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < v.edges.size(); ++i) {
        const CycleEdge &e = v.edges[i];
        const NodeInfo &f = nodes[e.from];
        os << "cpu" << f.proc << "#" << f.seq << " -"
           << edgeKindName(e.kind);
        if (e.kind != EdgeKind::Po)
            os << "(0x" << std::hex << e.addr << std::dec << ")";
        os << "-> ";
    }
    if (!v.edges.empty()) {
        const NodeInfo &t = nodes[v.edges.back().to];
        os << "cpu" << t.proc << "#" << t.seq;
    }
    return os.str();
}

} // namespace bulksc
