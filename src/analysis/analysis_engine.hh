/**
 * @file
 * The analysis engine: one commit-order observer fanning committed
 * chunk logs out to the configured checkers (axiomatic SC via the
 * memory-order graph, happens-before races via vector clocks), plus
 * the writer-tag directory the processors' load instrumentation
 * queries.
 *
 * A BulkProcessor with an engine attached logs *every* access (not
 * just value-tracked ones) and binds each load's WriterRef at the
 * instant its value binds: from the youngest live chunk's store to
 * the address if one exists, else from committedWriter() — which the
 * engine keeps in lockstep with the committed value state, because
 * both are updated atomically at commit grant in the single-threaded
 * event simulation.
 *
 * Violations and races are also emitted into the structured event
 * trace (TraceCat::Analysis), so they land on the Perfetto timeline
 * next to the commits that caused them.
 */

#ifndef BULKSC_ANALYSIS_ANALYSIS_ENGINE_HH
#define BULKSC_ANALYSIS_ANALYSIS_ENGINE_HH

#include <memory>

#include "analysis/mem_order_graph.hh"
#include "analysis/race_detector.hh"
#include "sim/stats.hh"

namespace bulksc {

struct AnalysisConfig
{
    bool axiomatic = true;
    bool race = false;
    unsigned numProcs = 0;

    /** Sync-variable address range for happens-before edges (the
     *  workload layout's lock/barrier region). */
    Addr syncLo = 0;
    Addr syncHi = 0;

    unsigned violationCap = 8;
    unsigned raceReportCap = 32;
};

class AnalysisEngine
{
  public:
    explicit AnalysisEngine(const AnalysisConfig &cfg) : cfg_(cfg)
    {
        if (cfg.axiomatic)
            graph_ = std::make_unique<MemOrderGraph>(cfg.violationCap);
        if (cfg.race) {
            races_ = std::make_unique<RaceDetector>(RaceDetector::Config{
                cfg.numProcs, cfg.syncLo, cfg.syncHi,
                cfg.raceReportCap});
        }
    }

    /** Load instrumentation: the committed writer of @p a (initial
     *  memory when the axiomatic checker is off or nothing committed
     *  yet — tags are only consumed by the axiomatic checker). */
    WriterRef
    committedWriter(Addr a) const
    {
        return graph_ ? graph_->committedWriter(a) : WriterRef{};
    }

    /** One chunk committed; must be called in commit-grant order. */
    void
    chunkCommitted(Tick now, ProcId p, std::uint64_t seq,
                   const std::vector<LoggedAccess> &log)
    {
        ++nChunks;
        if (graph_)
            graph_->chunkCommitted(now, p, seq, log);
        if (races_)
            races_->chunkCommitted(now, p, seq, log);
    }

    const AnalysisConfig &config() const { return cfg_; }

    /** Null unless the axiomatic check is enabled. */
    const MemOrderGraph *graph() const { return graph_.get(); }

    /** Null unless the race check is enabled. */
    const RaceDetector *races() const { return races_.get(); }

    /** True iff no po ∪ rf ∪ co ∪ fr cycle was found (vacuously true
     *  with the axiomatic check off). */
    bool scOk() const { return !graph_ || graph_->ok(); }

    std::uint64_t scCycles() const
    {
        return graph_ ? graph_->cyclesDetected() : 0;
    }

    std::uint64_t raceCount() const
    {
        return races_ ? races_->racesFound() : 0;
    }

    std::uint64_t chunksObserved() const { return nChunks; }

    void dumpStats(StatGroup &sg) const;

  private:
    AnalysisConfig cfg_;
    std::unique_ptr<MemOrderGraph> graph_;
    std::unique_ptr<RaceDetector> races_;
    std::uint64_t nChunks = 0;
};

} // namespace bulksc

#endif // BULKSC_ANALYSIS_ANALYSIS_ENGINE_HH
