/**
 * @file
 * Incremental cycle detection via online topological-order maintenance
 * (Pearce & Kelly, "A Dynamic Topological Sort Algorithm for Directed
 * Acyclic Graphs", JEA 2007).
 *
 * The detector maintains a total order ord[] over the nodes such that
 * every inserted edge (u, v) satisfies ord[u] < ord[v]. Inserting an
 * edge that already respects the order is O(1); inserting a "back"
 * edge triggers a search bounded to the affected region
 * [ord[v], ord[u]] that either finds a path v -> u — i.e. the new edge
 * would close a cycle — or reorders just the affected nodes.
 *
 * On a cycle, the *shortest* v -> u path (by edge count) is returned:
 * the forward search is breadth-first, and is exhaustive for v -> u
 * paths because every existing edge increases ord, so no path to u can
 * leave [ord[v], ord[u]]. The offending edge is NOT inserted — the
 * graph stays acyclic and subsequent insertions keep being checked.
 *
 * This is the engine under the axiomatic SC checker: nodes are
 * committed chunks, edges are po/rf/co/fr, and a cycle is an SC
 * violation whose minimal witness we want to report.
 */

#ifndef BULKSC_ANALYSIS_CYCLE_DETECTOR_HH
#define BULKSC_ANALYSIS_CYCLE_DETECTOR_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace bulksc {

class CycleDetector
{
  public:
    using NodeId = std::uint32_t;

    enum class EdgeOutcome
    {
        Inserted,  //!< edge added, graph still acyclic
        Duplicate, //!< edge already present (no-op)
        Cycle,     //!< edge rejected: it would close a cycle
    };

    /** Create a node; ids are dense and start at 0. */
    NodeId
    addNode()
    {
        NodeId n = static_cast<NodeId>(ord.size());
        ord.push_back(n); // new nodes go last in the current order
        pos.push_back(n);
        out.emplace_back();
        in.emplace_back();
        mark.push_back(0);
        parent.push_back(kNone);
        return n;
    }

    /**
     * Insert the edge u -> v.
     *
     * @param cycle If non-null and the outcome is Cycle, receives the
     *        shortest existing path v, ..., u (so the full cycle is
     *        that path closed by the rejected edge u -> v). A self
     *        loop yields the single-node path {u}.
     */
    EdgeOutcome addEdge(NodeId u, NodeId v,
                        std::vector<NodeId> *cycle = nullptr);

    bool
    hasEdge(NodeId u, NodeId v) const
    {
        return edgeSet.count(key(u, v)) != 0;
    }

    std::size_t numNodes() const { return ord.size(); }
    std::size_t numEdges() const { return nEdges; }

    /** Back-edge insertions that needed the bounded search. */
    std::uint64_t reorders() const { return nReorders; }

    /** Position of @p n in the maintained topological order. */
    std::uint32_t orderOf(NodeId n) const { return ord[n]; }

  private:
    static constexpr NodeId kNone = ~NodeId{0};

    static std::uint64_t
    key(NodeId u, NodeId v)
    {
        return (std::uint64_t{u} << 32) | v;
    }

    /** BFS forward from v over nodes with ord <= limit; true iff u
     *  was reached (parent[] then encodes the shortest path). */
    bool forwardReaches(NodeId v, NodeId u, std::uint32_t limit,
                        std::vector<NodeId> &visited);

    std::vector<std::vector<NodeId>> out; //!< forward adjacency
    std::vector<std::vector<NodeId>> in;  //!< reverse adjacency
    std::vector<std::uint32_t> ord;       //!< node -> order index
    std::vector<NodeId> pos;              //!< order index -> node
    std::unordered_set<std::uint64_t> edgeSet;
    std::size_t nEdges = 0;
    std::uint64_t nReorders = 0;

    // Epoch-stamped scratch state for the searches (no per-call
    // allocation of visited sets).
    std::vector<std::uint32_t> mark;
    std::vector<NodeId> parent;
    std::uint32_t epoch = 0;
};

} // namespace bulksc

#endif // BULKSC_ANALYSIS_CYCLE_DETECTOR_HH
