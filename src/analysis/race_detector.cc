#include "analysis/race_detector.hh"

#include <sstream>

#include "sim/event_trace.hh"

namespace bulksc {

RaceDetector::RaceDetector(const Config &cfg)
    : np(cfg.numProcs), syncLo(cfg.syncLo), syncHi(cfg.syncHi),
      reportCap(cfg.reportCap)
{
    clocks.reserve(np);
    for (unsigned p = 0; p < np; ++p) {
        clocks.emplace_back(np);
        clocks.back()[p] = 1;
    }
}

void
RaceDetector::check(Tick now, ProcId p, std::uint64_t seq,
                    const LoggedAccess &a)
{
    ++nChecked;
    auto [it, fresh] = vars.try_emplace(a.addr);
    VarState &v = it->second;
    if (fresh) {
        v.w.resize(np);
        v.r.resize(np);
    }

    const VectorClock &cp = clocks[p];
    ProcId conflict = kNoWriter;
    bool conflictWrite = false;
    for (unsigned q = 0; q < np; ++q) {
        if (q == p)
            continue;
        if (v.w[q].clk > cp[q]) {
            conflict = q;
            conflictWrite = true;
            break;
        }
        if (a.isWrite && v.r[q].clk > cp[q]) {
            conflict = q;
            conflictWrite = false;
            break;
        }
    }
    if (conflict != kNoWriter) {
        ++nRaces;
        racyAddrSet.insert(a.addr);
        EVENT_TRACE(TraceEventType::RaceDetected, now, trackProc(p),
                    seq, a.addr, a.isWrite ? 1 : 0);
        if (reps.size() < reportCap) {
            const Epoch &prior =
                conflictWrite ? v.w[conflict] : v.r[conflict];
            reps.push_back({a.addr, now, conflict, prior.seq,
                            conflictWrite, p, seq, a.isWrite});
        }
    }

    Epoch &e = a.isWrite ? v.w[p] : v.r[p];
    e.clk = cp[p];
    e.seq = seq;
}

void
RaceDetector::chunkCommitted(Tick now, ProcId p, std::uint64_t seq,
                             const std::vector<LoggedAccess> &log)
{
    if (p >= np)
        return;
    for (const LoggedAccess &a : log) {
        if (isSync(a.addr)) {
            ++nSyncOps;
            auto [it, fresh] = syncVc.try_emplace(a.addr, np);
            (void)fresh;
            VectorClock &L = it->second;
            if (a.isWrite) {
                // Release: publish the writer's history, then tick so
                // later readers that only *observed* this processor's
                // store (e.g. a failed test-and-set) do not inherit
                // its subsequent accesses.
                L.join(clocks[p]);
                ++clocks[p][p];
            } else {
                // Acquire: inherit everything the variable has seen.
                clocks[p].join(L);
            }
            continue;
        }
        check(now, p, seq, a);
    }
}

std::string
RaceDetector::describe(const Report &r) const
{
    std::ostringstream os;
    os << "data race on 0x" << std::hex << r.addr << std::dec
       << ": cpu" << r.proc << "#" << r.seq << " "
       << (r.isWrite ? "write" : "read") << " vs cpu" << r.priorProc
       << "#" << r.priorSeq << " "
       << (r.priorIsWrite ? "write" : "read");
    return os.str();
}

} // namespace bulksc
