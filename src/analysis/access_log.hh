/**
 * @file
 * The committed-chunk access log: the observation stream every
 * correctness checker consumes.
 *
 * A BulkSC processor with a checker attached records each memory
 * access of a chunk in program order. At commit grant — the moment the
 * chunk's speculative values become the committed state — the whole
 * log is reported, so checkers observe exactly the serialization the
 * machine claims (the commit order) together with what each access
 * really saw during the speculative, overlapped execution.
 *
 * Two independent kinds of evidence are carried per access:
 *
 *  - the observed/written *value* (when the workload tracks values),
 *    consumed by the serial-replay checker (ScVerifier);
 *  - the *writer reference* of a load — which store the simulator
 *    actually supplied the data from — recorded structurally at value
 *    bind time, consumed by the axiomatic checker's reads-from edges.
 *
 * Writer references do not depend on value tracking (or on values
 * being distinguishable), which is what lets the axiomatic checker
 * run on any workload.
 */

#ifndef BULKSC_ANALYSIS_ACCESS_LOG_HH
#define BULKSC_ANALYSIS_ACCESS_LOG_HH

#include <cstdint>

#include "sim/types.hh"

namespace bulksc {

/** Sentinel processor id: "initial memory contents" (no writer). */
constexpr ProcId kNoWriter = ~ProcId{0};

/**
 * Identifies one committed (or in-flight) store: the access at
 * position @ref idx of chunk @ref seq of processor @ref proc.
 */
struct WriterRef
{
    ProcId proc = kNoWriter;
    std::uint64_t seq = 0; //!< chunk sequence number of the writer
    std::uint32_t idx = 0; //!< index in the writer chunk's access log

    /** False for the initial-memory pseudo-writer. */
    bool fromStore() const { return proc != kNoWriter; }

    bool
    operator==(const WriterRef &o) const
    {
        return proc == o.proc && seq == o.seq && idx == o.idx;
    }
};

/** One logged access of a chunk, in program order. */
struct LoggedAccess
{
    Addr addr;
    std::uint64_t value; //!< value observed (load) or written (store)
    bool isWrite;

    /** True iff @ref value is meaningful (the op tracked values).
     *  Untracked accesses still carry addresses and writer refs. */
    bool hasValue = true;

    /** For loads: the store the observed data came from (bound when
     *  the load's value bound). Only filled in analysis mode. */
    WriterRef writer{};
};

} // namespace bulksc

#endif // BULKSC_ANALYSIS_ACCESS_LOG_HH
