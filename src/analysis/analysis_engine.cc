#include "analysis/analysis_engine.hh"

namespace bulksc {

void
AnalysisEngine::dumpStats(StatGroup &sg) const
{
    sg.set("analysis.chunks", static_cast<double>(nChunks));
    if (graph_) {
        sg.set("analysis.sc_ok", graph_->ok() ? 1 : 0);
        sg.set("analysis.sc_cycles",
               static_cast<double>(graph_->cyclesDetected()));
        sg.set("analysis.graph_nodes",
               static_cast<double>(graph_->numNodes()));
        sg.set("analysis.graph_edges",
               static_cast<double>(graph_->numEdges()));
        sg.set("analysis.edges_po",
               static_cast<double>(
                   graph_->edgeCount(MemOrderGraph::EdgeKind::Po)));
        sg.set("analysis.edges_rf",
               static_cast<double>(
                   graph_->edgeCount(MemOrderGraph::EdgeKind::Rf)));
        sg.set("analysis.edges_co",
               static_cast<double>(
                   graph_->edgeCount(MemOrderGraph::EdgeKind::Co)));
        sg.set("analysis.edges_fr",
               static_cast<double>(
                   graph_->edgeCount(MemOrderGraph::EdgeKind::Fr)));
        sg.set("analysis.unmatched_reads",
               static_cast<double>(graph_->unmatchedReads()));
    }
    if (races_) {
        sg.set("analysis.races",
               static_cast<double>(races_->racesFound()));
        sg.set("analysis.racy_addrs",
               static_cast<double>(races_->racyAddrs()));
        sg.set("analysis.sync_ops",
               static_cast<double>(races_->syncOps()));
        sg.set("analysis.checked_accesses",
               static_cast<double>(races_->checkedAccesses()));
    }
}

} // namespace bulksc
