/**
 * @file
 * Axiomatic SC checking over committed chunks: build the memory-order
 * graph po ∪ rf ∪ co ∪ fr and keep it acyclic.
 *
 * BulkSC's correctness claim (paper Section 3.1) is that the chunked,
 * overlapped execution is indistinguishable from some serial order of
 * chunks. Axiomatically (Qadeer-style, and RealityCheck's graph
 * formulation of microarchitectural MCM checks), that holds iff the
 * union of
 *
 *  - po: per-processor chunk commit order (chunks commit in program
 *        order, so this is program order at chunk granularity),
 *  - rf: writer chunk -> reader chunk, for each load, from the store
 *        that actually supplied its value (ground-truth writer tags
 *        recorded at value-bind time — no value inference, so any
 *        workload can be checked),
 *  - co: per-address write serialization, witnessed by commit-grant
 *        order (the order the machine *claims*),
 *  - fr: reader -> co-successor of the store it read (the load
 *        observed a value that the later store overwrote, so the
 *        reader must serialize before that store),
 *
 * is acyclic over committed chunks. Edges are fed to the incremental
 * cycle detector as each chunk commits; in a correct execution every
 * edge points forward in commit order (the fast O(1) path), and the
 * first edge that would close a cycle is the SC violation — reported
 * with a minimal cycle and per-edge processor/chunk/address
 * attribution, and *not* inserted, so checking continues.
 *
 * Granularity: rf/co/fr are tracked at byte-address granularity (what
 * the value model uses), which is finer than the machine's line-level
 * disambiguation — so the check is sound and strictly more precise
 * than the hardware needs to be.
 *
 * The per-address write history is kept in full: truncating it could
 * mis-resolve a very stale read to a newer co-successor and fabricate
 * or miss edges. Memory therefore grows with distinct committed writes
 * (fine for simulation-scale runs; see docs/analysis.md).
 */

#ifndef BULKSC_ANALYSIS_MEM_ORDER_GRAPH_HH
#define BULKSC_ANALYSIS_MEM_ORDER_GRAPH_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/access_log.hh"
#include "analysis/cycle_detector.hh"

namespace bulksc {

class MemOrderGraph
{
  public:
    using NodeId = CycleDetector::NodeId;

    enum class EdgeKind : std::uint8_t { Po, Rf, Co, Fr };

    /** A committed chunk (one graph node). */
    struct NodeInfo
    {
        ProcId proc;
        std::uint64_t seq;
        Tick commitTick;
    };

    /** One edge of a reported violating cycle. */
    struct CycleEdge
    {
        NodeId from;
        NodeId to;
        EdgeKind kind;
        Addr addr; //!< witness address (0 for po)
    };

    /** A minimal po ∪ rf ∪ co ∪ fr cycle. */
    struct Violation
    {
        Tick tick; //!< commit tick at which the cycle closed
        std::vector<CycleEdge> edges;
    };

    explicit MemOrderGraph(unsigned violation_cap = 8)
        : violationCap(violation_cap)
    {}

    /**
     * Observe one committed chunk. Must be called in commit-grant
     * order (the order BulkProcessor::onGranted fires in).
     */
    void chunkCommitted(Tick now, ProcId p, std::uint64_t seq,
                        const std::vector<LoggedAccess> &log);

    /** The last committed store to @p a (initial memory if none). */
    WriterRef
    committedWriter(Addr a) const
    {
        auto it = hist.find(a);
        if (it == hist.end() || it->second.empty())
            return {};
        return it->second.back().writer;
    }

    bool ok() const { return nCycles == 0; }

    std::uint64_t cyclesDetected() const { return nCycles; }

    /** The first violationCap violations, each a minimal cycle. */
    const std::vector<Violation> &violations() const { return viols; }

    const NodeInfo &node(NodeId n) const { return nodes.at(n); }

    std::size_t numNodes() const { return nodes.size(); }
    std::size_t numEdges() const { return det.numEdges(); }
    std::uint64_t edgeCount(EdgeKind k) const
    {
        return kindCounts[static_cast<unsigned>(k)];
    }

    /** Loads whose writer tag matched no known store (should be 0;
     *  counted instead of asserted so a checker bug cannot kill a
     *  run). */
    std::uint64_t unmatchedReads() const { return nUnmatched; }

    /** "cpu1#12 -fr(0xb0000040)-> cpu0#9 -co(0xb0000040)-> cpu1#12" */
    std::string describe(const Violation &v) const;

    static const char *edgeKindName(EdgeKind k);

  private:
    struct HistEntry
    {
        WriterRef writer;
        NodeId node;
    };

    struct EdgeInfo
    {
        EdgeKind kind;
        Addr addr;
    };

    void addEdge(Tick now, NodeId u, NodeId v, EdgeKind kind,
                 Addr addr);

    static std::uint64_t
    key(NodeId u, NodeId v)
    {
        return (std::uint64_t{u} << 32) | v;
    }

    CycleDetector det;
    std::vector<NodeInfo> nodes;
    std::unordered_map<ProcId, NodeId> lastNode; //!< po predecessor

    /** Per-address committed write history, in co (commit) order. */
    std::unordered_map<Addr, std::vector<HistEntry>> hist;

    /** Readers of the current (latest) version of each address; they
     *  get fr edges to the next committed write. */
    std::unordered_map<Addr, std::vector<NodeId>> readers;

    /** Kind/address attribution of inserted edges (first wins). */
    std::unordered_map<std::uint64_t, EdgeInfo> edgeInfo;

    std::uint64_t kindCounts[4] = {0, 0, 0, 0};
    std::uint64_t nCycles = 0;
    std::uint64_t nUnmatched = 0;
    unsigned violationCap;
    std::vector<Violation> viols;
};

} // namespace bulksc

#endif // BULKSC_ANALYSIS_MEM_ORDER_GRAPH_HH
