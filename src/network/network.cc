#include "network/network.hh"

#include <numeric>

namespace bulksc {

// The fault plane's /CLASS scope names are index-matched to this enum;
// it cannot include network.hh itself (it sits below the network
// layer), so pin the correspondence here.
static_assert(kFaultNumTrafficClasses ==
                  static_cast<unsigned>(TrafficClass::NumClasses),
              "fault_plane traffic-class table out of sync");

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::DataRdWr:
        return "RdWr";
      case TrafficClass::RdSig:
        return "RdSig";
      case TrafficClass::WrSig:
        return "WrSig";
      case TrafficClass::Inval:
        return "Inv";
      case TrafficClass::Other:
        return "Other";
      default:
        return "?";
    }
}

Network::Network(EventQueue &eq, const NetworkConfig &c)
    : SimObject(eq, "network"), cfg(c)
{}

void
Network::send(NodeId src, NodeId dst, TrafficClass cls, unsigned bits,
              EventQueue::Callback deliver, const MsgFootprint &fp)
{
    classBits[static_cast<unsigned>(cls)] += bits + headerBits;
    ++msgCount;

    Tick extra = 0;
    if (faults && faults->active()) {
        if (ctrl) {
            // Under exploration the delay window is a choice domain,
            // not a seeded roll: the controller picks from [lo, hi].
            Tick lo = 0, hi = 0;
            if (faults->delayWindow(curTick(), static_cast<int>(cls),
                                    lo, hi)) {
                extra = ctrl->chooseDelay(
                    curTick(), static_cast<int>(cls), lo, hi);
            }
        } else {
            extra = faults->extraDelay(curTick(),
                                       static_cast<int>(cls));
        }
    }

    std::uint32_t tag = ScheduleController::kNoTag;
    if (ctrl) {
        EventFootprint ef;
        ef.src = src;
        ef.dst = dst;
        ef.cls = static_cast<int>(cls);
        ef.hasLine = fp.hasLine;
        ef.line = fp.line;
        ef.rsig = fp.rsig;
        ef.wsig = fp.wsig;
        tag = ctrl->registerEvent(ef);
    }

    if (!cfg.modelContention) {
        eventq.scheduleTagged(curTick() + latencyFor(bits) + extra,
                              tag, std::move(deliver));
        return;
    }

    // Serialize through the destination's input link: the message
    // occupies the link for its serialization time after any message
    // already queued there.
    unsigned total = bits + headerBits;
    Tick ser = (total + cfg.linkBitsPerCycle - 1) /
               cfg.linkBitsPerCycle;
    Tick arrive = curTick() + cfg.hopLatency + extra;
    Tick &busy = linkBusyUntil[dst];
    Tick start = arrive > busy ? arrive : busy;
    queuedCycles += start - arrive;
    busy = start + ser;
    eventq.scheduleTagged(busy, tag, std::move(deliver));
}

std::uint64_t
Network::bitsSent(TrafficClass c) const
{
    return classBits[static_cast<unsigned>(c)];
}

std::uint64_t
Network::totalBits() const
{
    return std::accumulate(classBits.begin(), classBits.end(),
                           std::uint64_t{0});
}

void
Network::resetStats()
{
    classBits.fill(0);
    msgCount = 0;
    queuedCycles = 0;
}

} // namespace bulksc
