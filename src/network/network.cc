#include "network/network.hh"

#include <numeric>

namespace bulksc {

// The fault plane's /CLASS scope names are index-matched to this enum;
// it cannot include network.hh itself (it sits below the network
// layer), so pin the correspondence here.
static_assert(kFaultNumTrafficClasses ==
                  static_cast<unsigned>(TrafficClass::NumClasses),
              "fault_plane traffic-class table out of sync");

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::DataRdWr:
        return "RdWr";
      case TrafficClass::RdSig:
        return "RdSig";
      case TrafficClass::WrSig:
        return "WrSig";
      case TrafficClass::Inval:
        return "Inv";
      case TrafficClass::Other:
        return "Other";
      default:
        return "?";
    }
}

Network::Network(EventQueue &eq, const NetworkConfig &c)
    : SimObject(eq, "network"), cfg(c)
{}

void
Network::send(NodeId src, NodeId dst, TrafficClass cls, unsigned bits,
              EventQueue::Callback deliver)
{
    (void)src;
    classBits[static_cast<unsigned>(cls)] += bits + headerBits;
    ++msgCount;

    Tick extra = 0;
    if (faults && faults->active()) {
        extra = faults->extraDelay(curTick(),
                                   static_cast<int>(cls));
    }

    if (!cfg.modelContention) {
        eventq.scheduleAfter(latencyFor(bits) + extra,
                             std::move(deliver));
        return;
    }

    // Serialize through the destination's input link: the message
    // occupies the link for its serialization time after any message
    // already queued there.
    unsigned total = bits + headerBits;
    Tick ser = (total + cfg.linkBitsPerCycle - 1) /
               cfg.linkBitsPerCycle;
    Tick arrive = curTick() + cfg.hopLatency + extra;
    Tick &busy = linkBusyUntil[dst];
    Tick start = arrive > busy ? arrive : busy;
    queuedCycles += start - arrive;
    busy = start + ser;
    eventq.schedule(busy, std::move(deliver));
}

std::uint64_t
Network::bitsSent(TrafficClass c) const
{
    return classBits[static_cast<unsigned>(c)];
}

std::uint64_t
Network::totalBits() const
{
    return std::accumulate(classBits.begin(), classBits.end(),
                           std::uint64_t{0});
}

void
Network::resetStats()
{
    classBits.fill(0);
    msgCount = 0;
    queuedCycles = 0;
}

} // namespace bulksc
