/**
 * @file
 * A generic interconnection network model.
 *
 * The paper's architecture (Figure 5) connects cores, directories, and
 * the arbiter through a "generic interconnection network". This model
 * charges each message a per-hop latency plus a serialization delay
 * proportional to its size, and accounts traffic by category so the
 * bandwidth breakdown of Figure 11 (Rd/Wr, RdSig, WrSig, Inv, Other)
 * falls out of the stats.
 */

#ifndef BULKSC_NETWORK_NETWORK_HH
#define BULKSC_NETWORK_NETWORK_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "sim/event_queue.hh"
#include "sim/fault_plane.hh"
#include "sim/schedule_controller.hh"
#include "sim/types.hh"

namespace bulksc {

/** Traffic categories reported in the paper's Figure 11. */
enum class TrafficClass : unsigned
{
    DataRdWr, //!< Demand/prefetch requests and data responses
    RdSig,    //!< R signature transfers
    WrSig,    //!< W signature transfers
    Inval,    //!< Invalidations and their acknowledgements
    Other,    //!< Commit protocol control, writeback control, etc.
    NumClasses
};

/** @return a short printable name for a traffic class. */
const char *trafficClassName(TrafficClass c);

/** Network configuration. */
struct NetworkConfig
{
    /** Fixed per-message latency, cycles (router+wire). */
    Tick hopLatency = 3;

    /** Link width in bits per cycle (serialization). */
    unsigned linkBitsPerCycle = 128;

    /**
     * Model contention at the destination link: messages to the same
     * node serialize through its input port, so bursts (e.g. an
     * invalidation fan-in of acks, or commit storms at the arbiter)
     * queue instead of teleporting. Off by default — the paper's
     * evaluation uses unloaded latencies (Table 2 note).
     */
    bool modelContention = false;
};

/**
 * Address/signature footprint a message carries, for the schedule
 * controller's independence oracle. Default-constructed = unknown
 * footprint (conservatively dependent on everything).
 */
struct MsgFootprint
{
    bool hasLine = false;
    LineAddr line = 0;
    std::shared_ptr<const Signature> rsig;
    std::shared_ptr<const Signature> wsig;
};

/**
 * The interconnect. Messages are delivered by invoking a callback after
 * the modelled latency; bytes are accounted per traffic class.
 */
class Network : public SimObject
{
  public:
    Network(EventQueue &eq, const NetworkConfig &cfg);

    /**
     * Send a message.
     *
     * @param src Source node (stats only).
     * @param dst Destination node (stats only).
     * @param cls Traffic class for bandwidth accounting.
     * @param bits Payload size in bits (header added internally).
     * @param deliver Invoked at the delivery tick.
     * @param fp What the message carries (explorer independence
     *        oracle); only examined when a controller is attached.
     */
    void send(NodeId src, NodeId dst, TrafficClass cls, unsigned bits,
              EventQueue::Callback deliver,
              const MsgFootprint &fp = MsgFootprint{});

    /**
     * Attach the fault plane. Only net.delay is applied here (uniform
     * extra latency per message, scoped by traffic class and tick
     * window); loss and duplication are decided at the protocol
     * layers, which own the retransmission machinery.
     */
    void setFaultPlane(FaultPlane *fp) { faults = fp; }

    /**
     * Attach the schedule controller: every delivery is registered
     * with its footprint and scheduled tagged, and active net.delay
     * windows become controller delay choices instead of seeded rolls.
     */
    void setScheduleController(ScheduleController *c) { ctrl = c; }

    /** Latency a message of @p bits would experience. */
    Tick
    latencyFor(unsigned bits) const
    {
        unsigned total = bits + headerBits;
        return cfg.hopLatency +
               (total + cfg.linkBitsPerCycle - 1) / cfg.linkBitsPerCycle;
    }

    /** Total traffic of class @p c, in bits (including headers). */
    std::uint64_t bitsSent(TrafficClass c) const;

    /** Total traffic across all classes, in bits. */
    std::uint64_t totalBits() const;

    /** Total messages sent. */
    std::uint64_t messages() const { return msgCount; }

    /** Total cycles messages spent queued behind busy links
     *  (non-zero only with modelContention). */
    std::uint64_t queueingCycles() const { return queuedCycles; }

    void resetStats();

  private:
    static constexpr unsigned headerBits = 64;

    NetworkConfig cfg;
    FaultPlane *faults = nullptr;
    ScheduleController *ctrl = nullptr;
    std::array<std::uint64_t,
               static_cast<unsigned>(TrafficClass::NumClasses)>
        classBits{};
    std::uint64_t msgCount = 0;

    /** Per-destination input-link busy horizon (contention model). */
    std::unordered_map<NodeId, Tick> linkBusyUntil;
    std::uint64_t queuedCycles = 0;
};

} // namespace bulksc

#endif // BULKSC_NETWORK_NETWORK_HH
