#include "explore/run_controller.hh"

#include "signature/signature.hh"

namespace bulksc {

RunController::RunController(Schedule prefix_, bool por_)
    : prefix(std::move(prefix_)), por(por_)
{}

std::uint32_t
RunController::registerEvent(const EventFootprint &fp)
{
    events.push_back(fp);
    return static_cast<std::uint32_t>(events.size() - 1);
}

bool
RunController::dependent(const EventFootprint &a,
                         const EventFootprint &b)
{
    // Deliveries to the same node mutate the same module's state;
    // their order is always observable.
    if (a.dst == b.dst)
        return true;

    auto known = [](const EventFootprint &f) {
        return f.hasLine || f.rsig || f.wsig;
    };
    if (!known(a) || !known(b))
        return true; // unknown footprint: assume the worst

    if (a.hasLine && b.hasLine)
        return a.line == b.line;

    auto lineInSigs = [](LineAddr l, const EventFootprint &f) {
        return (f.rsig && f.rsig->contains(l)) ||
               (f.wsig && f.wsig->contains(l));
    };
    if (a.hasLine)
        return lineInSigs(a.line, b);
    if (b.hasLine)
        return lineInSigs(b.line, a);

    // Signature vs signature: any pairwise intersection makes the
    // pair dependent (membership is Bloom-conservative, so aliasing
    // only ever adds dependence).
    const Signature *as[2] = {a.rsig.get(), a.wsig.get()};
    const Signature *bs[2] = {b.rsig.get(), b.wsig.get()};
    for (const Signature *x : as) {
        if (!x)
            continue;
        for (const Signature *y : bs) {
            if (y && x->intersects(*y))
                return true;
        }
    }
    return false;
}

std::uint32_t
RunController::decide(ChoiceKind kind, std::uint32_t numOptions,
                      std::uint64_t allowedMask)
{
    std::uint32_t chosen = 0;
    if (trace_.size() < prefix.choices.size()) {
        const Choice &c = prefix.choices[trace_.size()];
        if (c.kind != kind || c.numOptions != numOptions ||
            c.chosen >= numOptions) {
            // The forced choice does not fit the decision actually
            // reached (stale schedule file, changed config): fall
            // back to the default rather than derail the run.
            ++nMismatch;
        } else {
            chosen = c.chosen;
        }
    }
    DecisionRecord r;
    r.kind = kind;
    r.chosen = chosen;
    r.numOptions = numOptions;
    r.allowedMask = allowedMask;
    r.fingerprint = fpFn ? fpFn() : 0;
    trace_.push_back(r);
    return chosen;
}

void
RunController::orderBatch(Tick now,
                          const std::vector<std::uint32_t> &tags,
                          std::vector<std::uint32_t> &order)
{
    (void)now;
    tagged.clear();
    for (std::uint32_t i = 0; i < tags.size(); ++i) {
        if (tags[i] != kNoTag)
            tagged.push_back(i);
    }
    if (tagged.size() <= 1)
        return; // nothing to reorder

    // Sequential picks: choose the next event among the remaining
    // tagged candidates until one is left.
    picked.clear();
    std::vector<std::uint32_t> remaining = tagged;
    while (remaining.size() > 1) {
        auto m = static_cast<std::uint32_t>(remaining.size());
        if (m > 64)
            ++nCapped;
        std::uint64_t mask = 1;
        if (por) {
            for (std::uint32_t j = 1; j < m && j < 64; ++j) {
                const EventFootprint &fj =
                    events[tags[remaining[j]]];
                for (std::uint32_t i = 0; i < j; ++i) {
                    if (dependent(events[tags[remaining[i]]], fj)) {
                        mask |= std::uint64_t{1} << j;
                        break;
                    }
                }
            }
        } else {
            mask = m >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << m) - 1;
        }
        std::uint32_t c = decide(ChoiceKind::Order, m, mask);
        if (c >= m)
            c = 0;
        picked.push_back(remaining[c]);
        remaining.erase(remaining.begin() + c);
    }
    picked.push_back(remaining[0]);

    bool fifo = true;
    for (std::size_t k = 0; k < picked.size(); ++k) {
        if (picked[k] != tagged[k]) {
            fifo = false;
            break;
        }
    }
    if (fifo)
        return;

    // Untagged events keep their positions; tagged slots fire the
    // picked tagged events in pick order.
    order.resize(tags.size());
    std::size_t t = 0;
    for (std::uint32_t i = 0; i < tags.size(); ++i)
        order[i] = tags[i] != kNoTag ? picked[t++] : i;
}

Tick
RunController::chooseDelay(Tick now, int cls, Tick lo, Tick hi)
{
    (void)now;
    (void)cls;
    if (hi < lo)
        hi = lo;
    Tick mid = lo + (hi - lo) / 2;
    Tick dom[3];
    std::uint32_t n = 0;
    dom[n++] = lo;
    if (mid != lo)
        dom[n++] = mid;
    if (hi != lo && hi != mid)
        dom[n++] = hi;
    if (n == 1)
        return dom[0]; // degenerate window: not a choice
    std::uint64_t mask = (std::uint64_t{1} << n) - 1;
    std::uint32_t c = decide(ChoiceKind::Delay, n, mask);
    if (c >= n)
        c = 0;
    return dom[c];
}

Schedule
RunController::recorded() const
{
    Schedule s;
    s.choices.reserve(trace_.size());
    for (const DecisionRecord &r : trace_)
        s.choices.push_back(r.choice());
    return s;
}

} // namespace bulksc
