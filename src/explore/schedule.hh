/**
 * @file
 * Replayable schedules: the choice sequence a controlled run makes.
 *
 * A schedule is a flat list of decisions — batch-ordering picks and
 * message-delay picks — in the order the kernel encountered them.
 * Replaying a schedule against the same configuration reproduces the
 * run exactly; replaying a *prefix* forces the recorded choices and
 * falls back to the default (FIFO order, minimum delay) beyond it,
 * which is still fully deterministic.
 *
 * The on-disk form is a line-oriented text file:
 *
 *   # bulksc schedule v1
 *   O 2/6
 *   D 1/3
 *
 * "O c/n" is a batch-ordering decision that picked candidate c of n;
 * "D c/n" picked delay option c of n. Comments (#) and blank lines
 * are ignored on load; save() emits a canonical form, so a loaded and
 * re-saved schedule is byte-identical.
 */

#ifndef BULKSC_EXPLORE_SCHEDULE_HH
#define BULKSC_EXPLORE_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bulksc {

/** What kind of decision a choice resolves. */
enum class ChoiceKind : std::uint8_t
{
    Order, //!< pick the next event among a same-tick tagged batch
    Delay, //!< pick a message delay from a net.delay window
};

/** One resolved decision. */
struct Choice
{
    ChoiceKind kind = ChoiceKind::Order;
    std::uint32_t chosen = 0;     //!< option picked
    std::uint32_t numOptions = 0; //!< domain size at the decision

    bool
    operator==(const Choice &o) const
    {
        return kind == o.kind && chosen == o.chosen &&
               numOptions == o.numOptions;
    }
};

/** A (possibly partial) choice sequence. */
struct Schedule
{
    std::vector<Choice> choices;

    bool empty() const { return choices.empty(); }
    std::size_t size() const { return choices.size(); }

    /** The first @p len choices as a new schedule. */
    Schedule prefix(std::size_t len) const;

    /** Canonical text form (the file format). */
    std::string str() const;

    /** Write the canonical text form; false on I/O error. */
    bool save(const std::string &path) const;

    /**
     * Parse @p text (the file format). @return false and set @p err
     * on malformed input.
     */
    bool parse(const std::string &text, std::string &err);

    /** Load from @p path; false and @p err on I/O or parse errors. */
    bool load(const std::string &path, std::string &err);

    bool
    operator==(const Schedule &o) const
    {
        return choices == o.choices;
    }
};

} // namespace bulksc

#endif // BULKSC_EXPLORE_SCHEDULE_HH
