#include "explore/explorer.hh"

#include <chrono>
#include <deque>
#include <thread>
#include <unordered_set>

#include "analysis/analysis_engine.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "system/system.hh"

namespace bulksc {

const char *
exploreVerdictName(ExploreVerdict v)
{
    switch (v) {
      case ExploreVerdict::OK:
        return "ok";
      case ExploreVerdict::ScViolation:
        return "sc-violation";
      case ExploreVerdict::Race:
        return "race";
      case ExploreVerdict::LitmusForbidden:
        return "litmus-forbidden";
      case ExploreVerdict::Deadlock:
        return "deadlock";
      case ExploreVerdict::Livelock:
        return "livelock";
      case ExploreVerdict::Starvation:
        return "starvation";
      case ExploreVerdict::Incomplete:
        return "incomplete";
    }
    return "?";
}

Explorer::Explorer(ExploreConfig cfg) : ecfg(std::move(cfg))
{
    if (!ecfg.litmusName.empty()) {
        LitmusTest lt;
        fatal_if(!litmusByName(ecfg.litmusName, ecfg.litmusVariant, lt),
                 "unknown litmus test '", ecfg.litmusName,
                 "' (known: ", litmusNames(), ")");
        litmusAllowed = lt.allowedSC;
        ecfg.machine.numProcs =
            static_cast<unsigned>(lt.traces.size());
    } else {
        fatal_if(ecfg.traces.empty(),
                 "exploration needs a litmus test or traces");
    }
    if (ecfg.jobs == 0)
        ecfg.jobs = 1;
}

std::vector<Trace>
Explorer::makeTraces() const
{
    if (!ecfg.litmusName.empty()) {
        LitmusTest lt;
        litmusByName(ecfg.litmusName, ecfg.litmusVariant, lt);
        return std::move(lt.traces);
    }
    return ecfg.traces;
}

RunOutcome
Explorer::runOne(const Schedule &prefix) const
{
    RunOutcome out;

    // The controller must outlive the System: queued events still
    // hold tags when the queue is torn down mid-run (tick limit).
    RunController ctrl(prefix, ecfg.por);

    System sys(ecfg.machine, makeTraces());
    ctrl.setFingerprintFn([&sys] { return sys.stateFingerprint(); });
    sys.setScheduleController(&ctrl);
    if (ecfg.checkAxiomatic || ecfg.checkRace)
        sys.enableAnalysis(ecfg.checkAxiomatic, ecfg.checkRace);

    Results res = sys.run(ecfg.tickLimit);

    out.execTime = res.execTime;
    out.trace = ctrl.trace();
    out.mismatches = ctrl.mismatches();

    const AnalysisEngine *eng = sys.analysis();
    if (eng && !eng->scOk()) {
        out.verdict = ExploreVerdict::ScViolation;
        if (eng->graph() && !eng->graph()->violations().empty()) {
            out.detail = eng->graph()->describe(
                eng->graph()->violations().front());
        }
        return out;
    }
    if (eng && eng->raceCount() > 0) {
        out.verdict = ExploreVerdict::Race;
        if (eng->races() && !eng->races()->reports().empty()) {
            out.detail = eng->races()->describe(
                eng->races()->reports().front());
        }
        return out;
    }
    if (litmusAllowed && res.completed &&
        !litmusAllowed(res.loadResults)) {
        out.verdict = ExploreVerdict::LitmusForbidden;
        out.detail = "litmus outcome forbidden under SC";
        return out;
    }
    switch (res.watchdogVerdict) {
      case WatchdogVerdict::Deadlock:
        out.verdict = ExploreVerdict::Deadlock;
        break;
      case WatchdogVerdict::Livelock:
        out.verdict = ExploreVerdict::Livelock;
        break;
      case WatchdogVerdict::Starvation:
        out.verdict = ExploreVerdict::Starvation;
        break;
      default:
        break;
    }
    if (out.verdict != ExploreVerdict::OK) {
        out.detail = res.watchdogReport;
        return out;
    }
    if (!res.completed) {
        out.verdict = ExploreVerdict::Incomplete;
        out.detail = "tick limit reached before completion";
    }
    return out;
}

void
Explorer::minimizeCounterexample(const Schedule &full,
                                 ExploreVerdict target,
                                 ExploreResult &r) const
{
    // Linear upward search for the shortest forced prefix that still
    // reproduces the verdict; len == full.size() replays the found
    // run exactly, so the loop always terminates with a hit.
    for (std::size_t len = 0; len <= full.size(); ++len) {
        RunOutcome out = runOne(full.prefix(len));
        ++r.minimizeRuns;
        if (out.verdict == target) {
            r.minimizedPrefixLen = len;
            Schedule s;
            s.choices.reserve(out.trace.size());
            for (const DecisionRecord &d : out.trace)
                s.choices.push_back(d.choice());
            r.counterexample = std::move(s);
            return;
        }
    }
    r.minimizedPrefixLen = full.size();
    r.counterexample = full;
}

ExploreResult
Explorer::explore()
{
    ExploreResult r;
    auto t0 = std::chrono::steady_clock::now();
    auto wallMs = [&t0] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::deque<Schedule> frontier;
    frontier.emplace_back();
    std::unordered_set<std::uint64_t> visited;

    std::vector<Schedule> batch;
    std::vector<RunOutcome> outs;

    while (!frontier.empty()) {
        if (r.schedulesRun >= ecfg.maxSchedules ||
            (ecfg.wallLimitMs && wallMs() >= ecfg.wallLimitMs)) {
            r.budgetExhausted = true;
            break;
        }
        if (frontier.size() > r.frontierPeak)
            r.frontierPeak = frontier.size();

        std::size_t want = ecfg.jobs;
        if (want > frontier.size())
            want = frontier.size();
        std::uint64_t left = ecfg.maxSchedules - r.schedulesRun;
        if (want > left)
            want = static_cast<std::size_t>(left);

        batch.clear();
        for (std::size_t k = 0; k < want; ++k) {
            if (ecfg.bfs) {
                batch.push_back(std::move(frontier.front()));
                frontier.pop_front();
            } else {
                batch.push_back(std::move(frontier.back()));
                frontier.pop_back();
            }
        }

        outs.assign(batch.size(), RunOutcome{});
        if (batch.size() == 1) {
            outs[0] = runOne(batch[0]);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(batch.size());
            for (std::size_t k = 0; k < batch.size(); ++k) {
                pool.emplace_back([this, &batch, &outs, k] {
                    outs[k] = runOne(batch[k]);
                });
            }
            for (auto &t : pool)
                t.join();
        }

        // Expansion is strictly sequential in pop order: the
        // enumeration is identical for any jobs value.
        for (std::size_t k = 0; k < batch.size(); ++k) {
            const Schedule &pfx = batch[k];
            RunOutcome &out = outs[k];
            std::uint64_t idx = r.schedulesRun++;
            r.decisionsTotal += out.trace.size();
            if (onSchedule)
                onSchedule(idx, pfx, out);

            if (out.verdict != ExploreVerdict::OK) {
                ++r.violations;
                if (!r.found) {
                    r.found = true;
                    r.verdict = out.verdict;
                    r.detail = out.detail;
                    Schedule full;
                    full.choices.reserve(out.trace.size());
                    for (const DecisionRecord &d : out.trace)
                        full.choices.push_back(d.choice());
                    if (ecfg.minimize) {
                        minimizeCounterexample(full, out.verdict, r);
                    } else {
                        r.minimizedPrefixLen = full.size();
                        r.counterexample = std::move(full);
                    }
                    if (ecfg.stopAtFirst) {
                        r.wallMs = wallMs();
                        return r;
                    }
                }
                continue; // violating runs are not expanded
            }

            for (std::size_t i = pfx.size();
                 i < out.trace.size() && i < ecfg.maxDecisions; ++i) {
                const DecisionRecord &rec = out.trace[i];
                for (std::uint32_t a = 1;
                     a < rec.numOptions && a < 64; ++a) {
                    if (a == rec.chosen)
                        continue;
                    if (!((rec.allowedMask >> a) & 1)) {
                        ++r.prunedPor;
                        continue;
                    }
                    if (ecfg.fpPrune && rec.fingerprint) {
                        // Same machine state + same choice => same
                        // continuation, wherever it was reached from.
                        std::uint64_t key = mix64(
                            rec.fingerprint ^
                            mix64((std::uint64_t{a} << 8) ^
                                  static_cast<std::uint64_t>(
                                      rec.kind)));
                        if (!visited.insert(key).second) {
                            ++r.prunedFingerprint;
                            continue;
                        }
                    }
                    Schedule child;
                    child.choices.reserve(i + 1);
                    for (std::size_t j = 0; j < i; ++j)
                        child.choices.push_back(
                            out.trace[j].choice());
                    child.choices.push_back(
                        Choice{rec.kind, a, rec.numOptions});
                    frontier.push_back(std::move(child));
                }
            }
        }
    }

    r.exhaustive = frontier.empty() && !r.budgetExhausted;
    r.wallMs = wallMs();
    return r;
}

} // namespace bulksc
