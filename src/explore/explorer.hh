/**
 * @file
 * Systematic schedule exploration (stateless model checking) for the
 * BulkSC machine.
 *
 * Each *schedule* is one complete simulation of a fresh System driven
 * by a RunController: a choice prefix is forced, every decision
 * beyond it takes the default, and the full decision trace is
 * recorded. The explorer enumerates the schedule tree by branching:
 * for every decision a finished run made after its forced prefix, and
 * for every POR-allowed alternative at that decision, a new prefix is
 * queued. Search order is depth-first (stack) or breadth-first
 * (queue); with jobs > 1, up to that many frontier entries run
 * concurrently as a wave whose results are expanded in deterministic
 * pop order, so the enumeration is reproducible at any parallelism.
 *
 * Pruning:
 *  - POR: alternatives that commute with every candidate ahead of
 *    them are never branched on (see RunController).
 *  - Fingerprint: an alternative taken from a machine state whose
 *    digest + choice was already expanded elsewhere is skipped. State
 *    digests exclude timing, so this deliberately identifies runs
 *    that differ only in when things happened; it is approximate
 *    (hash collisions) and can be disabled.
 *
 * Every run is judged by the full oracle set: the axiomatic SC
 * checker, the happens-before race detector, the litmus SC-outcome
 * predicate, and the forward-progress watchdog. The first violating
 * schedule is minimized by a linear search for the shortest forced
 * prefix that still reproduces the verdict; the reported
 * counterexample is that run's complete recorded trace, which replays
 * byte-identically.
 */

#ifndef BULKSC_EXPLORE_EXPLORER_HH
#define BULKSC_EXPLORE_EXPLORER_HH

#include <functional>
#include <string>
#include <vector>

#include "explore/run_controller.hh"
#include "explore/schedule.hh"
#include "system/machine_config.hh"
#include "workload/litmus.hh"

namespace bulksc {

/** What one explored schedule (or the whole exploration) concluded. */
enum class ExploreVerdict
{
    OK,              //!< completed, all oracles clean
    ScViolation,     //!< axiomatic SC cycle
    Race,            //!< happens-before data race
    LitmusForbidden, //!< litmus outcome forbidden under SC
    Deadlock,        //!< watchdog: wedged
    Livelock,        //!< watchdog: work without progress
    Starvation,      //!< watchdog: one processor starved
    Incomplete,      //!< hit the tick limit with no other verdict
};

const char *exploreVerdictName(ExploreVerdict v);

/** Everything one exploration is configured by. */
struct ExploreConfig
{
    MachineConfig machine;

    /** Litmus workload ("" = use @ref traces). */
    std::string litmusName;
    unsigned litmusVariant = 0;

    /** Explicit workload when no litmus test is selected. */
    std::vector<Trace> traces;

    bool checkAxiomatic = true;
    bool checkRace = false;

    bool por = true;     //!< signature-based partial-order reduction
    bool fpPrune = true; //!< fingerprint revisit pruning
    bool bfs = false;    //!< breadth-first instead of depth-first
    unsigned jobs = 1;   //!< parallel wave width

    std::uint64_t maxSchedules = 1000; //!< schedule budget
    std::uint32_t maxDecisions = 64;   //!< branching depth cap
    Tick tickLimit = 5'000'000;        //!< per-run tick budget
    std::uint64_t wallLimitMs = 0;     //!< wall-clock budget (0 = off)

    bool stopAtFirst = true; //!< stop at the first violation
    bool minimize = true;    //!< minimize the counterexample
};

/** Outcome of one schedule. */
struct RunOutcome
{
    ExploreVerdict verdict = ExploreVerdict::OK;
    Tick execTime = 0;
    std::string detail; //!< one-line description of the violation
    std::vector<DecisionRecord> trace;
    std::uint64_t mismatches = 0; //!< forced choices that didn't fit
};

/** Aggregate result of an exploration. */
struct ExploreResult
{
    std::uint64_t schedulesRun = 0;
    std::uint64_t decisionsTotal = 0;
    std::uint64_t prunedPor = 0;         //!< alternatives POR skipped
    std::uint64_t prunedFingerprint = 0; //!< revisits skipped
    std::uint64_t frontierPeak = 0;
    std::uint64_t violations = 0;
    bool budgetExhausted = false;
    bool exhaustive = false; //!< the schedule tree was drained

    bool found = false; //!< a counterexample was found
    ExploreVerdict verdict = ExploreVerdict::OK;
    std::string detail;

    /** Full recorded trace of the minimized violating run (replays
     *  byte-identically). */
    Schedule counterexample;

    /** Length of the shortest forced prefix that reproduces the
     *  violation. */
    std::size_t minimizedPrefixLen = 0;
    std::uint64_t minimizeRuns = 0;

    double wallMs = 0;
};

/** The search driver. */
class Explorer
{
  public:
    explicit Explorer(ExploreConfig cfg);

    /**
     * Run one schedule: force @p prefix, default beyond it, judge
     * with every oracle. Deterministic in (config, prefix).
     */
    RunOutcome runOne(const Schedule &prefix) const;

    /** Enumerate schedules until a violation, exhaustion, or a
     *  budget limit. */
    ExploreResult explore();

    /**
     * Per-schedule hook (JSONL streaming): invoked in deterministic
     * enumeration order with the 0-based schedule index. Minimization
     * replays are not reported.
     */
    std::function<void(std::uint64_t, const Schedule &,
                       const RunOutcome &)>
        onSchedule;

  private:
    std::vector<Trace> makeTraces() const;
    void minimizeCounterexample(const Schedule &full,
                                ExploreVerdict target,
                                ExploreResult &r) const;

    ExploreConfig ecfg;
    std::function<bool(const std::vector<std::vector<std::uint64_t>> &)>
        litmusAllowed;
};

} // namespace bulksc

#endif // BULKSC_EXPLORE_EXPLORER_HH
