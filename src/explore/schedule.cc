#include "explore/schedule.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace bulksc {

Schedule
Schedule::prefix(std::size_t len) const
{
    Schedule s;
    if (len > choices.size())
        len = choices.size();
    s.choices.assign(choices.begin(),
                     choices.begin() + static_cast<std::ptrdiff_t>(len));
    return s;
}

std::string
Schedule::str() const
{
    std::ostringstream os;
    os << "# bulksc schedule v1\n";
    for (const Choice &c : choices) {
        os << (c.kind == ChoiceKind::Order ? 'O' : 'D') << ' '
           << c.chosen << '/' << c.numOptions << '\n';
    }
    return os.str();
}

bool
Schedule::save(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << str();
    return static_cast<bool>(f);
}

bool
Schedule::parse(const std::string &text, std::string &err)
{
    choices.clear();
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (line.find("bulksc schedule") != std::string::npos)
                sawHeader = true;
            continue;
        }
        char kind = 0;
        unsigned long chosen = 0, num = 0;
        if (std::sscanf(line.c_str(), "%c %lu/%lu", &kind, &chosen,
                        &num) != 3 ||
            (kind != 'O' && kind != 'D')) {
            err = "line " + std::to_string(lineno) +
                  ": expected 'O c/n' or 'D c/n', got '" + line + "'";
            return false;
        }
        if (num == 0 || chosen >= num) {
            err = "line " + std::to_string(lineno) + ": choice " +
                  std::to_string(chosen) + " out of range /" +
                  std::to_string(num);
            return false;
        }
        Choice c;
        c.kind = kind == 'O' ? ChoiceKind::Order : ChoiceKind::Delay;
        c.chosen = static_cast<std::uint32_t>(chosen);
        c.numOptions = static_cast<std::uint32_t>(num);
        choices.push_back(c);
    }
    if (!sawHeader && !choices.empty()) {
        err = "missing '# bulksc schedule v1' header";
        return false;
    }
    return true;
}

bool
Schedule::load(const std::string &path, std::string &err)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream os;
    os << f.rdbuf();
    return parse(os.str(), err);
}

} // namespace bulksc
