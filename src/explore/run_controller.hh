/**
 * @file
 * The per-run schedule controller: replays a choice prefix, records
 * the full decision trace, and computes the POR-allowed alternative
 * set at every ordering decision.
 *
 * Decision model. A same-tick batch with k >= 2 tagged (network
 * delivery) events is resolved by k-1 sequential picks: at each step
 * the controller chooses the next event to fire among the remaining
 * tagged candidates (choice 0 = FIFO, the earliest-scheduled one).
 * Untagged events keep their FIFO positions — only the tagged events
 * permute through the tagged slots. A net.delay window [lo, hi]
 * becomes a pick among the deduplicated set {lo, (lo+hi)/2, hi}.
 *
 * Partial-order reduction. At an ordering step with remaining
 * candidates c0..cm-1 (FIFO order), choosing cj over c0 can only lead
 * to a new execution if cj is *dependent* on some earlier candidate
 * ci (i < j): if cj commutes with everything before it, firing it
 * first yields a state also reached through the default order.
 * Independence is signature disjointness: two deliveries commute when
 * they target different nodes AND their data footprints (line address
 * or R/W signatures) do not intersect. Bloom-filter membership is
 * one-sided, so a false positive makes two events *dependent* — the
 * reduction only ever explores too much, never too little. Events
 * with unknown footprints are dependent on everything.
 */

#ifndef BULKSC_EXPLORE_RUN_CONTROLLER_HH
#define BULKSC_EXPLORE_RUN_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "explore/schedule.hh"
#include "sim/schedule_controller.hh"

namespace bulksc {

/** One decision as recorded during a run, with exploration metadata. */
struct DecisionRecord
{
    ChoiceKind kind = ChoiceKind::Order;
    std::uint32_t chosen = 0;
    std::uint32_t numOptions = 0;

    /**
     * Bit j set => alternative j is worth exploring (POR). Bit 0 is
     * always set. Alternatives past bit 63 are never marked (domains
     * that large do not occur in practice; a capped domain is counted
     * in cappedDomains()).
     */
    std::uint64_t allowedMask = 1;

    /** Machine state digest when the decision was made (0 when no
     *  fingerprint function is attached). */
    std::uint64_t fingerprint = 0;

    Choice
    choice() const
    {
        return Choice{kind, chosen, numOptions};
    }
};

/** Records and replays one run's choices. */
class RunController : public ScheduleController
{
  public:
    /**
     * @param prefix Choices to force, in decision order; decisions
     *        beyond the prefix take option 0 (FIFO / minimum delay).
     * @param por Compute the reduced allowed sets (otherwise every
     *        alternative is marked allowed).
     */
    RunController(Schedule prefix, bool por);

    /** Attach the state-digest source (System::stateFingerprint). */
    void setFingerprintFn(std::function<std::uint64_t()> fn)
    {
        fpFn = std::move(fn);
    }

    // ScheduleController
    std::uint32_t registerEvent(const EventFootprint &fp) override;
    void orderBatch(Tick now, const std::vector<std::uint32_t> &tags,
                    std::vector<std::uint32_t> &order) override;
    Tick chooseDelay(Tick now, int cls, Tick lo, Tick hi) override;

    /** Every decision made so far, in order. */
    const std::vector<DecisionRecord> &trace() const { return trace_; }

    /** The trace as a replayable schedule. */
    Schedule recorded() const;

    /** Forced choices that did not match the live decision shape
     *  (kind or domain size); 0 when replaying a recorded trace. */
    std::uint64_t mismatches() const { return nMismatch; }

    /** Ordering domains larger than 64 (alternatives past 63 are not
     *  explored). */
    std::uint64_t cappedDomains() const { return nCapped; }

    /** True iff two registered events must not be reordered. */
    static bool dependent(const EventFootprint &a,
                          const EventFootprint &b);

  private:
    std::uint32_t decide(ChoiceKind kind, std::uint32_t numOptions,
                         std::uint64_t allowedMask);

    Schedule prefix;
    bool por;
    std::function<std::uint64_t()> fpFn;

    std::vector<EventFootprint> events;
    std::vector<DecisionRecord> trace_;
    std::uint64_t nMismatch = 0;
    std::uint64_t nCapped = 0;

    // orderBatch scratch
    std::vector<std::uint32_t> tagged;
    std::vector<std::uint32_t> picked;
};

} // namespace bulksc

#endif // BULKSC_EXPLORE_RUN_CONTROLLER_HH
