/**
 * @file
 * Ablation: scalability (Section 6).
 *
 * Sweeps the processor count from 1 to 16 and reports BSCdypvt's
 * execution time relative to RC at the same core count, plus the
 * commit-pressure indicators (arbiter occupancy, squash rate). The
 * paper argues BulkSC scales as long as arbitration scales and
 * superset encoding does not blow up; with 8+ cores the distributed
 * arbiter (4 modules) is also shown.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(30'000);

    std::vector<AppProfile> apps;
    for (const char *n : {"ocean", "barnes", "sjbb2k"})
        apps.push_back(profileByName(n));
    if (std::getenv("BULKSC_APPS"))
        apps = appsFromEnv();

    printHeader("Ablation: scalability with processor count");
    std::printf("%-12s %6s %10s %10s %10s %9s %9s\n", "app", "procs",
                "vs RC", "vsRC-dist", "squash%", "NEmpt%", "PendW");

    for (const AppProfile &app : apps) {
        for (unsigned procs : {1u, 2u, 4u, 8u, 16u}) {
            Results rc = runWorkload(Model::RC, app, procs, instrs);
            Results dy =
                runWorkload(Model::BSCdypvt, app, procs, instrs);

            double dist_ratio = 0;
            if (procs >= 8) {
                MachineConfig cfg;
                cfg.numArbiters = 4;
                cfg.mem.numDirectories = 4;
                Results dd = runWorkload(Model::BSCdypvt, app, procs,
                                         instrs, &cfg);
                dist_ratio = static_cast<double>(rc.execTime) /
                             static_cast<double>(dd.execTime);
            }

            std::printf("%-12s %6u %10.3f %10.3f %10.2f %9.1f %9.2f\n",
                        app.name.c_str(), procs,
                        static_cast<double>(rc.execTime) /
                            static_cast<double>(dy.execTime),
                        dist_ratio,
                        dy.stats.get("cpu.squashed_instr_pct"),
                        dy.stats.get("arb.non_empty_pct"),
                        dy.stats.get("arb.avg_pending_w"));
        }
        std::printf("\n");
    }
    return 0;
}
