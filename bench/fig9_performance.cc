/**
 * @file
 * Regenerates the paper's Figure 9: performance of SC, RC, SC++,
 * BSCbase, BSCdypvt, BSCexact and BSCstpvt, normalized to RC, for the
 * 11 SPLASH-2 applications, the SPLASH-2 geometric mean, and the two
 * commercial workloads.
 *
 * Expected shape (paper Section 7.2): SC clearly slower than RC;
 * SC++ ~= RC; BSCdypvt ~= RC for practically all applications except
 * radix (signature aliasing); BSCbase below BSCdypvt; BSCstpvt within
 * a couple percent of BSCdypvt on SPLASH-2.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const SimOptions opts = benchOptions(argc, argv, 60'000);
    const std::uint64_t instrs = opts.instrs;
    const auto apps = appsFromEnv();
    const unsigned procs = opts.cfg.numProcs;

    const std::vector<Model> models = {
        Model::SC,      Model::RC,       Model::SCpp,
        Model::BSCbase, Model::BSCdypvt, Model::BSCexact,
        Model::BSCstpvt,
    };

    printHeader("Figure 9: speedup over RC");
    std::printf("%-12s", "app");
    for (Model m : models)
        std::printf("%10s", modelName(m));
    std::printf("\n");

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups(models.size());

    for (const AppProfile &app : apps) {
        double rc_time = 0;
        std::vector<double> row;
        for (Model m : models) {
            Results r = runWorkload(m, app, procs, instrs);
            if (m == Model::RC)
                rc_time = static_cast<double>(r.execTime);
            row.push_back(static_cast<double>(r.execTime));
        }
        std::printf("%-12s", app.name.c_str());
        names.push_back(app.name);
        for (std::size_t i = 0; i < models.size(); ++i) {
            double sp = rc_time / row[i];
            speedups[i].push_back(sp);
            std::printf("%10.3f", sp);
        }
        std::printf("\n");
    }

    // SPLASH-2 geometric mean row (SP2-G.M. in the paper).
    std::printf("%-12s", "SP2-G.M.");
    for (std::size_t i = 0; i < models.size(); ++i)
        std::printf("%10.3f", splash2GeoMean(names, speedups[i]));
    std::printf("\n");
    return 0;
}
