/**
 * @file
 * Regenerates the paper's Figure 10: BSCdypvt performance with chunks
 * of 1000, 2000, and 4000 instructions, plus "4000-exact" (a
 * 4000-instruction chunk with the alias-free signature), all
 * normalized to RC.
 *
 * Expected shape (Section 7.2): performance degrades somewhat as the
 * chunk size grows for a few SPLASH-2 applications and for the
 * commercial workloads, and comparing 4000 to 4000-exact shows that
 * most of the degradation comes from increased signature aliasing
 * rather than real data sharing between chunks.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const SimOptions opts = benchOptions(argc, argv, 60'000);
    const std::uint64_t instrs = opts.instrs;
    const auto apps = appsFromEnv();
    const unsigned procs = opts.cfg.numProcs;

    struct Config
    {
        const char *label;
        unsigned chunk;
        Model model;
    };
    const std::vector<Config> configs = {
        {"1000", 1000, Model::BSCdypvt},
        {"2000", 2000, Model::BSCdypvt},
        {"4000", 4000, Model::BSCdypvt},
        {"4000-exact", 4000, Model::BSCexact},
    };

    printHeader("Figure 10: BSCdypvt speedup over RC vs chunk size");
    std::printf("%-12s%10s", "app", "RC");
    for (const auto &c : configs)
        std::printf("%12s", c.label);
    std::printf("\n");

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups(configs.size());

    for (const AppProfile &app : apps) {
        Results rc = runWorkload(Model::RC, app, procs, instrs);
        double rc_time = static_cast<double>(rc.execTime);
        std::printf("%-12s%10.3f", app.name.c_str(), 1.0);
        names.push_back(app.name);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            MachineConfig cfg;
            cfg.bulk.chunkSize = configs[i].chunk;
            Results r = runWorkload(configs[i].model, app, procs,
                                    instrs, &cfg);
            double sp = rc_time / static_cast<double>(r.execTime);
            speedups[i].push_back(sp);
            std::printf("%12.3f", sp);
        }
        std::printf("\n");
    }

    std::printf("%-12s%10.3f", "SP2-G.M.", 1.0);
    for (std::size_t i = 0; i < configs.size(); ++i)
        std::printf("%12.3f", splash2GeoMean(names, speedups[i]));
    std::printf("\n");
    return 0;
}
