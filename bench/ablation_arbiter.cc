/**
 * @file
 * Ablation: distributed arbiter (Section 4.2.3).
 *
 * Compares the single (combined) arbiter against distributed arbiter
 * configurations with 2 and 4 address-range modules plus a G-arbiter.
 * With data locality most commits involve a single module; the table
 * reports the single/multi-range commit split and the performance and
 * traffic impact.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(40'000);
    const auto apps = appsFromEnv();
    const unsigned procs = 8;

    printHeader("Ablation: single vs distributed arbiter (BSCdypvt)");
    std::printf("%-12s %10s %10s %10s %12s %12s\n", "app", "1-arb",
                "2-arb", "4-arb", "multi%(2)", "multi%(4)");

    for (const AppProfile &app : apps) {
        Results one = runWorkload(Model::BSCdypvt, app, procs, instrs);

        double multi_pct[2] = {0, 0};
        Tick times[2] = {0, 0};
        for (int i = 0; i < 2; ++i) {
            unsigned n = i == 0 ? 2 : 4;
            MachineConfig cfg;
            cfg.numArbiters = n;
            cfg.mem.numDirectories = n;
            auto traces = generateTraces(app, procs, instrs);
            System sys(cfg, std::move(traces));
            Results r = sys.run();
            times[i] = r.execTime;
            auto *da =
                dynamic_cast<DistributedArbiter *>(sys.arbiter());
            if (da) {
                double total = static_cast<double>(
                    da->singleRangeCommits() +
                    da->multiRangeCommits());
                multi_pct[i] =
                    total > 0 ? 100.0 *
                                    static_cast<double>(
                                        da->multiRangeCommits()) /
                                    total
                              : 0;
            }
        }

        double base = static_cast<double>(one.execTime);
        std::printf("%-12s %10.3f %10.3f %10.3f %11.1f%% %11.1f%%\n",
                    app.name.c_str(), 1.0,
                    base / static_cast<double>(times[0]),
                    base / static_cast<double>(times[1]),
                    multi_pct[0], multi_pct[1]);
    }
    std::printf("\n(speedups relative to the single-arbiter "
                "configuration)\n");
    return 0;
}
