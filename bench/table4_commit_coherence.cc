/**
 * @file
 * Regenerates the paper's Table 4: characterization of the commit
 * process and coherence operations under BSCdypvt.
 *
 * Columns, as in the paper:
 *  - Signature expansion in the directory: lookups per commit,
 *    unnecessary (aliased) lookups %, unnecessary updates %;
 *  - Nodes receiving each W signature;
 *  - Arbiter: pending W signatures (time-averaged), % of time the W
 *    list is non-empty, % of commits requiring the R signature
 *    (RSig optimization), % of commits with an empty W signature.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(60'000);
    const auto apps = appsFromEnv();
    const unsigned procs = 8;

    printHeader("Table 4: commit process and coherence (BSCdypvt)");
    std::printf("%-12s |%9s%9s%9s |%8s |%8s%9s%9s%9s\n", "app",
                "Lkup/Cm", "UnnLk%", "UnnUp%", "Nod/W", "PendW",
                "NEmpt%", "RSigRq%", "EmptyW%");

    for (const AppProfile &app : apps) {
        Results r = runWorkload(Model::BSCdypvt, app, procs, instrs);
        double commits = r.stats.get("bulk.commits");
        double lookups = r.stats.get("mem.dir_lookups");
        double alias = r.stats.get("mem.dir_alias_lookups");
        double updates = r.stats.get("mem.dir_updates");
        double alias_up = r.stats.get("mem.dir_alias_updates");

        std::printf(
            "%-12s |%9.1f%9.1f%9.2f |%8.2f |%8.2f%9.1f%9.1f%9.1f\n",
            app.name.c_str(), commits > 0 ? lookups / commits : 0,
            lookups > 0 ? 100.0 * alias / lookups : 0,
            updates > 0 ? 100.0 * alias_up / updates : 0,
            r.stats.get("bulk.nodes_per_wsig"),
            r.stats.get("arb.avg_pending_w"),
            r.stats.get("arb.non_empty_pct"),
            r.stats.get("arb.rsig_required_pct"),
            r.stats.get("arb.empty_w_pct"));
    }
    return 0;
}
