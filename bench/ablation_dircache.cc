/**
 * @file
 * Ablation: directory caches (Section 4.3.3).
 *
 * Sweeps the directory-cache capacity. Displacing an entry forces a
 * one-line-signature broadcast (bulk disambiguation + invalidation of
 * all cached copies), which can squash chunks — the paper chose
 * directory caches because they bound false positives by
 * construction; this shows the displacement cost side of that trade.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(30'000);

    std::vector<AppProfile> apps;
    for (const char *n : {"ocean", "sweb2005"})
        apps.push_back(profileByName(n));
    if (std::getenv("BULKSC_APPS"))
        apps = appsFromEnv();

    printHeader("Ablation: directory cache capacity (BSCdypvt)");
    std::printf("%-12s %10s %12s %12s %10s %10s\n", "app", "entries",
                "exec ratio", "displ/1kCom", "squash%", "XInv/1kC");

    for (const AppProfile &app : apps) {
        Results full = runWorkload(Model::BSCdypvt, app, 8, instrs);
        double base = static_cast<double>(full.execTime);

        // Below ~2 entries per resident line the displacement
        // broadcasts squash running chunks faster than they can
        // commit (the conservative rule of Section 4.3.3 makes an
        // undersized directory cache pathological), so the sweep
        // stays in the practical range.
        for (std::size_t entries : {0ul, 16384ul, 8192ul, 4096ul}) {
            MachineConfig cfg;
            cfg.mem.dirCacheEntries = entries;
            Results r =
                runWorkload(Model::BSCdypvt, app, 8, instrs, &cfg);
            double commits = r.stats.get("bulk.commits");
            double per1k = commits > 0 ? 1000.0 / commits : 0;
            std::printf("%-12s %10s %12.3f %12.1f %10.2f %10.1f\n",
                        app.name.c_str(),
                        entries ? std::to_string(entries).c_str()
                                : "full-map",
                        base / static_cast<double>(r.execTime),
                        r.stats.get("mem.dir_displacements") * per1k,
                        r.stats.get("cpu.squashed_instr_pct"),
                        r.stats.get("mem.extra_invals") * per1k);
        }
        std::printf("\n");
    }
    return 0;
}
