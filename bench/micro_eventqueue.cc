/**
 * @file
 * DES-kernel microbenchmark: the timing-wheel EventQueue vs. the
 * original std::function + std::priority_queue kernel, on an event mix
 * modelled on what a fig9 run schedules (the "fig9 mix"), plus the
 * absolute events/sec of a real fig9-style simulation.
 *
 *   micro_eventqueue [--events N] [--reps N] [--min-ratio X]
 *
 * The synthetic mix replays the delay/fan-out distribution of the
 * simulator's hot path: short fixed latencies (store retire, forward
 * log, cache hits), medium network/arbitration latencies, commit retry
 * backoff, and occasional long io waits, with capture payloads sized
 * like the simulator's lambdas. The delay and fan-out streams are
 * drawn before the timed region so both kernels replay the identical
 * schedule and the measurement isolates kernel cost, not the RNG.
 * Exits non-zero if the new kernel does not reach --min-ratio times
 * the legacy events/sec (default 2.0, the acceptance bar; 0 disables
 * the check).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "system/sim_options.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"

using namespace bulksc;

namespace {

/** The pre-rework kernel, kept here as the comparison baseline. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return _now; }

    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < _now, "scheduling event in the past: ", when,
                 " < ", _now);
        events.push(Event{when, nextSeq++, std::move(cb)});
    }

    void
    scheduleAfter(Tick delta, Callback cb)
    {
        schedule(_now + delta, std::move(cb));
    }

    bool empty() const { return events.empty(); }

    std::uint64_t eventsFired() const { return fired; }

    Tick
    run(Tick limit = kTickNever)
    {
        while (!events.empty() && events.top().when <= limit) {
            Event ev = std::move(const_cast<Event &>(events.top()));
            events.pop();
            _now = ev.when;
            ++fired;
            ev.cb();
        }
        return _now;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

/** Delay mix drawn from the simulator's scheduling sites: L1 hits and
 *  store retires (1-3), forward-log drain (3), spin retries (10),
 *  arbiter processing (24), commit retry (30), network + directory
 *  latencies, and a tail of long io waits. */
Tick
mixDelay(Rng &rng)
{
    unsigned r = static_cast<unsigned>(rng.below(100));
    if (r < 30)
        return 1 + rng.below(3);
    if (r < 45)
        return 3;
    if (r < 60)
        return 10;
    if (r < 75)
        return 24 + rng.below(8);
    if (r < 85)
        return 30;
    if (r < 97)
        return 60 + rng.below(240);
    return 2500 + rng.below(5000); // beyond-horizon tail
}

/** Pre-drawn delay/fan-out stream: bit 31 is the "fan out a one-shot
 *  completion" coin flip (heads half the time), low bits the delay. */
constexpr std::size_t kMixLen = std::size_t{1} << 16;
constexpr std::size_t kMixMask = kMixLen - 1;

std::vector<std::uint32_t>
drawMix()
{
    Rng rng(0x9e3779b9u);
    std::vector<std::uint32_t> mix(kMixLen);
    for (auto &m : mix) {
        m = static_cast<std::uint32_t>(mixDelay(rng));
        if (rng.below(2) == 0)
            m |= 0x80000000u;
    }
    return mix;
}

/**
 * Drive @p eq with the fig9-style mix until ~@p target events fired.
 * Each "processor" keeps one self-rescheduling chain alive (the
 * advance loop: a bare owner pointer) and fans out one-shot
 * completion events shaped like the simulator's store-retire lambda —
 * a captured std::function continuation plus owner pointer and epoch,
 * 48 bytes, the simulator's most frequent event.
 */
template <typename Queue>
std::uint64_t
runMix(Queue &eq, const std::vector<std::uint32_t> &mix,
       std::uint64_t target, std::uint64_t &checksum)
{
    struct Chain
    {
        Queue *eq;
        const std::uint32_t *mix;
        std::size_t mi;
        std::uint64_t remaining;
        std::uint64_t *checksum;
        std::shared_ptr<std::uint64_t> payload;

        void
        fire()
        {
            *checksum += eq->now() + *payload;
            if (!remaining)
                return;
            --remaining;
            std::uint32_t m = mix[mi++ & kMixMask];
            if (m & 0x80000000u) {
                std::uint32_t d = mix[mi++ & kMixMask];
                std::function<void()> done =
                    [sum = checksum, seq = remaining] { *sum += seq; };
                eq->scheduleAfter(
                    d & 0x7fffffffu,
                    [done = std::move(done), p = payload.get(),
                     e = remaining] { *p ^= e; done(); });
            }
            eq->scheduleAfter(m & 0x7fffffffu, [this] { fire(); });
        }
    };

    constexpr unsigned kProcs = 8;
    std::vector<std::unique_ptr<Chain>> chains;
    for (unsigned p = 0; p < kProcs; ++p) {
        // Stagger the chains through the shared stream so they don't
        // replay each other's schedule in lockstep.
        chains.push_back(std::make_unique<Chain>(Chain{
            &eq, mix.data(), p * (kMixLen / kProcs + 137),
            target / kProcs, &checksum,
            std::make_shared<std::uint64_t>(p)}));
        eq.scheduleAfter(1 + p, [c = chains.back().get()] { c->fire(); });
    }
    eq.run();
    return eq.eventsFired();
}

template <typename Queue>
double
oneRep(const std::vector<std::uint32_t> &mix, std::uint64_t events,
       std::uint64_t &check)
{
    auto eq = std::make_unique<Queue>();
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t fired = runMix(*eq, mix, events, check);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(fired) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::uint64_t events = 2'000'000;
    unsigned reps = 3;
    double min_ratio = 2.0;

    SimOptions opts;
    // Throughput measurement: keep the signatures' exact stats mirror
    // off unless asked for (--exact-stats).
    opts.cfg.bulk.sigCfg.trackExact = false;
    const OptionRegistry &reg = OptionRegistry::instance();
    std::string err;
    std::vector<const char *> rest;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--events") && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--min-ratio") &&
                   i + 1 < argc) {
            min_ratio = std::strtod(argv[++i], nullptr);
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (!rest.empty() &&
        !reg.parse(static_cast<int>(rest.size()), rest.data(), opts,
                   OptionGroup::Bench, err)) {
        std::fprintf(stderr, "%s\nusage: %s [--events N] [--reps N] "
                             "[--min-ratio X] [sim options]\n",
                     err.c_str(), argv[0]);
        reg.printUsage(stderr, OptionGroup::Bench);
        return 1;
    }

    const std::vector<std::uint32_t> mix = drawMix();
    std::uint64_t check_new = 0, check_old = 0;
    // Interleave the reps so background-load drift hits both kernels
    // alike; best-of-reps then discards the disturbed runs.
    double new_eps = 0, old_eps = 0;
    for (unsigned i = 0; i < reps; ++i) {
        new_eps = std::max(
            new_eps, oneRep<EventQueue>(mix, events, check_new));
        old_eps = std::max(
            old_eps, oneRep<LegacyEventQueue>(mix, events, check_old));
    }
    check_new /= reps;
    check_old /= reps;
    if (check_new != check_old) {
        std::fprintf(stderr,
                     "FAIL: kernels disagree on the mix "
                     "(checksum %llu vs %llu)\n",
                     static_cast<unsigned long long>(check_new),
                     static_cast<unsigned long long>(check_old));
        return 1;
    }

    double ratio = new_eps / old_eps;
    std::printf("fig9 mix, %llu events, best of %u reps:\n",
                static_cast<unsigned long long>(events), reps);
    std::printf("  legacy kernel: %12.0f events/sec\n", old_eps);
    std::printf("  wheel kernel:  %12.0f events/sec\n", new_eps);
    std::printf("  speedup:       %.2fx\n", ratio);

    // Absolute events/sec of the real simulator on a fig9 point.
    opts.cfg.resolve();
    AppProfile app = profileByName(opts.app);
    auto traces = generateTraces(app, opts.cfg.numProcs,
                                 opts.instrs ? opts.instrs : 60'000,
                                 opts.seedSalt);
    System sys(opts.cfg, std::move(traces));
    auto t0 = std::chrono::steady_clock::now();
    Results res = sys.run();
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    std::printf("  full sim (%s, %u procs): %.0f events/sec, "
                "%llu events, exec_time=%llu\n",
                app.name.c_str(), opts.cfg.numProcs,
                static_cast<double>(sys.eventQueue().eventsFired()) /
                    secs,
                static_cast<unsigned long long>(
                    sys.eventQueue().eventsFired()),
                static_cast<unsigned long long>(res.execTime));

    if (min_ratio > 0 && ratio < min_ratio) {
        std::fprintf(stderr, "FAIL: speedup %.2fx below required "
                             "%.2fx\n", ratio, min_ratio);
        return 1;
    }
    return 0;
}
