/**
 * @file
 * Ablation: the RSig commit-bandwidth optimization (Section 4.2.2).
 *
 * Compares BSCdypvt with and without RSig across all workloads:
 * R-signature traffic, total traffic, execution time, and how often
 * the arbiter actually needed the R signature (the low "R Sig.
 * Required" column of Table 4 is what makes the optimization pay).
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(40'000);
    const auto apps = appsFromEnv();
    const unsigned procs = 8;

    printHeader("Ablation: RSig commit bandwidth optimization");
    std::printf("%-12s %12s %12s %10s %10s %9s\n", "app",
                "RdSig(off)", "RdSig(on)", "tot ratio", "exec rat.",
                "RSigReq%");

    for (const AppProfile &app : apps) {
        MachineConfig off;
        off.bulk.rsigOpt = false;
        Results a = runWorkload(Model::BSCdypvt, app, procs, instrs,
                                &off);
        Results b = runWorkload(Model::BSCdypvt, app, procs, instrs);

        std::printf("%-12s %12.0f %12.0f %10.3f %10.3f %9.1f\n",
                    app.name.c_str(), a.stats.get("net.bits.RdSig"),
                    b.stats.get("net.bits.RdSig"),
                    b.stats.get("net.bits.total") /
                        a.stats.get("net.bits.total"),
                    static_cast<double>(b.execTime) /
                        static_cast<double>(a.execTime),
                    b.stats.get("arb.rsig_required_pct"));
    }
    return 0;
}
