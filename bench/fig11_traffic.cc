/**
 * @file
 * Regenerates the paper's Figure 11: interconnection network traffic
 * normalized to RC, broken into Rd/Wr data, R signatures, W
 * signatures, invalidations, and other messages, for four
 * configurations:
 *   R = RC, E = BSCexact, N = BSCdypvt without the RSig optimization,
 *   B = BSCdypvt.
 *
 * Expected shape (Section 7.4): B is ~5-13% above RC on average, the
 * overhead coming from signature transfers and post-squash refetches;
 * the N-vs-B difference shows the RSig optimization wiping out the
 * RdSig category; E-vs-N shows the modest effect of aliasing.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

namespace {

struct Row
{
    double rdwr, rdsig, wrsig, inv, other;

    double
    total() const
    {
        return rdwr + rdsig + wrsig + inv + other;
    }
};

Row
rowOf(const Results &r)
{
    return Row{r.stats.get("net.bits.RdWr"),
               r.stats.get("net.bits.RdSig"),
               r.stats.get("net.bits.WrSig"),
               r.stats.get("net.bits.Inv"),
               r.stats.get("net.bits.Other")};
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(60'000);
    const auto apps = appsFromEnv();
    const unsigned procs = 8;

    printHeader(
        "Figure 11: traffic normalized to RC (R/E/N/B per app)");
    std::printf("%-12s %-4s %8s %8s %8s %8s %8s %8s\n", "app", "cfg",
                "Rd/Wr", "RdSig", "WrSig", "Inv", "Other", "Total");

    double sum_b = 0, sum_n = 0, sum_e = 0;
    unsigned count = 0;

    for (const AppProfile &app : apps) {
        Results rc = runWorkload(Model::RC, app, procs, instrs);
        Results ex = runWorkload(Model::BSCexact, app, procs, instrs);
        MachineConfig no_rsig;
        no_rsig.bulk.rsigOpt = false;
        Results n = runWorkload(Model::BSCdypvt, app, procs, instrs,
                                &no_rsig);
        Results b = runWorkload(Model::BSCdypvt, app, procs, instrs);

        double base = rowOf(rc).total();
        auto print = [&](const char *tag, const Results &r) {
            Row row = rowOf(r);
            std::printf("%-12s %-4s %8.3f %8.3f %8.3f %8.3f %8.3f "
                        "%8.3f\n",
                        app.name.c_str(), tag, row.rdwr / base,
                        row.rdsig / base, row.wrsig / base,
                        row.inv / base, row.other / base,
                        row.total() / base);
        };
        print("R", rc);
        print("E", ex);
        print("N", n);
        print("B", b);
        std::printf("\n");

        sum_e += rowOf(ex).total() / base;
        sum_n += rowOf(n).total() / base;
        sum_b += rowOf(b).total() / base;
        ++count;
    }

    if (count) {
        std::printf("average total vs RC:  E=%.3f  N=%.3f  B=%.3f\n",
                    sum_e / count, sum_n / count, sum_b / count);
        std::printf("BSCdypvt bandwidth overhead over RC: %.1f%%\n",
                    100.0 * (sum_b / count - 1.0));
    }
    return 0;
}
