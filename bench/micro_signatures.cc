/**
 * @file
 * Microbenchmarks (google-benchmark) of the signature primitive
 * operations of the paper's Figure 2: insertion, membership,
 * intersection, union, decode, and compression — the operations the
 * BDM, arbiter, and DirBDM perform on every access/commit.
 */

#include <benchmark/benchmark.h>

#include "signature/signature.hh"
#include "sim/rng.hh"

using namespace bulksc;

namespace {

Signature
filledSig(unsigned n, std::uint64_t seed, bool exact = false)
{
    SignatureConfig cfg;
    cfg.exact = exact;
    Signature s(cfg);
    Rng rng(seed);
    for (unsigned i = 0; i < n; ++i)
        s.insert(rng.next() & 0xFFFFFF);
    return s;
}

void
BM_SignatureInsert(benchmark::State &state)
{
    Rng rng(1);
    Signature s;
    for (auto _ : state) {
        s.insert(rng.next() & 0xFFFFFF);
        if (s.exactSize() > 4096) {
            state.PauseTiming();
            s.clear();
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_SignatureInsert);

void
BM_SignatureMembership(benchmark::State &state)
{
    Signature s = filledSig(static_cast<unsigned>(state.range(0)), 2);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(s.contains(rng.next() & 0xFFFFFF));
}
BENCHMARK(BM_SignatureMembership)->Arg(8)->Arg(64)->Arg(512);

void
BM_SignatureIntersect(benchmark::State &state)
{
    Signature a = filledSig(static_cast<unsigned>(state.range(0)), 4);
    Signature b = filledSig(static_cast<unsigned>(state.range(0)), 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.intersects(b));
}
BENCHMARK(BM_SignatureIntersect)->Arg(8)->Arg(64)->Arg(512);

void
BM_SignatureIntersectExact(benchmark::State &state)
{
    Signature a =
        filledSig(static_cast<unsigned>(state.range(0)), 6, true);
    Signature b =
        filledSig(static_cast<unsigned>(state.range(0)), 7, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.intersects(b));
}
BENCHMARK(BM_SignatureIntersectExact)->Arg(8)->Arg(64)->Arg(512);

void
BM_SignatureUnion(benchmark::State &state)
{
    Signature a = filledSig(64, 8);
    Signature b = filledSig(64, 9);
    for (auto _ : state) {
        Signature c = a;
        c.unionWith(b);
        benchmark::DoNotOptimize(c.empty());
    }
}
BENCHMARK(BM_SignatureUnion);

void
BM_SignatureDecode(benchmark::State &state)
{
    Signature s = filledSig(static_cast<unsigned>(state.range(0)), 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(s.decodeBank0());
}
BENCHMARK(BM_SignatureDecode)->Arg(8)->Arg(64)->Arg(512);

void
BM_SignatureCompressedBits(benchmark::State &state)
{
    Signature s = filledSig(static_cast<unsigned>(state.range(0)), 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(s.compressedBits());
}
BENCHMARK(BM_SignatureCompressedBits)->Arg(4)->Arg(64);

} // namespace

BENCHMARK_MAIN();
