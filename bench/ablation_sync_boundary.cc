/**
 * @file
 * Ablation: chunk boundaries at synchronization operations.
 *
 * Section 3.3 / Figure 6: the longer a chunk is relative to the
 * critical section it contains, the wider the window in which two
 * processors' critical sections overlap and squash each other.
 * BulkParams::endChunkOnSync starts every synchronization operation
 * in a fresh chunk (the paper's §4.1.2 checkpoint-event boundaries).
 * This bench measures the trade on the lock-heavy workloads: fewer
 * contention squashes vs more (smaller) commits.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(40'000);
    const unsigned procs = 8;

    std::vector<AppProfile> apps;
    for (const char *n : {"radiosity", "raytrace", "barnes", "sjbb2k"})
        apps.push_back(profileByName(n));
    if (std::getenv("BULKSC_APPS"))
        apps = appsFromEnv();

    printHeader("Ablation: chunk boundaries at sync ops (BSCdypvt)");
    std::printf("%-12s %6s %12s %10s %10s %10s\n", "app", "sync",
                "exec ratio", "squash%", "commits", "emptyW%");

    for (const AppProfile &app : apps) {
        Results off = runWorkload(Model::BSCdypvt, app, procs, instrs);
        MachineConfig cfg;
        cfg.bulk.endChunkOnSync = true;
        Results on =
            runWorkload(Model::BSCdypvt, app, procs, instrs, &cfg);

        std::printf("%-12s %6s %12.3f %10.2f %10.0f %10.1f\n",
                    app.name.c_str(), "off", 1.0,
                    off.stats.get("cpu.squashed_instr_pct"),
                    off.stats.get("bulk.commits"),
                    off.stats.get("arb.empty_w_pct"));
        std::printf("%-12s %6s %12.3f %10.2f %10.0f %10.1f\n",
                    app.name.c_str(), "on",
                    static_cast<double>(off.execTime) /
                        static_cast<double>(on.execTime),
                    on.stats.get("cpu.squashed_instr_pct"),
                    on.stats.get("bulk.commits"),
                    on.stats.get("arb.empty_w_pct"));
    }
    return 0;
}
