/**
 * @file
 * Shared helpers for the table/figure regeneration benches.
 *
 * Environment knobs:
 *   BULKSC_INSTRS — dynamic instructions per processor (default per
 *                   bench; lower for smoke runs).
 *   BULKSC_APPS   — comma-separated app subset (default: all 13).
 */

#ifndef BULKSC_BENCH_BENCH_UTIL_HH
#define BULKSC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "system/sim_options.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"

namespace bulksc::bench {

inline std::uint64_t
instrsFromEnv(std::uint64_t dflt)
{
    const char *s = std::getenv("BULKSC_INSTRS");
    if (!s)
        return dflt;
    std::uint64_t v = std::strtoull(s, nullptr, 10);
    return v ? v : dflt;
}

inline std::vector<AppProfile>
appsFromEnv()
{
    const char *s = std::getenv("BULKSC_APPS");
    if (!s)
        return allProfiles();
    std::vector<AppProfile> out;
    std::string str(s);
    std::size_t pos = 0;
    while (pos < str.size()) {
        std::size_t comma = str.find(',', pos);
        if (comma == std::string::npos)
            comma = str.size();
        std::string name = str.substr(pos, comma - pos);
        if (!name.empty())
            out.push_back(profileByName(name));
        pos = comma + 1;
    }
    return out.empty() ? allProfiles() : out;
}

/** Geometric mean over the SPLASH-2 subset of a name->value map. */
inline double
splash2GeoMean(const std::vector<std::string> &names,
               const std::vector<double> &vals)
{
    std::vector<double> s;
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (const auto &p : splash2Profiles()) {
            if (p.name == names[i] && vals[i] > 0) {
                s.push_back(vals[i]);
                break;
            }
        }
    }
    return geoMean(s);
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

/**
 * Bench argument parsing through the shared option registry: the same
 * --procs/--instrs/--chunk/... names as the simulator and the batch
 * runner. The BULKSC_INSTRS environment variable seeds the instruction
 * count (flags override it). Prints usage and exits on bad flags.
 */
inline SimOptions
benchOptions(int argc, char **argv, std::uint64_t default_instrs)
{
    SimOptions opts;
    opts.instrs = instrsFromEnv(default_instrs);
    const OptionRegistry &reg = OptionRegistry::instance();
    std::string err;
    if (!reg.parse(argc - 1, argv + 1, opts, OptionGroup::Bench,
                   err)) {
        std::fprintf(stderr, "%s: %s\nusage: %s [options]\n",
                     argv[0], err.c_str(), argv[0]);
        reg.printUsage(stderr, OptionGroup::Bench);
        std::exit(1);
    }
    return opts;
}

} // namespace bulksc::bench

#endif // BULKSC_BENCH_BENCH_UTIL_HH
