/**
 * @file
 * Regenerates the paper's Table 3: BulkSC characterization.
 *
 * Columns, as in the paper:
 *  - Squashed instructions (%) under BSCexact / BSCdypvt / BSCbase;
 *  - Average set sizes (cache lines) of the Read / Write / Priv-Write
 *    signatures under BSCdypvt;
 *  - Speculative line displacements per 100k commits (write / read
 *    set);
 *  - Data supplied from the Private Buffer per 1k commits;
 *  - Extra (aliased) cache invalidations per 1k commits.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(60'000);
    const auto apps = appsFromEnv();
    const unsigned procs = 8;

    printHeader("Table 3: characterization of BulkSC");
    std::printf("%-12s |%8s%8s%8s |%7s%7s%7s |%9s%9s |%8s |%8s\n",
                "", "sq.ex%", "sq.dy%", "sq.ba%", "Read", "Write",
                "PrivW", "WrDsp", "RdDsp", "PBuf", "XInv");
    std::printf("%-12s |%24s |%21s |%18s |%8s |%8s\n", "app",
                "Squashed Instr (%)", "Avg Set Sizes", "/100k comm",
                "/1k com", "/1k com");

    for (const AppProfile &app : apps) {
        Results ex = runWorkload(Model::BSCexact, app, procs, instrs);
        Results dy = runWorkload(Model::BSCdypvt, app, procs, instrs);
        Results ba = runWorkload(Model::BSCbase, app, procs, instrs);

        double commits = dy.stats.get("bulk.commits");
        double per100k = commits > 0 ? 100000.0 / commits : 0;
        double per1k = commits > 0 ? 1000.0 / commits : 0;

        std::printf(
            "%-12s |%8.2f%8.2f%8.2f |%7.1f%7.2f%7.1f |%9.1f%9.1f "
            "|%8.1f |%8.1f\n",
            app.name.c_str(),
            ex.stats.get("cpu.squashed_instr_pct"),
            dy.stats.get("cpu.squashed_instr_pct"),
            ba.stats.get("cpu.squashed_instr_pct"),
            dy.stats.get("bulk.avg_read_set"),
            dy.stats.get("bulk.avg_write_set"),
            dy.stats.get("bulk.avg_priv_write_set"),
            dy.stats.get("bulk.spec_write_displacements") * per100k,
            dy.stats.get("bulk.spec_read_displacements") * per100k,
            dy.stats.get("bulk.priv_buffer_supplies") * per1k,
            dy.stats.get("mem.extra_invals") * per1k);
    }
    std::printf("\nAll columns except the first three use BSCdypvt, "
                "as in the paper.\n");
    return 0;
}
