/**
 * @file
 * Ablation: multiple chunks in progress per processor (Sections 4.1.2
 * and 4.1.4).
 *
 * The paper's design gives each processor two signature pairs so a
 * new chunk can execute while its predecessor arbitrates and commits
 * ("a processor does not stall on chunk transitions"). This sweep
 * runs BSCdypvt with 1, 2, and 4 signature pairs: one pair exposes
 * the full commit latency at every chunk boundary; two pairs hide
 * most of it; more pairs add little because commits are short.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(40'000);
    const auto apps = appsFromEnv();
    const unsigned procs = 8;

    printHeader(
        "Ablation: chunks in progress per processor (BSCdypvt)");
    std::printf("%-12s %12s %12s %12s\n", "app", "1 chunk",
                "2 chunks", "4 chunks");

    std::vector<std::string> names;
    std::vector<std::vector<double>> speedups(3);

    for (const AppProfile &app : apps) {
        Results rc = runWorkload(Model::RC, app, procs, instrs);
        double base = static_cast<double>(rc.execTime);
        names.push_back(app.name);
        std::printf("%-12s", app.name.c_str());
        unsigned idx = 0;
        for (unsigned chunks : {1u, 2u, 4u}) {
            MachineConfig cfg;
            cfg.bulk.maxLiveChunks = chunks;
            Results r = runWorkload(Model::BSCdypvt, app, procs,
                                    instrs, &cfg);
            double sp = base / static_cast<double>(r.execTime);
            speedups[idx++].push_back(sp);
            std::printf(" %12.3f", sp);
        }
        std::printf("\n");
    }

    std::printf("%-12s", "SP2-G.M.");
    for (unsigned i = 0; i < 3; ++i)
        std::printf(" %12.3f", splash2GeoMean(names, speedups[i]));
    std::printf("\n(speedup over RC; 2 chunks is the paper's "
                "configuration)\n");
    return 0;
}
