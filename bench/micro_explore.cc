/**
 * @file
 * Exploration microbenchmark: schedules/second through the stateless
 * model checker, and the measured effectiveness of its two prunes.
 *
 *   micro_explore [--schedules N] [--delay N]
 *
 * Runs the 2-proc store-buffering exploration four ways — naive,
 * POR only, fingerprint only, both — on identical budgets and
 * reports schedule counts, pruned-alternative counts, and wall
 * clock. Exits non-zero if signature-POR fails to cut the schedule
 * count by at least 30% versus naive enumeration (the subsystem's
 * acceptance bar), so a regression in the independence relation
 * shows up here as well as in the unit tests.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "explore/explorer.hh"

using namespace bulksc;

namespace {

ExploreResult
run(bool por, bool fp, std::uint64_t budget, Tick delay)
{
    ExploreConfig ec;
    ec.litmusName = "sb";
    ec.machine.watchdog.enabled = true;
    if (delay)
        ec.machine.faults =
            "net.delay=0:" + std::to_string(delay);
    ec.por = por;
    ec.fpPrune = fp;
    ec.maxSchedules = budget;
    return Explorer(std::move(ec)).explore();
}

void
report(const char *label, const ExploreResult &r)
{
    std::printf("%-18s %6llu schedules  %6llu POR-pruned  "
                "%6llu fp-pruned  %8.1f ms  %s\n",
                label,
                static_cast<unsigned long long>(r.schedulesRun),
                static_cast<unsigned long long>(r.prunedPor),
                static_cast<unsigned long long>(r.prunedFingerprint),
                r.wallMs, r.exhaustive ? "exhaustive" : "budget");
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t budget = 3000;
    Tick delay = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--schedules") && i + 1 < argc)
            budget = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--delay") && i + 1 < argc)
            delay = std::strtoull(argv[++i], nullptr, 10);
        else {
            std::fprintf(stderr,
                         "usage: %s [--schedules N] [--delay N]\n",
                         argv[0]);
            return 1;
        }
    }

    ExploreResult naive = run(false, false, budget, delay);
    ExploreResult por = run(true, false, budget, delay);
    ExploreResult fp = run(false, true, budget, delay);
    ExploreResult both = run(true, true, budget, delay);

    std::printf("sb exploration, budget %llu%s:\n",
                static_cast<unsigned long long>(budget),
                delay ? " (+delay choices)" : "");
    report("naive", naive);
    report("POR", por);
    report("fingerprint", fp);
    report("POR+fingerprint", both);

    if (naive.exhaustive && por.exhaustive) {
        double cut = 1.0 - static_cast<double>(por.schedulesRun) /
                               static_cast<double>(
                                   naive.schedulesRun);
        std::printf("POR cut: %.0f%%\n", 100.0 * cut);
        if (cut < 0.30) {
            std::fprintf(stderr,
                         "FAIL: POR pruned %.0f%% < 30%%\n",
                         100.0 * cut);
            return 1;
        }
    }
    return 0;
}
