/**
 * @file
 * Ablation: signature size and encoding (the "large unexplored design
 * space" of Section 6).
 *
 * Sweeps the signature geometry (total bits x banks) for BSCdypvt on
 * a subset of workloads and reports squash rate, performance vs RC,
 * and signature traffic: smaller signatures alias more (more
 * squashes), bigger ones cost more bandwidth per commit.
 */

#include "bench_util.hh"

using namespace bulksc;
using namespace bulksc::bench;

int
main()
{
    setQuiet(true);
    const std::uint64_t instrs = instrsFromEnv(40'000);
    const unsigned procs = 8;

    struct Geom
    {
        unsigned bits;
        unsigned banks;
    };
    const std::vector<Geom> geoms = {
        {512, 2}, {1024, 4}, {2048, 4}, {4096, 4}, {8192, 8},
    };

    std::vector<AppProfile> apps;
    for (const char *n : {"ocean", "radix", "sjbb2k"})
        apps.push_back(profileByName(n));
    const char *env = std::getenv("BULKSC_APPS");
    if (env)
        apps = appsFromEnv();

    printHeader("Ablation: signature size/encoding (BSCdypvt)");
    std::printf("%-12s %12s %10s %12s %14s\n", "app", "geometry",
                "squash%", "vs RC", "sig bits/comm");

    for (const AppProfile &app : apps) {
        Results rc = runWorkload(Model::RC, app, procs, instrs);
        for (const Geom &g : geoms) {
            MachineConfig cfg;
            cfg.bulk.sigCfg.totalBits = g.bits;
            cfg.bulk.sigCfg.numBanks = g.banks;
            Results r = runWorkload(Model::BSCdypvt, app, procs,
                                    instrs, &cfg);
            double commits = r.stats.get("bulk.commits");
            double sig_bits = r.stats.get("net.bits.WrSig") +
                              r.stats.get("net.bits.RdSig");
            std::printf("%-12s %7ub x%2u %10.2f %12.3f %14.0f\n",
                        app.name.c_str(), g.bits, g.banks,
                        r.stats.get("cpu.squashed_instr_pct"),
                        static_cast<double>(rc.execTime) /
                            static_cast<double>(r.execTime),
                        commits > 0 ? sig_bits / commits : 0);
        }
        std::printf("\n");
    }
    return 0;
}
