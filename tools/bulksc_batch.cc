/**
 * @file
 * Parallel parameter-sweep driver: runs the cross product of one or
 * more sweep axes over a base configuration, one fully-isolated
 * simulator instance per grid point, on a pool of worker threads, and
 * streams one JSONL record per point.
 *
 *   bulksc_batch --sweep chunk=500,1000,2000 --sweep procs=4,8 \
 *                -j 8 --out grid.jsonl [base options]
 *
 *   --sweep NAME=V1,V2,...  add a sweep axis (repeatable; NAME is any
 *                           config option, e.g. chunk, procs, model,
 *                           sig-bits; the last axis varies fastest)
 *   -j, --jobs N            worker threads              (default 1)
 *   --out FILE              JSONL output path       (default stdout)
 *   --progress              report completed points on stderr
 *
 * Base options are the shared registry (--config/--dump-config work
 * here too); per-point records are byte-identical for any -j, so grids
 * can be diffed across worker counts. Timing runs skip the signatures'
 * exact stats mirror by default — pass --exact-stats to collect
 * set-size/aliasing statistics and squash attribution.
 *
 * Exit status: 0 if every point completed, 1 on usage/config errors,
 * 2 if any point failed (its record carries an "error" field or
 * "completed": false).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "system/sim_options.hh"
#include "system/sweep_runner.hh"

using namespace bulksc;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--sweep NAME=V1,V2,...]... [-j N] "
                 "[--out FILE] [--progress]\n"
                 "          [base options]\n"
                 "batch options:\n"
                 "  --sweep NAME=LIST      add a sweep axis "
                 "(repeatable; cross product, last varies fastest)\n"
                 "  -j, --jobs N           worker threads "
                 "(default 1)\n"
                 "  --out FILE             JSONL output path "
                 "(default stdout)\n"
                 "  --progress             report completed points "
                 "on stderr\n",
                 argv0);
    OptionRegistry::instance().printUsage(stderr, OptionGroup::Batch);
    std::exit(1);
}

bool
parseAxis(const std::string &spec, SweepAxis &axis, std::string &err)
{
    std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
        err = "--sweep expects NAME=V1,V2,..., got '" + spec + "'";
        return false;
    }
    axis.name = spec.substr(0, eq);
    axis.values.clear();
    std::size_t pos = eq + 1;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string v = spec.substr(pos, comma - pos);
        if (!v.empty())
            axis.values.push_back(v);
        pos = comma + 1;
    }
    if (axis.values.empty()) {
        err = "--sweep " + axis.name + ": no values";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::vector<SweepAxis> axes;
    unsigned jobs = 1;
    std::string out_path;
    bool progress = false;
    std::vector<const char *> rest;
    std::string err;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage(argv[0]);
        } else if (!std::strcmp(a, "--sweep")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            SweepAxis axis;
            if (!parseAxis(argv[++i], axis, err)) {
                std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
                return 1;
            }
            axes.push_back(std::move(axis));
        } else if (!std::strcmp(a, "-j") || !std::strcmp(a, "--jobs")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (jobs == 0)
                jobs = 1;
        } else if (!std::strncmp(a, "-j", 2) && a[2] != '\0') {
            jobs = static_cast<unsigned>(
                std::strtoul(a + 2, nullptr, 10));
            if (jobs == 0)
                jobs = 1;
        } else if (!std::strcmp(a, "--out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            out_path = argv[++i];
        } else if (!std::strcmp(a, "--progress")) {
            progress = true;
        } else {
            rest.push_back(a);
        }
    }

    SimOptions opts;
    // A batch run is a timing sweep: skip the signatures' exact stats
    // mirror unless explicitly requested (--exact-stats), so the hot
    // path never maintains per-signature unordered_sets. Forced back
    // on by resolve() where it is functional (BSCexact, multi-module
    // arbiters).
    opts.cfg.bulk.sigCfg.trackExact = false;

    const OptionRegistry &reg = OptionRegistry::instance();
    if (!reg.parse(static_cast<int>(rest.size()), rest.data(), opts,
                   OptionGroup::Batch, err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        usage(argv[0]);
    }

    if (opts.dumpConfig) {
        reg.dumpConfigJson(stdout, opts);
        return 0;
    }

    SweepRunner runner(std::move(opts), std::move(axes));
    if (!runner.validateGrid(err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 1;
    }

    std::FILE *out = stdout;
    if (!out_path.empty()) {
        out = std::fopen(out_path.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "%s: cannot open '%s' for writing\n",
                         argv[0], out_path.c_str());
            return 1;
        }
    }

    std::size_t failed = runner.run(jobs, out, progress);

    if (out != stdout)
        std::fclose(out);
    if (failed) {
        std::fprintf(stderr, "%zu/%zu points failed\n", failed,
                     runner.numPoints());
        return 2;
    }
    return 0;
}
