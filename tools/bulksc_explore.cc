/**
 * @file
 * Systematic schedule explorer: model-check the BulkSC machine by
 * enumerating message orderings and delivery delays.
 *
 *   bulksc_explore --litmus sb [options]
 *
 * Each schedule is one full simulation driven by a forced decision
 * prefix; the explorer branches on every same-tick delivery ordering
 * (and, with --explore-delay N, every delivery latency in [0,N]),
 * prunes commuting alternatives with signature-based partial-order
 * reduction, and judges every run with the axiomatic SC checker, the
 * race detector, the litmus outcome predicate, and the watchdog.
 *
 *   --explore-schedules N  schedule budget (default 1000)
 *   --explore-delay N      delivery delays in [0,N] become choices
 *   --faults SPEC          inject faults (e.g. arb.skip_collision=1)
 *   --schedule FILE        replay one recorded schedule, no search
 *   --schedule-out FILE    write the minimized counterexample
 *   --results-out FILE     one JSON object per explored schedule
 *
 * Exit codes match bulksc_sim: 0 clean, 2 incomplete, 3 SC/litmus
 * violation, 4 race, 10 livelock, 11 starvation, 12 deadlock.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "explore/explorer.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "system/sim_options.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"
#include "workload/trace_io.hh"

using namespace bulksc;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s [options]\n", argv0);
    OptionRegistry::instance().printUsage(stderr,
                                          OptionGroup::Explore);
    std::exit(1);
}

int
verdictExitCode(ExploreVerdict v)
{
    switch (v) {
      case ExploreVerdict::OK:
        return 0;
      case ExploreVerdict::ScViolation:
      case ExploreVerdict::LitmusForbidden:
        return 3;
      case ExploreVerdict::Race:
        return 4;
      case ExploreVerdict::Livelock:
        return 10;
      case ExploreVerdict::Starvation:
        return 11;
      case ExploreVerdict::Deadlock:
        return 12;
      case ExploreVerdict::Incomplete:
        return 2;
    }
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") ||
            !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
        }
    }

    SimOptions opts;
    const OptionRegistry &reg = OptionRegistry::instance();
    std::string err;
    if (!reg.parse(argc - 1, argv + 1, opts, OptionGroup::Explore,
                   err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        usage(argv[0]);
    }

    if (!opts.cfg.validate(err)) {
        std::fprintf(stderr, "%s: invalid configuration: %s\n",
                     argv[0], err.c_str());
        return 1;
    }

    if (opts.dumpConfig) {
        reg.dumpConfigJson(stdout, opts);
        return 0;
    }

    ExploreConfig ec;
    ec.machine = opts.cfg;
    if (opts.explore.delayChoices > 0) {
        // Turn every delivery latency into an explored choice by
        // installing an always-on delay window; with a controller
        // attached the window is a choice domain, not a random roll.
        std::string item = "net.delay=0:" +
                           std::to_string(opts.explore.delayChoices);
        ec.machine.faults += ec.machine.faults.empty() ? item
                                                       : "," + item;
    }

    if (!opts.litmus.empty()) {
        ec.litmusName = opts.litmus;
        ec.litmusVariant = static_cast<unsigned>(opts.seedSalt);
    } else if (!opts.loadTraces.empty()) {
        ec.traces = loadTraces(opts.loadTraces);
        if (ec.traces.empty())
            return 1;
        ec.machine.numProcs =
            static_cast<unsigned>(ec.traces.size());
    } else {
        AppProfile app = profileByName(opts.app);
        ec.traces = generateTraces(app, ec.machine.numProcs,
                                   opts.instrs, opts.seedSalt);
    }

    if (opts.checks.any()) {
        ec.checkAxiomatic = opts.checks.axiomatic;
        ec.checkRace = opts.checks.race;
    }

    ec.por = opts.explore.por;
    ec.fpPrune = opts.explore.fpPrune;
    ec.bfs = opts.explore.bfs;
    ec.jobs = static_cast<unsigned>(opts.explore.jobs);
    ec.maxSchedules = opts.explore.maxSchedules;
    ec.maxDecisions =
        static_cast<std::uint32_t>(opts.explore.maxDecisions);
    ec.tickLimit = opts.explore.tickLimit;
    ec.wallLimitMs = opts.explore.wallMs;
    ec.stopAtFirst = opts.explore.stopAtFirst;
    ec.minimize = opts.explore.minimize;

    Explorer ex(std::move(ec));

    // --schedule FILE: replay exactly one recorded schedule.
    if (!opts.explore.schedule.empty()) {
        Schedule s;
        if (!s.load(opts.explore.schedule, err)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
            return 1;
        }
        RunOutcome out = ex.runOne(s);
        if (out.mismatches) {
            std::fprintf(stderr,
                         "warning: %llu forced choices did not match "
                         "the decisions reached (stale schedule?)\n",
                         static_cast<unsigned long long>(
                             out.mismatches));
        }
        if (!opts.explore.scheduleOut.empty()) {
            Schedule rec;
            rec.choices.reserve(out.trace.size());
            for (const DecisionRecord &d : out.trace)
                rec.choices.push_back(d.choice());
            if (!rec.save(opts.explore.scheduleOut)) {
                std::fprintf(stderr,
                             "error: cannot write schedule to %s\n",
                             opts.explore.scheduleOut.c_str());
                return 1;
            }
        }
        if (opts.jsonOut) {
            std::printf("{\n  \"mode\": \"replay\",\n"
                        "  \"verdict\": \"%s\",\n"
                        "  \"decisions\": %zu,\n"
                        "  \"mismatches\": %llu,\n"
                        "  \"exec_time\": %llu",
                        exploreVerdictName(out.verdict),
                        out.trace.size(),
                        static_cast<unsigned long long>(
                            out.mismatches),
                        static_cast<unsigned long long>(
                            out.execTime));
            if (!out.detail.empty())
                std::printf(",\n  \"detail\": \"%s\"",
                            jsonEscape(out.detail).c_str());
            std::printf("\n}\n");
        } else {
            std::printf("replay %s: %s (%zu decisions, exec_time=%llu"
                        ")\n",
                        opts.explore.schedule.c_str(),
                        exploreVerdictName(out.verdict),
                        out.trace.size(),
                        static_cast<unsigned long long>(
                            out.execTime));
            if (!out.detail.empty())
                std::printf("  %s\n", out.detail.c_str());
        }
        return verdictExitCode(out.verdict);
    }

    std::FILE *results = nullptr;
    if (!opts.explore.resultsOut.empty()) {
        results = std::fopen(opts.explore.resultsOut.c_str(), "w");
        if (!results) {
            std::fprintf(stderr, "error: cannot open %s\n",
                         opts.explore.resultsOut.c_str());
            return 1;
        }
        ex.onSchedule = [results](std::uint64_t idx,
                                  const Schedule &pfx,
                                  const RunOutcome &out) {
            std::fprintf(results,
                         "{\"schedule\": %llu, \"prefix_len\": %zu, "
                         "\"decisions\": %zu, \"verdict\": \"%s\", "
                         "\"exec_time\": %llu}\n",
                         static_cast<unsigned long long>(idx),
                         pfx.size(), out.trace.size(),
                         exploreVerdictName(out.verdict),
                         static_cast<unsigned long long>(
                             out.execTime));
        };
    }

    ExploreResult r = ex.explore();
    if (results)
        std::fclose(results);

    if (r.found && !opts.explore.scheduleOut.empty()) {
        if (!r.counterexample.save(opts.explore.scheduleOut)) {
            std::fprintf(stderr,
                         "error: cannot write schedule to %s\n",
                         opts.explore.scheduleOut.c_str());
            return 1;
        }
    }

    if (opts.jsonOut) {
        std::printf("{\n  \"mode\": \"explore\",\n"
                    "  \"schedules\": %llu,\n"
                    "  \"decisions\": %llu,\n"
                    "  \"pruned_por\": %llu,\n"
                    "  \"pruned_fingerprint\": %llu,\n"
                    "  \"frontier_peak\": %llu,\n"
                    "  \"violations\": %llu,\n"
                    "  \"exhaustive\": %s,\n"
                    "  \"budget_exhausted\": %s,\n"
                    "  \"wall_ms\": %.1f,\n"
                    "  \"verdict\": \"%s\"",
                    static_cast<unsigned long long>(r.schedulesRun),
                    static_cast<unsigned long long>(r.decisionsTotal),
                    static_cast<unsigned long long>(r.prunedPor),
                    static_cast<unsigned long long>(
                        r.prunedFingerprint),
                    static_cast<unsigned long long>(r.frontierPeak),
                    static_cast<unsigned long long>(r.violations),
                    r.exhaustive ? "true" : "false",
                    r.budgetExhausted ? "true" : "false", r.wallMs,
                    exploreVerdictName(r.verdict));
        if (r.found) {
            std::printf(",\n  \"counterexample_len\": %zu,\n"
                        "  \"minimized_prefix_len\": %zu,\n"
                        "  \"minimize_runs\": %llu",
                        r.counterexample.size(),
                        r.minimizedPrefixLen,
                        static_cast<unsigned long long>(
                            r.minimizeRuns));
            if (!r.detail.empty())
                std::printf(",\n  \"detail\": \"%s\"",
                            jsonEscape(r.detail).c_str());
        }
        std::printf("\n}\n");
    } else {
        std::printf("explored %llu schedules (%llu decisions, "
                    "frontier peak %llu) in %.1f ms\n",
                    static_cast<unsigned long long>(r.schedulesRun),
                    static_cast<unsigned long long>(r.decisionsTotal),
                    static_cast<unsigned long long>(r.frontierPeak),
                    r.wallMs);
        std::printf("pruned: %llu by POR, %llu by fingerprint%s\n",
                    static_cast<unsigned long long>(r.prunedPor),
                    static_cast<unsigned long long>(
                        r.prunedFingerprint),
                    r.exhaustive        ? " (tree exhausted)"
                    : r.budgetExhausted ? " (budget exhausted)"
                                        : "");
        if (r.found) {
            std::printf("VIOLATION: %s after %llu schedules\n",
                        exploreVerdictName(r.verdict),
                        static_cast<unsigned long long>(
                            r.schedulesRun));
            if (!r.detail.empty())
                std::printf("  %s\n", r.detail.c_str());
            std::printf("counterexample: %zu decisions (minimal "
                        "forced prefix %zu, %llu minimization "
                        "runs)%s%s\n",
                        r.counterexample.size(), r.minimizedPrefixLen,
                        static_cast<unsigned long long>(
                            r.minimizeRuns),
                        opts.explore.scheduleOut.empty() ? ""
                                                         : " -> ",
                        opts.explore.scheduleOut.c_str());
        } else {
            std::printf("no violation found (%llu violations "
                        "total)\n",
                        static_cast<unsigned long long>(
                            r.violations));
        }
    }

    return r.found ? verdictExitCode(r.verdict) : 0;
}
