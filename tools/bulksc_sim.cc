/**
 * @file
 * Command-line simulator driver: run any workload under any model
 * with configurable machine parameters and dump the full statistics.
 *
 *   bulksc_sim [options]
 *     --model NAME      SC | RC | SC++ | BSCbase | BSCdypvt |
 *                       BSCstpvt | BSCexact        (default BSCdypvt)
 *     --app NAME        one of the 13 workload profiles, or "list"
 *                       (default ocean)
 *     --procs N         processor count               (default 8)
 *     --instrs N        instructions per processor    (default 100000)
 *     --chunk N         chunk size in instructions    (default 1000)
 *     --sig-bits N      signature size in bits        (default 2048)
 *     --sig-banks N     signature banks               (default 4)
 *     --arbiters N      arbiter modules (1 = central) (default 1)
 *     --dirs N          directory modules             (default 1)
 *     --dir-cache N     directory-cache entries (0 = full map)
 *     --no-rsig         disable the RSig optimization
 *     --no-warm         skip functional cache warming
 *     --contention      model destination-link contention
 *     --seed-salt N     vary the generated traces
 *     --verify          run the SC conformance checker (BulkSC
 *                       models; forces value tracking)
 *     --save-traces F   write the generated trace bundle to F
 *     --load-traces F   replay a saved trace bundle instead
 *     --stats           dump every statistic (default: summary)
 *     --json            dump every statistic as a JSON object
 *     --trace-out F     record chunk-lifecycle events and export them
 *                       as Chrome trace_event JSON to F (open in
 *                       chrome://tracing or ui.perfetto.dev)
 *     --trace-cats L    event categories to record (comma-separated:
 *                       chunk,commit,squash,coherence,all; default all)
 *
 * The BULKSC_TRACE environment variable independently enables the
 * textual debug log on stderr (same category names, e.g.
 * BULKSC_TRACE=chunk,squash).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/event_trace.hh"
#include "sim/trace_log.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"
#include "workload/trace_io.hh"

using namespace bulksc;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--model M] [--app A] [--procs N] "
                 "[--instrs N]\n"
                 "          [--chunk N] [--sig-bits N] [--sig-banks N]"
                 "\n"
                 "          [--arbiters N] [--dirs N] [--dir-cache N]"
                 "\n"
                 "          [--no-rsig] [--no-warm] [--contention] "
                 "[--seed-salt N]\n"
                 "          [--verify] [--save-traces F] "
                 "[--load-traces F]\n"
                 "          [--stats] [--json] [--trace-out F] "
                 "[--trace-cats L]\n"
                 "(BULKSC_TRACE=cat,... additionally enables the "
                 "textual debug log)\n",
                 argv0);
    std::exit(1);
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return std::strtoull(argv[++i], nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string model_name = "BSCdypvt";
    std::string app_name = "ocean";
    unsigned procs = 8;
    std::uint64_t instrs = 100'000;
    std::uint64_t seed_salt = 0;
    bool dump_all = false;
    bool json_out = false;
    bool verify = false;
    std::string save_path, load_path;
    std::string trace_out;
    std::string trace_cats = "all";
    MachineConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--model")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            model_name = argv[++i];
        } else if (!std::strcmp(a, "--app")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            app_name = argv[++i];
        } else if (!std::strcmp(a, "--procs")) {
            procs = static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--instrs")) {
            instrs = numArg(argc, argv, i);
        } else if (!std::strcmp(a, "--chunk")) {
            cfg.bulk.chunkSize =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--sig-bits")) {
            cfg.bulk.sigCfg.totalBits =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--sig-banks")) {
            cfg.bulk.sigCfg.numBanks =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--arbiters")) {
            cfg.numArbiters =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--dirs")) {
            cfg.mem.numDirectories =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--dir-cache")) {
            cfg.mem.dirCacheEntries = numArg(argc, argv, i);
        } else if (!std::strcmp(a, "--no-rsig")) {
            cfg.bulk.rsigOpt = false;
        } else if (!std::strcmp(a, "--no-warm")) {
            cfg.warmCaches = false;
        } else if (!std::strcmp(a, "--contention")) {
            cfg.net.modelContention = true;
        } else if (!std::strcmp(a, "--seed-salt")) {
            seed_salt = numArg(argc, argv, i);
        } else if (!std::strcmp(a, "--stats")) {
            dump_all = true;
        } else if (!std::strcmp(a, "--json")) {
            json_out = true;
        } else if (!std::strcmp(a, "--verify")) {
            verify = true;
        } else if (!std::strcmp(a, "--save-traces")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            save_path = argv[++i];
        } else if (!std::strcmp(a, "--load-traces")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            load_path = argv[++i];
        } else if (!std::strcmp(a, "--trace-out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            trace_out = argv[++i];
        } else if (!std::strcmp(a, "--trace-cats")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            trace_cats = argv[++i];
        } else {
            usage(argv[0]);
        }
    }

    if (app_name == "list") {
        for (const AppProfile &p : allProfiles())
            std::printf("%s\n", p.name.c_str());
        return 0;
    }

    cfg.model = modelByName(model_name);
    cfg.numProcs = procs;
    AppProfile app = profileByName(app_name);
    if (verify)
        app.trackAllValues = true;

    std::vector<Trace> traces;
    if (!load_path.empty()) {
        traces = loadTraces(load_path);
        if (traces.empty())
            return 1;
    } else {
        traces = generateTraces(app, procs, instrs, seed_salt);
    }
    if (!save_path.empty() && !saveTraces(save_path, traces))
        return 1;

    if (!trace_out.empty()) {
        EventTrace::instance().enable(
            parseTraceCategories(trace_cats));
    }

    System sys(cfg, std::move(traces));
    if (verify)
        sys.enableScVerification();
    Results res = sys.run();

    if (!trace_out.empty()) {
        const EventTrace &et = EventTrace::instance();
        if (!et.exportChromeTrace(trace_out)) {
            std::fprintf(stderr, "error: cannot write trace to %s\n",
                         trace_out.c_str());
            return 1;
        }
        if (!json_out) {
            std::printf("trace: %llu events (%llu dropped) -> %s\n",
                        static_cast<unsigned long long>(et.recorded()),
                        static_cast<unsigned long long>(et.dropped()),
                        trace_out.c_str());
        }
    }

    if (json_out) {
        std::printf("{\n  \"model\": \"%s\",\n  \"app\": \"%s\","
                    "\n  \"procs\": %u,\n  \"completed\": %s",
                    modelName(cfg.model),
                    jsonEscape(app.name).c_str(), procs,
                    res.completed ? "true" : "false");
        for (const auto &[k, v] : res.stats.entries())
            std::printf(",\n  \"%s\": %s", jsonEscape(k).c_str(),
                        jsonNumber(v).c_str());
        std::printf("\n}\n");
        return res.completed ? 0 : 2;
    }

    std::printf("model=%s app=%s procs=%u instrs/proc=%llu\n",
                modelName(cfg.model), app.name.c_str(), procs,
                static_cast<unsigned long long>(instrs));
    std::printf("completed=%s exec_time=%llu cycles\n",
                res.completed ? "yes" : "NO",
                static_cast<unsigned long long>(res.execTime));
    if (verify && sys.scVerifier()) {
        const ScVerifier *v = sys.scVerifier();
        std::printf("sc-verify: %s (%llu chunks, %llu reads "
                    "checked)\n",
                    v->verified() ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(
                        v->chunksChecked()),
                    static_cast<unsigned long long>(
                        v->readsChecked()));
        for (const std::string &e : v->errors())
            std::printf("  %s\n", e.c_str());
        if (!v->verified())
            return 3;
    }

    if (dump_all) {
        std::ostringstream os;
        res.stats.dump(os);
        std::fputs(os.str().c_str(), stdout);
        return res.completed ? 0 : 2;
    }

    std::printf("retired=%.0f wasted=%.0f (%.2f%% squashed) "
                "squashes=%.0f\n",
                res.stats.get("cpu.retired_instrs"),
                res.stats.get("cpu.wasted_instrs"),
                res.stats.get("cpu.squashed_instr_pct"),
                res.stats.get("cpu.squashes"));
    if (res.stats.get("model_is_bulk") > 0) {
        std::printf("chunks: commits=%.0f emptyW=%.1f%% rset=%.1f "
                    "wset=%.2f wpriv=%.1f\n",
                    res.stats.get("bulk.commits"),
                    res.stats.get("bulk.empty_w_pct"),
                    res.stats.get("bulk.avg_read_set"),
                    res.stats.get("bulk.avg_write_set"),
                    res.stats.get("bulk.avg_priv_write_set"));
        std::printf("arbiter: requests=%.0f denials=%.0f "
                    "pendingW=%.2f nonEmpty=%.1f%%\n",
                    res.stats.get("arb.requests"),
                    res.stats.get("arb.denials"),
                    res.stats.get("arb.avg_pending_w"),
                    res.stats.get("arb.non_empty_pct"));
    }
    std::printf("traffic: total=%.0f bits (RdWr=%.0f RdSig=%.0f "
                "WrSig=%.0f Inv=%.0f Other=%.0f)\n",
                res.stats.get("net.bits.total"),
                res.stats.get("net.bits.RdWr"),
                res.stats.get("net.bits.RdSig"),
                res.stats.get("net.bits.WrSig"),
                res.stats.get("net.bits.Inv"),
                res.stats.get("net.bits.Other"));
    return res.completed ? 0 : 2;
}
