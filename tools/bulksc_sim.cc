/**
 * @file
 * Command-line simulator driver: run any workload under any model
 * with configurable machine parameters and dump the full statistics.
 *
 *   bulksc_sim [options]
 *     --model NAME      SC | RC | SC++ | BSCbase | BSCdypvt |
 *                       BSCstpvt | BSCexact        (default BSCdypvt)
 *     --app NAME        one of the 13 workload profiles, or "list"
 *                       (default ocean)
 *     --litmus NAME     run a litmus test instead of a profile:
 *                       sb | mp | iriw | corr | 2+2w (procs comes
 *                       from the test; --seed-salt picks the timing
 *                       variant; the SC outcome predicate is checked
 *                       and a forbidden outcome exits 3)
 *     --procs N         processor count               (default 8)
 *     --instrs N        instructions per processor    (default 100000)
 *     --chunk N         chunk size in instructions    (default 1000)
 *     --sig-bits N      signature size in bits        (default 2048)
 *     --sig-banks N     signature banks               (default 4)
 *     --arbiters N      arbiter modules (1 = central) (default 1)
 *     --dirs N          directory modules             (default 1)
 *     --dir-cache N     directory-cache entries (0 = full map)
 *     --no-rsig         disable the RSig optimization
 *     --no-warm         skip functional cache warming
 *     --contention      model destination-link contention
 *     --seed-salt N     vary the generated traces
 *     --check LIST      correctness checkers to run, comma-separated
 *                       (also accepted as --check=LIST):
 *                         axiomatic  SC as acyclicity of po∪rf∪co∪fr
 *                                    over committed chunks (any
 *                                    workload)
 *                         race       happens-before data races via
 *                                    vector clocks (any workload)
 *                         replay     serial-replay value check
 *                                    (forces value tracking)
 *                       exit code 3 on an SC violation, 4 on races
 *     --verify          alias for --check replay (kept for
 *                       compatibility)
 *     --inject-skip-arb N
 *                       fault injection: the arbiter grants every Nth
 *                       colliding commit request (negative testing;
 *                       the axiomatic checker must report a cycle)
 *     --save-traces F   write the generated trace bundle to F
 *     --load-traces F   replay a saved trace bundle instead
 *     --stats           dump every statistic (default: summary)
 *     --json            dump every statistic as a JSON object
 *     --trace-out F     record chunk-lifecycle events and export them
 *                       as Chrome trace_event JSON to F (open in
 *                       chrome://tracing or ui.perfetto.dev)
 *     --trace-cats L    event categories to record (comma-separated:
 *                       chunk,commit,squash,coherence,all; default all)
 *
 * The BULKSC_TRACE environment variable independently enables the
 * textual debug log on stderr (same category names, e.g.
 * BULKSC_TRACE=chunk,squash).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/event_trace.hh"
#include "sim/trace_log.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"
#include "workload/litmus.hh"
#include "workload/trace_io.hh"

using namespace bulksc;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--model M] [--app A] [--litmus T] "
                 "[--procs N] [--instrs N]\n"
                 "          [--chunk N] [--sig-bits N] [--sig-banks N]"
                 "\n"
                 "          [--arbiters N] [--dirs N] [--dir-cache N]"
                 "\n"
                 "          [--no-rsig] [--no-warm] [--contention] "
                 "[--seed-salt N]\n"
                 "          [--check axiomatic,race,replay] "
                 "[--inject-skip-arb N]\n"
                 "          [--verify] [--save-traces F] "
                 "[--load-traces F]\n"
                 "          [--stats] [--json] [--trace-out F] "
                 "[--trace-cats L]\n"
                 "(BULKSC_TRACE=cat,... additionally enables the "
                 "textual debug log)\n",
                 argv0);
    std::exit(1);
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return std::strtoull(argv[++i], nullptr, 10);
}

struct CheckSet
{
    bool axiomatic = false;
    bool race = false;
    bool replay = false;

    bool any() const { return axiomatic || race || replay; }
};

void
parseChecks(const std::string &spec, CheckSet &checks,
            const char *argv0)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "axiomatic") {
            checks.axiomatic = true;
        } else if (name == "race") {
            checks.race = true;
        } else if (name == "replay") {
            checks.replay = true;
        } else {
            std::fprintf(stderr,
                         "unknown checker '%s' (known: axiomatic,"
                         "race,replay)\n",
                         name.c_str());
            usage(argv0);
        }
    }
}

LitmusTest
litmusByName(const std::string &name, unsigned variant,
             const char *argv0)
{
    if (name == "sb")
        return makeStoreBuffering(variant);
    if (name == "mp")
        return makeMessagePassing(variant);
    if (name == "iriw")
        return makeIriw(variant);
    if (name == "corr")
        return makeCoRR(variant);
    if (name == "2+2w")
        return make2Plus2W(variant);
    std::fprintf(stderr,
                 "unknown litmus test '%s' (known: sb, mp, iriw, "
                 "corr, 2+2w)\n",
                 name.c_str());
    usage(argv0);
    return {}; // unreachable
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string model_name = "BSCdypvt";
    std::string app_name = "ocean";
    std::string litmus_name;
    unsigned procs = 8;
    std::uint64_t instrs = 100'000;
    std::uint64_t seed_salt = 0;
    bool dump_all = false;
    bool json_out = false;
    CheckSet checks;
    std::string save_path, load_path;
    std::string trace_out;
    std::string trace_cats = "all";
    MachineConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--model")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            model_name = argv[++i];
        } else if (!std::strcmp(a, "--app")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            app_name = argv[++i];
        } else if (!std::strcmp(a, "--procs")) {
            procs = static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--instrs")) {
            instrs = numArg(argc, argv, i);
        } else if (!std::strcmp(a, "--chunk")) {
            cfg.bulk.chunkSize =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--sig-bits")) {
            cfg.bulk.sigCfg.totalBits =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--sig-banks")) {
            cfg.bulk.sigCfg.numBanks =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--arbiters")) {
            cfg.numArbiters =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--dirs")) {
            cfg.mem.numDirectories =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--dir-cache")) {
            cfg.mem.dirCacheEntries = numArg(argc, argv, i);
        } else if (!std::strcmp(a, "--no-rsig")) {
            cfg.bulk.rsigOpt = false;
        } else if (!std::strcmp(a, "--no-warm")) {
            cfg.warmCaches = false;
        } else if (!std::strcmp(a, "--contention")) {
            cfg.net.modelContention = true;
        } else if (!std::strcmp(a, "--seed-salt")) {
            seed_salt = numArg(argc, argv, i);
        } else if (!std::strcmp(a, "--stats")) {
            dump_all = true;
        } else if (!std::strcmp(a, "--json")) {
            json_out = true;
        } else if (!std::strcmp(a, "--litmus")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            litmus_name = argv[++i];
        } else if (!std::strcmp(a, "--verify")) {
            checks.replay = true;
        } else if (!std::strcmp(a, "--check")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            parseChecks(argv[++i], checks, argv[0]);
        } else if (!std::strncmp(a, "--check=", 8)) {
            parseChecks(a + 8, checks, argv[0]);
        } else if (!std::strcmp(a, "--inject-skip-arb")) {
            cfg.faultSkipArbEvery =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else if (!std::strcmp(a, "--save-traces")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            save_path = argv[++i];
        } else if (!std::strcmp(a, "--load-traces")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            load_path = argv[++i];
        } else if (!std::strcmp(a, "--trace-out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            trace_out = argv[++i];
        } else if (!std::strcmp(a, "--trace-cats")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            trace_cats = argv[++i];
        } else {
            usage(argv[0]);
        }
    }

    if (app_name == "list") {
        for (const AppProfile &p : allProfiles())
            std::printf("%s\n", p.name.c_str());
        return 0;
    }

    cfg.model = modelByName(model_name);
    cfg.numProcs = procs;
    AppProfile app = profileByName(app_name);
    if (checks.replay)
        app.trackAllValues = true; // replay compares observed values

    std::vector<Trace> traces;
    LitmusTest litmus;
    if (!litmus_name.empty()) {
        litmus = litmusByName(
            litmus_name, static_cast<unsigned>(seed_salt), argv[0]);
        traces = litmus.traces;
        procs = static_cast<unsigned>(traces.size());
        cfg.numProcs = procs;
        app.name = "litmus-" + litmus_name;
    } else if (!load_path.empty()) {
        traces = loadTraces(load_path);
        if (traces.empty())
            return 1;
    } else {
        traces = generateTraces(app, procs, instrs, seed_salt);
    }
    if (!save_path.empty() && !saveTraces(save_path, traces))
        return 1;

    if (!trace_out.empty()) {
        EventTrace::instance().enable(
            parseTraceCategories(trace_cats));
    }

    System sys(cfg, std::move(traces));
    if (checks.replay)
        sys.enableScVerification();
    if (checks.axiomatic || checks.race)
        sys.enableAnalysis(checks.axiomatic, checks.race);
    Results res = sys.run();

    const AnalysisEngine *eng = sys.analysis();
    const ScVerifier *rep = sys.scVerifier();
    bool litmus_forbidden =
        litmus.allowedSC && res.completed &&
        !litmus.allowedSC(res.loadResults);
    bool sc_fail = (rep && !rep->verified()) ||
                   (eng && !eng->scOk()) || litmus_forbidden;
    bool races_found = eng && eng->raceCount() > 0;
    int rc = sc_fail         ? 3
             : races_found   ? 4
             : res.completed ? 0
                             : 2;

    if (!trace_out.empty()) {
        const EventTrace &et = EventTrace::instance();
        if (!et.exportChromeTrace(trace_out)) {
            std::fprintf(stderr, "error: cannot write trace to %s\n",
                         trace_out.c_str());
            return 1;
        }
        if (!json_out) {
            std::printf("trace: %llu events (%llu dropped) -> %s\n",
                        static_cast<unsigned long long>(et.recorded()),
                        static_cast<unsigned long long>(et.dropped()),
                        trace_out.c_str());
        }
    }

    if (json_out) {
        std::printf("{\n  \"model\": \"%s\",\n  \"app\": \"%s\","
                    "\n  \"procs\": %u,\n  \"completed\": %s",
                    modelName(cfg.model),
                    jsonEscape(app.name).c_str(), procs,
                    res.completed ? "true" : "false");
        if (litmus.allowedSC) {
            std::printf(",\n  \"litmus_sc_ok\": %s",
                        litmus_forbidden ? "false" : "true");
        }
        for (const auto &[k, v] : res.stats.entries())
            std::printf(",\n  \"%s\": %s", jsonEscape(k).c_str(),
                        jsonNumber(v).c_str());
        if (eng && eng->graph()) {
            const MemOrderGraph &g = *eng->graph();
            std::printf(",\n  \"sc_violations\": [");
            bool first_v = true;
            for (const auto &viol : g.violations()) {
                std::printf("%s\n    {\"tick\": %llu, \"cycle\": "
                            "\"%s\", \"edges\": [",
                            first_v ? "" : ",",
                            static_cast<unsigned long long>(viol.tick),
                            jsonEscape(g.describe(viol)).c_str());
                first_v = false;
                bool first_e = true;
                for (const auto &e : viol.edges) {
                    const auto &f = g.node(e.from);
                    const auto &t = g.node(e.to);
                    std::printf("%s\n      {\"from\": \"cpu%u#%llu\", "
                                "\"to\": \"cpu%u#%llu\", \"kind\": "
                                "\"%s\", \"addr\": \"0x%llx\"}",
                                first_e ? "" : ",", f.proc,
                                static_cast<unsigned long long>(f.seq),
                                t.proc,
                                static_cast<unsigned long long>(t.seq),
                                MemOrderGraph::edgeKindName(e.kind),
                                static_cast<unsigned long long>(
                                    e.addr));
                    first_e = false;
                }
                std::printf("\n    ]}");
            }
            std::printf("\n  ]");
        }
        if (eng && eng->races()) {
            const RaceDetector &rd = *eng->races();
            std::printf(",\n  \"race_reports\": [");
            bool first_r = true;
            for (const auto &r : rd.reports()) {
                std::printf("%s\n    {\"addr\": \"0x%llx\", "
                            "\"first\": \"cpu%u#%llu %s\", "
                            "\"second\": \"cpu%u#%llu %s\"}",
                            first_r ? "" : ",",
                            static_cast<unsigned long long>(r.addr),
                            r.priorProc,
                            static_cast<unsigned long long>(
                                r.priorSeq),
                            r.priorIsWrite ? "write" : "read", r.proc,
                            static_cast<unsigned long long>(r.seq),
                            r.isWrite ? "write" : "read");
                first_r = false;
            }
            std::printf("\n  ]");
        }
        std::printf("\n}\n");
        return rc;
    }

    std::printf("model=%s app=%s procs=%u instrs/proc=%llu\n",
                modelName(cfg.model), app.name.c_str(), procs,
                static_cast<unsigned long long>(instrs));
    std::printf("completed=%s exec_time=%llu cycles\n",
                res.completed ? "yes" : "NO",
                static_cast<unsigned long long>(res.execTime));
    if (litmus.allowedSC) {
        std::printf("litmus %s: outcome %s under SC\n",
                    litmus.name.c_str(),
                    litmus_forbidden ? "FORBIDDEN" : "allowed");
    }
    if (rep) {
        std::printf("sc-replay: %s (%llu chunks, %llu reads "
                    "checked)\n",
                    rep->verified() ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(
                        rep->chunksChecked()),
                    static_cast<unsigned long long>(
                        rep->readsChecked()));
        for (const std::string &e : rep->errors())
            std::printf("  %s\n", e.c_str());
    }
    if (eng && eng->graph()) {
        const MemOrderGraph &g = *eng->graph();
        std::printf("sc-axiomatic: %s (%zu chunks, %zu edges, "
                    "%llu cycles)\n",
                    g.ok() ? "PASS" : "FAIL", g.numNodes(),
                    g.numEdges(),
                    static_cast<unsigned long long>(
                        g.cyclesDetected()));
        for (const auto &viol : g.violations())
            std::printf("  cycle @%llu: %s\n",
                        static_cast<unsigned long long>(viol.tick),
                        g.describe(viol).c_str());
    }
    if (eng && eng->races()) {
        const RaceDetector &rd = *eng->races();
        std::printf("races: %llu racy pairs on %zu addresses "
                    "(%llu accesses checked, %llu sync ops)\n",
                    static_cast<unsigned long long>(rd.racesFound()),
                    rd.racyAddrs(),
                    static_cast<unsigned long long>(
                        rd.checkedAccesses()),
                    static_cast<unsigned long long>(rd.syncOps()));
        for (const auto &r : rd.reports())
            std::printf("  %s\n", rd.describe(r).c_str());
    }
    if (sc_fail || races_found)
        return rc;

    if (dump_all) {
        std::ostringstream os;
        res.stats.dump(os);
        std::fputs(os.str().c_str(), stdout);
        return rc;
    }

    std::printf("retired=%.0f wasted=%.0f (%.2f%% squashed) "
                "squashes=%.0f\n",
                res.stats.get("cpu.retired_instrs"),
                res.stats.get("cpu.wasted_instrs"),
                res.stats.get("cpu.squashed_instr_pct"),
                res.stats.get("cpu.squashes"));
    if (res.stats.get("model_is_bulk") > 0) {
        std::printf("chunks: commits=%.0f emptyW=%.1f%% rset=%.1f "
                    "wset=%.2f wpriv=%.1f\n",
                    res.stats.get("bulk.commits"),
                    res.stats.get("bulk.empty_w_pct"),
                    res.stats.get("bulk.avg_read_set"),
                    res.stats.get("bulk.avg_write_set"),
                    res.stats.get("bulk.avg_priv_write_set"));
        std::printf("arbiter: requests=%.0f denials=%.0f "
                    "pendingW=%.2f nonEmpty=%.1f%%\n",
                    res.stats.get("arb.requests"),
                    res.stats.get("arb.denials"),
                    res.stats.get("arb.avg_pending_w"),
                    res.stats.get("arb.non_empty_pct"));
    }
    std::printf("traffic: total=%.0f bits (RdWr=%.0f RdSig=%.0f "
                "WrSig=%.0f Inv=%.0f Other=%.0f)\n",
                res.stats.get("net.bits.total"),
                res.stats.get("net.bits.RdWr"),
                res.stats.get("net.bits.RdSig"),
                res.stats.get("net.bits.WrSig"),
                res.stats.get("net.bits.Inv"),
                res.stats.get("net.bits.Other"));
    return rc;
}
