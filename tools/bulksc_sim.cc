/**
 * @file
 * Command-line simulator driver: run any workload under any model
 * with configurable machine parameters and dump the full statistics.
 *
 *   bulksc_sim [options]
 *
 * Every flag comes from the shared option registry (--help lists
 * them); the same names are the keys of --config JSON files and
 * bulksc_batch sweep axes. Highlights:
 *
 *   --config FILE     load options from a JSON config file (explicit
 *                     flags override the file, wherever they appear)
 *   --dump-config     print the effective configuration as JSON and
 *                     exit — the output round-trips through --config
 *   --check LIST      correctness checkers (axiomatic, race, replay);
 *                     exit code 3 on an SC violation, 4 on races
 *   --trace-out F     chunk-lifecycle events as Chrome trace_event
 *                     JSON (chrome://tracing or ui.perfetto.dev)
 *
 * The BULKSC_TRACE environment variable independently enables the
 * textual debug log on stderr (same category names, e.g.
 * BULKSC_TRACE=chunk,squash).
 */

#include <cstdio>
#include <cstring>
#include <sstream>

#include "sim/event_trace.hh"
#include "sim/trace_log.hh"
#include "system/sim_options.hh"
#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"
#include "workload/litmus.hh"
#include "workload/trace_io.hh"

using namespace bulksc;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s [options]\n", argv0);
    OptionRegistry::instance().printUsage(stderr, OptionGroup::Sim);
    std::fprintf(stderr,
                 "(BULKSC_TRACE=cat,... additionally enables the "
                 "textual debug log)\n");
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") ||
            !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
        }
    }

    SimOptions opts;
    const OptionRegistry &reg = OptionRegistry::instance();
    std::string err;
    if (!reg.parse(argc - 1, argv + 1, opts, OptionGroup::Sim, err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        usage(argv[0]);
    }

    if (opts.app == "list") {
        for (const AppProfile &p : allProfiles())
            std::printf("%s\n", p.name.c_str());
        return 0;
    }

    if (!opts.cfg.validate(err)) {
        std::fprintf(stderr, "%s: invalid configuration: %s\n",
                     argv[0], err.c_str());
        return 1;
    }

    if (opts.dumpConfig) {
        reg.dumpConfigJson(stdout, opts);
        return 0;
    }

    MachineConfig &cfg = opts.cfg;
    AppProfile app = profileByName(opts.app);
    if (opts.checks.replay)
        app.trackAllValues = true; // replay compares observed values

    std::vector<Trace> traces;
    LitmusTest litmus;
    if (!opts.litmus.empty()) {
        if (!litmusByName(opts.litmus,
                          static_cast<unsigned>(opts.seedSalt),
                          litmus)) {
            std::fprintf(stderr,
                         "unknown litmus test '%s' (known: %s)\n",
                         opts.litmus.c_str(), litmusNames());
            usage(argv[0]);
        }
        traces = litmus.traces;
        cfg.numProcs = static_cast<unsigned>(traces.size());
        app.name = "litmus-" + opts.litmus;
    } else if (!opts.loadTraces.empty()) {
        traces = loadTraces(opts.loadTraces);
        if (traces.empty())
            return 1;
    } else {
        traces = generateTraces(app, cfg.numProcs, opts.instrs,
                                opts.seedSalt);
    }
    if (!opts.saveTraces.empty() &&
        !saveTraces(opts.saveTraces, traces)) {
        return 1;
    }

    if (!opts.traceOut.empty()) {
        EventTrace::instance().enable(
            parseTraceCategories(opts.traceCats));
    }

    System sys(cfg, std::move(traces));
    if (opts.checks.replay)
        sys.enableScVerification();
    if (opts.checks.axiomatic || opts.checks.race)
        sys.enableAnalysis(opts.checks.axiomatic, opts.checks.race);
    Results res = sys.run();

    const AnalysisEngine *eng = sys.analysis();
    const ScVerifier *rep = sys.scVerifier();
    bool litmus_forbidden =
        litmus.allowedSC && res.completed &&
        !litmus.allowedSC(res.loadResults);
    bool sc_fail = (rep && !rep->verified()) ||
                   (eng && !eng->scOk()) || litmus_forbidden;
    bool races_found = eng && eng->raceCount() > 0;
    // Distinct exit code per watchdog verdict so fault campaigns can
    // tell a livelock from a wedged protocol without parsing output.
    int wd_rc = 0;
    switch (res.watchdogVerdict) {
      case WatchdogVerdict::Livelock:
        wd_rc = 10;
        break;
      case WatchdogVerdict::Starvation:
        wd_rc = 11;
        break;
      case WatchdogVerdict::Deadlock:
        wd_rc = 12;
        break;
      default:
        break;
    }
    int rc = sc_fail         ? 3
             : races_found   ? 4
             : wd_rc         ? wd_rc
             : res.completed ? 0
                             : 2;

    if (wd_rc)
        std::fputs(res.watchdogReport.c_str(), stderr);

    if (!opts.traceOut.empty()) {
        const EventTrace &et = EventTrace::instance();
        if (!et.exportChromeTrace(opts.traceOut)) {
            std::fprintf(stderr, "error: cannot write trace to %s\n",
                         opts.traceOut.c_str());
            return 1;
        }
        if (!opts.jsonOut) {
            std::printf("trace: %llu events (%llu dropped) -> %s\n",
                        static_cast<unsigned long long>(et.recorded()),
                        static_cast<unsigned long long>(et.dropped()),
                        opts.traceOut.c_str());
        }
    }

    if (opts.jsonOut) {
        std::printf("{\n  \"model\": \"%s\",\n  \"app\": \"%s\","
                    "\n  \"procs\": %u,\n  \"completed\": %s",
                    modelName(cfg.model),
                    jsonEscape(app.name).c_str(), cfg.numProcs,
                    res.completed ? "true" : "false");
        std::printf(",\n  \"watchdog\": \"%s\"",
                    watchdogVerdictName(res.watchdogVerdict));
        if (litmus.allowedSC) {
            std::printf(",\n  \"litmus_sc_ok\": %s",
                        litmus_forbidden ? "false" : "true");
        }
        for (const auto &[k, v] : res.stats.entries())
            std::printf(",\n  \"%s\": %s", jsonEscape(k).c_str(),
                        jsonNumber(v).c_str());
        if (eng && eng->graph()) {
            const MemOrderGraph &g = *eng->graph();
            std::printf(",\n  \"sc_violations\": [");
            bool first_v = true;
            for (const auto &viol : g.violations()) {
                std::printf("%s\n    {\"tick\": %llu, \"cycle\": "
                            "\"%s\", \"edges\": [",
                            first_v ? "" : ",",
                            static_cast<unsigned long long>(viol.tick),
                            jsonEscape(g.describe(viol)).c_str());
                first_v = false;
                bool first_e = true;
                for (const auto &e : viol.edges) {
                    const auto &f = g.node(e.from);
                    const auto &t = g.node(e.to);
                    std::printf("%s\n      {\"from\": \"cpu%u#%llu\", "
                                "\"to\": \"cpu%u#%llu\", \"kind\": "
                                "\"%s\", \"addr\": \"0x%llx\"}",
                                first_e ? "" : ",", f.proc,
                                static_cast<unsigned long long>(f.seq),
                                t.proc,
                                static_cast<unsigned long long>(t.seq),
                                MemOrderGraph::edgeKindName(e.kind),
                                static_cast<unsigned long long>(
                                    e.addr));
                    first_e = false;
                }
                std::printf("\n    ]}");
            }
            std::printf("\n  ]");
        }
        if (eng && eng->races()) {
            const RaceDetector &rd = *eng->races();
            std::printf(",\n  \"race_reports\": [");
            bool first_r = true;
            for (const auto &r : rd.reports()) {
                std::printf("%s\n    {\"addr\": \"0x%llx\", "
                            "\"first\": \"cpu%u#%llu %s\", "
                            "\"second\": \"cpu%u#%llu %s\"}",
                            first_r ? "" : ",",
                            static_cast<unsigned long long>(r.addr),
                            r.priorProc,
                            static_cast<unsigned long long>(
                                r.priorSeq),
                            r.priorIsWrite ? "write" : "read", r.proc,
                            static_cast<unsigned long long>(r.seq),
                            r.isWrite ? "write" : "read");
                first_r = false;
            }
            std::printf("\n  ]");
        }
        std::printf("\n}\n");
        return rc;
    }

    std::printf("model=%s app=%s procs=%u instrs/proc=%llu\n",
                modelName(cfg.model), app.name.c_str(), cfg.numProcs,
                static_cast<unsigned long long>(opts.instrs));
    std::printf("completed=%s exec_time=%llu cycles\n",
                res.completed ? "yes" : "NO",
                static_cast<unsigned long long>(res.execTime));
    if (res.watchdogVerdict != WatchdogVerdict::None) {
        std::printf("watchdog: %s\n",
                    watchdogVerdictName(res.watchdogVerdict));
    }
    if (litmus.allowedSC) {
        std::printf("litmus %s: outcome %s under SC\n",
                    litmus.name.c_str(),
                    litmus_forbidden ? "FORBIDDEN" : "allowed");
    }
    if (rep) {
        std::printf("sc-replay: %s (%llu chunks, %llu reads "
                    "checked)\n",
                    rep->verified() ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(
                        rep->chunksChecked()),
                    static_cast<unsigned long long>(
                        rep->readsChecked()));
        for (const std::string &e : rep->errors())
            std::printf("  %s\n", e.c_str());
    }
    if (eng && eng->graph()) {
        const MemOrderGraph &g = *eng->graph();
        std::printf("sc-axiomatic: %s (%zu chunks, %zu edges, "
                    "%llu cycles)\n",
                    g.ok() ? "PASS" : "FAIL", g.numNodes(),
                    g.numEdges(),
                    static_cast<unsigned long long>(
                        g.cyclesDetected()));
        for (const auto &viol : g.violations())
            std::printf("  cycle @%llu: %s\n",
                        static_cast<unsigned long long>(viol.tick),
                        g.describe(viol).c_str());
    }
    if (eng && eng->races()) {
        const RaceDetector &rd = *eng->races();
        std::printf("races: %llu racy pairs on %zu addresses "
                    "(%llu accesses checked, %llu sync ops)\n",
                    static_cast<unsigned long long>(rd.racesFound()),
                    rd.racyAddrs(),
                    static_cast<unsigned long long>(
                        rd.checkedAccesses()),
                    static_cast<unsigned long long>(rd.syncOps()));
        for (const auto &r : rd.reports())
            std::printf("  %s\n", rd.describe(r).c_str());
    }
    if (sc_fail || races_found)
        return rc;

    if (opts.dumpAll) {
        std::ostringstream os;
        res.stats.dump(os);
        std::fputs(os.str().c_str(), stdout);
        return rc;
    }

    std::printf("retired=%.0f wasted=%.0f (%.2f%% squashed) "
                "squashes=%.0f\n",
                res.stats.get("cpu.retired_instrs"),
                res.stats.get("cpu.wasted_instrs"),
                res.stats.get("cpu.squashed_instr_pct"),
                res.stats.get("cpu.squashes"));
    if (res.stats.get("model_is_bulk") > 0) {
        std::printf("chunks: commits=%.0f emptyW=%.1f%% rset=%.1f "
                    "wset=%.2f wpriv=%.1f\n",
                    res.stats.get("bulk.commits"),
                    res.stats.get("bulk.empty_w_pct"),
                    res.stats.get("bulk.avg_read_set"),
                    res.stats.get("bulk.avg_write_set"),
                    res.stats.get("bulk.avg_priv_write_set"));
        std::printf("arbiter: requests=%.0f denials=%.0f "
                    "pendingW=%.2f nonEmpty=%.1f%%\n",
                    res.stats.get("arb.requests"),
                    res.stats.get("arb.denials"),
                    res.stats.get("arb.avg_pending_w"),
                    res.stats.get("arb.non_empty_pct"));
    }
    std::printf("traffic: total=%.0f bits (RdWr=%.0f RdSig=%.0f "
                "WrSig=%.0f Inv=%.0f Other=%.0f)\n",
                res.stats.get("net.bits.total"),
                res.stats.get("net.bits.RdWr"),
                res.stats.get("net.bits.RdSig"),
                res.stats.get("net.bits.WrSig"),
                res.stats.get("net.bits.Inv"),
                res.stats.get("net.bits.Other"));
    return rc;
}
