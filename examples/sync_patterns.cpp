/**
 * @file
 * Synchronization-pattern demo (Section 3.3 of the paper): how
 * explicit synchronization interacts with chunks.
 *
 * 1. Contended locks: multiple processors may enter a critical
 *    section speculatively, each believing it owns the lock; the
 *    first chunk to commit squashes the others.
 * 2. Barriers: arrival increments commit through the chunk pipeline,
 *    and spinning waiters are woken by the squash caused by the
 *    releaser's committing W signature.
 * 3. The pathological write-spinner: repeated squashes trigger the
 *    forward-progress measures (exponential chunk shrinking, then
 *    pre-arbitration).
 *
 *   ./build/examples/sync_patterns
 */

#include <cstdio>

#include "system/system.hh"
#include "workload/generator.hh"

using namespace bulksc;

namespace {

Op
load(Addr a, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Trace
makeTrace(std::vector<Op> ops)
{
    Trace t;
    t.ops = std::move(ops);
    t.finalize();
    return t;
}

void
contendedLocks()
{
    std::printf("--- contended critical sections "
                "(Figure 6 scenarios) ---\n");
    const Addr lock = layout::lockAddr(0);
    auto mk = [&] {
        std::vector<Op> ops;
        for (int i = 0; i < 30; ++i) {
            Op acq;
            acq.type = OpType::Acquire;
            acq.addr = lock;
            acq.gap = 15;
            ops.push_back(acq);
            ops.push_back(load(0xB000'0000, 3));
            ops.push_back(store(0xB000'0000, i, 3));
            Op rel;
            rel.type = OpType::Release;
            rel.addr = lock;
            rel.gap = 15;
            ops.push_back(rel);
        }
        return makeTrace(ops);
    };

    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    System sys(cfg, {mk(), mk(), mk(), mk()});
    Results r = sys.run(200'000'000);
    std::printf("  completed=%s  exec=%llu cycles\n",
                r.completed ? "yes" : "NO",
                static_cast<unsigned long long>(r.execTime));
    std::printf("  chunk commits=%.0f  squashes=%.0f  "
                "(losers of speculative critical sections)\n",
                r.stats.get("bulk.commits"),
                r.stats.get("cpu.squashes"));
    std::printf("  lock word after the run: %llu (free)\n\n",
                static_cast<unsigned long long>(
                    sys.memory().readValue(lock)));
}

void
barriers()
{
    std::printf("--- barriers through chunks ---\n");
    auto mk = [&] {
        std::vector<Op> ops;
        for (std::uint32_t b = 0; b < 4; ++b) {
            for (int i = 0; i < 40; ++i)
                ops.push_back(load(0x1000 + (i % 8) * 64, 5));
            Op arrive;
            arrive.type = OpType::BarrierArrive;
            arrive.addr = layout::kBarrierBase;
            arrive.gap = 5;
            arrive.aux = b;
            ops.push_back(arrive);
            Op wait = arrive;
            wait.type = OpType::BarrierWait;
            ops.push_back(wait);
        }
        return makeTrace(ops);
    };
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 8;
    std::vector<Trace> traces;
    for (int i = 0; i < 8; ++i)
        traces.push_back(mk());
    System sys(cfg, std::move(traces));
    Results r = sys.run(200'000'000);
    std::printf("  8 processors x 4 barriers: completed=%s, "
                "exec=%llu cycles\n",
                r.completed ? "yes" : "NO",
                static_cast<unsigned long long>(r.execTime));
    std::printf("  squashes=%.0f (spinning waiters woken by the "
                "releaser's commit)\n\n",
                r.stats.get("cpu.squashes"));
}

void
forwardProgress()
{
    std::printf("--- pathological write-spinners "
                "(forward-progress measures) ---\n");
    const Addr v = 0x9000'0000;
    std::vector<Trace> traces;
    {
        std::vector<Op> ops; // the key processor
        for (int i = 0; i < 100; ++i) {
            ops.push_back(load(v, 4));
            ops.push_back(store(v, i, 4));
        }
        traces.push_back(makeTrace(ops));
    }
    for (int p = 1; p < 4; ++p) {
        std::vector<Op> ops; // write-spinners
        for (int i = 0; i < 400; ++i)
            ops.push_back(store(v, i, 2));
        traces.push_back(makeTrace(ops));
    }
    MachineConfig cfg;
    cfg.model = Model::BSCdypvt;
    cfg.numProcs = 4;
    cfg.bulk.preArbThreshold = 4;
    System sys(cfg, std::move(traces));
    Results r = sys.run(400'000'000);
    std::printf("  completed=%s  squashes=%.0f  "
                "pre-arbitrations=%.0f\n",
                r.completed ? "yes" : "NO",
                r.stats.get("cpu.squashes"),
                r.stats.get("bulk.pre_arbitrations"));
    std::printf("  (squashed chunks shrink exponentially; if that "
                "fails, the processor\n   reserves the arbiter and "
                "is guaranteed to commit — Section 3.3)\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    contendedLocks();
    barriers();
    forwardProgress();
    return 0;
}
