/**
 * @file
 * Transactional memory on BulkSC (the paper's Section 8 observation
 * that BulkSC is "a convenient building block for TM": a transaction
 * is simply a chunk whose boundaries are pinned to the transaction's).
 *
 * A bank-transfer workload: accounts live in shared memory, and each
 * processor transactionally moves a fixed amount between account
 * pairs. Under BulkSC the chunks give each transfer atomicity and
 * isolation for free; the baselines execute the same trace with the
 * markers as no-ops, and the reader can watch atomicity break.
 *
 *   ./build/examples/transactions
 */

#include <cstdio>

#include "system/system.hh"
#include "workload/generator.hh"

using namespace bulksc;

namespace {

constexpr Addr kAccounts = 0x9000'0000;
constexpr unsigned kNumAccounts = 8;
constexpr std::uint64_t kInitialBalance = 1000;

Addr
account(unsigned i)
{
    return kAccounts + Addr{i} * 64; // one line per account
}

Op
load(Addr a, std::uint32_t gap = 1, std::uint32_t slot = kNoSlot)
{
    Op op;
    op.type = OpType::Load;
    op.addr = a;
    op.gap = gap;
    op.aux = slot;
    op.tracked = true;
    return op;
}

Op
store(Addr a, std::uint64_t v, std::uint32_t gap = 1)
{
    Op op;
    op.type = OpType::Store;
    op.addr = a;
    op.storeValue = v;
    op.gap = gap;
    op.tracked = true;
    return op;
}

Op
marker(OpType t, std::uint32_t gap = 2)
{
    Op op;
    op.type = t;
    op.gap = gap;
    return op;
}

/**
 * Each processor repeatedly "transfers" by rewriting a pair of
 * accounts so the PAIR SUM is preserved (trace values are static, so
 * the transfer writes balance-delta / balance+delta for a fixed
 * delta). An observer processor polls pairs and checks the invariant.
 */
Trace
transferTrace(unsigned p, unsigned transfers)
{
    std::vector<Op> ops;
    for (unsigned t = 0; t < transfers; ++t) {
        unsigned from = (p + t) % kNumAccounts;
        unsigned to = (p + t + 1) % kNumAccounts;
        ops.push_back(marker(OpType::TxBegin, 10));
        ops.push_back(load(account(from), 2));
        ops.push_back(load(account(to), 2));
        ops.push_back(store(account(from), kInitialBalance - 50, 4));
        // A long transaction body between the two halves of the
        // transfer: a non-transactional machine exposes the torn
        // state for all of it.
        ops.push_back(load(0x2000 + p * 64, 600));
        ops.push_back(store(account(to), kInitialBalance + 50, 4));
        ops.push_back(marker(OpType::TxEnd, 2));
        ops.push_back(load(0x1000 + p * 64, 80));
    }
    Trace tr;
    tr.ops = std::move(ops);
    tr.finalize();
    return tr;
}

Trace
observerTrace(unsigned polls)
{
    std::vector<Op> ops;
    std::uint32_t slot = 0;
    for (unsigned i = 0; i < polls; ++i) {
        unsigned a = i % kNumAccounts;
        unsigned b = (a + 1) % kNumAccounts;
        ops.push_back(load(account(a), 40, slot++));
        ops.push_back(load(account(b), 1, slot++));
    }
    Trace tr;
    tr.ops = std::move(ops);
    tr.finalize();
    return tr;
}

unsigned
tornObservations(Model m)
{
    const unsigned kTransfers = 30, kPolls = 60;
    std::vector<Trace> traces;
    for (unsigned p = 0; p < 3; ++p)
        traces.push_back(transferTrace(p, kTransfers));
    traces.push_back(observerTrace(kPolls));

    MachineConfig cfg;
    cfg.model = m;
    cfg.numProcs = 4;
    System sys(cfg, std::move(traces));
    Results r = sys.run(400'000'000);
    if (!r.completed)
        return ~0u;

    unsigned torn = 0;
    for (unsigned i = 0; i < kPolls; ++i) {
        std::uint64_t va = r.loadResults[3][2 * i];
        std::uint64_t vb = r.loadResults[3][2 * i + 1];
        if (va == 0)
            va = kInitialBalance; // never written yet
        if (vb == 0)
            vb = kInitialBalance;
        // Any pair state composed of complete transfers sums to
        // 2*initial or differs by a full +-50/+50 pair; observing
        // exactly one half of a transfer breaks the +-50 pairing.
        bool half_transfer =
            (va == kInitialBalance - 50 && vb == kInitialBalance) ||
            (va == kInitialBalance && vb == kInitialBalance + 50);
        if (half_transfer)
            ++torn;
    }
    return torn;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Transactional bank transfers: 3 writers x 30 "
                "transactions, 1 observer x 60 polls\n\n");
    std::printf("%-10s %24s\n", "machine", "torn observations");
    for (Model m : {Model::BSCdypvt, Model::BSCexact, Model::RC,
                    Model::TSO}) {
        unsigned torn = tornObservations(m);
        std::printf("%-10s %18u %s\n", modelName(m), torn,
                    isBulk(m) ? "(transactions = chunks: atomic)"
                              : "(markers are no-ops: can tear)");
    }
    std::printf(
        "\nOn BulkSC the transaction IS the chunk: its stores become "
        "visible as one\natomic commit, and conflicting transactions "
        "squash and retry — no extra\nhardware beyond what SC "
        "enforcement already provides (paper, Section 8).\n");
    return 0;
}
