/**
 * @file
 * Quickstart: build an 8-core BulkSC machine (the paper's Table 2
 * configuration), run a SPLASH-2-like workload under BulkSC and under
 * RC, and print the headline comparison plus a few chunk statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"

using namespace bulksc;

int
main()
{
    setQuiet(true);

    const AppProfile &app = profileByName("ocean");
    const unsigned procs = 8;
    const std::uint64_t instrs = 60'000;

    std::printf("BulkSC quickstart: app=%s, %u processors, "
                "%llu instrs/proc\n\n",
                app.name.c_str(), procs,
                static_cast<unsigned long long>(instrs));

    // Run the same traces under RC (the performance ceiling) and
    // under BulkSC with the dynamically-private data optimization
    // (the paper's preferred configuration).
    Results rc = runWorkload(Model::RC, app, procs, instrs);
    Results bsc = runWorkload(Model::BSCdypvt, app, procs, instrs);

    std::printf("%-10s exec_time=%10llu cycles\n", "RC",
                static_cast<unsigned long long>(rc.execTime));
    std::printf("%-10s exec_time=%10llu cycles  (%.3fx of RC)\n\n",
                "BSCdypvt",
                static_cast<unsigned long long>(bsc.execTime),
                static_cast<double>(bsc.execTime) /
                    static_cast<double>(rc.execTime));

    std::printf("BulkSC chunk behaviour:\n");
    std::printf("  chunk commits            : %.0f\n",
                bsc.stats.get("bulk.commits"));
    std::printf("  squashed instructions    : %.2f%%\n",
                bsc.stats.get("cpu.squashed_instr_pct"));
    std::printf("  avg read set (lines)     : %.1f\n",
                bsc.stats.get("bulk.avg_read_set"));
    std::printf("  avg write set (lines)    : %.2f\n",
                bsc.stats.get("bulk.avg_write_set"));
    std::printf("  avg priv write set       : %.1f\n",
                bsc.stats.get("bulk.avg_priv_write_set"));
    std::printf("  empty-W commits          : %.1f%%\n",
                bsc.stats.get("bulk.empty_w_pct"));
    std::printf("  network traffic vs RC    : %.2fx\n",
                bsc.stats.get("net.bits.total") /
                    rc.stats.get("net.bits.total"));
    return 0;
}
