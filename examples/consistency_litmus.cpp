/**
 * @file
 * Litmus-test demo: shows BulkSC enforcing SC at the memory-access
 * level while an RC machine without fences visibly reorders.
 *
 * Runs the classic store-buffering (Dekker), message-passing, and
 * IRIW litmus programs across many timing variants under RC and
 * BSCdypvt, and reports how often each machine produced an outcome
 * forbidden under sequential consistency.
 *
 *   ./build/examples/consistency_litmus
 */

#include <cstdio>

#include "system/system.hh"
#include "workload/litmus.hh"

using namespace bulksc;

namespace {

unsigned
countViolations(Model m, unsigned variants)
{
    unsigned violations = 0;
    for (unsigned v = 0; v < variants; ++v) {
        for (LitmusTest lt : {makeStoreBuffering(v),
                              makeMessagePassing(v), makeIriw(v)}) {
            MachineConfig cfg;
            cfg.model = m;
            cfg.numProcs =
                static_cast<unsigned>(lt.traces.size());
            System sys(cfg, lt.traces);
            Results r = sys.run(50'000'000);
            if (!r.completed || !lt.allowedSC(r.loadResults))
                ++violations;
        }
    }
    return violations;
}

} // namespace

int
main()
{
    setQuiet(true);
    const unsigned variants = 10;
    const unsigned total = variants * 3;

    std::printf("Litmus suite: store-buffering, message-passing, "
                "IRIW — %u runs per machine\n\n",
                total);

    std::printf("%-28s %20s\n", "machine", "SC violations");
    for (Model m : {Model::RC, Model::SC, Model::BSCbase,
                    Model::BSCdypvt, Model::BSCexact}) {
        unsigned v = countViolations(m, variants);
        std::printf("%-28s %14u / %3u  %s\n", modelName(m), v, total,
                    v == 0 ? "(sequentially consistent)"
                           : "(NOT SC - reordering observed)");
    }

    std::printf(
        "\nBulkSC runs the same fence-free programs as RC, yet every "
        "outcome is\nsequentially consistent: chunks execute "
        "atomically and in isolation, and\nthe arbiter + signature "
        "disambiguation squash any chunk that observed a\nstate "
        "inconsistent with a total commit order (Sections 3.1-3.2 of "
        "the paper).\n");
    return 0;
}
