/**
 * @file
 * Defining a custom synthetic workload through the public API and
 * comparing all seven machine configurations on it.
 *
 * The example models a producer/consumer-style application: a private
 * compute phase, bursty streaming, and a moderately contended shared
 * table — then sweeps every consistency model the paper evaluates.
 *
 *   ./build/examples/custom_workload
 */

#include <cstdio>

#include "system/system.hh"
#include "workload/app_profiles.hh"
#include "workload/generator.hh"

using namespace bulksc;

int
main()
{
    setQuiet(true);

    // A custom application profile: see workload/app_profiles.hh for
    // every knob. Rates are per 1000 dynamic instructions.
    AppProfile app;
    app.name = "my-app";
    app.memFrac = 0.30;            // 30% of instructions touch memory
    app.stackFrac = 0.10;          // stack (statically private)
    app.sharedReadFrac = 0.20;     // reads of the shared table
    app.sharedWritesPer1k = 1.5;   // table updates
    app.sharedWriteBurst = 3;      // ...in 3-line records
    app.privLines = 2048;          // private heap working set
    app.privWriteLines = 96;       // hot private-write subset
    app.sharedLines = 32768;
    app.hotLines = 256;            // contended entries
    app.hotFrac = 0.10;
    app.locality = 0.55;
    app.locksPer1k = 0.4;          // occasional critical sections
    app.numLocks = 32;
    app.streamBurstsPer1k = 0.5;   // streaming input
    app.seed = 4242;

    const unsigned procs = 8;
    const std::uint64_t instrs = 40'000;

    std::printf("custom workload '%s': %u processors, %llu "
                "instrs/proc\n\n",
                app.name.c_str(), procs,
                static_cast<unsigned long long>(instrs));
    std::printf("%-10s %12s %9s %9s %10s %10s\n", "model",
                "exec (cyc)", "vs RC", "squash%", "commits",
                "traffic/RC");

    double rc_time = 0, rc_traffic = 0;
    for (Model m : {Model::RC, Model::SC, Model::TSO, Model::SCpp,
                    Model::BSCbase,
                    Model::BSCdypvt, Model::BSCstpvt,
                    Model::BSCexact}) {
        Results r = runWorkload(m, app, procs, instrs);
        if (m == Model::RC) {
            rc_time = static_cast<double>(r.execTime);
            rc_traffic = r.stats.get("net.bits.total");
        }
        std::printf("%-10s %12llu %9.3f %9.2f %10.0f %10.3f\n",
                    modelName(m),
                    static_cast<unsigned long long>(r.execTime),
                    rc_time / static_cast<double>(r.execTime),
                    r.stats.get("cpu.squashed_instr_pct"),
                    r.stats.get("bulk.commits"),
                    r.stats.get("net.bits.total") / rc_traffic);
    }

    std::printf(
        "\nBulkSC with the dynamically-private optimization should "
        "land close to RC\nwhile giving the program sequential "
        "consistency — the paper's headline result.\n");
    return 0;
}
